//! Server-side tracking audit (§5.7): crawl a synthetic ecosystem twice
//! (with and without CookieGuard), resolve each site's first-party
//! gateway rules, and show that the server-side relay channel survives
//! the client-side defense untouched.
//!
//! Run with: `cargo run --release --example server_side_audit [sites]`

use cookieguard_repro::analysis::{detect_exfiltration, detect_server_side, Dataset, ForwardMap};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn crawl(gen: &WebGenerator, sites: usize, guard: Option<GuardConfig>) -> (Dataset, ForwardMap) {
    let cfg = match guard {
        Some(g) => VisitConfig::guarded(g),
        None => VisitConfig::regular(),
    };
    let (outcomes, _) = crawl_range(gen, &cfg, 1, sites, 4);
    let mut forwards = ForwardMap::new();
    for o in &outcomes {
        if !o.spec.server_forwards.is_empty() {
            forwards.insert(
                o.spec.domain.clone(),
                o.spec
                    .server_forwards
                    .iter()
                    .map(|f| (f.path_prefix.clone(), f.forwards_to.clone()))
                    .collect(),
            );
        }
    }
    (
        Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect()),
        forwards,
    )
}

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let gen = WebGenerator::new(GenConfig::small(sites), 0xC00C1E);
    let entities = builtin_entity_map();

    println!("auditing {sites} sites for first-party server-side gateways…\n");

    for (label, guard) in [
        ("regular browser", None),
        ("with CookieGuard", Some(GuardConfig::strict())),
    ] {
        let (ds, forwards) = crawl(&gen, sites, guard);
        let exfil = detect_exfiltration(&ds, &entities);
        let client_pct =
            100.0 * exfil.sites_with_cross_exfil_doc.len() as f64 / ds.site_count().max(1) as f64;
        let server = detect_server_side(&ds, &forwards);
        println!("=== {label} ===");
        println!("  analyzable sites:                   {}", ds.site_count());
        println!(
            "  sites with gateway rules:           {}",
            server.sites_with_gateway
        );
        println!("  client-side cross-domain exfil:     {client_pct:.1}% of sites");
        println!(
            "  server-side cross-domain relay:     {:.1}% of sites ({} cookies)",
            server.pct_sites_with_relay(),
            server.cross_domain_cookies_relayed
        );
        println!(
            "  gateway requests / with Cookie hdr: {} / {}",
            server.gateway_requests, server.requests_with_header_payload
        );
        println!();
    }

    // Forensics: name the relayed cookies on a few gateway sites.
    let (ds, forwards) = crawl(&gen, sites, None);
    println!("=== sample gateway sites (regular crawl) ===");
    let mut shown = 0;
    for log in &ds.logs {
        let Some(rules) = forwards.get(&log.site_domain) else {
            continue;
        };
        let gateway_hits: Vec<&str> = log
            .requests
            .iter()
            .filter(|r| {
                r.dest_domain.as_deref() == Some(log.site_domain.as_str())
                    && rules.iter().any(|(p, _)| r.url.contains(p.as_str()))
            })
            .filter_map(|r| r.cookie_header.as_deref())
            .collect();
        if gateway_hits.is_empty() {
            continue;
        }
        let names: Vec<&str> = gateway_hits[0]
            .split("; ")
            .filter_map(|p| p.split_once('=').map(|(n, _)| n))
            .collect();
        println!(
            "  {:<28} → {:<24} relaying: {}",
            log.site_domain,
            rules
                .iter()
                .map(|(_, t)| t.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            names.join(", ")
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }
    println!(
        "\nthe relay happens on the site's own server: no client-side defense can see it (§5.7)"
    );
}
