//! The defense matrix, runnable: every mechanism the paper positions
//! CookieGuard against — filter-list blocking (with and without the
//! Storey et al. [65] evasion techniques), storage partitioning, and a
//! CookieGraph-style ML cookie blocker — measured on one generated
//! population alongside CookieGuard itself.
//!
//! Also demonstrates the two standalone stories behind the matrix:
//! partitioning working as designed in embedded contexts while leaking
//! in the main frame (§2.1), and the blocklist evasion arms race.
//!
//! Run with: `cargo run --release --example defense_matrix [sites]`

use cookieguard_repro::baselines::{
    main_frame_leak_demo, run_defense_matrix, simulate_embedded_tracking, sop_boundary_demo,
    Defense, EvasionConfig, ForestConfig, MatrixOptions, PartitioningModel,
};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // ---- act 0: the SOP boundary (Figure 1) ---------------------------
    let sop = sop_boundary_demo("site.com", "tracker.com");
    println!("0. the Same-Origin Policy boundary (Figure 1):\n");
    println!(
        "   tracker script in a cross-origin iframe sees: {:?}",
        sop.iframe_sees
    );
    println!(
        "   the SAME script in the main frame sees:       {:?}\n",
        sop.main_frame_script_sees
    );

    // ---- act 1: partitioning works where it was designed to ----------
    println!("1. storage partitioning, in its own scope (tracker iframe on 4 sites):\n");
    let visited = [
        "news.example",
        "shop.example",
        "blog.example",
        "mail.example",
    ];
    for model in [
        PartitioningModel::Unpartitioned,
        PartitioningModel::SafariItp,
        PartitioningModel::FirefoxTcp,
        PartitioningModel::ChromeChips,
    ] {
        let out = simulate_embedded_tracking(model, "tracker.com", &visited, false);
        let verdict = if out.distinct_ids == 1 {
            "one profile — tracked across sites"
        } else {
            "per-site profiles"
        };
        println!(
            "   {:<16} {} distinct id(s): {}",
            model.name(),
            out.distinct_ids,
            verdict
        );
    }

    println!("\n   …and in the main frame (ghost-written cookie, cross-domain read):\n");
    for model in [
        PartitioningModel::SafariItp,
        PartitioningModel::FirefoxTcp,
        PartitioningModel::ChromeChips,
    ] {
        let leak = main_frame_leak_demo(model, "site.com");
        println!(
            "   {:<16} cross-domain script sees the tracker cookie: {}",
            model.name(),
            if leak.leaked {
                "YES — no main-frame isolation (§2.1)"
            } else {
                "no"
            }
        );
    }

    // ---- act 2: the full matrix --------------------------------------
    println!(
        "\n2. defense matrix on {sites} generated sites (train split: {sites}..{}):\n",
        sites * 2
    );
    let gen = WebGenerator::new(GenConfig::small(sites * 2), 0xC00C1E);
    let opts = MatrixOptions {
        eval_ranks: 1..=sites,
        entities: builtin_entity_map(),
    };
    let defenses = vec![
        Defense::Blocklist,
        Defense::BlocklistUnderEvasion(EvasionConfig::default()),
        Defense::Partitioning(PartitioningModel::FirefoxTcp),
        Defense::CookieGraphLite {
            train_ranks: (sites + 1)..=(sites * 2),
            forest: ForestConfig::default(),
        },
        Defense::CookieGuard(GuardConfig::strict()),
        Defense::CookieGuard(GuardConfig::strict().with_entity_grouping(builtin_entity_map())),
    ];
    let rows = run_defense_matrix(&gen, &defenses, &opts);

    println!(
        "   {:<28} {:>7} {:>10} {:>8} {:>10}",
        "defense", "exfil%", "overwrite%", "delete%", "breakage%"
    );
    for row in &rows {
        println!(
            "   {:<28} {:>7.1} {:>10.1} {:>8.1} {:>10.1}   {}",
            row.name,
            row.exfil_sites_pct,
            row.overwrite_sites_pct,
            row.delete_sites_pct,
            row.probe_break_pct,
            row.note
        );
    }

    // ---- act 3: the takeaway ------------------------------------------
    let none = &rows[0];
    let blocklist = rows.iter().find(|r| r.name == "blocklist").unwrap();
    let evaded = rows
        .iter()
        .find(|r| r.name == "blocklist vs evasion")
        .unwrap();
    let guard = rows
        .iter()
        .find(|r| r.name == "cookieguard strict")
        .unwrap();
    println!("\n3. reading the matrix:");
    println!(
        "   blocklists cut exfiltration {:.0}% — until evasion claws back {:.0} points of it;",
        100.0 * (none.exfil_sites_pct - blocklist.exfil_sites_pct) / none.exfil_sites_pct.max(1e-9),
        evaded.exfil_sites_pct - blocklist.exfil_sites_pct
    );
    println!("   partitioning never touches the main frame (identical to no defense);");
    println!(
        "   CookieGuard isolates by construction: {:.1}% → {:.1}% of sites, no list to out-run.",
        none.exfil_sites_pct, guard.exfil_sites_pct
    );
}
