//! The Table 3 breakage mechanics in miniature: a zoom.us-style site
//! whose SSO is split across two sibling domains of one entity
//! (`msauth.net` sets the session cookie, `live.com` reads it).
//!
//! * Without CookieGuard the flow works.
//! * Under strict CookieGuard the sibling read is blocked — **major SSO
//!   breakage**.
//! * With the entity-grouping whitelist (DuckDuckGo-entities style) the
//!   sibling is recognized as Microsoft and the flow works again — the
//!   11% → 3% refinement of §7.2.
//!
//! Run with: `cargo run --example sso_breakage`

use cookieguard_repro::browser::Page;
use cookieguard_repro::cookieguard::{CookieGuard, GuardConfig};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{CookieAttrs, EventLoop, ScriptOp, ValueSpec};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: i64 = 1_750_000_000_000;

fn run_sso_flow(guard: Option<&mut CookieGuard>) -> bool {
    let url = Url::parse("https://www.zoom.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("zoom.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(
        url,
        EPOCH_MS,
        &mut jar,
        guard,
        &mut recorder,
        &injectables,
        7,
    );
    let mut el = EventLoop::new(EPOCH_MS);

    // The MSAL library (msauth.net) authenticates and stores the session.
    let setter = page.register_markup_script(
        Some("https://logincdn.msauth.net/shared/msal-browser.min.js"),
        vec![ScriptOp::SetCookie {
            name: "msal.session".into(),
            value: ValueSpec::HexId(32),
            attrs: CookieAttrs::default(),
        }],
    );
    // The login widget (live.com) must read it to maintain the session.
    let reader = page.register_markup_script(
        Some("https://login.live.com/sso/wsfed.js"),
        vec![ScriptOp::Probe {
            feature: "sso".into(),
            cookie: "msal.session".into(),
        }],
    );
    el.push_script(setter, 0);
    el.push_script(reader, 25);
    let mut rng = StdRng::seed_from_u64(5);
    el.run(&mut page, &mut rng);
    let log = recorder.finish();
    log.probes.iter().all(|p| p.ok)
}

fn main() {
    let works_plain = run_sso_flow(None);
    println!(
        "regular browser:                     SSO {}",
        status(works_plain)
    );

    let mut strict = CookieGuard::new(GuardConfig::strict(), "zoom.example");
    let works_strict = run_sso_flow(Some(&mut strict));
    println!(
        "CookieGuard (strict):                SSO {}",
        status(works_strict)
    );

    let mut grouped = CookieGuard::new(
        GuardConfig::strict().with_entity_grouping(builtin_entity_map()),
        "zoom.example",
    );
    let works_grouped = run_sso_flow(Some(&mut grouped));
    println!(
        "CookieGuard (entity grouping, §7.2): SSO {}",
        status(works_grouped)
    );

    assert!(works_plain, "baseline flow must work");
    assert!(
        !works_strict,
        "strict isolation must break the sibling-domain flow (Table 3)"
    );
    assert!(
        works_grouped,
        "entity grouping must heal the same-entity flow (11% → 3%)"
    );
    println!("\nTable 3 mechanics reproduced ✓ (break under strict, heal under grouping)");
}

fn status(ok: bool) -> &'static str {
    if ok {
        "works ✓"
    } else {
        "BROKEN ✗"
    }
}
