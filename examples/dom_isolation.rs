//! DOM isolation (§8 future work): a hostile third-party script rewrites
//! and removes the site's own markup — then the DomGuard is attached and
//! the same mutations bounce off the ownership policy, while the script's
//! legitimate edits to its *own* elements keep working.
//!
//! Run with: `cargo run --example dom_isolation`

use cookieguard_repro::browser::Page;
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::domguard::{DomGuard, DomGuardConfig};
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{DomMutationKind, EventLoop, ScriptOp};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: i64 = 1_750_000_000_000;

fn run_page(dom_guard: Option<&mut DomGuard>) -> cookieguard_repro::instrument::VisitLog {
    let url = Url::parse("https://www.news.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("news.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(
        url,
        EPOCH_MS,
        &mut jar,
        None,
        &mut recorder,
        &injectables,
        7,
    );
    if let Some(g) = dom_guard {
        page = page.with_dom_guard(g);
    }

    let mut el = EventLoop::new(EPOCH_MS);
    // A widget vendor inserts its own container — always fine — and then
    // starts "optimizing" the page: rewriting the site's article text,
    // restyling it, and removing an element it does not own.
    let widget = page.register_markup_script(
        Some("https://cdn.widgets.example.net/embed.js"),
        vec![
            ScriptOp::DomInsert { tag: "div".into() },
            ScriptOp::DomMutate {
                kind: DomMutationKind::Content,
                foreign_target: false,
            },
            ScriptOp::DomMutate {
                kind: DomMutationKind::Content,
                foreign_target: true,
            },
            ScriptOp::DomMutate {
                kind: DomMutationKind::Style,
                foreign_target: true,
            },
            ScriptOp::DomMutate {
                kind: DomMutationKind::Remove,
                foreign_target: true,
            },
        ],
    );
    // The site's own script re-themes everything — the owner may.
    let app = page.register_markup_script(
        Some("https://www.news.example/static/theme.js"),
        vec![
            ScriptOp::DomMutate {
                kind: DomMutationKind::Style,
                foreign_target: false,
            },
            ScriptOp::DomMutate {
                kind: DomMutationKind::Attribute,
                foreign_target: false,
            },
        ],
    );
    el.push_script(widget, 0);
    el.push_script(app, 25);
    let mut rng = StdRng::seed_from_u64(11);
    el.run(&mut page, &mut rng);
    recorder.finish()
}

fn print_events(log: &cookieguard_repro::instrument::VisitLog) {
    for e in &log.dom_events {
        println!(
            "  {:<28} {:<9} element owned by {:<22} {}",
            e.actor.clone().unwrap_or_else(|| "<inline>".into()),
            e.kind,
            e.owner,
            if e.blocked { "BLOCKED" } else { "applied" }
        );
    }
    let cross_applied = log
        .dom_events
        .iter()
        .filter(|e| e.is_cross_domain() && !e.blocked)
        .count();
    let cross_blocked = log
        .dom_events
        .iter()
        .filter(|e| e.is_cross_domain() && e.blocked)
        .count();
    println!("  cross-domain mutations applied: {cross_applied}, blocked: {cross_blocked}");
}

fn main() {
    println!("=== Without DomGuard (the §8 pilot's status quo) ===");
    let log = run_page(None);
    print_events(&log);

    println!();
    println!("=== With DomGuard (strict ownership isolation) ===");
    let mut guard = DomGuard::new(DomGuardConfig::strict(), "news.example");
    let log = run_page(Some(&mut guard));
    print_events(&log);
    let stats = guard.stats();
    println!(
        "  guard stats: {} allowed, {} blocked, {} unenforced",
        stats.allowed, stats.blocked, stats.unenforced
    );

    println!();
    println!("=== With kind-scoped DomGuard (content/removal only) ===");
    let mut guard = DomGuard::new(DomGuardConfig::content_and_removal(), "news.example");
    let log = run_page(Some(&mut guard));
    print_events(&log);
    println!("  (style/attribute edits pass: the low-breakage profile for A/B-testing vendors)");
}
