//! Guard as a service, end to end: build a small binary crawl store,
//! stand up a two-tenant [`GuardService`], replay the store through it
//! while hot-swapping both tenants' policies mid-run, and print the
//! serving numbers — sustained decisions/s, session rates, swap cost,
//! and decision-latency tails.
//!
//! Run with:
//! `cargo run --release --example guard_service [SITES] [--workers N]
//! [--passes P]`
//!
//! Watch the `sessions by (tenant, epoch)` block: sessions opened
//! before a swap finished on the old epoch's engine, sessions opened
//! after it on the new one — and the replay still reports zero dropped
//! decisions and every retired engine freed, because in-flight sessions
//! pin their engine until close and nothing on the decision path takes
//! a lock.
//!
//! [`GuardService`]: cookieguard_repro::service::GuardService

use cookieguard_repro::browser::VisitConfig;
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::crawlstore::{crawl_to_store_with, SegmentFormat};
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::service::{replay, GuardService, ReplayOptions, SwapPoint};
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

const MASTER_SEED: u64 = 0x5EC00C1E;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sites: usize = 2_000;
    let mut workers: usize = 4;
    let mut passes: u32 = 2;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args[i].parse().expect("--workers N");
            }
            "--passes" => {
                i += 1;
                passes = args[i].parse().expect("--passes P");
            }
            n => {
                sites = n
                    .parse()
                    .expect("usage: guard_service [SITES] [--workers N] [--passes P]")
            }
        }
        i += 1;
    }

    // 1. A binary crawl store to draw traffic from.
    let dir = std::env::temp_dir().join(format!("guard-service-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("building {sites}-visit binary store…");
    let gen = WebGenerator::new(GenConfig::small(sites), MASTER_SEED);
    crawl_to_store_with(
        &dir,
        &gen,
        &VisitConfig::regular(),
        1,
        sites,
        workers,
        SegmentFormat::Binary,
        |_| {},
    )
    .expect("build store");

    // 2. Two tenants: the paper's strict policy and the entity-grouped
    //    refinement — one process, two independently evolving policies.
    let mut svc = GuardService::new();
    let strict = svc.register("strict", GuardConfig::strict());
    let grouped = svc.register(
        "entity-grouped",
        GuardConfig::strict().with_entity_grouping(builtin_entity_map()),
    );

    // 3. Replay with two mid-run hot-swaps racing the workers.
    let total = sites as u64 * passes as u64;
    println!("replaying ×{passes} through 2 tenants at {workers} workers, swapping mid-run…");
    let report = replay(
        &svc,
        &dir,
        &ReplayOptions {
            workers,
            passes,
            swaps: vec![
                SwapPoint {
                    after_visits: total / 4,
                    tenant: strict,
                    config: GuardConfig::strict().with_whitelisted("cdn.swap-probe"),
                },
                SwapPoint {
                    after_visits: total / 2,
                    tenant: grouped,
                    config: GuardConfig::relaxed(),
                },
            ],
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    let _ = std::fs::remove_dir_all(&dir);

    // 4. The serving numbers.
    let c = &report.counters;
    let t = &report.timing;
    println!("\n-- throughput --");
    println!(
        "  {} visits, {} decisions in {} ms",
        c.visits, c.decisions, t.wall_ms
    );
    println!(
        "  {:>9.0} decisions/s   {:>8.0} sessions/s",
        t.decisions_per_sec, t.session_opens_per_sec
    );
    println!(
        "  latency p50 {} ns   p99 {} ns   p999 {} ns   max {} ns",
        t.latency.p50_ns, t.latency.p99_ns, t.latency.p999_ns, t.latency.max_ns
    );

    println!("\n-- hot swaps --");
    for s in &report.swaps {
        println!(
            "  epoch {} → {}: compiled in {:.1} µs, installed in {:.1} µs",
            s.from_epoch,
            s.to_epoch,
            s.compile_ns as f64 / 1e3,
            s.install_ns as f64 / 1e3
        );
    }

    println!("\n-- sessions by (tenant, epoch) --");
    for e in &report.outcomes.sessions_by_epoch {
        let name = if e.tenant == strict.index() as u64 {
            "strict"
        } else {
            "entity-grouped"
        };
        println!(
            "  {:>14} epoch {}: {:>7} sessions",
            name, e.epoch, e.sessions
        );
    }

    println!("\n-- drain proof --");
    assert!(c.drained(), "dropped decisions!");
    assert_eq!(report.undrained_epochs, 0, "retired engines leaked!");
    println!(
        "  sessions opened = closed = {}; decisions issued = executed = {}",
        c.sessions_opened, c.decisions
    );
    println!("  all retired engines freed (weak-ref probe): ok");
}
