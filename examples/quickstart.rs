//! Quickstart: build a tiny page by hand, watch third-party scripts abuse
//! the first-party cookie jar, then attach CookieGuard and watch the
//! isolation policy stop them.
//!
//! Run with: `cargo run --example quickstart`

use cookieguard_repro::browser::Page;
use cookieguard_repro::cookieguard::{CookieGuard, GuardConfig};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{
    AttrChanges, CookieAttrs, CookieSelection, Encoding, EventLoop, ScriptOp, SegmentPolicy,
    ValueSpec,
};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: i64 = 1_750_000_000_000;

/// The same page, with or without CookieGuard attached.
fn run_page(
    guard: Option<&mut CookieGuard>,
) -> (cookieguard_repro::instrument::VisitLog, CookieJar) {
    let url = Url::parse("https://www.shop.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("shop.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(
        url,
        EPOCH_MS,
        &mut jar,
        guard,
        &mut recorder,
        &injectables,
        7,
    );

    // The server establishes a session (HttpOnly: out of scripts' reach).
    page.apply_server_cookies(&[
        "session=5f2a91; Path=/; HttpOnly".to_string(),
        "prefs=dark".to_string(),
    ]);

    let mut el = EventLoop::new(EPOCH_MS);
    // 1. The site's own script sets a cart cookie.
    let app = page.register_markup_script(
        Some("https://www.shop.example/static/app.js"),
        vec![
            ScriptOp::SetCookie {
                name: "cart_id".into(),
                value: ValueSpec::Uuid,
                attrs: CookieAttrs::default(),
            },
            ScriptOp::ReadAllCookies,
        ],
    );
    // 2. An analytics tag ghost-writes _ga into the first-party jar.
    let ga = page.register_markup_script(
        Some("https://www.googletagmanager.com/gtm.js"),
        vec![ScriptOp::SetCookie {
            name: "_ga".into(),
            value: ValueSpec::GaStyle,
            attrs: CookieAttrs {
                max_age_s: Some(63_072_000),
                site_wide: true,
                ..CookieAttrs::default()
            },
        }],
    );
    // 3. A retargeting script reads the whole jar and exfiltrates the _ga
    //    identifier it never set…
    let tracker = page.register_markup_script(
        Some("https://snap.licdn.com/li.lms-analytics/insight.min.js"),
        vec![
            ScriptOp::ReadAllCookies,
            ScriptOp::Exfiltrate {
                dest_host: "px.ads.linkedin.com".into(),
                path: "/attribution_trigger".into(),
                selection: CookieSelection::Named(vec!["_ga".into(), "cart_id".into()]),
                segment: SegmentPolicy::LongestSegment,
                encoding: Encoding::Base64,
                kind: cookieguard_repro::http::RequestKind::Image,
                via_store: false,
            },
            // …and overwrites it for good measure.
            ScriptOp::OverwriteCookie {
                target: "_ga".into(),
                value: ValueSpec::GaStyle,
                changes: AttrChanges::value_and_expiry(),
                blind: false,
            },
        ],
    );
    el.push_script(app, 0);
    el.push_script(ga, 25);
    el.push_script(tracker, 50);
    let mut rng = StdRng::seed_from_u64(1);
    el.run(&mut page, &mut rng);
    (recorder.finish(), jar)
}

fn main() {
    println!("=== Without CookieGuard (the status quo the paper measures) ===");
    let (log, _) = run_page(None);
    for read in &log.reads {
        println!(
            "  read  by {:<24} -> {} cookie(s) visible",
            read.actor.clone().unwrap_or_default(),
            read.cookies.len()
        );
    }
    for req in &log.requests {
        println!(
            "  exfil by {:<24} -> {}",
            req.initiator.clone().unwrap_or_default(),
            req.url
        );
    }
    let blocked = log.sets.iter().filter(|s| s.blocked).count();
    println!("  writes blocked: {blocked}");

    println!();
    println!("=== With CookieGuard (strict isolation, §6) ===");
    let mut guard = CookieGuard::new(GuardConfig::strict(), "shop.example");
    let (log, _) = run_page(Some(&mut guard));
    for read in &log.reads {
        println!(
            "  read  by {:<24} -> {} cookie(s) visible ({} filtered)",
            read.actor.clone().unwrap_or_default(),
            read.cookies.len(),
            read.filtered_count
        );
    }
    let carrying: Vec<&str> = log
        .requests
        .iter()
        .filter(|r| r.url.contains('='))
        .map(|r| r.url.as_str())
        .collect();
    if carrying.is_empty() {
        println!("  no exfiltration requests carried foreign cookies");
    } else {
        for u in carrying {
            println!("  outbound: {u}");
        }
    }
    let blocked = log.sets.iter().filter(|s| s.blocked).count();
    println!("  writes blocked: {blocked}");
    let stats = guard.stats();
    println!(
        "  guard stats: {} cookies filtered over {} reads, {} writes blocked",
        stats.cookies_filtered, stats.reads_filtered, stats.writes_blocked
    );
}
