//! Reproduces the paper's two §5.4 case studies as runnable forensics:
//!
//! 1. **Targeted parsing** — the LinkedIn insight tag extracts the
//!    pseudonymous middle segment of `_ga`, Base64-encodes it, and ships
//!    it to `px.ads.linkedin.com` (the optimonk.com case).
//! 2. **Cross-company identifier sharing** — an Osano consent script
//!    reads the Meta `_fbp` cookie and forwards it to Criteo
//!    (the goosecreekcandle.com case).
//!
//! The example then runs the §4.4 detection pipeline over the recorded
//! logs and shows both flows being caught, with entity attribution.
//!
//! Run with: `cargo run --example tracker_forensics`

use cookieguard_repro::analysis::{detect_exfiltration, Dataset};
use cookieguard_repro::browser::Page;
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::hash::b64encode_no_pad;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{
    CookieAttrs, CookieSelection, Encoding, EventLoop, ScriptOp, SegmentPolicy, ValueSpec,
};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: i64 = 1_746_838_827_000; // the timestamp in the paper's example

fn main() {
    let url = Url::parse("https://www.optimonk.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("optimonk.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(
        url,
        EPOCH_MS,
        &mut jar,
        None,
        &mut recorder,
        &injectables,
        7,
    );
    let mut el = EventLoop::new(EPOCH_MS);

    // googletagmanager ghost-writes _ga (value fixed to the paper's).
    let gtm = page.register_markup_script(
        Some("https://www.googletagmanager.com/gtm.js"),
        vec![ScriptOp::SetCookie {
            name: "_ga".into(),
            value: ValueSpec::Fixed("GA1.1.444332364.1746838827".into()),
            attrs: CookieAttrs {
                site_wide: true,
                ..CookieAttrs::default()
            },
        }],
    );
    // facebook.net ghost-writes _fbp (the paper's value).
    let fb = page.register_markup_script(
        Some("https://connect.facebook.net/en_US/fbevents.js"),
        vec![ScriptOp::SetCookie {
            name: "_fbp".into(),
            value: ValueSpec::Fixed("fb.0.1746746266109.868308499845957651".into()),
            attrs: CookieAttrs {
                site_wide: true,
                ..CookieAttrs::default()
            },
        }],
    );
    // Case 1: LinkedIn insight tag — targeted segment parsing + Base64.
    let licdn = page.register_markup_script(
        Some("https://snap.licdn.com/li.lms-analytics/insight.min.js"),
        vec![ScriptOp::Exfiltrate {
            dest_host: "px.ads.linkedin.com".into(),
            path: "/attribution_trigger".into(),
            selection: CookieSelection::Named(vec!["_ga".into()]),
            segment: SegmentPolicy::LongestSegment,
            encoding: Encoding::Base64,
            kind: cookieguard_repro::http::RequestKind::Image,
            via_store: false,
        }],
    );
    // Case 2: Osano consent script forwards _fbp to Criteo, verbatim.
    let osano = page.register_markup_script(
        Some("https://cmp.osano.com/1vX3GkPazR/osano.js"),
        vec![ScriptOp::Exfiltrate {
            dest_host: "sslwidget.criteo.com".into(),
            path: "/event".into(),
            selection: CookieSelection::Named(vec!["_fbp".into()]),
            segment: SegmentPolicy::Full,
            encoding: Encoding::Plain,
            kind: cookieguard_repro::http::RequestKind::Xhr,
            via_store: false,
        }],
    );
    for (i, exec) in [gtm, fb, licdn, osano].into_iter().enumerate() {
        el.push_script(exec, i as u64 * 25);
    }
    let mut rng = StdRng::seed_from_u64(1);
    el.run(&mut page, &mut rng);
    let log = recorder.finish();

    println!("outbound requests observed:");
    for req in &log.requests {
        println!(
            "  {} -> {}",
            req.initiator.clone().unwrap_or_default(),
            req.url
        );
    }

    // The paper's §5.4 observation: the Base64 of the _ga middle segment.
    let expected = b64encode_no_pad(b"1746838827"); // longest segment of the value
    let seg_b64 = b64encode_no_pad(b"444332364");
    println!("\nBase64 forms: id-segment {seg_b64}, ts-segment {expected}");

    // Run the §4.4 detection pipeline over the log.
    let ds = Dataset::from_logs(vec![log]);
    let entities = builtin_entity_map();
    let analysis = detect_exfiltration(&ds, &entities);
    println!("\ndetected exfiltration events:");
    for ev in analysis.events.iter().filter(|e| e.cross_domain) {
        println!(
            "  cookie ({}, {}) exfiltrated by {} [{}] -> {} [{}]",
            ev.pair.name,
            ev.pair.owner,
            ev.exfiltrator,
            entities.entity_of(&ev.exfiltrator),
            ev.destination,
            entities.entity_of(&ev.destination),
        );
    }
    assert!(
        analysis
            .events
            .iter()
            .any(|e| e.exfiltrator == "licdn.com" && e.pair.name == "_ga"),
        "the LinkedIn case must be detected"
    );
    assert!(
        analysis.events.iter().any(|e| e.exfiltrator == "osano.com"
            && e.pair.name == "_fbp"
            && e.destination == "criteo.com"),
        "the Osano→Criteo case must be detected"
    );
    println!("\nboth §5.4 case studies detected ✓");
}
