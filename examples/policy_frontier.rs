//! The deployment frontier (§8 "Toward Practical Deployment"): sweep the
//! user-selectable privacy presets and the staged-rollout ladder, and
//! print the protection-vs-breakage operating points a browser vendor
//! would weigh — including the grandfathering bridge for returning
//! visitors.
//!
//! Run with: `cargo run --release --example policy_frontier [sites]`

use cookieguard_repro::analysis::{detect_exfiltration, Dataset};
use cookieguard_repro::breakage::{evaluate_breakage, BreakageCategory};
use cookieguard_repro::browser::{crawl_range, visit_site_with_jar, VisitConfig};
use cookieguard_repro::cookieguard::{DeploymentStage, GuardConfig, PrivacyPreset};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn exfil_site_pct(gen: &WebGenerator, sites: usize, cfg: &VisitConfig) -> f64 {
    let (outcomes, _) = crawl_range(gen, cfg, 1, sites, 4);
    let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
    let exfil = detect_exfiltration(&ds, &builtin_entity_map());
    100.0 * exfil.sites_with_cross_exfil_doc.len() as f64 / ds.site_count().max(1) as f64
}

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let gen = WebGenerator::new(GenConfig::small(sites), 0xC00C1E);
    let entities = builtin_entity_map();

    println!("computing the policy frontier on {sites} sites…\n");
    let baseline = exfil_site_pct(&gen, sites, &VisitConfig::regular());
    println!("baseline (no guard): cross-domain exfiltration on {baseline:.1}% of sites\n");

    // ---- preset frontier -------------------------------------------------
    println!(
        "{:<12} {:>18} {:>12} {:>14}",
        "preset", "exfil reduction", "SSO major", "any breakage"
    );
    for preset in PrivacyPreset::all() {
        let config = preset.config(&entities);
        let guarded = exfil_site_pct(&gen, sites, &VisitConfig::guarded(config.clone()));
        let reduction = if baseline > 0.0 {
            100.0 * (baseline - guarded) / baseline
        } else {
            0.0
        };
        let breakage = evaluate_breakage(&gen, &config, 1, sites.min(100), 4);
        println!(
            "{:<12} {:>17.1}% {:>11.1}% {:>13.1}%",
            preset.label(),
            reduction,
            breakage.major_pct(BreakageCategory::Sso),
            breakage.any_breakage_pct()
        );
    }

    // ---- rollout ladder --------------------------------------------------
    println!("\nstaged rollout (population-weighted exposure):");
    let strict_guarded = exfil_site_pct(&gen, sites, &VisitConfig::guarded(GuardConfig::strict()));
    let breakage = evaluate_breakage(&gen, &GuardConfig::strict(), 1, sites.min(100), 4);
    let sso_major = breakage.major_pct(BreakageCategory::Sso);
    for stage in DeploymentStage::ladder() {
        let share = stage.guarded_share();
        let exposure = share * strict_guarded + (1.0 - share) * baseline;
        println!(
            "  {:<36} exfil exposure {:>5.1}%   SSO-major risk {:>4.2}%",
            stage.label(),
            exposure,
            share * sso_major
        );
    }

    // ---- grandfathering bridge --------------------------------------------
    println!("\ngrandfathering (returning visitors, first guarded visit):");
    let (mut with_gf, mut without_gf, mut measured) = (0u64, 0u64, 0usize);
    for rank in 1..=sites.min(150) {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank);
        let mut jar = CookieJar::new();
        visit_site_with_jar(&bp, &VisitConfig::regular(), seed, &mut jar);
        if jar.is_empty() {
            continue;
        }
        let strict = VisitConfig::guarded(GuardConfig::strict());
        let gf = VisitConfig {
            grandfather_preexisting: true,
            ..strict.clone()
        };
        let mut jar_a = jar.clone();
        let mut jar_b = jar;
        without_gf += visit_site_with_jar(&bp, &strict, seed, &mut jar_a)
            .guard_stats
            .map_or(0, |s| s.cookies_filtered);
        with_gf += visit_site_with_jar(&bp, &gf, seed, &mut jar_b)
            .guard_stats
            .map_or(0, |s| s.cookies_filtered);
        measured += 1;
    }
    println!("  {measured} returning-visitor sites");
    println!("  cookies hidden on the first guarded visit, cold cutover: {without_gf}");
    println!("  cookies hidden with ITP-style grandfathering:            {with_gf}");
    println!("  (legacy cookies stay visible until their creators re-write them — isolation tightens organically)");
}
