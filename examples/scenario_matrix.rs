//! Run the adversarial scenario catalog under every defense condition
//! and print the matrix.
//!
//! ```sh
//! cargo run --release --example scenario_matrix
//! cargo run --release --example scenario_matrix -- --seed 99 --threads 8
//! cargo run --release --example scenario_matrix -- --json /tmp/matrix.json
//! ```
//!
//! With `--json PATH` the canonical (golden-file) JSON rendering is
//! written to `PATH`; the checked-in golden lives at
//! `crates/cg-scenarios/golden/scenario_matrix.json` and regenerating
//! it after an intended behaviour change is exactly this command.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed: u64 = 0xC00C1E;
    let mut threads: usize = 4;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).expect("--seed N");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let matrix = cg_scenarios::run_matrix(seed, threads);
    print!("{}", cg_scenarios::render_table(&matrix));
    println!(
        "\n{}/{} scenarios passed their expectation lists",
        matrix.passing(),
        matrix.rows.len()
    );
    if let Some(path) = json_path {
        std::fs::write(&path, matrix.to_json()).expect("write matrix JSON");
        println!("matrix JSON written to {path}");
    }
}
