//! A miniature version of the paper's §4–§5 pipeline: generate a small
//! synthetic web, crawl it with the instrumented browser, and print the
//! Table 1-style cross-domain statistics.
//!
//! Run with:
//! `cargo run --release --example measure_crawl [SITES] [--store DIR]
//! [--format jsonl|binary] [--threads N] [--stream]
//! [--read-backend mmap|pread|buffered] [--telemetry]`
//!
//! With `--store DIR` the crawl writes through the durable segmented
//! crawl store: kill it mid-run and rerun the same command — it resumes
//! from the checkpoint, finishes only the missing ranks, and the
//! analysis streams the store back rank-ordered instead of holding the
//! crawl in memory. `--format binary` selects the compact framed
//! segment format (the replay fast path; identical analysis output).
//! Store runs print write/replay throughput and peak RSS next to the
//! segment/byte stats.
//!
//! `--stream` (requires `--store`) replaces the retained [`Dataset`]
//! analysis with the bounded-memory streaming fold
//! ([`StreamStats`](cookieguard_repro::analysis::StreamStats)): one
//! chunk-granular parallel pass over the segments, peak RSS independent
//! of crawl size. This is the mode that takes a million-visit store —
//! the retained path would hold every `VisitLog` in memory.
//!
//! `--read-backend` picks how store bytes are read back: `mmap`
//! (zero-copy windows over the page cache — the default; the kernel
//! reclaims mapped pages under pressure, so VmHWM stays flat), `pread`,
//! or `buffered`. All three produce byte-identical analyses.
//!
//! `--telemetry` prints the runtime telemetry snapshot (JSON and
//! Prometheus text) after the run: visit/store/fold counters from the
//! always-on `cg-telemetry` registry. The snapshot's `workload` section
//! is a pure function of the work; the `runtime` section
//! (fsync batches, shard counts) is marked `deterministic: false`.

use cookieguard_repro::analysis::{
    api_usage, cross_domain_summary, detect_exfiltration, detect_manipulation, prevalence_stats,
    Dataset,
};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::crawlstore::{crawl_to_store_with, ReadBackend, SegmentFormat};
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

const MASTER_SEED: u64 = 0xC00C1E;

/// Peak RSS from `/proc/self/status` `VmHWM`, in bytes (Linux only).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Prints the global telemetry registry both ways a consumer would
/// scrape it: the stable JSON snapshot and the Prometheus text form.
fn print_telemetry() {
    let reg = cookieguard_repro::telemetry::global();
    println!("\n-- telemetry snapshot (JSON) --");
    println!("{}", cookieguard_repro::telemetry::snapshot_json(reg));
    println!("\n-- telemetry snapshot (Prometheus) --");
    print!("{}", cookieguard_repro::telemetry::prometheus_text(reg));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sites: usize = 600;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut format = SegmentFormat::Jsonl;
    let mut threads: usize = 4;
    let mut stream = false;
    let mut telemetry = false;
    let mut backend = ReadBackend::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stream" => stream = true,
            "--telemetry" => telemetry = true,
            "--read-backend" => {
                i += 1;
                backend = match args.get(i).and_then(|b| b.parse().ok()) {
                    Some(b) => b,
                    None => {
                        eprintln!("--read-backend must be mmap, pread, or buffered");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                i += 1;
                threads = match args.get(i).and_then(|t| t.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--threads requires a number");
                        std::process::exit(2);
                    }
                };
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(d) => store_dir = Some(d.into()),
                    None => {
                        eprintln!("--store requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("jsonl") => SegmentFormat::Jsonl,
                    Some("binary") => SegmentFormat::Binary,
                    other => {
                        eprintln!("--format must be jsonl or binary, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => match other.parse() {
                Ok(n) => sites = n,
                Err(_) => {
                    eprintln!(
                        "usage: measure_crawl [SITES] [--store DIR] \
                         [--format jsonl|binary] [--threads N] [--stream] \
                         [--read-backend mmap|pread|buffered] [--telemetry]"
                    );
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    println!("crawling a {sites}-site synthetic web…");

    let gen = WebGenerator::new(GenConfig::small(sites), MASTER_SEED);
    let cfg = VisitConfig::regular();

    if stream && store_dir.is_none() {
        eprintln!("--stream requires --store DIR");
        std::process::exit(2);
    }

    let ds = match &store_dir {
        None => {
            let (outcomes, summary) = crawl_range(&gen, &cfg, 1, sites, threads);
            println!(
                "  visited {} sites, {} with complete data, {} failed",
                summary.visited, summary.complete, summary.failed
            );
            Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect())
        }
        Some(dir) => {
            let run = crawl_to_store_with(dir, &gen, &cfg, 1, sites, threads, format, |store| {
                let resumed = store.done_ranks().len();
                if resumed > 0 {
                    println!("  resuming: {resumed} ranks already durable in the store");
                }
            })
            .unwrap_or_else(|e| {
                eprintln!("crawl store {}: {e}", dir.display());
                std::process::exit(1);
            });
            println!(
                "  visited {} sites this run, {} with complete data, {} failed",
                run.summary.visited, run.summary.complete, run.summary.failed
            );
            println!(
                "  store: {} records across {} segments, {} bytes on disk ({format})",
                run.stats.records, run.stats.segments, run.stats.bytes
            );
            if run.summary.visited > 0 {
                println!(
                    "  write throughput: {:.0} visits/s ({})",
                    run.summary.visits_per_sec(),
                    cookieguard_repro::telemetry::render_ms(run.summary.elapsed_ms)
                );
            }
            if stream {
                // Bounded-memory path: chunk-granular parallel streaming
                // folds through the chosen read backend, nothing
                // retained. The only mode that scales to a million-visit
                // store.
                let watch = cookieguard_repro::telemetry::Stopwatch::start();
                let stats = cookieguard_repro::analysis::StreamStats::from_store_with(
                    dir, threads, backend,
                )
                .unwrap_or_else(|e| {
                    eprintln!("streaming fold over the store failed: {e}");
                    std::process::exit(1);
                });
                let fold_ms = watch.elapsed_ms();
                let s = stats.summary();
                println!(
                    "  streaming fold ({threads} threads, {backend}): \
                     {:.0} visits/s, {:.1} MB/s ({}); peak RSS {:.1} MB",
                    cookieguard_repro::telemetry::per_sec(s.crawled, fold_ms),
                    cookieguard_repro::telemetry::per_sec(run.stats.bytes, fold_ms) / 1e6,
                    cookieguard_repro::telemetry::render_ms(fold_ms),
                    peak_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0)
                );
                // Machine-readable line for CI's fold-speedup anchor
                // (kept above the `-- streaming summary` marker so
                // between-run summary diffs never see wall times).
                println!(
                    "  fold_ms={fold_ms} backend={backend} threads={threads} visits={}",
                    s.crawled
                );
                println!("\n-- streaming summary ({} visits) --", s.crawled);
                println!("  complete visits:         {}", s.complete);
                println!(
                    "  cookie writes:           {} ({} blocked)",
                    s.creates + s.overwrites + s.deletes,
                    s.blocked_sets
                );
                println!("  cookie reads:            {}", s.reads);
                println!("  requests:                {}", s.requests);
                println!("  3p-script sites:         {}", s.third_party_script_sites);
                println!(
                    "  document.cookie sites:   {} (~{} distinct pairs)",
                    s.doc_cookie_sites, s.doc_cookie_pairs
                );
                println!(
                    "  cookieStore sites:       {} (~{} distinct pairs)",
                    s.cookie_store_sites, s.cookie_store_pairs
                );
                println!(
                    "  cross-domain overwrites: {} events on {} sites",
                    s.cross_overwrite_events, s.cross_overwrite_sites
                );
                println!(
                    "  cross-domain deletes:    {} events on {} sites",
                    s.cross_delete_events, s.cross_delete_sites
                );
                if telemetry {
                    print_telemetry();
                }
                return;
            }
            let watch = cookieguard_repro::telemetry::Stopwatch::start();
            let ds = Dataset::from_store_with(dir, threads, backend).unwrap_or_else(|e| {
                eprintln!("replaying crawl store failed: {e}");
                std::process::exit(1);
            });
            let replay_ms = watch.elapsed_ms();
            println!(
                "  replay throughput ({backend}): {:.0} visits/s, {:.1} MB/s ({}); peak RSS {:.1} MB",
                cookieguard_repro::telemetry::per_sec(ds.crawled as u64, replay_ms),
                cookieguard_repro::telemetry::per_sec(run.stats.bytes, replay_ms) / 1e6,
                cookieguard_repro::telemetry::render_ms(replay_ms),
                peak_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0)
            );
            ds
        }
    };

    let engine = cookieguard_repro::analysis::build_filter_engine(gen.registry());
    let entities = cookieguard_repro::entity::builtin_entity_map();

    let prevalence = prevalence_stats(&ds, &engine);
    println!("\n-- §5.1 prevalence --");
    println!(
        "  sites with ≥1 third-party script: {:.1}%",
        prevalence.sites_with_third_party_pct
    );
    println!(
        "  avg distinct 3p scripts/site:     {:.1}",
        prevalence.avg_third_party_scripts
    );
    println!(
        "  ad/tracking share:                {:.1}%",
        prevalence.ad_tracking_share_pct
    );

    let usage = api_usage(&ds);
    println!("\n-- §5.2 API usage --");
    println!(
        "  document.cookie on {:.1}% of sites ({} unique pairs)",
        usage.doc_cookie_sites_pct, usage.doc_cookie_pairs
    );
    println!(
        "  cookieStore on {:.1}% of sites ({} pairs)",
        usage.cookie_store_sites_pct, usage.cookie_store_pairs
    );

    let exfil = detect_exfiltration(&ds, &entities);
    let manip = detect_manipulation(&ds, &entities);
    let t1 = cross_domain_summary(&ds, &exfil, &manip);
    println!("\n-- Table 1 (document.cookie) --");
    println!(
        "  exfiltration on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_exfiltration.sites_pct, t1.doc_exfiltration.cookies_pct
    );
    println!(
        "  overwriting  on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_overwriting.sites_pct, t1.doc_overwriting.cookies_pct
    );
    println!(
        "  deleting     on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_deleting.sites_pct, t1.doc_deleting.cookies_pct
    );

    println!("\n-- top 5 exfiltrated cookies (Table 2 shape) --");
    for row in exfil.table2(5) {
        println!(
            "  {:<22} set by {:<22} {:>4} exfiltrator entities, {:>4} destination entities",
            row.cookie, row.owner, row.exfiltrator_entities, row.destination_entities
        );
    }

    if telemetry {
        print_telemetry();
    }
}
