//! A miniature version of the paper's §4–§5 pipeline: generate a small
//! synthetic web, crawl it with the instrumented browser, and print the
//! Table 1-style cross-domain statistics.
//!
//! Run with: `cargo run --release --example measure_crawl [SITES] [--store DIR]`
//!
//! With `--store DIR` the crawl writes through the durable segmented
//! crawl store: kill it mid-run and rerun the same command — it resumes
//! from the checkpoint, finishes only the missing ranks, and the
//! analysis streams the store back rank-ordered instead of holding the
//! crawl in memory.

use cookieguard_repro::analysis::{
    api_usage, cross_domain_summary, detect_exfiltration, detect_manipulation, prevalence_stats,
    Dataset,
};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::crawlstore::{crawl_to_store, CrawlReader};
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

const MASTER_SEED: u64 = 0xC00C1E;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sites: usize = 600;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(d) => store_dir = Some(d.into()),
                    None => {
                        eprintln!("--store requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            other => match other.parse() {
                Ok(n) => sites = n,
                Err(_) => {
                    eprintln!("usage: measure_crawl [SITES] [--store DIR]");
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    println!("crawling a {sites}-site synthetic web…");

    let gen = WebGenerator::new(GenConfig::small(sites), MASTER_SEED);
    let cfg = VisitConfig::regular();

    let ds = match &store_dir {
        None => {
            let (outcomes, summary) = crawl_range(&gen, &cfg, 1, sites, 4);
            println!(
                "  visited {} sites, {} with complete data, {} failed",
                summary.visited, summary.complete, summary.failed
            );
            Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect())
        }
        Some(dir) => {
            let run = crawl_to_store(dir, &gen, &cfg, 1, sites, 4, |store| {
                let resumed = store.done_ranks().len();
                if resumed > 0 {
                    println!("  resuming: {resumed} ranks already durable in the store");
                }
            })
            .unwrap_or_else(|e| {
                eprintln!("crawl store {}: {e}", dir.display());
                std::process::exit(1);
            });
            println!(
                "  visited {} sites this run, {} with complete data, {} failed",
                run.summary.visited, run.summary.complete, run.summary.failed
            );
            println!(
                "  store: {} records across {} segments, {} bytes on disk",
                run.stats.records, run.stats.segments, run.stats.bytes
            );
            let reader = CrawlReader::open(dir).expect("reopen store for analysis");
            Dataset::from_reader(reader).unwrap_or_else(|e| {
                eprintln!("replaying crawl store failed: {e}");
                std::process::exit(1);
            })
        }
    };

    let engine = cookieguard_repro::analysis::build_filter_engine(gen.registry());
    let entities = cookieguard_repro::entity::builtin_entity_map();

    let prevalence = prevalence_stats(&ds, &engine);
    println!("\n-- §5.1 prevalence --");
    println!(
        "  sites with ≥1 third-party script: {:.1}%",
        prevalence.sites_with_third_party_pct
    );
    println!(
        "  avg distinct 3p scripts/site:     {:.1}",
        prevalence.avg_third_party_scripts
    );
    println!(
        "  ad/tracking share:                {:.1}%",
        prevalence.ad_tracking_share_pct
    );

    let usage = api_usage(&ds);
    println!("\n-- §5.2 API usage --");
    println!(
        "  document.cookie on {:.1}% of sites ({} unique pairs)",
        usage.doc_cookie_sites_pct, usage.doc_cookie_pairs
    );
    println!(
        "  cookieStore on {:.1}% of sites ({} pairs)",
        usage.cookie_store_sites_pct, usage.cookie_store_pairs
    );

    let exfil = detect_exfiltration(&ds, &entities);
    let manip = detect_manipulation(&ds, &entities);
    let t1 = cross_domain_summary(&ds, &exfil, &manip);
    println!("\n-- Table 1 (document.cookie) --");
    println!(
        "  exfiltration on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_exfiltration.sites_pct, t1.doc_exfiltration.cookies_pct
    );
    println!(
        "  overwriting  on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_overwriting.sites_pct, t1.doc_overwriting.cookies_pct
    );
    println!(
        "  deleting     on {:.1}% of sites ({:.1}% of pairs)",
        t1.doc_deleting.sites_pct, t1.doc_deleting.cookies_pct
    );

    println!("\n-- top 5 exfiltrated cookies (Table 2 shape) --");
    for row in exfil.table2(5) {
        println!(
            "  {:<22} set by {:<22} {:>4} exfiltrator entities, {:>4} destination entities",
            row.cookie, row.owner, row.exfiltrator_entities, row.destination_entities
        );
    }
}
