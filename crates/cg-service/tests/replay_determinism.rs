//! End-to-end replayer tests against a real binary crawl store: the
//! deterministic-counters contract across worker counts and sources,
//! swap-under-load, and the zero-dropped-decisions drain proof.

use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, SegmentFormat};
use cg_service::{replay, GuardService, Pacing, ReplayOptions, ReplaySource, SwapPoint, TenantId};
use cookieguard_core::GuardConfig;
use std::path::PathBuf;

const SITES: usize = 120;

fn build_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-service-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gen = cg_webgen::WebGenerator::new(cg_webgen::GenConfig::small(SITES), 0x5E11CE);
    crawl_to_store_with(
        &dir,
        &gen,
        &VisitConfig::regular(),
        1,
        SITES,
        4,
        SegmentFormat::Binary,
        |_| {},
    )
    .expect("build replay store");
    dir
}

fn two_tenant_service() -> (GuardService, TenantId, TenantId) {
    let mut svc = GuardService::new();
    let strict = svc.register("strict", GuardConfig::strict());
    let grouped = svc.register(
        "entity-grouped",
        GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
    );
    (svc, strict, grouped)
}

#[test]
fn counters_are_identical_across_worker_counts_and_sources() {
    let dir = build_store("det");
    let mut baseline = None;
    for (workers, source) in [
        (1, ReplaySource::Resident),
        (4, ReplaySource::Resident),
        (1, ReplaySource::Stream),
        (3, ReplaySource::Stream),
    ] {
        let (svc, _, _) = two_tenant_service();
        let report = replay(
            &svc,
            &dir,
            &ReplayOptions {
                workers,
                passes: 2,
                source,
                ..ReplayOptions::default()
            },
        )
        .expect("replay");
        assert_eq!(report.counters.visits, (SITES * 2) as u64);
        assert!(
            report.counters.drained(),
            "dropped decisions at {workers} workers"
        );
        assert_eq!(report.undrained_epochs, 0);
        assert_eq!(report.timing.latency.count, report.counters.decisions);
        match &baseline {
            None => baseline = Some(report.counters),
            Some(first) => assert_eq!(
                &report.counters, first,
                "counters diverged at {workers} workers ({source:?})"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swaps_under_load_drop_nothing_and_leave_counters_deterministic() {
    let dir = build_store("swap");
    let (plain_svc, _, _) = two_tenant_service();
    let plain = replay(
        &plain_svc,
        &dir,
        &ReplayOptions {
            workers: 4,
            passes: 2,
            ..ReplayOptions::default()
        },
    )
    .expect("plain replay");

    let (svc, strict, grouped) = two_tenant_service();
    let swapped = replay(
        &svc,
        &dir,
        &ReplayOptions {
            workers: 4,
            passes: 2,
            swaps: vec![
                SwapPoint {
                    after_visits: 40,
                    tenant: strict,
                    config: GuardConfig::strict().with_whitelisted("cdn.probe"),
                },
                SwapPoint {
                    after_visits: 120,
                    tenant: grouped,
                    config: GuardConfig::relaxed(),
                },
            ],
            ..ReplayOptions::default()
        },
    )
    .expect("swapped replay");

    // Both mid-run swaps fired, gaplessly per tenant.
    assert_eq!(swapped.swaps.len(), 2);
    for swap in &swapped.swaps {
        assert_eq!(swap.to_epoch, swap.from_epoch + 1);
    }
    // Op totals are a pure function of the workload — swap timing and
    // the allow/block split may differ, the counters may not.
    assert_eq!(swapped.counters, plain.counters);
    assert!(swapped.counters.drained());
    // Zero dropped in-flight sessions, and every retired engine freed.
    assert_eq!(swapped.undrained_epochs, 0);
    // Sessions really did straddle epochs on the swapped tenants.
    let epochs: u64 = swapped
        .outcomes
        .sessions_by_epoch
        .iter()
        .map(|e| e.sessions)
        .sum();
    assert_eq!(epochs, swapped.counters.sessions_opened);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_loop_pacing_completes_with_the_same_counters() {
    let dir = build_store("pace");
    let (svc, _, _) = two_tenant_service();
    let closed = replay(&svc, &dir, &ReplayOptions::default()).expect("closed");
    let (svc2, _, _) = two_tenant_service();
    let open = replay(
        &svc2,
        &dir,
        &ReplayOptions {
            workers: 2,
            pacing: Pacing::Open {
                visits_per_sec: 1e6, // fast enough not to slow the test
            },
            ..ReplayOptions::default()
        },
    )
    .expect("open");
    assert_eq!(open.counters, closed.counters);
    assert!(open.counters.drained());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_source_refuses_a_jsonl_store() {
    let dir = std::env::temp_dir().join(format!("cg-service-jsonl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gen = cg_webgen::WebGenerator::new(cg_webgen::GenConfig::small(10), 1);
    crawl_to_store_with(
        &dir,
        &gen,
        &VisitConfig::regular(),
        1,
        10,
        2,
        SegmentFormat::Jsonl,
        |_| {},
    )
    .expect("build jsonl store");
    let (svc, _, _) = two_tenant_service();
    let err = replay(
        &svc,
        &dir,
        &ReplayOptions {
            source: ReplaySource::Stream,
            ..ReplayOptions::default()
        },
    )
    .expect_err("jsonl must be refused by the streaming source");
    assert!(
        err.to_string().contains("binary"),
        "unexpected error: {err}"
    );
    // …but the resident source happily reads either format.
    let ok = replay(&svc, &dir, &ReplayOptions::default()).expect("resident over jsonl");
    assert_eq!(ok.counters.visits, 10);
    let _ = std::fs::remove_dir_all(&dir);
}
