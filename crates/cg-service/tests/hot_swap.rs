//! Concurrent hot-swap stress tests: worker threads decide continuously
//! while another thread swaps policies in a loop.
//!
//! Policies are made *distinguishable per epoch*: epoch `e`'s config
//! whitelists a probe domain unique to `e` (`probe-<e>.example`), so a
//! session's visible behavior reveals exactly which epoch it pinned.
//! The assertions are the ISSUE's three: (a) no decision ever mixes two
//! epochs, (b) every decision matches the oracle for the pinned epoch,
//! (c) retired `CompiledPolicy` allocations are actually freed after
//! drain (weak-reference strong-count probe).

use cg_service::{EngineCache, GuardService};
use cookieguard_core::{Caller, GuardConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Epoch `e`'s distinguishable policy: strict, plus a whitelist entry
/// that only epoch `e` has.
fn probe_config(epoch: u64) -> GuardConfig {
    GuardConfig::strict().with_whitelisted(&format!("probe-{epoch}.example"))
}

const SWAPS: u64 = 40;
const WORKERS: usize = 4;

#[test]
fn concurrent_swaps_never_mix_epochs_and_drain_frees_engines() {
    let mut svc = GuardService::new();
    let tenant = svc.register("hot", probe_config(0));
    let svc = &svc;
    let done = &AtomicBool::new(false);

    let (sessions_checked, epochs_seen) = std::thread::scope(|scope| {
        let swapper = scope.spawn(move || {
            let mut reports = Vec::new();
            for k in 1..=SWAPS {
                reports.push(svc.swap_policy(tenant, probe_config(k)));
                // Give workers a window to open sessions on epoch k.
                std::thread::sleep(Duration::from_micros(200));
            }
            done.store(true, Ordering::Release);
            reports
        });

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                scope.spawn(move || {
                    let mut cache = EngineCache::new(svc.slot(tenant));
                    let mut checked = 0u64;
                    let mut epochs = BTreeSet::new();
                    while !done.load(Ordering::Acquire) {
                        let mut session = svc.open_session_cached(tenant, &mut cache, "site.com");
                        let e = session.policy_epoch();
                        epochs.insert(e);
                        session.authorize_write(&Caller::external("tracker.com"), "c");

                        // Oracle for the pinned epoch: its own probe
                        // domain is whitelisted (full jar), every other
                        // epoch's probe — including the possibly
                        // already-current next one — is a plain third
                        // party and sees nothing.
                        let own = format!("probe-{e}.example");
                        let next = format!("probe-{}.example", e + 1);
                        assert_eq!(
                            session.filter_names(&Caller::external(&own), &["c"]),
                            vec!["c"],
                            "epoch {e}: own whitelist entry must see the jar"
                        );
                        assert!(
                            session
                                .filter_names(&Caller::external(&next), &["c"])
                                .is_empty(),
                            "epoch {e}: a later epoch's policy leaked into a pinned session"
                        );

                        // Decisions later in the same session — after
                        // any number of concurrent swaps — must agree
                        // with the same epoch: sessions never migrate.
                        assert_eq!(session.policy_epoch(), e);
                        assert_eq!(
                            session.filter_names(&Caller::external(&own), &["c"]),
                            vec!["c"],
                            "epoch {e}: decision changed mid-session"
                        );
                        checked += 1;
                    }
                    (checked, epochs)
                })
            })
            .collect();

        let reports = swapper.join().unwrap();
        assert_eq!(reports.len(), SWAPS as usize);
        assert!(
            reports.windows(2).all(|w| w[0].to_epoch == w[1].from_epoch),
            "swap epoch sequence must be gapless"
        );

        let mut total = 0u64;
        let mut epochs = BTreeSet::new();
        for worker in workers {
            let (checked, seen) = worker.join().unwrap();
            total += checked;
            epochs.extend(seen);
        }
        (total, epochs)
    });

    assert!(sessions_checked > 0, "workers never ran");
    assert!(
        epochs_seen.len() > 1,
        "workers only ever saw one epoch — the stress never overlapped a swap"
    );
    assert_eq!(svc.slot(tenant).epoch(), SWAPS);
    // (c) Every session and cache is dropped; every retired engine's
    // weak reference must now have strong_count 0.
    assert!(
        svc.undrained().is_empty(),
        "retired CompiledPolicy allocations survived the drain"
    );
}

#[test]
fn sessions_pinned_across_many_swaps_each_keep_their_own_policy() {
    let mut svc = GuardService::new();
    let tenant = svc.register("pin", probe_config(0));

    // Open one session under each epoch 0..5, swapping in between, and
    // keep them all alive.
    let mut pinned = Vec::new();
    for k in 0..5u64 {
        let mut session = svc.open_session(tenant, "site.com");
        assert_eq!(session.policy_epoch(), k);
        session.authorize_write(&Caller::external("tracker.com"), "c");
        pinned.push(session);
        svc.swap_policy(tenant, probe_config(k + 1));
    }

    // All five displaced epochs are still pinned, each by one session.
    let mut held: Vec<u64> = svc.undrained().into_iter().map(|(_, e)| e).collect();
    held.sort_unstable();
    assert_eq!(held, vec![0, 1, 2, 3, 4]);

    // Each session still answers for exactly its own epoch.
    for (k, session) in pinned.iter_mut().enumerate() {
        let own = format!("probe-{k}.example");
        assert_eq!(
            session.filter_names(&Caller::external(&own), &["c"]),
            vec!["c"]
        );
        for other in 0..6u64 {
            if other != k as u64 {
                let probe = format!("probe-{other}.example");
                assert!(
                    session
                        .filter_names(&Caller::external(&probe), &["c"])
                        .is_empty(),
                    "session pinned at {k} honored epoch {other}'s whitelist"
                );
            }
        }
    }

    // Dropping sessions drains their epochs one at a time.
    for k in 0..5u64 {
        drop(pinned.remove(0));
        let still: BTreeSet<u64> = svc.undrained().into_iter().map(|(_, e)| e).collect();
        assert!(
            !still.contains(&k),
            "epoch {k} not freed after its session closed"
        );
        assert_eq!(still.len(), 4 - k as usize);
    }
    assert!(svc.undrained().is_empty());
}
