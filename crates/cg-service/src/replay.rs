//! The traffic replayer: drives crawl-store visits through
//! tenant-routed guard sessions under a fixed worker pool, optionally
//! hot-swapping policies mid-run.
//!
//! A [`VisitLog`] from the store is lowered once into a [`VisitScript`]
//! — the time-ordered cookie operations the instrumented browser saw,
//! with actors resolved to [`Caller`]s — and each replayed visit opens
//! one [`GuardSession`] on whichever engine its tenant currently
//! publishes, runs the script, and closes. Two traffic sources share
//! that per-visit path byte for byte:
//!
//! * [`ReplaySource::Resident`] pre-extracts every script into memory
//!   (via [`CrawlReader`], either segment format) — the hot-decision
//!   configuration for measuring sustained decisions/s;
//! * [`ReplaySource::Stream`] decodes binary segments one frame at a
//!   time from frame-index chunks ([`plan_chunks`]): workers claim
//!   chunk indices and decode each claim through an mmap'd zero-copy
//!   [`ChunkStream`](cg_crawlstore::ChunkStream) window (pread
//!   fallback) — bounded memory for million-visit stores, and
//!   intra-segment parallelism even when the store has fewer segments
//!   than workers.
//!
//! # Determinism contract
//!
//! The replay's [`ServiceCounters`] are a pure function of (store
//! contents × passes): visit claiming is dynamic, but every visit is
//! processed exactly once per pass and each counter is a sum over
//! visits, so totals are byte-identical at any worker count and under
//! any swap timing. Outcome splits ([`ReplayOutcomes`]) and everything
//! in [`ReplayTiming`] are *not* deterministic — swaps land on
//! whatever visit boundary the race picks — which is exactly why they
//! live in separate report blocks that determinism checks mask off.

use crate::epoch::{EngineCache, SwapReport};
use crate::stats::{LatencyHistogram, LatencySummary};
use crate::tenant::{GuardService, TenantId};
use cg_crawlstore::{plan_chunks, CrawlReader, ReadBackend, StoreError};
use cg_instrument::{
    CookieApi, ReadEvent, ServiceCounters, SetEvent, TenantCounters, VisitLog, WriteKind,
};
use cookieguard_core::{Caller, GuardConfig, GuardStats};

#[cfg(doc)]
use cookieguard_core::GuardSession;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One cookie operation to replay against a session, in visit order.
#[derive(Debug, Clone)]
pub enum ReplayOp {
    /// A script/API cookie write → [`GuardSession::authorize_write`].
    Write {
        /// The acting script.
        caller: Caller,
        /// Cookie name.
        name: String,
    },
    /// A script/API cookie delete → [`GuardSession::authorize_delete`].
    Delete {
        /// The acting script.
        caller: Caller,
        /// Cookie name.
        name: String,
    },
    /// An HTTP `Set-Cookie` → [`GuardSession::record_http_set_cookie`]
    /// (ownership bookkeeping, not a policy decision).
    HeaderSet {
        /// Cookie name.
        name: String,
        /// Responding server's eTLD+1.
        domain: String,
    },
    /// A cookie read → [`GuardSession::filter_names`].
    Read {
        /// The acting script.
        caller: Caller,
        /// Names the jar presented to the caller.
        names: Vec<String>,
    },
}

/// A visit lowered to the operations the replayer executes.
#[derive(Debug, Clone)]
pub struct VisitScript {
    /// The visited site's eTLD+1 (the session's site domain).
    pub site: String,
    /// Tranco-style rank — the tenant routing key.
    pub rank: u64,
    /// Time-ordered cookie operations.
    pub ops: Vec<ReplayOp>,
}

fn caller_for(actor: &Option<String>) -> Caller {
    match actor {
        Some(domain) => Caller::external(domain),
        None => Caller::inline(),
    }
}

fn op_for_set(site: &str, set: &SetEvent) -> ReplayOp {
    if set.api == CookieApi::HttpHeader {
        ReplayOp::HeaderSet {
            name: set.name.clone(),
            domain: set.actor.clone().unwrap_or_else(|| site.to_string()),
        }
    } else if set.kind == WriteKind::Delete {
        ReplayOp::Delete {
            caller: caller_for(&set.actor),
            name: set.name.clone(),
        }
    } else {
        ReplayOp::Write {
            caller: caller_for(&set.actor),
            name: set.name.clone(),
        }
    }
}

fn op_for_read(read: &ReadEvent) -> ReplayOp {
    ReplayOp::Read {
        caller: caller_for(&read.actor),
        names: read.cookies.iter().map(|(n, _)| n.clone()).collect(),
    }
}

/// Lowers a recorded visit to its replayable operation stream: the
/// log's set and read events merged back into `time_ms` order (sets
/// first on ties, matching how the simulator emits them). Both traffic
/// sources call this, so resident and streaming replays execute
/// identical operation streams.
pub fn extract_script(log: &VisitLog) -> VisitScript {
    let mut ops = Vec::with_capacity(log.sets.len() + log.reads.len());
    let (mut i, mut j) = (0, 0);
    while i < log.sets.len() || j < log.reads.len() {
        let take_set = match (log.sets.get(i), log.reads.get(j)) {
            (Some(s), Some(r)) => s.time_ms <= r.time_ms,
            (Some(_), None) => true,
            _ => false,
        };
        if take_set {
            ops.push(op_for_set(&log.site_domain, &log.sets[i]));
            i += 1;
        } else {
            ops.push(op_for_read(&log.reads[j]));
            j += 1;
        }
    }
    VisitScript {
        site: log.site_domain.clone(),
        rank: log.rank as u64,
        ops,
    }
}

/// Where the replayer draws visits from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySource {
    /// Pre-extract every script into memory, then replay from RAM.
    Resident,
    /// Workers claim frame-index chunks and decode them out of mmap'd
    /// segment windows, re-claiming from the top of the plan on each
    /// pass (binary stores only).
    Stream,
}

/// How the load generator paces itself.
#[derive(Debug, Clone, Copy)]
pub enum Pacing {
    /// Closed loop: every worker replays as fast as decisions complete.
    Closed,
    /// Open loop: aim for a fixed aggregate visit arrival rate,
    /// splitting the target evenly across workers.
    Open {
        /// Aggregate target, visits per second.
        visits_per_sec: f64,
    },
}

/// A scheduled mid-run policy swap.
#[derive(Debug, Clone)]
pub struct SwapPoint {
    /// Fire once this many visits (across all workers and passes) have
    /// completed.
    pub after_visits: u64,
    /// Tenant to swap.
    pub tenant: TenantId,
    /// Replacement policy.
    pub config: GuardConfig,
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Worker threads replaying visits.
    pub workers: usize,
    /// Times the whole store is replayed.
    pub passes: u32,
    /// Traffic source.
    pub source: ReplaySource,
    /// Load pacing.
    pub pacing: Pacing,
    /// Mid-run policy swaps, fired by a coordinator thread as the
    /// global visit counter crosses each threshold.
    pub swaps: Vec<SwapPoint>,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            workers: 1,
            passes: 1,
            source: ReplaySource::Resident,
            pacing: Pacing::Closed,
            swaps: Vec::new(),
        }
    }
}

/// Sessions opened under one policy epoch (per tenant).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpochSessions {
    /// Tenant the sessions belonged to.
    pub tenant: u64,
    /// The epoch they pinned.
    pub epoch: u64,
    /// How many sessions pinned it.
    pub sessions: u64,
}

/// Epoch- and timing-sensitive tallies: which epochs sessions pinned
/// and what the policies decided. **Not** deterministic across worker
/// counts when swaps are scheduled — masked out of byte-equality
/// checks.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ReplayOutcomes {
    /// Writes allowed.
    pub writes_allowed: u64,
    /// Writes blocked.
    pub writes_blocked: u64,
    /// Deletes blocked.
    pub deletes_blocked: u64,
    /// Cookies hidden from reads.
    pub cookies_filtered: u64,
    /// Reads that passed through unfiltered.
    pub reads_clean: u64,
    /// Reads with at least one cookie withheld.
    pub reads_filtered: u64,
    /// Session counts per (tenant, epoch), sorted.
    pub sessions_by_epoch: Vec<EpochSessions>,
}

/// Wall-clock measurements of the run.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayTiming {
    /// End-to-end wall time, milliseconds.
    pub wall_ms: u64,
    /// Sustained policy decisions per second.
    pub decisions_per_sec: f64,
    /// Visits (= sessions) per second.
    pub visits_per_sec: f64,
    /// Session opens per second (equals closes per second on a clean
    /// drain).
    pub session_opens_per_sec: f64,
    /// Per-decision latency quantiles.
    pub latency: LatencySummary,
}

/// Everything one replay produced.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayReport {
    /// Worker threads used.
    pub workers: u64,
    /// Passes over the store.
    pub passes: u64,
    /// `"resident"` or `"stream"`.
    pub source: String,
    /// Deterministic operation totals (worker-count-independent).
    pub counters: ServiceCounters,
    /// Deterministic per-tenant slice of those totals, in registration
    /// order (routing is a pure function of rank). Tenants that drew no
    /// traffic still appear, zeroed, so the report schema is stable.
    pub per_tenant: Vec<TenantCounters>,
    /// Epoch-sensitive tallies.
    pub outcomes: ReplayOutcomes,
    /// Timing and latency.
    pub timing: ReplayTiming,
    /// The swaps that fired, in firing order.
    pub swaps: Vec<SwapReport>,
    /// Retired engines still alive after the run drained — must be 0;
    /// anything else means a session leaked past close.
    pub undrained_epochs: u64,
}

/// Per-worker accumulator, merged after join.
#[derive(Default)]
struct WorkerState {
    counters: ServiceCounters,
    stats: GuardStats,
    latency: LatencyHistogram,
    epoch_sessions: BTreeMap<(u64, u64), u64>,
    per_tenant: BTreeMap<u64, TenantTally>,
}

/// Per-tenant slice of one worker's deterministic counters; named and
/// ordered into [`TenantCounters`] when the report is assembled.
#[derive(Debug, Clone, Copy, Default)]
struct TenantTally {
    visits: u64,
    sessions: u64,
    decisions: u64,
}

/// Replays one visit through its tenant's current engine. This is the
/// entire per-visit service path: route, open (lock-free fast path),
/// decide, close. Note what is *absent*: no lock appears between
/// session open and close — every decision runs on the engine `Arc`
/// the session pinned.
fn replay_visit(
    service: &GuardService,
    caches: &mut [EngineCache],
    script: &VisitScript,
    state: &mut WorkerState,
) {
    let tele = crate::telemetry::metrics();
    let _span = cg_telemetry::span!("session", script.rank);
    let tenant = service.route(script.rank);
    let live = service.tenant(tenant).sessions_live();
    let mut session =
        service.open_session_cached(tenant, &mut caches[tenant.index()], &script.site);
    state.counters.sessions_opened += 1;
    tele.sessions_opened.incr();
    tele.sessions_live.incr();
    live.incr();
    *state
        .epoch_sessions
        .entry((tenant.index() as u64, session.policy_epoch()))
        .or_insert(0) += 1;
    let decisions_before = state.counters.decisions;

    for op in &script.ops {
        match op {
            ReplayOp::Write { caller, name } => {
                let t = Instant::now();
                session.authorize_write(caller, name);
                state.latency.record(t.elapsed().as_nanos() as u64);
                state.counters.write_ops += 1;
                state.counters.decisions += 1;
            }
            ReplayOp::Delete { caller, name } => {
                let t = Instant::now();
                session.authorize_delete(caller, name);
                state.latency.record(t.elapsed().as_nanos() as u64);
                state.counters.delete_ops += 1;
                state.counters.decisions += 1;
            }
            ReplayOp::HeaderSet { name, domain } => {
                session.record_http_set_cookie(name, domain);
                state.counters.header_sets += 1;
            }
            ReplayOp::Read { caller, names } => {
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let t = Instant::now();
                session.filter_names(caller, &refs);
                state.latency.record(t.elapsed().as_nanos() as u64);
                state.counters.read_ops += 1;
                state.counters.decisions += 1;
                state.counters.cookies_presented += refs.len() as u64;
            }
        }
    }

    state.stats = state.stats.merge(&session.stats());
    drop(session);
    state.counters.sessions_closed += 1;
    state.counters.visits += 1;
    // Telemetry counters are batched per visit — one atomic add per
    // metric here, never one per decision on the hot path.
    let decided = state.counters.decisions - decisions_before;
    let tally = state.per_tenant.entry(tenant.index() as u64).or_default();
    tally.visits += 1;
    tally.sessions += 1;
    tally.decisions += decided;
    tele.visits.incr();
    tele.decisions.add(decided);
    tele.sessions_live.decr();
    live.decr();
}

/// Shared run coordination: global progress, pacing clock, abort flag.
struct RunShared {
    visits_done: AtomicU64,
    workers_done: AtomicBool,
    error: Mutex<Option<StoreError>>,
    start: Instant,
}

impl RunShared {
    fn fail(&self, e: StoreError) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn failed(&self) -> bool {
        self.error.lock().expect("error slot poisoned").is_some()
    }
}

fn pace(pacing: Pacing, workers: usize, local_visits: u64, start: Instant) {
    if let Pacing::Open { visits_per_sec } = pacing {
        let per_worker = (visits_per_sec / workers as f64).max(1e-9);
        let target = start + Duration::from_secs_f64(local_visits as f64 / per_worker);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
}

/// The swap coordinator: fires each [`SwapPoint`] once the global visit
/// counter crosses its threshold. Runs on its own thread so swaps land
/// *during* replay, racing the workers the way a real control plane
/// would.
fn run_swaps(service: &GuardService, shared: &RunShared, points: &[SwapPoint]) -> Vec<SwapReport> {
    let mut ordered: Vec<&SwapPoint> = points.iter().collect();
    ordered.sort_by_key(|p| p.after_visits);
    let mut fired = Vec::with_capacity(ordered.len());
    for point in ordered {
        loop {
            if shared.visits_done.load(Ordering::Acquire) >= point.after_visits {
                fired.push(service.swap_policy(point.tenant, point.config.clone()));
                break;
            }
            if shared.workers_done.load(Ordering::Acquire) {
                return fired; // workload ended before this threshold
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    fired
}

fn merge_states(states: Vec<WorkerState>) -> WorkerState {
    let mut merged = WorkerState::default();
    for state in states {
        merged.counters = merged.counters.merge(&state.counters);
        merged.stats = merged.stats.merge(&state.stats);
        merged.latency.merge(&state.latency);
        for (key, n) in state.epoch_sessions {
            *merged.epoch_sessions.entry(key).or_insert(0) += n;
        }
        for (tenant, tally) in state.per_tenant {
            let slot = merged.per_tenant.entry(tenant).or_default();
            slot.visits += tally.visits;
            slot.sessions += tally.sessions;
            slot.decisions += tally.decisions;
        }
    }
    merged
}

fn new_caches(service: &GuardService) -> Vec<EngineCache> {
    service
        .tenants()
        .map(|(_, t)| EngineCache::new(t.slot()))
        .collect()
}

/// Replays `dir` through `service` per `opts`. See the module docs for
/// the determinism contract; on a clean run the returned report has
/// `counters.drained()` true and `undrained_epochs == 0`.
pub fn replay(
    service: &GuardService,
    dir: &Path,
    opts: &ReplayOptions,
) -> Result<ReplayReport, StoreError> {
    let workers = opts.workers.max(1);
    let shared = RunShared {
        visits_done: AtomicU64::new(0),
        workers_done: AtomicBool::new(false),
        error: Mutex::new(None),
        start: Instant::now(),
    };

    let (states, swaps) = match opts.source {
        ReplaySource::Resident => {
            let mut scripts = Vec::new();
            for log in CrawlReader::open(dir)? {
                scripts.push(extract_script(&log?));
            }
            run_resident(service, &scripts, opts, workers, &shared)
        }
        ReplaySource::Stream => run_stream(service, dir, opts, workers, &shared)?,
    };
    if let Some(e) = shared.error.lock().expect("error slot poisoned").take() {
        // Surface the flight recorder before bailing: the last spans
        // show what each worker was doing when the store failed.
        cg_telemetry::recorder::dump_to_stderr("replay aborted on store error", 32);
        return Err(e);
    }

    let wall = shared.start.elapsed();
    let merged = merge_states(states);
    let undrained = service.undrained();

    let wall_ms = wall.as_millis() as u64;
    let secs = wall.as_secs_f64().max(1e-9);
    Ok(ReplayReport {
        workers: workers as u64,
        passes: opts.passes as u64,
        source: match opts.source {
            ReplaySource::Resident => "resident".to_string(),
            ReplaySource::Stream => "stream".to_string(),
        },
        counters: merged.counters,
        per_tenant: service
            .tenants()
            .map(|(id, t)| {
                let tally = merged
                    .per_tenant
                    .get(&(id.index() as u64))
                    .copied()
                    .unwrap_or_default();
                TenantCounters {
                    tenant: id.index() as u64,
                    name: t.name().to_string(),
                    visits: tally.visits,
                    sessions: tally.sessions,
                    decisions: tally.decisions,
                }
            })
            .collect(),
        outcomes: ReplayOutcomes {
            writes_allowed: merged.stats.writes_allowed,
            writes_blocked: merged.stats.writes_blocked,
            deletes_blocked: merged.stats.deletes_blocked,
            cookies_filtered: merged.stats.cookies_filtered,
            reads_clean: merged.stats.reads_clean,
            reads_filtered: merged.stats.reads_filtered,
            sessions_by_epoch: merged
                .epoch_sessions
                .into_iter()
                .map(|((tenant, epoch), sessions)| EpochSessions {
                    tenant,
                    epoch,
                    sessions,
                })
                .collect(),
        },
        timing: ReplayTiming {
            wall_ms,
            decisions_per_sec: merged.counters.decisions as f64 / secs,
            visits_per_sec: merged.counters.visits as f64 / secs,
            session_opens_per_sec: merged.counters.sessions_opened as f64 / secs,
            latency: merged.latency.summary(),
        },
        swaps,
        undrained_epochs: undrained.len() as u64,
    })
}

fn run_resident(
    service: &GuardService,
    scripts: &[VisitScript],
    opts: &ReplayOptions,
    workers: usize,
    shared: &RunShared,
) -> (Vec<WorkerState>, Vec<SwapReport>) {
    // One claim cursor per pass — no reset step, hence no barrier: a
    // fast worker rolls into the next pass while stragglers finish the
    // current one. Totals are unaffected; every index is claimed once.
    let cursors: Vec<AtomicUsize> = (0..opts.passes).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| run_swaps(service, shared, &opts.swaps));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = WorkerState::default();
                    let mut caches = new_caches(service);
                    let mut local = 0u64;
                    for cursor in &cursors {
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= scripts.len() || shared.failed() {
                                break;
                            }
                            pace(opts.pacing, workers, local, shared.start);
                            replay_visit(service, &mut caches, &scripts[i], &mut state);
                            local += 1;
                            shared.visits_done.fetch_add(1, Ordering::Release);
                        }
                    }
                    state
                })
            })
            .collect();
        let states = handles.into_iter().map(|h| h.join().unwrap()).collect();
        shared.workers_done.store(true, Ordering::Release);
        (states, swapper.join().unwrap())
    })
}

fn run_stream(
    service: &GuardService,
    dir: &Path,
    opts: &ReplayOptions,
    workers: usize,
    shared: &RunShared,
) -> Result<(Vec<WorkerState>, Vec<SwapReport>), StoreError> {
    // One chunk plan for the whole run: frame-index boundaries cut each
    // binary segment into independently decodable chunks, so even a
    // single-segment store spreads across every worker. Each claim
    // opens a fresh mmap'd ChunkStream (zero-copy window over the page
    // cache, pread fallback), so there is no cursor state to rewind —
    // like the resident path, one claim counter per pass suffices and
    // fast workers roll into the next pass while stragglers finish.
    let plan = plan_chunks(dir)?;
    let cursors: Vec<AtomicUsize> = (0..opts.passes).map(|_| AtomicUsize::new(0)).collect();

    let result = std::thread::scope(|scope| {
        let swapper = scope.spawn(|| run_swaps(service, shared, &opts.swaps));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = WorkerState::default();
                    let mut caches = new_caches(service);
                    let mut local = 0u64;
                    for cursor in &cursors {
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= plan.len() || shared.failed() {
                                break;
                            }
                            let mut chunk = match plan.open_chunk(i, ReadBackend::Mmap) {
                                Ok(chunk) => chunk,
                                Err(e) => {
                                    shared.fail(e);
                                    break;
                                }
                            };
                            loop {
                                match chunk.next_log() {
                                    Ok(Some(log)) => {
                                        pace(opts.pacing, workers, local, shared.start);
                                        let script = extract_script(&log);
                                        replay_visit(service, &mut caches, &script, &mut state);
                                        local += 1;
                                        shared.visits_done.fetch_add(1, Ordering::Release);
                                    }
                                    Ok(None) => break,
                                    Err(e) => {
                                        shared.fail(e);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    state
                })
            })
            .collect();
        let states = handles.into_iter().map(|h| h.join().unwrap()).collect();
        shared.workers_done.store(true, Ordering::Release);
        (states, swapper.join().unwrap())
    });
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::ReadEvent;

    fn set(name: &str, actor: Option<&str>, api: CookieApi, kind: WriteKind, t: u64) -> SetEvent {
        SetEvent {
            name: name.to_string(),
            value: "v".to_string(),
            actor: actor.map(str::to_string),
            actor_url: None,
            api,
            kind,
            max_age_s: None,
            changes: None,
            blocked: false,
            time_ms: t,
        }
    }

    fn read(actor: Option<&str>, names: &[&str], t: u64) -> ReadEvent {
        ReadEvent {
            actor: actor.map(str::to_string),
            api: CookieApi::DocumentCookie,
            cookies: names
                .iter()
                .map(|n| (n.to_string(), "v".to_string()))
                .collect(),
            filtered_count: 0,
            time_ms: t,
        }
    }

    #[test]
    fn extraction_merges_by_time_and_classifies_ops() {
        let log = VisitLog {
            site_domain: "site.com".to_string(),
            rank: 7,
            complete: true,
            sets: vec![
                set(
                    "a",
                    Some("tracker.com"),
                    CookieApi::DocumentCookie,
                    WriteKind::Create,
                    10,
                ),
                set("h", None, CookieApi::HttpHeader, WriteKind::Create, 20),
                set(
                    "a",
                    Some("tracker.com"),
                    CookieApi::CookieStore,
                    WriteKind::Delete,
                    40,
                ),
            ],
            reads: vec![read(Some("cdn.io"), &["a", "h"], 30)],
            requests: vec![],
            probes: vec![],
            dom_events: vec![],
            inclusions: vec![],
        };
        let script = extract_script(&log);
        assert_eq!(script.site, "site.com");
        assert_eq!(script.rank, 7);
        assert_eq!(script.ops.len(), 4);
        assert!(matches!(&script.ops[0], ReplayOp::Write { name, .. } if name == "a"));
        // Header set with no actor attributes to the site itself.
        assert!(
            matches!(&script.ops[1], ReplayOp::HeaderSet { name, domain } if name == "h" && domain == "site.com")
        );
        assert!(matches!(&script.ops[2], ReplayOp::Read { names, .. } if names.len() == 2));
        assert!(matches!(&script.ops[3], ReplayOp::Delete { name, .. } if name == "a"));
    }

    #[test]
    fn sets_win_time_ties_and_inline_actors_map_to_inline_callers() {
        let log = VisitLog {
            site_domain: "site.com".to_string(),
            rank: 0,
            complete: true,
            sets: vec![set(
                "x",
                None,
                CookieApi::DocumentCookie,
                WriteKind::Create,
                5,
            )],
            reads: vec![read(None, &["x"], 5)],
            requests: vec![],
            probes: vec![],
            dom_events: vec![],
            inclusions: vec![],
        };
        let script = extract_script(&log);
        assert!(matches!(
            &script.ops[0],
            ReplayOp::Write { caller, .. } if caller.domain_name().is_none()
        ));
        assert!(matches!(&script.ops[1], ReplayOp::Read { .. }));
    }

    #[test]
    fn replay_visit_counts_every_op_and_closes_the_session() {
        let mut svc = GuardService::new();
        svc.register("only", GuardConfig::strict());
        let script = VisitScript {
            site: "site.com".to_string(),
            rank: 3,
            ops: vec![
                ReplayOp::Write {
                    caller: Caller::external("tracker.com"),
                    name: "t".to_string(),
                },
                ReplayOp::HeaderSet {
                    name: "sid".to_string(),
                    domain: "site.com".to_string(),
                },
                ReplayOp::Read {
                    caller: Caller::external("site.com"),
                    names: vec!["t".to_string(), "sid".to_string()],
                },
                ReplayOp::Delete {
                    caller: Caller::external("other.net"),
                    name: "t".to_string(),
                },
            ],
        };
        let mut state = WorkerState::default();
        let mut caches = new_caches(&svc);
        replay_visit(&svc, &mut caches, &script, &mut state);
        let c = state.counters;
        assert_eq!((c.visits, c.sessions_opened, c.sessions_closed), (1, 1, 1));
        assert_eq!(
            (c.write_ops, c.delete_ops, c.read_ops, c.header_sets),
            (1, 1, 1, 1)
        );
        assert_eq!(c.cookies_presented, 2);
        assert_eq!(c.decisions, 3);
        assert!(c.drained());
        assert_eq!(state.latency.count(), 3);
        let tally = state.per_tenant.get(&0).copied().expect("tenant 0 tally");
        assert_eq!((tally.visits, tally.sessions, tally.decisions), (1, 1, 3));
        // Site owner saw both cookies; the foreign delete was blocked.
        assert_eq!(state.stats.deletes_blocked, 1);
        assert_eq!(state.epoch_sessions.get(&(0, 0)), Some(&1));
    }
}
