//! **Guard as a service** — the serving layer that turns CookieGuard's
//! compiled decision path into sustained decisions per second.
//!
//! The paper's deployment argument (§5) is that first-party cookie-jar
//! isolation is cheap enough to run in-line. The core crates prove the
//! per-operation cost (a compiled engine deciding in tens of
//! nanoseconds, sessions cheap enough to open per visit); this crate
//! supplies what a deployment additionally needs and measures it:
//!
//! * **Multi-tenancy** — a [`GuardService`] owns N independent
//!   [`Tenant`]s (per-region / per-profile / per-cohort policy
//!   variants, à la the Cookieverse study), each with its own compiled
//!   engine, and routes visits to them deterministically by rank.
//! * **Policy hot-swap** — each tenant's engine lives in an
//!   [`EpochSlot`]: a recompiled policy (new whitelist, entity map,
//!   filter-derived config) is installed by swapping an
//!   `Arc<GuardEngine>` and bumping an epoch. In-flight sessions keep
//!   the engine they pinned at open; new sessions pick up the new
//!   epoch; the retired engine's drain is *proved* via a weak-reference
//!   probe ([`EpochSlot::undrained`]).
//! * **Load generation** — [`replay()`] drives visits from a PR 6 crawl
//!   store through tenant-routed sessions across a fixed worker pool
//!   (resident or streaming-pread traffic source, closed- or open-loop
//!   pacing, scheduled mid-run swaps) and reports sustained
//!   decisions/s, swap latency, and p50/p99/p999 decision latency from
//!   deterministically merged per-worker histograms
//!   ([`LatencyHistogram`]).
//!
//! # The no-lock decision invariant
//!
//! No code between session open and session close acquires a lock, and
//! a swap never blocks a decision. A session clones its tenant's
//! engine `Arc` once at open and decides against that snapshot; the
//! epoch lives *inside* the engine, so (engine, epoch) can never be
//! observed torn. Session open itself is lock-free in the common case
//! through a per-worker [`EngineCache`] that re-reads the slot only
//! when the published epoch moves. The only write-side lock is held
//! for two pointer assignments; policy compilation happens before it.
//!
//! **Layer:** serving (above `core`'s engine/session, drawing traffic
//! from `cg-crawlstore`, counting through `cg-instrument`).
//! **Invariants:** the decision path acquires no locks; sessions pin
//! one (engine, epoch) pair for their whole life; swaps are gapless
//! (`from_epoch + 1 == to_epoch`) and retired engines are freed exactly
//! when their last session closes; replay's `ServiceCounters` are
//! byte-identical at any worker count. **Entry points:**
//! [`GuardService`], [`EpochSlot`], [`replay()`], [`extract_script`].

#![warn(missing_docs)]

pub mod epoch;
pub mod replay;
pub mod stats;
pub(crate) mod telemetry;
pub mod tenant;

pub use epoch::{EngineCache, EpochSlot, SwapReport};
pub use replay::{
    extract_script, replay, EpochSessions, Pacing, ReplayOp, ReplayOptions, ReplayOutcomes,
    ReplayReport, ReplaySource, ReplayTiming, SwapPoint, VisitScript,
};
pub use stats::{LatencyHistogram, LatencySummary};
pub use tenant::{GuardService, Tenant, TenantId};
