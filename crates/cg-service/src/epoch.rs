//! The hot-swap protocol: replacing a tenant's compiled policy under
//! live traffic without blocking a single decision.
//!
//! # How a swap works
//!
//! An [`EpochSlot`] owns one tenant's current engine behind
//! `RwLock<Arc<GuardEngine>>` plus a monotonically increasing epoch
//! mirrored in an `AtomicU64`. A [`swap`](EpochSlot::swap):
//!
//! 1. compiles the new [`GuardEngine`] **outside** any lock (compilation
//!    is the expensive part — interning the whitelist and entity map);
//! 2. takes the write lock only to exchange two `Arc` pointers and
//!    publish the new epoch — a few dozen nanoseconds;
//! 3. downgrades the displaced engine to a `Weak` on the retired list,
//!    so [`undrained`](EpochSlot::undrained) can later *prove* the old
//!    `CompiledPolicy` was freed (the `Weak` dies exactly when the last
//!    pinned session closes).
//!
//! # Why the decision path takes no locks
//!
//! A `GuardSession` clones the engine `Arc` **once at open** and holds
//! it until close. Every decision the session makes goes through that
//! pinned `Arc` — no epoch check, no lock, no atomic beyond the ones
//! `Arc` itself already paid at open. The epoch is stored *inside* the
//! engine ([`GuardEngine::policy_epoch`]), so a session can never
//! observe engine A with epoch B: the pair is one allocation.
//!
//! Session *open* is also lock-free in the common case: a per-worker
//! [`EngineCache`] compares the slot's atomic epoch against its cached
//! engine's and touches the `RwLock` only in the rare window after a
//! swap. The lock is therefore contended only (swap-rate × workers)
//! times per second — effectively never.

use cookieguard_core::{GuardConfig, GuardEngine};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::time::Instant;

/// One tenant's engine slot: the current compiled policy, its epoch,
/// and the trail of retired epochs awaiting drain.
#[derive(Debug)]
pub struct EpochSlot {
    /// Mirrors `current.policy_epoch()`; published with `Release` inside
    /// the write lock so a reader that observes the new epoch and then
    /// takes the read lock is guaranteed the new engine.
    epoch: AtomicU64,
    /// The engine new sessions pin. Written only by [`EpochSlot::swap`].
    current: RwLock<Arc<GuardEngine>>,
    /// `(epoch, weak)` for every displaced engine still possibly alive.
    /// Doubles as the swap serialization lock: holding it across the
    /// whole swap keeps `from_epoch → to_epoch` transitions gapless.
    retired: Mutex<Vec<(u64, Weak<GuardEngine>)>>,
}

/// What one [`EpochSlot::swap`] cost, for `BENCH_service.json`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SwapReport {
    /// Epoch being displaced.
    pub from_epoch: u64,
    /// Epoch now current (`from_epoch + 1`).
    pub to_epoch: u64,
    /// Nanoseconds compiling the new engine — paid outside every lock.
    pub compile_ns: u64,
    /// Nanoseconds holding the write lock to install it — the only
    /// window in which a cache-miss session open can block.
    pub install_ns: u64,
}

impl EpochSlot {
    /// Compiles `config` as epoch 0 and makes it current.
    pub fn new(config: GuardConfig) -> EpochSlot {
        EpochSlot {
            epoch: AtomicU64::new(0),
            current: RwLock::new(Arc::new(GuardEngine::with_epoch(config, 0))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch. Lock-free; pairs with the `Release` store in
    /// [`swap`](EpochSlot::swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current engine `Arc` (read lock, briefly). Sessions
    /// opened on the result stay pinned to it regardless of later swaps.
    pub fn current(&self) -> Arc<GuardEngine> {
        self.current.read().expect("engine slot poisoned").clone()
    }

    /// Compiles `config` and installs it as the next epoch. In-flight
    /// sessions keep their pinned engine; new sessions (and refreshed
    /// [`EngineCache`]s) pick up the new one. Never blocks the decision
    /// path: compilation happens before the write lock, and the lock is
    /// held only for the pointer exchange.
    pub fn swap(&self, config: GuardConfig) -> SwapReport {
        // Serialize swappers for the whole compile+install so two
        // concurrent swaps cannot compile against the same from_epoch.
        let mut retired = self.retired.lock().expect("retired list poisoned");
        let from_epoch = self.epoch.load(Ordering::Acquire);
        let to_epoch = from_epoch + 1;
        let _span = cg_telemetry::span!("swap", to_epoch);

        let compile_start = Instant::now();
        let next = Arc::new(GuardEngine::with_epoch(config, to_epoch));
        let compile_ns = compile_start.elapsed().as_nanos() as u64;

        let install_start = Instant::now();
        let displaced = {
            let mut cur = self.current.write().expect("engine slot poisoned");
            let displaced = std::mem::replace(&mut *cur, next);
            self.epoch.store(to_epoch, Ordering::Release);
            displaced
        };
        let install_ns = install_start.elapsed().as_nanos() as u64;

        retired.push((from_epoch, Arc::downgrade(&displaced)));
        drop(displaced); // if no session pinned it, the Weak dies here
        let tele = crate::telemetry::metrics();
        tele.swaps.incr();
        tele.swap_compile.record(compile_ns);
        tele.swap_install.record(install_ns);
        SwapReport {
            from_epoch,
            to_epoch,
            compile_ns,
            install_ns,
        }
    }

    /// Epochs whose displaced engine is still alive — i.e. some session
    /// opened under them has not closed yet. Prunes freed entries as a
    /// side effect. An empty result after all sessions close is the
    /// drain proof: every retired `CompiledPolicy` was deallocated.
    pub fn undrained(&self) -> Vec<u64> {
        let mut retired = self.retired.lock().expect("retired list poisoned");
        retired.retain(|(_, weak)| weak.strong_count() > 0);
        retired.iter().map(|(epoch, _)| *epoch).collect()
    }
}

/// Per-worker engine cache: the lock-free fast path for session opens.
///
/// Holds an `Arc` clone of the engine it last saw. [`engine`][Self::engine]
/// compares the slot's atomic epoch with the cached engine's own and
/// re-reads the slot only when they differ — so in steady state a
/// session open costs one atomic load plus one `Arc` clone, touching no
/// lock. The epoch check and the refresh are deliberately *not* atomic
/// together: if a swap lands between them the cache simply picks up
/// whichever engine is current at the read, and the session still pins
/// a consistent (engine, epoch) pair because the epoch lives inside the
/// engine.
#[derive(Debug, Clone)]
pub struct EngineCache {
    cached: Arc<GuardEngine>,
}

impl EngineCache {
    /// Caches the slot's current engine.
    pub fn new(slot: &EpochSlot) -> EngineCache {
        EngineCache {
            cached: slot.current(),
        }
    }

    /// The freshest engine this cache knows about, refreshing from the
    /// slot only when the published epoch moved.
    pub fn engine(&mut self, slot: &EpochSlot) -> &Arc<GuardEngine> {
        if self.cached.policy_epoch() != slot.epoch() {
            self.cached = slot.current();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cookieguard_core::GuardSession;

    #[test]
    fn swap_bumps_epoch_and_new_sessions_pick_it_up() {
        let slot = EpochSlot::new(GuardConfig::strict());
        assert_eq!(slot.epoch(), 0);
        let before = GuardSession::new(slot.current(), "site.com");
        assert_eq!(before.policy_epoch(), 0);

        let report = slot.swap(GuardConfig::relaxed());
        assert_eq!((report.from_epoch, report.to_epoch), (0, 1));
        assert_eq!(slot.epoch(), 1);
        let after = GuardSession::new(slot.current(), "site.com");
        assert_eq!(after.policy_epoch(), 1);
        // The in-flight session never moved.
        assert_eq!(before.policy_epoch(), 0);
    }

    #[test]
    fn retired_engine_is_freed_exactly_when_last_session_closes() {
        let slot = EpochSlot::new(GuardConfig::strict());
        let pinned = GuardSession::new(slot.current(), "site.com");
        slot.swap(GuardConfig::relaxed());
        // Epoch 0 is retired but still pinned by `pinned`.
        assert_eq!(slot.undrained(), vec![0]);
        drop(pinned);
        assert!(slot.undrained().is_empty(), "drain proof failed");
    }

    #[test]
    fn unpinned_retired_epochs_free_immediately() {
        let slot = EpochSlot::new(GuardConfig::strict());
        for _ in 0..5 {
            slot.swap(GuardConfig::strict());
        }
        assert!(slot.undrained().is_empty());
        assert_eq!(slot.epoch(), 5);
    }

    #[test]
    fn engine_cache_refreshes_only_on_epoch_change() {
        let slot = EpochSlot::new(GuardConfig::strict());
        let mut cache = EngineCache::new(&slot);
        let first = Arc::as_ptr(cache.engine(&slot));
        // No swap → same allocation handed back.
        assert_eq!(Arc::as_ptr(cache.engine(&slot)), first);
        slot.swap(GuardConfig::relaxed());
        let refreshed = cache.engine(&slot);
        assert_eq!(refreshed.policy_epoch(), 1);
        assert_ne!(Arc::as_ptr(refreshed), first);
    }
}
