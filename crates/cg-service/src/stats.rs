//! Latency statistics for the replay report — re-exported from the
//! shared telemetry layer.
//!
//! [`LatencyHistogram`] started life here in PR 7; the observability
//! PR hoisted it into `cg-telemetry` so crawl, analysis, and serving
//! share one histogram type (including its atomic registry-handle
//! sibling, [`cg_telemetry::Histogram`]). This module keeps the
//! original paths (`cg_service::stats::LatencyHistogram`,
//! `cg_service::LatencyHistogram`) and therefore the
//! `BENCH_service.json` shape unchanged.
//!
//! Usage in the replayer is unchanged too: each worker records into a
//! private histogram with plain increments and the per-worker
//! histograms merge after join, so quantiles are identical at any
//! worker count for the same recorded multiset.

pub use cg_telemetry::{LatencyHistogram, LatencySummary};
