//! The tenant registry: N named deployments, each with its own
//! [`EpochSlot`], behind one [`GuardService`].
//!
//! Multi-perspective deployments (Cookieverse-style per-region or
//! per-profile policy variation) need one *process* serving several
//! *policies*. A tenant is a name plus an independently hot-swappable
//! engine slot; traffic is routed to tenants by visit rank (a stand-in
//! for whatever routing key a real deployment uses — region, customer,
//! rollout cohort). Registration happens at startup; afterwards the
//! service is shared immutably (`&GuardService`) across workers, and
//! all mutation goes through the slots' interior mutability.

use crate::epoch::{EngineCache, EpochSlot, SwapReport};
use cookieguard_core::{GuardConfig, GuardSession};

/// Index of a registered tenant. Cheap to copy, valid for the life of
/// the service that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// Position of this tenant in the registry (also its routing slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One named deployment: a policy preset evolving through epochs.
pub struct Tenant {
    name: String,
    slot: EpochSlot,
    /// Live-session gauge for this tenant (`service.tenant.<name>.sessions_live`).
    sessions_live: cg_telemetry::Gauge,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// The tenant's registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's engine slot.
    pub fn slot(&self) -> &EpochSlot {
        &self.slot
    }

    /// Gauge of sessions currently open on this tenant.
    pub(crate) fn sessions_live(&self) -> &cg_telemetry::Gauge {
        &self.sessions_live
    }
}

/// The long-lived service: a fixed set of tenants, each swap-able
/// independently, serving sessions from a shared reference.
#[derive(Debug, Default)]
pub struct GuardService {
    tenants: Vec<Tenant>,
}

impl GuardService {
    /// An empty service; call [`register`](Self::register) before serving.
    pub fn new() -> GuardService {
        GuardService::default()
    }

    /// Adds a tenant with `config` compiled as its epoch 0.
    pub fn register(&mut self, name: &str, config: GuardConfig) -> TenantId {
        let id = TenantId(u32::try_from(self.tenants.len()).expect("tenant count overflow"));
        let gauge = cg_telemetry::global().gauge(
            &format!("service.tenant.{name}.sessions_live"),
            cg_telemetry::Class::Runtime,
        );
        self.tenants.push(Tenant {
            name: name.to_string(),
            slot: EpochSlot::new(config),
            sessions_live: gauge,
        });
        id
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// All tenants, in registration order.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &Tenant)> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (TenantId(i as u32), t))
    }

    /// The tenant behind `id`.
    pub fn tenant(&self, id: TenantId) -> &Tenant {
        &self.tenants[id.index()]
    }

    /// The engine slot behind `id`.
    pub fn slot(&self, id: TenantId) -> &EpochSlot {
        &self.tenants[id.index()].slot
    }

    /// Hot-swaps `id`'s policy; see [`EpochSlot::swap`] for the protocol.
    pub fn swap_policy(&self, id: TenantId, config: GuardConfig) -> SwapReport {
        self.slot(id).swap(config)
    }

    /// Routes a visit to a tenant by rank (round-robin over the
    /// registry). Deterministic: the same rank always lands on the same
    /// tenant, at any worker count.
    pub fn route(&self, rank: u64) -> TenantId {
        assert!(!self.tenants.is_empty(), "route() on a tenantless service");
        TenantId((rank % self.tenants.len() as u64) as u32)
    }

    /// Opens a session on `id`'s *current* engine. The session pins that
    /// engine (and its epoch) until dropped.
    pub fn open_session(&self, id: TenantId, site_domain: &str) -> GuardSession {
        GuardSession::new(self.slot(id).current(), site_domain)
    }

    /// Lock-free-fast-path session open through a per-worker cache; see
    /// [`EngineCache`].
    pub fn open_session_cached(
        &self,
        id: TenantId,
        cache: &mut EngineCache,
        site_domain: &str,
    ) -> GuardSession {
        GuardSession::new(cache.engine(self.slot(id)).clone(), site_domain)
    }

    /// `(tenant, epoch)` pairs whose retired engine has not drained yet,
    /// across all tenants. Empty once every pinned session has closed.
    pub fn undrained(&self) -> Vec<(TenantId, u64)> {
        let undrained: Vec<(TenantId, u64)> = self
            .tenants()
            .flat_map(|(id, t)| t.slot().undrained().into_iter().map(move |e| (id, e)))
            .collect();
        crate::telemetry::metrics()
            .engines_undrained
            .set(undrained.len() as i64);
        undrained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cookieguard_core::Caller;

    fn two_tenant_service() -> (GuardService, TenantId, TenantId) {
        let mut svc = GuardService::new();
        let strict = svc.register("strict", GuardConfig::strict());
        let relaxed = svc.register("relaxed", GuardConfig::relaxed());
        (svc, strict, relaxed)
    }

    #[test]
    fn routing_is_round_robin_and_deterministic() {
        let (svc, strict, relaxed) = two_tenant_service();
        assert_eq!(svc.route(0), strict);
        assert_eq!(svc.route(1), relaxed);
        assert_eq!(svc.route(2), strict);
        assert_eq!(svc.route(1_000_001), relaxed);
    }

    #[test]
    fn tenants_enforce_their_own_policies() {
        let (svc, strict, relaxed) = two_tenant_service();
        // Inline scripts: blind under strict, first-party under relaxed.
        let mut s = svc.open_session(strict, "site.com");
        s.authorize_write(&Caller::external("tracker.com"), "tid");
        assert!(s.filter_names(&Caller::inline(), &["tid"]).is_empty());

        let mut r = svc.open_session(relaxed, "site.com");
        r.authorize_write(&Caller::external("tracker.com"), "tid");
        assert_eq!(r.filter_names(&Caller::inline(), &["tid"]), vec!["tid"]);
    }

    #[test]
    fn swapping_one_tenant_leaves_the_other_alone() {
        let (svc, strict, relaxed) = two_tenant_service();
        let report = svc.swap_policy(strict, GuardConfig::strict().with_whitelisted("cdn.io"));
        assert_eq!(report.to_epoch, 1);
        assert_eq!(svc.slot(strict).epoch(), 1);
        assert_eq!(svc.slot(relaxed).epoch(), 0);
        assert_eq!(svc.tenant(strict).name(), "strict");
    }

    #[test]
    fn undrained_spans_tenants() {
        let (svc, strict, relaxed) = two_tenant_service();
        let pinned = svc.open_session(relaxed, "site.com");
        svc.swap_policy(strict, GuardConfig::strict());
        svc.swap_policy(relaxed, GuardConfig::relaxed());
        // Only relaxed's epoch 0 is pinned.
        assert_eq!(svc.undrained(), vec![(relaxed, 0)]);
        drop(pinned);
        assert!(svc.undrained().is_empty());
    }

    #[test]
    fn cached_open_matches_uncached() {
        let (svc, strict, _) = two_tenant_service();
        let mut cache = EngineCache::new(svc.slot(strict));
        let a = svc.open_session_cached(strict, &mut cache, "site.com");
        assert_eq!(a.policy_epoch(), 0);
        svc.swap_policy(strict, GuardConfig::relaxed());
        let b = svc.open_session_cached(strict, &mut cache, "site.com");
        assert_eq!(b.policy_epoch(), 1);
    }
}
