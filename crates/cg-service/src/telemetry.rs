//! Serving-layer handles into the global [`cg_telemetry`] registry.
//!
//! Registered eagerly on first use so a telemetry snapshot taken before
//! any traffic still carries every `service.*` key (CI diffs the
//! flattened key schema). Workload-class counters are batched per visit
//! in the replayer — the per-decision path stays atomic-free.

use cg_telemetry::{global, Class, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// All serving-layer metric handles.
pub(crate) struct ServiceMetrics {
    /// Visits replayed (Workload — pure function of store × passes).
    pub visits: Counter,
    /// Guard sessions opened (Workload).
    pub sessions_opened: Counter,
    /// Policy decisions executed (Workload).
    pub decisions: Counter,
    /// Sessions currently open (Runtime — depends on interleaving).
    pub sessions_live: Gauge,
    /// Retired engines still pinned by live sessions (Runtime).
    pub engines_undrained: Gauge,
    /// Policy hot-swaps performed (Runtime — a swap can miss its
    /// threshold if the workload drains first).
    pub swaps: Counter,
    /// Nanoseconds compiling a replacement engine, per swap.
    pub swap_compile: Histogram,
    /// Nanoseconds holding the write lock to install it, per swap.
    pub swap_install: Histogram,
}

/// The process-wide serving metrics, registered once.
pub(crate) fn metrics() -> &'static ServiceMetrics {
    static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = global();
        ServiceMetrics {
            visits: reg.counter("service.visits", Class::Workload),
            sessions_opened: reg.counter("service.sessions_opened", Class::Workload),
            decisions: reg.counter("service.decisions", Class::Workload),
            sessions_live: reg.gauge("service.sessions_live", Class::Runtime),
            engines_undrained: reg.gauge("service.engines_undrained", Class::Runtime),
            swaps: reg.counter("service.swaps", Class::Runtime),
            swap_compile: reg.histogram("service.swap_compile_ns"),
            swap_install: reg.histogram("service.swap_install_ns"),
        }
    })
}
