//! Case-insensitive, multi-valued HTTP header storage.

use serde::{Deserialize, Serialize};

/// An ordered list of header name/value pairs with case-insensitive
/// lookup, like real HTTP. `Set-Cookie` in particular may appear many
/// times and must never be joined with commas.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed).
    pub fn append(&mut self, name: &str, value: &str) {
        self.entries.push((name.to_string(), value.to_string()));
    }

    /// First value for `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Removes every header named `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn set_cookie_stays_multi_valued() {
        let mut h = Headers::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2; HttpOnly");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2; HttpOnly"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
    }

    #[test]
    fn remove_all_instances() {
        let mut h = Headers::new();
        h.append("X-A", "1");
        h.append("x-a", "2");
        h.append("X-B", "3");
        assert_eq!(h.remove("X-A"), 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-b"), Some("3"));
    }
}
