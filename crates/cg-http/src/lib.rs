//! HTTP message model for the browser simulator.
//!
//! The paper's measurement pipeline watches two HTTP-level signals:
//! `Set-Cookie` response headers (via `webRequest.onHeadersReceived`) and
//! outbound requests (via the debugger protocol). This crate provides the
//! request/response types the simulator exchanges, header storage, and a
//! faithful `Set-Cookie` parser (RFC 6265 §5.2) including attribute
//! handling and the `HttpOnly` visibility rule that scopes the whole study
//! to script-visible cookies.
//!
//! **Layer:** foundation. **Invariant:** `Set-Cookie` parsing follows
//! RFC 6265 §5.2 including `HttpOnly` (which scopes the whole study to
//! script-visible cookies) and CSP matching governs *loading* only —
//! never cookie access. **Entry points:** `parse_set_cookie`,
//! `Request`/`Response`, `CspPolicy`.

pub mod csp;
pub mod headers;
pub mod message;
pub mod set_cookie;

pub use csp::{CspPolicy, SourceExpr};
pub use headers::Headers;
pub use message::{Request, RequestKind, Response};
pub use set_cookie::{parse_set_cookie, SameSite, SetCookie};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The Set-Cookie parser is total: arbitrary input (including
        /// control characters, stray separators, and binary-ish noise)
        /// never panics; it either parses or returns None.
        #[test]
        fn parse_set_cookie_never_panics(raw in "\\PC{0,120}") {
            let _ = parse_set_cookie(&raw);
        }

        /// Structured round trip: a cookie assembled from clean parts
        /// survives serialize → parse unchanged.
        #[test]
        fn set_cookie_round_trips(
            name in "[A-Za-z_][A-Za-z0-9_-]{0,20}",
            value in "[A-Za-z0-9._-]{0,40}",
            max_age in proptest::option::of(1i64..10_000_000),
            secure in proptest::bool::ANY,
            http_only in proptest::bool::ANY,
            path in proptest::option::of("/[a-z]{0,10}"),
        ) {
            let mut c = SetCookie::new(&name, &value);
            c.max_age_s = max_age;
            c.secure = secure;
            c.http_only = http_only;
            c.path = path;
            let re = parse_set_cookie(&c.to_header_value()).expect("round trip parse");
            prop_assert_eq!(c, re);
        }

        /// Semicolons inside the attribute tail never bleed into the
        /// name/value: the first `=`-pair wins.
        #[test]
        fn name_value_isolated_from_attributes(
            name in "[A-Za-z]{1,10}",
            value in "[A-Za-z0-9]{0,20}",
            attrs in proptest::collection::vec("[A-Za-z=/. -]{0,15}", 0..5),
        ) {
            let raw = format!("{name}={value}; {}", attrs.join("; "));
            if let Some(c) = parse_set_cookie(&raw) {
                prop_assert_eq!(c.name, name);
                prop_assert_eq!(c.value, value);
            }
        }

        /// The CSP parser is total: arbitrary header bytes never panic,
        /// and the resulting policy's decisions are stable.
        #[test]
        fn csp_parse_is_total(header in "\\PC{0,200}") {
            let p = CspPolicy::parse(&header);
            let doc = cg_url::Url::parse("https://www.site.com/").unwrap();
            let script = cg_url::Url::parse("https://cdn.vendor.net/v.js").unwrap();
            let a = p.allows_external(&script, &doc, None);
            let b = p.allows_external(&script, &doc, None);
            prop_assert_eq!(a, b);
        }

        /// Wildcard-host semantics: `*.base` admits every strict
        /// subdomain of `base` and never `base` itself or lookalikes.
        #[test]
        fn csp_wildcard_host_semantics(
            sub in "[a-z]{1,8}",
            base in "[a-z]{2,8}\\.[a-z]{2,4}",
        ) {
            let p = CspPolicy::parse(&format!("script-src *.{base}"));
            let doc = cg_url::Url::parse("https://www.site.com/").unwrap();
            let u = |h: &str| cg_url::Url::parse(&format!("https://{h}/x.js")).unwrap();
            let subdomain = format!("{sub}.{base}");
            let lookalike = format!("{sub}{base}");
            prop_assert!(p.allows_external(&u(&subdomain), &doc, None));
            prop_assert!(!p.allows_external(&u(&base), &doc, None));
            prop_assert!(!p.allows_external(&u(&lookalike), &doc, None));
        }

        /// A host allowlisted in `script-src` admits exactly that host,
        /// independent of the document origin.
        #[test]
        fn csp_host_source_is_exact(host in "[a-z]{2,10}\\.[a-z]{2,4}") {
            let p = CspPolicy::parse(&format!("script-src {host}"));
            let doc = cg_url::Url::parse("https://www.site.com/").unwrap();
            let yes = cg_url::Url::parse(&format!("https://{host}/a.js")).unwrap();
            prop_assert!(p.allows_external(&yes, &doc, None));
            let no = cg_url::Url::parse(&format!("https://x{host}/a.js")).unwrap();
            prop_assert!(!p.allows_external(&no, &doc, None));
        }
    }
}
