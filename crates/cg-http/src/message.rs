//! Request/response types exchanged inside the browser simulator.

use crate::headers::Headers;
use cg_url::Url;
use serde::{Deserialize, Serialize};

/// What kind of resource a request fetches — the simulator's analog of
/// Chrome's resource types, used by the filter-list engine's `$script`,
/// `$image`, etc. options and by the measurement pipeline to distinguish
/// script fetches from beacon/pixel exfiltration requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Top-level document navigation.
    Document,
    /// An external script fetch (`<script src=…>`, dynamic insertion).
    Script,
    /// An image / tracking pixel.
    Image,
    /// `fetch()` / `XMLHttpRequest` from script.
    Xhr,
    /// `navigator.sendBeacon` style fire-and-forget.
    Beacon,
    /// A subframe (iframe) document.
    Subframe,
    /// Stylesheets and other subresources the study does not single out.
    Other,
}

impl RequestKind {
    /// The filter-list option name for this resource type.
    pub fn option_name(&self) -> &'static str {
        match self {
            RequestKind::Document => "document",
            RequestKind::Script => "script",
            RequestKind::Image => "image",
            RequestKind::Xhr => "xmlhttprequest",
            RequestKind::Beacon => "ping",
            RequestKind::Subframe => "subdocument",
            RequestKind::Other => "other",
        }
    }
}

/// An outbound HTTP request observed by the instrumentation layer
/// (the analog of a `Network.requestWillBeSent` event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Full request URL (query string carries any exfiltrated payload).
    pub url: Url,
    /// Resource type.
    pub kind: RequestKind,
    /// URL of the script that initiated the request, when attributable
    /// from the stack trace; `None` for parser-initiated loads.
    pub initiator_script: Option<Url>,
    /// The eTLD+1 of the page (first party) the request was sent from.
    pub first_party: String,
    /// Cookies attached by the browser (HTTP cookie semantics).
    pub cookie_header: String,
    /// Simulated time at which the request was issued (ms since visit start).
    pub issued_at_ms: u64,
}

impl Request {
    /// True when the request's destination eTLD+1 differs from the
    /// first party — a *third-party request* in the paper's terms.
    pub fn is_third_party(&self) -> bool {
        match self.url.registrable_domain() {
            Some(d) => !d.eq_ignore_ascii_case(&self.first_party),
            None => true,
        }
    }
}

/// An HTTP response delivered to the simulator (the analog of
/// `webRequest.onHeadersReceived`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The URL that was fetched.
    pub url: Url,
    /// Status code (the simulator serves 200s unless a failure is injected).
    pub status: u16,
    /// Response headers, including any `Set-Cookie` entries.
    pub headers: Headers,
    /// Simulated service latency in milliseconds, used by the page-load
    /// timing model.
    pub latency_ms: u64,
}

impl Response {
    /// Creates a 200 response with no headers.
    pub fn ok(url: Url) -> Response {
        Response {
            url,
            status: 200,
            headers: Headers::new(),
            latency_ms: 0,
        }
    }

    /// All parsed `Set-Cookie` headers on this response.
    pub fn set_cookies(&self) -> Vec<crate::set_cookie::SetCookie> {
        self.headers
            .get_all("set-cookie")
            .into_iter()
            .filter_map(crate::set_cookie::parse_set_cookie)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn third_party_detection() {
        let r = Request {
            url: url("https://px.ads.linkedin.com/attribution_trigger?pid=1"),
            kind: RequestKind::Image,
            initiator_script: Some(url(
                "https://snap.licdn.com/li.lms-analytics/insight.min.js",
            )),
            first_party: "optimonk.com".into(),
            cookie_header: String::new(),
            issued_at_ms: 10,
        };
        assert!(r.is_third_party());
        let same = Request {
            url: url("https://api.optimonk.com/x"),
            first_party: "optimonk.com".into(),
            ..r
        };
        assert!(!same.is_third_party());
    }

    #[test]
    fn response_set_cookie_extraction() {
        let mut resp = Response::ok(url("https://site.com/"));
        resp.headers.append("Set-Cookie", "c0=v0; Path=/");
        resp.headers.append("Set-Cookie", "sid=x; HttpOnly");
        resp.headers.append("Content-Type", "text/html");
        let cookies = resp.set_cookies();
        assert_eq!(cookies.len(), 2);
        assert_eq!(cookies[0].name, "c0");
        assert!(cookies[1].http_only);
    }

    #[test]
    fn kind_option_names() {
        assert_eq!(RequestKind::Script.option_name(), "script");
        assert_eq!(RequestKind::Subframe.option_name(), "subdocument");
    }
}
