//! Content Security Policy — the `script-src` subset that governs
//! script inclusion (§2.1).
//!
//! The paper's background observes that "CSP allows some control over
//! script inclusion, \[but\] it does not regulate cookie access or define
//! which scripts may read or modify cookies." To make that claim
//! measurable, the simulator enforces a faithful `script-src` model at
//! script-load time: a site can allowlist the vendors it intends to
//! include, and everything the policy blocks never executes — yet every
//! script the policy *allows* still enjoys full main-frame privileges.
//!
//! Supported grammar (the subset sites actually use for scripts):
//! `default-src` fallback, `'self'`, `'none'`, `'unsafe-inline'`,
//! `'nonce-…'`, scheme sources (`https:`), host sources with optional
//! scheme, `*.` wildcard subdomains, optional port and path prefix, and
//! the bare `*` wildcard.

use cg_url::Url;
use serde::{Deserialize, Serialize};

/// One source expression in a `script-src` (or `default-src`) list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceExpr {
    /// `'self'` — same origin as the protected document.
    SelfSource,
    /// `'unsafe-inline'` — allow inline scripts.
    UnsafeInline,
    /// `'nonce-<value>'` — allow scripts carrying this nonce.
    Nonce(String),
    /// A scheme source like `https:`.
    Scheme(String),
    /// A host source: optional scheme, host pattern (leading `*.` =
    /// any subdomain), optional port, optional path prefix.
    Host {
        /// Required scheme, when given (`https://cdn.x.com`).
        scheme: Option<String>,
        /// Host pattern, lowercased; `*.example.com` matches any
        /// subdomain of `example.com` (not the bare domain, per spec).
        host: String,
        /// Required port, when given.
        port: Option<u16>,
        /// Path prefix, when given (`/js/`).
        path: Option<String>,
    },
    /// `*` — any source except data:/blob: style schemes.
    Wildcard,
}

/// A parsed policy, reduced to script loading.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CspPolicy {
    /// Effective `script-src` list (falls back to `default-src` when no
    /// explicit `script-src` is present). Empty with
    /// `explicit_none = false` means "no policy for scripts" (allow).
    pub script_src: Vec<SourceExpr>,
    /// True when the effective list was `'none'`.
    pub explicit_none: bool,
    /// Whether any script-governing directive was present at all.
    pub governs_scripts: bool,
}

impl CspPolicy {
    /// Parses a `Content-Security-Policy` header value. Unknown
    /// directives and unparseable source expressions are skipped, as
    /// browsers do. Never panics.
    pub fn parse(header: &str) -> CspPolicy {
        let mut script_src: Option<Vec<SourceExpr>> = None;
        let mut default_src: Option<Vec<SourceExpr>> = None;
        for directive in header.split(';') {
            let mut tokens = directive.split_whitespace();
            let Some(name) = tokens.next() else { continue };
            let sources: Vec<&str> = tokens.collect();
            match name.to_ascii_lowercase().as_str() {
                // First directive of a name wins (spec: duplicates ignored).
                "script-src" if script_src.is_none() => {
                    script_src = Some(parse_sources(&sources));
                }
                "default-src" if default_src.is_none() => {
                    default_src = Some(parse_sources(&sources));
                }
                _ => {}
            }
        }
        let (effective, governs) = match (script_src, default_src) {
            (Some(s), _) => (s, true),
            (None, Some(d)) => (d, true),
            (None, None) => (Vec::new(), false),
        };
        let explicit_none = governs && effective.is_empty();
        CspPolicy {
            script_src: effective,
            explicit_none,
            governs_scripts: governs,
        }
    }

    /// Whether inline scripts may execute under this policy.
    pub fn allows_inline(&self) -> bool {
        if !self.governs_scripts {
            return true;
        }
        self.script_src
            .iter()
            .any(|s| matches!(s, SourceExpr::UnsafeInline))
    }

    /// Whether an external script at `script_url`, included by a
    /// document at `document_url`, may load. `nonce` is the value of
    /// the script element's `nonce` attribute, if any.
    pub fn allows_external(
        &self,
        script_url: &Url,
        document_url: &Url,
        nonce: Option<&str>,
    ) -> bool {
        if !self.governs_scripts {
            return true;
        }
        if self.explicit_none {
            return false;
        }
        self.script_src.iter().any(|src| match src {
            SourceExpr::SelfSource => {
                script_url.scheme == document_url.scheme
                    && script_url
                        .host_str()
                        .eq_ignore_ascii_case(&document_url.host_str())
                    && script_url.effective_port() == document_url.effective_port()
            }
            SourceExpr::UnsafeInline => false,
            SourceExpr::Nonce(n) => nonce == Some(n.as_str()),
            SourceExpr::Scheme(s) => script_url.scheme.eq_ignore_ascii_case(s),
            SourceExpr::Wildcard => true,
            SourceExpr::Host {
                scheme,
                host,
                port,
                path,
            } => {
                if let Some(s) = scheme {
                    if !script_url.scheme.eq_ignore_ascii_case(s) {
                        return false;
                    }
                }
                if let Some(p) = port {
                    if script_url.effective_port() != *p {
                        return false;
                    }
                }
                if let Some(prefix) = path {
                    if !script_url.path.starts_with(prefix.as_str()) {
                        return false;
                    }
                }
                host_matches(&script_url.host_str(), host)
            }
        })
    }

    /// True when the policy names this host anywhere in its source list
    /// (diagnostics: "did the site allowlist its tracker?").
    pub fn names_host(&self, host: &str) -> bool {
        self.script_src.iter().any(|s| match s {
            SourceExpr::Host { host: h, .. } => host_matches(host, h),
            _ => false,
        })
    }
}

/// CSP host-source matching: exact (case-insensitive) or `*.`-wildcard
/// subdomain matching. Per the spec, `*.example.com` does **not** match
/// the bare `example.com`.
fn host_matches(request_host: &str, pattern: &str) -> bool {
    let request = request_host.to_ascii_lowercase();
    let pattern = pattern.to_ascii_lowercase();
    if let Some(base) = pattern.strip_prefix("*.") {
        return request.len() > base.len() + 1
            && request.ends_with(base)
            && request.as_bytes()[request.len() - base.len() - 1] == b'.';
    }
    request == pattern
}

fn parse_sources(tokens: &[&str]) -> Vec<SourceExpr> {
    let mut out = Vec::with_capacity(tokens.len());
    for raw in tokens {
        let t = raw.trim();
        if t.is_empty() {
            continue;
        }
        let lower = t.to_ascii_lowercase();
        match lower.as_str() {
            "'none'" => return Vec::new(), // 'none' must be the only member
            "'self'" => out.push(SourceExpr::SelfSource),
            "'unsafe-inline'" => out.push(SourceExpr::UnsafeInline),
            "*" => out.push(SourceExpr::Wildcard),
            _ => {
                if let Some(nonce) = lower
                    .strip_prefix("'nonce-")
                    .and_then(|s| s.strip_suffix('\''))
                {
                    // Nonces are case-sensitive: recover from the raw token.
                    let raw_nonce = &t[7..t.len() - 1];
                    let _ = nonce;
                    out.push(SourceExpr::Nonce(raw_nonce.to_string()));
                } else if let Some(scheme) = lower.strip_suffix(':') {
                    if !scheme.is_empty()
                        && scheme
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-')
                    {
                        out.push(SourceExpr::Scheme(scheme.to_string()));
                    }
                } else if let Some(h) = parse_host_source(&lower) {
                    out.push(h);
                }
                // Unrecognized tokens ('unsafe-eval', hashes, data:…)
                // are skipped — they never allow an external script here.
            }
        }
    }
    out
}

fn parse_host_source(token: &str) -> Option<SourceExpr> {
    let (scheme, rest) = match token.split_once("://") {
        Some((s, r)) => (Some(s.to_string()), r),
        None => (None, token),
    };
    let (hostport, path) = match rest.find('/') {
        Some(i) => (&rest[..i], Some(rest[i..].to_string())),
        None => (rest, None),
    };
    let (host, port) = match hostport.rsplit_once(':') {
        Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
            (h.to_string(), Some(p.parse::<u16>().ok()?))
        }
        _ => (hostport.to_string(), None),
    };
    if host.is_empty() {
        return None;
    }
    let bare = host.strip_prefix("*.").unwrap_or(&host);
    let valid = !bare.is_empty()
        && bare
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-');
    if !valid {
        return None;
    }
    Some(SourceExpr::Host {
        scheme,
        host,
        port,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    const DOC: &str = "https://www.site.com/page";

    #[test]
    fn no_policy_allows_everything() {
        let p = CspPolicy::parse("img-src 'self'");
        assert!(!p.governs_scripts);
        assert!(p.allows_inline());
        assert!(p.allows_external(&url("https://evil.com/x.js"), &url(DOC), None));
    }

    #[test]
    fn self_matches_same_origin_only() {
        let p = CspPolicy::parse("script-src 'self'");
        assert!(p.allows_external(&url("https://www.site.com/app.js"), &url(DOC), None));
        assert!(
            !p.allows_external(&url("https://cdn.site.com/app.js"), &url(DOC), None),
            "different host"
        );
        assert!(
            !p.allows_external(&url("http://www.site.com/app.js"), &url(DOC), None),
            "different scheme"
        );
        assert!(!p.allows_inline(), "'self' does not allow inline");
    }

    #[test]
    fn host_sources_and_wildcards() {
        let p = CspPolicy::parse("script-src cdn.vendor.com *.gstatic.com");
        assert!(p.allows_external(&url("https://cdn.vendor.com/v.js"), &url(DOC), None));
        assert!(!p.allows_external(&url("https://evil.vendor.com/v.js"), &url(DOC), None));
        assert!(p.allows_external(&url("https://fonts.gstatic.com/f.js"), &url(DOC), None));
        assert!(p.allows_external(&url("https://a.b.gstatic.com/f.js"), &url(DOC), None));
        assert!(
            !p.allows_external(&url("https://gstatic.com/f.js"), &url(DOC), None),
            "*.x does not match bare x"
        );
        assert!(!p.allows_external(&url("https://notgstatic.com/f.js"), &url(DOC), None));
    }

    #[test]
    fn scheme_port_and_path_constraints() {
        let p = CspPolicy::parse("script-src https://cdn.x.com:8443/js/");
        assert!(p.allows_external(&url("https://cdn.x.com:8443/js/a.js"), &url(DOC), None));
        assert!(!p.allows_external(&url("https://cdn.x.com:8443/other/a.js"), &url(DOC), None));
        assert!(
            !p.allows_external(&url("https://cdn.x.com/js/a.js"), &url(DOC), None),
            "port mismatch"
        );
        assert!(
            !p.allows_external(&url("http://cdn.x.com:8443/js/a.js"), &url(DOC), None),
            "scheme mismatch"
        );
    }

    #[test]
    fn scheme_source() {
        let p = CspPolicy::parse("script-src https:");
        assert!(p.allows_external(&url("https://anything.example/x.js"), &url(DOC), None));
        assert!(!p.allows_external(&url("http://anything.example/x.js"), &url(DOC), None));
    }

    #[test]
    fn none_blocks_all_scripts() {
        let p = CspPolicy::parse("script-src 'none'");
        assert!(p.explicit_none);
        assert!(!p.allows_inline());
        assert!(!p.allows_external(&url("https://www.site.com/app.js"), &url(DOC), None));
    }

    #[test]
    fn unsafe_inline_and_nonce() {
        let p = CspPolicy::parse("script-src 'self' 'unsafe-inline'");
        assert!(p.allows_inline());
        let p = CspPolicy::parse("script-src 'nonce-AbC123'");
        assert!(!p.allows_inline());
        assert!(p.allows_external(&url("https://x.com/a.js"), &url(DOC), Some("AbC123")));
        assert!(
            !p.allows_external(&url("https://x.com/a.js"), &url(DOC), Some("abc123")),
            "nonces are case-sensitive"
        );
        assert!(!p.allows_external(&url("https://x.com/a.js"), &url(DOC), None));
    }

    #[test]
    fn default_src_fallback_and_script_src_override() {
        let p = CspPolicy::parse("default-src 'self'");
        assert!(p.governs_scripts);
        assert!(!p.allows_external(&url("https://cdn.v.com/v.js"), &url(DOC), None));
        let p = CspPolicy::parse("default-src 'none'; script-src cdn.v.com");
        assert!(p.allows_external(&url("https://cdn.v.com/v.js"), &url(DOC), None));
        assert!(!p.allows_external(&url("https://other.com/v.js"), &url(DOC), None));
    }

    #[test]
    fn wildcard_source() {
        let p = CspPolicy::parse("script-src *");
        assert!(p.allows_external(&url("https://anywhere.io/x.js"), &url(DOC), None));
        assert!(!p.allows_inline(), "* does not allow inline");
    }

    #[test]
    fn duplicate_directives_first_wins() {
        let p = CspPolicy::parse("script-src 'self'; script-src *");
        assert!(!p.allows_external(&url("https://evil.com/x.js"), &url(DOC), None));
    }

    #[test]
    fn malformed_tokens_are_skipped() {
        let p = CspPolicy::parse("script-src 'self' ht!tp%%// 'sha256-xyz' ''");
        assert_eq!(p.script_src.len(), 1);
        assert!(p.allows_external(&url("https://www.site.com/a.js"), &url(DOC), None));
    }

    #[test]
    fn names_host_diagnostic() {
        let p = CspPolicy::parse("script-src 'self' cdn.tracker.com *.wild.net");
        assert!(p.names_host("cdn.tracker.com"));
        assert!(p.names_host("deep.wild.net"));
        assert!(!p.names_host("wild.net"));
        assert!(!p.names_host("www.site.com"), "'self' is not a host source");
    }

    #[test]
    fn parser_is_total_on_junk() {
        for junk in [
            "",
            ";;;",
            "script-src",
            "🍪; script-src 🍪",
            "default-src ; ; 'self'",
        ] {
            let _ = CspPolicy::parse(junk);
        }
    }
}
