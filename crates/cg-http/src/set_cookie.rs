//! `Set-Cookie` header parsing per RFC 6265 §5.2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The `SameSite` cookie attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SameSite {
    /// `SameSite=Strict`
    Strict,
    /// `SameSite=Lax` (the modern browser default)
    Lax,
    /// `SameSite=None` (requires `Secure` in real browsers)
    None,
}

impl fmt::Display for SameSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SameSite::Strict => "Strict",
            SameSite::Lax => "Lax",
            SameSite::None => "None",
        })
    }
}

/// A parsed `Set-Cookie` header: the name/value pair plus every attribute
/// the study cares about. Attributes the parser does not model are
/// ignored, exactly like a real user agent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCookie {
    /// Cookie name (may be empty for nameless `=value` cookies, which
    /// browsers accept; we keep them since trackers occasionally emit them).
    pub name: String,
    /// Cookie value, with surrounding double quotes stripped.
    pub value: String,
    /// `Domain` attribute, lowercased, leading dot removed.
    pub domain: Option<String>,
    /// `Path` attribute.
    pub path: Option<String>,
    /// `Expires` attribute converted to a unix-epoch millisecond timestamp.
    pub expires_ms: Option<i64>,
    /// `Max-Age` attribute in seconds (takes precedence over `Expires`).
    pub max_age_s: Option<i64>,
    /// `Secure` flag.
    pub secure: bool,
    /// `HttpOnly` flag — cookies with it are invisible to scripts and
    /// therefore out of scope for the measurement (paper §2.3, §8).
    pub http_only: bool,
    /// `SameSite` attribute.
    pub same_site: Option<SameSite>,
}

impl SetCookie {
    /// Builds a plain session cookie with no attributes.
    pub fn new(name: &str, value: &str) -> SetCookie {
        SetCookie {
            name: name.to_string(),
            value: value.to_string(),
            domain: None,
            path: None,
            expires_ms: None,
            max_age_s: None,
            secure: false,
            http_only: false,
            same_site: None,
        }
    }

    /// Serializes back to a `Set-Cookie` header value.
    pub fn to_header_value(&self) -> String {
        let mut s = format!("{}={}", self.name, self.value);
        if let Some(d) = &self.domain {
            s.push_str("; Domain=");
            s.push_str(d);
        }
        if let Some(p) = &self.path {
            s.push_str("; Path=");
            s.push_str(p);
        }
        if let Some(ms) = self.expires_ms {
            s.push_str(&format!("; Expires=@{ms}"));
        }
        if let Some(ma) = self.max_age_s {
            s.push_str(&format!("; Max-Age={ma}"));
        }
        if self.secure {
            s.push_str("; Secure");
        }
        if self.http_only {
            s.push_str("; HttpOnly");
        }
        if let Some(ss) = self.same_site {
            s.push_str(&format!("; SameSite={ss}"));
        }
        s
    }
}

/// Parses a `Set-Cookie` header value. Returns `None` for strings a
/// browser would discard outright (no `=` anywhere and empty name+value).
///
/// Date handling: real `Expires` values are RFC 1123 dates; the simulator
/// writes them in a compact `@<unix-ms>` form which this parser accepts
/// alongside a small subset of the RFC 1123 grammar.
pub fn parse_set_cookie(raw: &str) -> Option<SetCookie> {
    let mut parts = raw.split(';');
    let nv = parts.next()?.trim();
    let (name, value) = match nv.split_once('=') {
        Some((n, v)) => (n.trim(), v.trim()),
        None => {
            if nv.is_empty() {
                return None;
            }
            // `Set-Cookie: foo` — browsers treat it as a nameless value.
            ("", nv)
        }
    };
    if name.is_empty() && value.is_empty() {
        return None;
    }
    let value = value.trim_matches('"');

    let mut cookie = SetCookie::new(name, value);
    for attr in parts {
        let attr = attr.trim();
        let (key, val) = match attr.split_once('=') {
            Some((k, v)) => (k.trim().to_ascii_lowercase(), v.trim()),
            None => (attr.to_ascii_lowercase(), ""),
        };
        match key.as_str() {
            "domain" => {
                let d = val.trim_start_matches('.').to_ascii_lowercase();
                if !d.is_empty() {
                    cookie.domain = Some(d);
                }
            }
            "path" if val.starts_with('/') => {
                cookie.path = Some(val.to_string());
            }
            "expires" => cookie.expires_ms = parse_expires(val),
            "max-age" => cookie.max_age_s = val.parse::<i64>().ok(),
            "secure" => cookie.secure = true,
            "httponly" => cookie.http_only = true,
            "samesite" => {
                cookie.same_site = match val.to_ascii_lowercase().as_str() {
                    "strict" => Some(SameSite::Strict),
                    "lax" => Some(SameSite::Lax),
                    "none" => Some(SameSite::None),
                    _ => None,
                }
            }
            _ => {} // unknown attributes are ignored
        }
    }
    Some(cookie)
}

/// Accepts `@<unix-ms>` (simulator form) or a minimal RFC 1123 subset
/// (`Wdy, DD Mon YYYY HH:MM:SS GMT`). Returns epoch milliseconds.
fn parse_expires(val: &str) -> Option<i64> {
    if let Some(ms) = val.strip_prefix('@') {
        return ms.parse().ok();
    }
    // "Wed, 21 Oct 2026 07:28:00 GMT"
    let tokens: Vec<&str> = val.split([' ', ',']).filter(|t| !t.is_empty()).collect();
    if tokens.len() < 5 {
        return None;
    }
    let day: i64 = tokens[1].parse().ok()?;
    let month = match &*tokens[2].to_ascii_lowercase() {
        "jan" => 0,
        "feb" => 1,
        "mar" => 2,
        "apr" => 3,
        "may" => 4,
        "jun" => 5,
        "jul" => 6,
        "aug" => 7,
        "sep" => 8,
        "oct" => 9,
        "nov" => 10,
        "dec" => 11,
        _ => return None,
    };
    let year: i64 = tokens[3].parse().ok()?;
    let hms: Vec<&str> = tokens[4].split(':').collect();
    if hms.len() != 3 {
        return None;
    }
    let (h, m, s): (i64, i64, i64) = (
        hms[0].parse().ok()?,
        hms[1].parse().ok()?,
        hms[2].parse().ok()?,
    );
    // Days since epoch via the civil-from-days inverse (Howard Hinnant's algorithm).
    let days = days_from_civil(year, month + 1, day);
    Some((days * 86_400 + h * 3600 + m * 60 + s) * 1000)
}

/// Days since 1970-01-01 for a proleptic Gregorian date.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_pair() {
        let c = parse_set_cookie("sessionid=abc123").unwrap();
        assert_eq!(c.name, "sessionid");
        assert_eq!(c.value, "abc123");
        assert!(!c.http_only && !c.secure);
    }

    #[test]
    fn parses_all_attributes() {
        let c = parse_set_cookie(
            "_ga=GA1.1.444332364.1746838827; Domain=.example.com; Path=/; Max-Age=63072000; Secure; SameSite=Lax",
        )
        .unwrap();
        assert_eq!(c.name, "_ga");
        assert_eq!(c.value, "GA1.1.444332364.1746838827");
        assert_eq!(c.domain.as_deref(), Some("example.com"));
        assert_eq!(c.path.as_deref(), Some("/"));
        assert_eq!(c.max_age_s, Some(63_072_000));
        assert!(c.secure);
        assert_eq!(c.same_site, Some(SameSite::Lax));
    }

    #[test]
    fn httponly_flag() {
        let c = parse_set_cookie("sid=s3cr3t; HttpOnly; Secure").unwrap();
        assert!(c.http_only);
    }

    #[test]
    fn quoted_value_unwrapped() {
        let c = parse_set_cookie("k=\"quoted value\"").unwrap();
        assert_eq!(c.value, "quoted value");
    }

    #[test]
    fn nameless_cookie_kept() {
        let c = parse_set_cookie("justavalue").unwrap();
        assert_eq!(c.name, "");
        assert_eq!(c.value, "justavalue");
    }

    #[test]
    fn empty_rejected() {
        assert!(parse_set_cookie("").is_none());
        assert!(parse_set_cookie("=").is_none());
    }

    #[test]
    fn expires_unix_ms_form() {
        let c = parse_set_cookie("a=1; Expires=@1746838827000").unwrap();
        assert_eq!(c.expires_ms, Some(1_746_838_827_000));
    }

    #[test]
    fn expires_rfc1123() {
        // 2026-06-08 00:00:00 UTC == 1780876800
        let c = parse_set_cookie("a=1; Expires=Mon, 08 Jun 2026 00:00:00 GMT").unwrap();
        assert_eq!(c.expires_ms, Some(1_780_876_800_000));
    }

    #[test]
    fn epoch_date_math() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
    }

    #[test]
    fn unknown_attrs_ignored() {
        let c = parse_set_cookie("a=1; Priority=High; Partitioned").unwrap();
        assert_eq!(c.name, "a");
    }

    #[test]
    fn round_trip_header_value() {
        let raw = "_fbp=fb.1.1746746266109.868308499845957651; Domain=shop.example; Path=/; Max-Age=7776000; Secure; SameSite=None";
        let c = parse_set_cookie(raw).unwrap();
        let re = parse_set_cookie(&c.to_header_value()).unwrap();
        assert_eq!(c, re);
    }

    #[test]
    fn domain_leading_dot_stripped() {
        let c = parse_set_cookie("a=1; Domain=.Example.COM").unwrap();
        assert_eq!(c.domain.as_deref(), Some("example.com"));
    }
}
