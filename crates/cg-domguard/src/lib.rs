//! **DomGuard** — per-script-origin isolation of the main frame's DOM.
//!
//! The paper's §8 pilot finds cross-domain DOM modification on 9.4% of
//! sites — third-party scripts editing content, styles, attributes, or
//! removing elements they do not own — and calls for "a targeted defense
//! mechanism to mitigate this behavior". This crate is that mechanism,
//! built on the same ownership model as CookieGuard:
//!
//! * every element records the eTLD+1 of the party that created it
//!   (`cg_dom::Element::owner_domain`: the site for parser-inserted
//!   markup, the injecting script's domain for script-created nodes);
//! * a [`DomGuard`] authorizes each mutation against that ownership:
//!   scripts may freely mutate **their own** elements, the **site
//!   owner's** scripts may mutate anything, and — with entity grouping —
//!   same-organization domains share access;
//! * inline scripts follow the same strict/relaxed dichotomy as
//!   CookieGuard ([`InlinePolicy`]).
//!
//! Insertion of *new* elements is always allowed (creating your own node
//! threatens nobody); the guard polices what happens to nodes that
//! already exist.
//!
//! # Example
//!
//! ```
//! use cg_domguard::{DomGuard, DomGuardConfig, MutationKind};
//! use cookieguard_core::Caller;
//!
//! let mut guard = DomGuard::new(DomGuardConfig::strict(), "shop.example");
//!
//! // An ad script may restyle its own ad slot…
//! let ads = Caller::external("ads.example.net");
//! assert!(guard.authorize(&ads, "ads.example.net", MutationKind::Style).is_allow());
//!
//! // …but not rewrite the site's own markup.
//! assert!(!guard.authorize(&ads, "shop.example", MutationKind::Content).is_allow());
//!
//! // The site owner edits everything.
//! let owner = Caller::external("shop.example");
//! assert!(guard.authorize(&owner, "ads.example.net", MutationKind::Remove).is_allow());
//! ```
//!
//! **Layer:** defense (beside `cookieguard_core`, enforced by
//! `cg-browser::Page` at DOM-mutation time). **Invariant:** decisions
//! depend only on (caller, element owner, mutation kind) — never on
//! mutation payloads. **Entry points:** `DomGuard`, `DomGuardConfig`.

use cg_entity::EntityMap;
use cookieguard_core::{AccessDecision, AllowReason, BlockReason, Caller, InlinePolicy};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The mutation kinds the guard distinguishes — the §8 pilot's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationKind {
    /// `innerText` / `innerHTML` changes.
    Content,
    /// CSS / style changes.
    Style,
    /// Attribute or class changes.
    Attribute,
    /// Element removal.
    Remove,
}

/// DomGuard's policy knobs — deliberately parallel to
/// [`cookieguard_core::GuardConfig`] so a deployment can share one
/// configuration surface for both guards.
#[derive(Debug, Clone)]
pub struct DomGuardConfig {
    /// Inline-script handling (same dichotomy as CookieGuard §6.1).
    pub inline_policy: InlinePolicy,
    /// When present, same-organization domains share DOM access.
    pub entity_map: Option<EntityMap>,
    /// Domains granted full DOM access (site-operator escape hatch).
    pub whitelist: HashSet<String>,
    /// Kinds the guard enforces. Site operators can e.g. police only
    /// `Content` and `Remove` (defacement/ad-fraud) while tolerating
    /// style/attribute tweaks from A/B-testing vendors.
    pub enforced_kinds: HashSet<MutationKind>,
}

impl DomGuardConfig {
    /// Enforce everything, strict inline handling, no grouping.
    pub fn strict() -> DomGuardConfig {
        DomGuardConfig {
            inline_policy: InlinePolicy::Strict,
            entity_map: None,
            whitelist: HashSet::new(),
            enforced_kinds: [
                MutationKind::Content,
                MutationKind::Style,
                MutationKind::Attribute,
                MutationKind::Remove,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// Strict enforcement of content changes and removals only — the
    /// low-breakage profile (A/B-testing and personalization vendors
    /// mostly touch style/attributes).
    pub fn content_and_removal() -> DomGuardConfig {
        DomGuardConfig {
            enforced_kinds: [MutationKind::Content, MutationKind::Remove]
                .into_iter()
                .collect(),
            ..DomGuardConfig::strict()
        }
    }

    /// Relaxed inline handling.
    pub fn relaxed() -> DomGuardConfig {
        DomGuardConfig {
            inline_policy: InlinePolicy::Relaxed,
            ..DomGuardConfig::strict()
        }
    }

    /// Enables entity grouping with the given map.
    pub fn with_entity_grouping(mut self, map: EntityMap) -> DomGuardConfig {
        self.entity_map = Some(map);
        self
    }

    /// Adds a domain to the full-access whitelist.
    pub fn with_whitelisted(mut self, domain: &str) -> DomGuardConfig {
        self.whitelist.insert(domain.to_ascii_lowercase());
        self
    }
}

impl Default for DomGuardConfig {
    fn default() -> DomGuardConfig {
        DomGuardConfig::strict()
    }
}

/// Counters for everything the DOM guard decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomGuardStats {
    /// Mutations allowed (own elements, owner, entity, whitelist).
    pub allowed: u64,
    /// Cross-domain mutations blocked.
    pub blocked: u64,
    /// Mutations that passed because their kind is not enforced.
    pub unenforced: u64,
}

/// The per-site DOM guard: one per top-level page visit.
#[derive(Debug, Clone)]
pub struct DomGuard {
    config: DomGuardConfig,
    site_domain: String,
    stats: DomGuardStats,
}

impl DomGuard {
    /// Creates a guard for a visit to `site_domain` under `config`.
    pub fn new(config: DomGuardConfig, site_domain: &str) -> DomGuard {
        DomGuard {
            config,
            site_domain: site_domain.to_ascii_lowercase(),
            stats: DomGuardStats::default(),
        }
    }

    /// The guarded site.
    pub fn site_domain(&self) -> &str {
        &self.site_domain
    }

    /// Accumulated decision counters.
    pub fn stats(&self) -> DomGuardStats {
        self.stats
    }

    /// Authorizes `caller` to apply a `kind` mutation to an element owned
    /// by `owner_domain` and updates the counters. The decision mirrors
    /// CookieGuard's cookie policy with element ownership in the role of
    /// cookie creatorship.
    pub fn authorize(
        &mut self,
        caller: &Caller,
        owner_domain: &str,
        kind: MutationKind,
    ) -> AccessDecision {
        if !self.config.enforced_kinds.contains(&kind) {
            self.stats.unenforced += 1;
            return AccessDecision::Allow(AllowReason::NewCookie);
        }
        let decision = self.check(caller, owner_domain);
        if decision.is_allow() {
            self.stats.allowed += 1;
        } else {
            self.stats.blocked += 1;
        }
        decision
    }

    /// The pure policy decision (no counter updates).
    pub fn check(&self, caller: &Caller, owner_domain: &str) -> AccessDecision {
        let owner = owner_domain.to_ascii_lowercase();
        // Callers carry interned ids; this guard's config is still
        // string-keyed, so resolve the (normalized, 'static) name once.
        let caller_domain = match caller.domain_name() {
            Some(d) => d,
            None => {
                return match self.config.inline_policy {
                    // Inline scripts own the "<inline>" pseudo-domain: they
                    // may touch other inline-created nodes, nothing else.
                    InlinePolicy::Strict if owner == "<inline>" => {
                        AccessDecision::Allow(AllowReason::Creator)
                    }
                    InlinePolicy::Strict => AccessDecision::Block(BlockReason::InlineStrict),
                    InlinePolicy::Relaxed => AccessDecision::Allow(AllowReason::RelaxedInline),
                };
            }
        };
        if caller_domain == self.site_domain {
            return AccessDecision::Allow(AllowReason::SiteOwner);
        }
        if self.config.whitelist.contains(caller_domain) {
            return AccessDecision::Allow(AllowReason::Whitelisted);
        }
        if caller_domain == owner {
            return AccessDecision::Allow(AllowReason::Creator);
        }
        if let Some(map) = &self.config.entity_map {
            if map.contains(caller_domain)
                && map.contains(&owner)
                && map.same_entity(caller_domain, &owner)
            {
                return AccessDecision::Allow(AllowReason::SameEntity);
            }
        }
        AccessDecision::Block(BlockReason::CrossDomain)
    }
}

/// Maps the script-engine mutation kinds onto the guard's taxonomy.
pub fn mutation_kind_of(kind: cg_dom::ElementMutation) -> Option<MutationKind> {
    match kind {
        cg_dom::ElementMutation::Content => Some(MutationKind::Content),
        cg_dom::ElementMutation::Style => Some(MutationKind::Style),
        cg_dom::ElementMutation::Attribute => Some(MutationKind::Attribute),
        cg_dom::ElementMutation::Remove => Some(MutationKind::Remove),
        cg_dom::ElementMutation::Insert => None, // insertion is never policed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> DomGuard {
        DomGuard::new(DomGuardConfig::strict(), "site.com")
    }

    #[test]
    fn own_elements_freely_mutable() {
        let mut g = guard();
        let d = g.authorize(
            &Caller::external("widget.io"),
            "widget.io",
            MutationKind::Content,
        );
        assert_eq!(d, AccessDecision::Allow(AllowReason::Creator));
        assert_eq!(g.stats().allowed, 1);
    }

    #[test]
    fn cross_domain_mutation_blocked() {
        let mut g = guard();
        let d = g.authorize(
            &Caller::external("ads.net"),
            "site.com",
            MutationKind::Content,
        );
        assert_eq!(d, AccessDecision::Block(BlockReason::CrossDomain));
        assert_eq!(g.stats().blocked, 1);
    }

    #[test]
    fn site_owner_mutates_everything() {
        let mut g = guard();
        for kind in [
            MutationKind::Content,
            MutationKind::Style,
            MutationKind::Attribute,
            MutationKind::Remove,
        ] {
            assert!(g
                .authorize(&Caller::external("site.com"), "tracker.com", kind)
                .is_allow());
        }
        assert_eq!(g.stats().allowed, 4);
    }

    #[test]
    fn inline_strict_owns_inline_nodes_only() {
        let mut g = guard();
        assert!(g
            .authorize(&Caller::inline(), "<inline>", MutationKind::Style)
            .is_allow());
        assert!(!g
            .authorize(&Caller::inline(), "site.com", MutationKind::Style)
            .is_allow());
        assert!(!g
            .authorize(&Caller::inline(), "ads.net", MutationKind::Style)
            .is_allow());
    }

    #[test]
    fn inline_relaxed_acts_as_first_party() {
        let mut g = DomGuard::new(DomGuardConfig::relaxed(), "site.com");
        assert!(g
            .authorize(&Caller::inline(), "ads.net", MutationKind::Content)
            .is_allow());
    }

    #[test]
    fn entity_grouping_shares_within_org() {
        let mut g = DomGuard::new(
            DomGuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
            "site.com",
        );
        assert!(g
            .authorize(
                &Caller::external("fbcdn.net"),
                "facebook.net",
                MutationKind::Content
            )
            .is_allow());
        assert!(!g
            .authorize(
                &Caller::external("criteo.com"),
                "facebook.net",
                MutationKind::Content
            )
            .is_allow());
    }

    #[test]
    fn whitelist_grants_full_access() {
        let mut g = DomGuard::new(
            DomGuardConfig::strict().with_whitelisted("optimize.io"),
            "site.com",
        );
        assert!(g
            .authorize(
                &Caller::external("optimize.io"),
                "site.com",
                MutationKind::Content
            )
            .is_allow());
    }

    #[test]
    fn unenforced_kinds_pass_and_are_counted() {
        let mut g = DomGuard::new(DomGuardConfig::content_and_removal(), "site.com");
        assert!(g
            .authorize(
                &Caller::external("abtest.io"),
                "site.com",
                MutationKind::Style
            )
            .is_allow());
        assert_eq!(g.stats().unenforced, 1);
        assert!(!g
            .authorize(
                &Caller::external("abtest.io"),
                "site.com",
                MutationKind::Content
            )
            .is_allow());
        assert_eq!(g.stats().blocked, 1);
    }

    #[test]
    fn mutation_kind_mapping() {
        assert_eq!(
            mutation_kind_of(cg_dom::ElementMutation::Content),
            Some(MutationKind::Content)
        );
        assert_eq!(
            mutation_kind_of(cg_dom::ElementMutation::Remove),
            Some(MutationKind::Remove)
        );
        assert_eq!(mutation_kind_of(cg_dom::ElementMutation::Insert), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn domain_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "site.com".to_string(),
            "tracker.com".to_string(),
            "ads.net".to_string(),
            "facebook.net".to_string(),
            "fbcdn.net".to_string(),
            "<inline>".to_string(),
        ])
    }

    fn kind_strategy() -> impl Strategy<Value = MutationKind> {
        prop::sample::select(vec![
            MutationKind::Content,
            MutationKind::Style,
            MutationKind::Attribute,
            MutationKind::Remove,
        ])
    }

    proptest! {
        /// Strict, ungrouped: a mutation is allowed iff caller==owner or
        /// caller is the site owner (the exact cross-domain predicate of
        /// the §8 pilot).
        #[test]
        fn strict_policy_is_the_pilot_predicate(
            caller in domain_strategy(),
            owner in domain_strategy(),
            kind in kind_strategy(),
        ) {
            prop_assume!(caller != "<inline>"); // inline handled separately
            let mut g = DomGuard::new(DomGuardConfig::strict(), "site.com");
            let allowed = g.authorize(&Caller::external(&caller), &owner, kind).is_allow();
            prop_assert_eq!(allowed, caller == owner || caller == "site.com");
        }

        /// Entity grouping only ever adds visibility within an entity.
        #[test]
        fn grouping_monotone_and_entity_bounded(
            caller in domain_strategy(),
            owner in domain_strategy(),
            kind in kind_strategy(),
        ) {
            prop_assume!(caller != "<inline>");
            let entities = cg_entity::builtin_entity_map();
            let mut strict = DomGuard::new(DomGuardConfig::strict(), "site.com");
            let mut grouped = DomGuard::new(
                DomGuardConfig::strict().with_entity_grouping(entities.clone()),
                "site.com",
            );
            let s = strict.authorize(&Caller::external(&caller), &owner, kind).is_allow();
            let g = grouped.authorize(&Caller::external(&caller), &owner, kind).is_allow();
            if s {
                prop_assert!(g, "grouping removed access {} -> {}", caller, owner);
            }
            if g && !s {
                prop_assert!(entities.same_entity(&caller, &owner), "grouping leaked {} -> {}", caller, owner);
            }
        }

        /// Decisions are pure: the counters change, the answer does not.
        #[test]
        fn decisions_are_stable(caller in domain_strategy(), owner in domain_strategy(), kind in kind_strategy()) {
            prop_assume!(caller != "<inline>");
            let mut g = DomGuard::new(DomGuardConfig::strict(), "site.com");
            let first = g.authorize(&Caller::external(&caller), &owner, kind);
            let second = g.authorize(&Caller::external(&caller), &owner, kind);
            prop_assert_eq!(first, second);
        }
    }
}
