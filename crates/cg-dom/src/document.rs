//! Documents (frames) and the DOM mutation log.

use crate::element::{Element, ElementId, ElementMutation};
use crate::script_node::{InclusionKind, ScriptId, ScriptNode, ScriptSource};
use cg_url::Url;
use serde::{Deserialize, Serialize};

/// Whether a document is the main frame or a subframe, and in the latter
/// case whether SOP isolates it from the main frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// The top-level document.
    Main,
    /// An iframe; `cross_origin` records whether its origin differs from
    /// the main frame's (in which case SOP denies it main-frame access).
    Iframe {
        /// True when the frame's origin differs from the main frame's.
        cross_origin: bool,
    },
}

/// A recorded DOM mutation, attributed to the acting script's domain —
/// the raw material of the §8 cross-domain DOM-manipulation pilot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationRecord {
    /// The element mutated.
    pub element: ElementId,
    /// What changed.
    pub kind: ElementMutation,
    /// eTLD+1 of the acting script (None for inline in strict attribution).
    pub actor_domain: Option<String>,
    /// eTLD+1 that owned the element at mutation time.
    pub owner_domain: String,
}

impl MutationRecord {
    /// A mutation is cross-domain when the actor is known and differs
    /// from the element's owner.
    pub fn is_cross_domain(&self) -> bool {
        match &self.actor_domain {
            Some(a) => !a.eq_ignore_ascii_case(&self.owner_domain),
            None => false,
        }
    }
}

/// One frame's document: element arena, script list, and mutation log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// The document's URL.
    pub url: Url,
    /// Main frame or iframe.
    pub frame: FrameKind,
    elements: Vec<Element>,
    scripts: Vec<ScriptNode>,
    mutations: Vec<MutationRecord>,
}

impl Document {
    /// Creates an empty document for `url`.
    pub fn new(url: Url, frame: FrameKind) -> Document {
        Document {
            url,
            frame,
            elements: Vec::new(),
            scripts: Vec::new(),
            mutations: Vec::new(),
        }
    }

    /// The site's registrable domain.
    pub fn site_domain(&self) -> String {
        self.url
            .registrable_domain()
            .unwrap_or_else(|| self.url.host_str().into_owned())
    }

    // ------------------------------------------------------------------
    // Elements
    // ------------------------------------------------------------------

    /// Inserts a parser-created element owned by the site itself.
    pub fn insert_markup_element(&mut self, tag: &str, parent: Option<ElementId>) -> ElementId {
        let site = self.site_domain();
        self.insert_element(tag, parent, &site, None)
    }

    /// Inserts an element created by a script from `actor_domain`
    /// (ownership goes to the actor; the insertion is logged).
    pub fn insert_script_element(
        &mut self,
        tag: &str,
        parent: Option<ElementId>,
        actor_domain: Option<&str>,
    ) -> ElementId {
        let owner = actor_domain.unwrap_or("<inline>").to_string();

        self.insert_element(tag, parent, &owner, actor_domain)
    }

    fn insert_element(
        &mut self,
        tag: &str,
        parent: Option<ElementId>,
        owner: &str,
        log_actor: Option<&str>,
    ) -> ElementId {
        let id = self.elements.len();
        let mut e = Element::new(id, tag, owner);
        e.parent = parent;
        self.elements.push(e);
        if let Some(actor) = log_actor {
            self.mutations.push(MutationRecord {
                element: id,
                kind: ElementMutation::Insert,
                actor_domain: Some(actor.to_string()),
                owner_domain: owner.to_string(),
            });
        }
        id
    }

    /// Mutates an element on behalf of a script; records attribution.
    /// Returns false when the element does not exist or is detached.
    pub fn mutate_element(
        &mut self,
        id: ElementId,
        kind: ElementMutation,
        actor_domain: Option<&str>,
        payload: &str,
    ) -> bool {
        let owner = match self.elements.get(id) {
            Some(e) if !e.detached => e.owner_domain.clone(),
            _ => return false,
        };
        let e = &mut self.elements[id];
        match kind {
            ElementMutation::Content => e.content = payload.to_string(),
            ElementMutation::Style => e.style = payload.to_string(),
            ElementMutation::Attribute => e.classes.push(payload.to_string()),
            ElementMutation::Remove => e.detached = true,
            ElementMutation::Insert => return false, // use insert_script_element
        }
        self.mutations.push(MutationRecord {
            element: id,
            kind,
            actor_domain: actor_domain.map(str::to_string),
            owner_domain: owner,
        });
        true
    }

    /// Element accessor.
    pub fn element(&self, id: ElementId) -> Option<&Element> {
        self.elements.get(id)
    }

    /// The most recently created live element owned by `owner`, if any —
    /// how a script finds "its own" container to mutate.
    pub fn last_element_owned_by(&self, owner: &str) -> Option<ElementId> {
        self.elements
            .iter()
            .rev()
            .find(|e| !e.detached && e.owner_domain.eq_ignore_ascii_case(owner))
            .map(|e| e.id)
    }

    /// Number of elements (including detached ones).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The recorded mutation log.
    pub fn mutations(&self) -> &[MutationRecord] {
        &self.mutations
    }

    // ------------------------------------------------------------------
    // Scripts
    // ------------------------------------------------------------------

    /// Registers a markup-level (`Direct`) script.
    pub fn add_direct_script(&mut self, source: ScriptSource) -> ScriptId {
        self.add_script(source, InclusionKind::Direct)
    }

    /// Registers a script injected by `parent`.
    pub fn add_injected_script(&mut self, source: ScriptSource, parent: ScriptId) -> ScriptId {
        self.add_script(source, InclusionKind::InjectedBy(parent))
    }

    fn add_script(&mut self, source: ScriptSource, inclusion: InclusionKind) -> ScriptId {
        let id = self.scripts.len();
        self.scripts.push(ScriptNode {
            id,
            source,
            inclusion,
        });
        id
    }

    /// Script accessor.
    pub fn script(&self, id: ScriptId) -> Option<&ScriptNode> {
        self.scripts.get(id)
    }

    /// All scripts.
    pub fn scripts(&self) -> &[ScriptNode] {
        &self.scripts
    }

    /// Inclusion chain for one script (root-first).
    pub fn inclusion_chain(&self, id: ScriptId) -> Vec<ScriptId> {
        crate::script_node::inclusion_chain(&self.scripts, id)
    }

    /// Third-party scripts: external scripts whose eTLD+1 differs from the
    /// site's. (The paper finds these on 93.3% of sites, averaging 19.)
    pub fn third_party_scripts(&self) -> Vec<&ScriptNode> {
        let site = self.site_domain();
        self.scripts
            .iter()
            .filter(|s| matches!(s.domain(), Some(d) if !d.eq_ignore_ascii_case(&site)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new(
            Url::parse("https://www.news-site.com/").unwrap(),
            FrameKind::Main,
        )
    }

    fn ext(u: &str) -> ScriptSource {
        ScriptSource::External(Url::parse(u).unwrap())
    }

    #[test]
    fn site_domain_is_etld_plus_one() {
        assert_eq!(doc().site_domain(), "news-site.com");
    }

    #[test]
    fn markup_elements_owned_by_site() {
        let mut d = doc();
        let id = d.insert_markup_element("div", None);
        assert_eq!(d.element(id).unwrap().owner_domain, "news-site.com");
        assert!(d.mutations().is_empty());
    }

    #[test]
    fn script_insertion_logged_and_owned() {
        let mut d = doc();
        let id = d.insert_script_element("img", None, Some("tracker.com"));
        assert_eq!(d.element(id).unwrap().owner_domain, "tracker.com");
        assert_eq!(d.mutations().len(), 1);
        assert!(!d.mutations()[0].is_cross_domain()); // inserting your own node
    }

    #[test]
    fn cross_domain_mutation_detected() {
        let mut d = doc();
        let id = d.insert_markup_element("div", None);
        assert!(d.mutate_element(
            id,
            ElementMutation::Content,
            Some("ads.com"),
            "<b>injected</b>"
        ));
        let m = &d.mutations()[0];
        assert!(m.is_cross_domain());
        assert_eq!(d.element(id).unwrap().content, "<b>injected</b>");
    }

    #[test]
    fn same_domain_mutation_not_cross_domain() {
        let mut d = doc();
        let id = d.insert_markup_element("div", None);
        d.mutate_element(
            id,
            ElementMutation::Style,
            Some("news-site.com"),
            "color:red",
        );
        assert!(!d.mutations()[0].is_cross_domain());
    }

    #[test]
    fn removed_elements_reject_mutation() {
        let mut d = doc();
        let id = d.insert_markup_element("div", None);
        assert!(d.mutate_element(id, ElementMutation::Remove, Some("x.com"), ""));
        assert!(!d.mutate_element(id, ElementMutation::Content, Some("x.com"), "dead"));
    }

    #[test]
    fn third_party_script_listing() {
        let mut d = doc();
        d.add_direct_script(ext("https://www.news-site.com/app.js"));
        d.add_direct_script(ext("https://cdn.news-site.com/ui.js"));
        let gtm = d.add_direct_script(ext("https://www.googletagmanager.com/gtm.js"));
        d.add_injected_script(ext("https://www.google-analytics.com/analytics.js"), gtm);
        d.add_direct_script(ScriptSource::Inline);
        let tp = d.third_party_scripts();
        assert_eq!(tp.len(), 2);
        assert_eq!(d.inclusion_chain(3), vec![2, 3]);
    }

    #[test]
    fn iframe_kind_records_isolation() {
        let f = Document::new(
            Url::parse("https://ads.example.net/frame").unwrap(),
            FrameKind::Iframe { cross_origin: true },
        );
        assert!(matches!(f.frame, FrameKind::Iframe { cross_origin: true }));
    }
}
