//! DOM-lite: the document structures the measurement and defense reason
//! about.
//!
//! The paper's threat model (§3, Figure 1) is drawn on the DOM: scripts in
//! the *main frame* share every main-frame resource (cookie jar, DOM,
//! global namespace) regardless of where they were fetched from, while
//! cross-origin *iframes* are isolated by SOP. This crate models exactly
//! that topology:
//!
//! * a [`Document`] per frame, with the main frame distinguished;
//! * [`ScriptNode`]s with their source URL (or inline), how they were
//!   included (directly via markup or injected by another script — the
//!   paper finds indirect inclusions outnumber direct ones 2.5×), and the
//!   resulting inclusion chain;
//! * [`Element`]s with an *owner* (the domain of the script that created
//!   or last modified them), backing the §8 pilot measurement of
//!   cross-domain DOM manipulation.
//!
//! **Layer:** ecosystem substrate (consumed by `cg-browser` and
//! `cg-domguard`). **Invariant:** every element and script records the
//! eTLD+1 that created it — ownership is never inferred after the fact.
//! **Entry points:** `Document`, `Element`, `ScriptNode`.

pub mod document;
pub mod element;
pub mod script_node;

pub use document::{Document, FrameKind};
pub use element::{Element, ElementId, ElementMutation};
pub use script_node::{InclusionKind, ScriptId, ScriptNode, ScriptSource};
