//! DOM elements with ownership tracking.

use serde::{Deserialize, Serialize};

/// Index of an element within its document's arena.
pub type ElementId = usize;

/// The kinds of mutation a script can apply to an element — the taxonomy
/// of the paper's §8 pilot (content, style, attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementMutation {
    /// `innerText` / `innerHTML` changes.
    Content,
    /// CSS / style changes.
    Style,
    /// Attribute or class changes (e.g. `src`).
    Attribute,
    /// Element removal.
    Remove,
    /// New element insertion.
    Insert,
}

/// A DOM element. The simulator tracks just enough structure for the
/// cross-domain DOM-manipulation pilot: identity, tag, a content string,
/// and which domain owns (created or legitimately manages) the node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Arena id.
    pub id: ElementId,
    /// Tag name, lowercased (`div`, `img`, `script`, …).
    pub tag: String,
    /// The `id` attribute, if any.
    pub dom_id: Option<String>,
    /// Class list.
    pub classes: Vec<String>,
    /// Flattened text/markup content.
    pub content: String,
    /// Inline style string.
    pub style: String,
    /// The eTLD+1 of the party that created the element: the site domain
    /// for parser-inserted markup, or the injecting script's domain.
    pub owner_domain: String,
    /// Parent element, if any.
    pub parent: Option<ElementId>,
    /// Whether the element has been removed from the tree.
    pub detached: bool,
}

impl Element {
    /// Creates an element owned by `owner_domain`.
    pub fn new(id: ElementId, tag: &str, owner_domain: &str) -> Element {
        Element {
            id,
            tag: tag.to_ascii_lowercase(),
            dom_id: None,
            classes: Vec::new(),
            content: String::new(),
            style: String::new(),
            owner_domain: owner_domain.to_string(),
            parent: None,
            detached: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_tag() {
        let e = Element::new(0, "DIV", "site.com");
        assert_eq!(e.tag, "div");
        assert_eq!(e.owner_domain, "site.com");
        assert!(!e.detached);
    }
}
