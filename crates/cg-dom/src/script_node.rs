//! Script nodes and inclusion chains.

use cg_url::Url;
use serde::{Deserialize, Serialize};

/// Index of a script within its document.
pub type ScriptId = usize;

/// Where a script's code came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptSource {
    /// `<script src="…">` — fetched from a URL; the URL's eTLD+1 is the
    /// script's attributable domain.
    External(Url),
    /// Inline `<script>…</script>` — no reliable origin (§6.1: CookieGuard
    /// treats these as untrusted in strict mode, first-party in relaxed).
    Inline,
}

impl ScriptSource {
    /// The attributable eTLD+1 of this source, if any.
    pub fn domain(&self) -> Option<String> {
        match self {
            ScriptSource::External(u) => u.registrable_domain(),
            ScriptSource::Inline => None,
        }
    }

    /// The script URL as a string, or `"<inline>"`.
    pub fn url_str(&self) -> String {
        match self {
            ScriptSource::External(u) => u.to_string(),
            ScriptSource::Inline => "<inline>".to_string(),
        }
    }
}

/// How the script entered the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InclusionKind {
    /// Present in the served markup (`<script>` tag written by the site).
    Direct,
    /// Injected at runtime by another script (`document.createElement`,
    /// `eval`, `import()` …) — the transitive-inclusion case.
    InjectedBy(ScriptId),
}

/// A script in a document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptNode {
    /// Arena id within the document.
    pub id: ScriptId,
    /// The code's source.
    pub source: ScriptSource,
    /// How the script was included.
    pub inclusion: InclusionKind,
}

impl ScriptNode {
    /// The attributable domain of this script (eTLD+1 of its `src`), or
    /// `None` for inline scripts.
    pub fn domain(&self) -> Option<String> {
        self.source.domain()
    }

    /// True when the script was injected by another script rather than
    /// appearing in the served markup.
    pub fn is_indirect(&self) -> bool {
        matches!(self.inclusion, InclusionKind::InjectedBy(_))
    }
}

/// Computes the inclusion chain of script `id` inside `scripts`: the
/// sequence of script ids from the markup-level root down to `id` itself.
/// The chain is what the measurement annotates on every cookie access
/// (§4.4 step 4: "annotate the inclusion path of each accessing script").
pub fn inclusion_chain(scripts: &[ScriptNode], id: ScriptId) -> Vec<ScriptId> {
    let mut chain = vec![id];
    let mut cursor = id;
    // Bounded walk to defend against (impossible, but cheap to guard)
    // cycles in corrupted inputs.
    for _ in 0..scripts.len() {
        match scripts.get(cursor).map(|s| s.inclusion) {
            Some(InclusionKind::InjectedBy(parent)) => {
                chain.push(parent);
                cursor = parent;
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Depth of the inclusion chain: 0 for direct scripts, ≥1 for injected.
pub fn inclusion_depth(scripts: &[ScriptNode], id: ScriptId) -> usize {
    inclusion_chain(scripts, id).len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(u: &str) -> ScriptSource {
        ScriptSource::External(Url::parse(u).unwrap())
    }

    #[test]
    fn source_domains() {
        assert_eq!(
            ext("https://cdn.tracker.com/t.js").domain().as_deref(),
            Some("tracker.com")
        );
        assert_eq!(ScriptSource::Inline.domain(), None);
        assert_eq!(ScriptSource::Inline.url_str(), "<inline>");
    }

    #[test]
    fn chain_walks_to_root() {
        let scripts = vec![
            ScriptNode {
                id: 0,
                source: ext("https://site.com/app.js"),
                inclusion: InclusionKind::Direct,
            },
            ScriptNode {
                id: 1,
                source: ext("https://gtm.com/gtm.js"),
                inclusion: InclusionKind::Direct,
            },
            ScriptNode {
                id: 2,
                source: ext("https://ga.com/a.js"),
                inclusion: InclusionKind::InjectedBy(1),
            },
            ScriptNode {
                id: 3,
                source: ext("https://dc.net/px.js"),
                inclusion: InclusionKind::InjectedBy(2),
            },
        ];
        assert_eq!(inclusion_chain(&scripts, 3), vec![1, 2, 3]);
        assert_eq!(inclusion_depth(&scripts, 3), 2);
        assert_eq!(inclusion_depth(&scripts, 0), 0);
        assert!(scripts[3].is_indirect());
        assert!(!scripts[1].is_indirect());
    }

    #[test]
    fn cycle_guard_terminates() {
        // Corrupt input: 0 injected by 1, 1 injected by 0.
        let scripts = vec![
            ScriptNode {
                id: 0,
                source: ScriptSource::Inline,
                inclusion: InclusionKind::InjectedBy(1),
            },
            ScriptNode {
                id: 1,
                source: ScriptSource::Inline,
                inclusion: InclusionKind::InjectedBy(0),
            },
        ];
        // Must terminate; exact content unimportant.
        let chain = inclusion_chain(&scripts, 0);
        assert!(chain.len() <= 4);
    }
}
