//! The core vendor registry: named third-party services with the
//! behaviours the paper documents (Tables 2 & 5, Figures 2 & 8, and the
//! §5.4–§5.5 case studies).

use crate::config::GenConfig;
use cg_http::RequestKind;
use cg_script::{
    AttrChanges, CookieAttrs, CookieSelection, Encoding, ScriptOp, SegmentPolicy, ValueSpec,
};
use rand::Rng;
use std::collections::HashMap;

/// Index into the vendor registry (core vendors first, long-tail after).
pub type VendorId = usize;

/// Service category; drives filter-list membership and site adoption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VendorCategory {
    /// Tag managers / CDPs that inject further scripts.
    TagManager,
    /// Analytics and measurement.
    Analytics,
    /// Advertising: exchanges, SSPs, retargeting, ad management.
    AdExchange,
    /// Social widgets and pixels.
    SocialWidget,
    /// Consent-management platforms.
    ConsentManager,
    /// Chat / support widgets.
    CustomerSupport,
    /// Performance / error monitoring.
    Performance,
    /// A/B testing and personalization.
    AbTesting,
    /// Commerce platform SDKs.
    Commerce,
    /// SSO / identity providers.
    SsoProvider,
    /// Generic CDN-hosted utility scripts.
    Cdn,
}

impl VendorCategory {
    /// Whether filter lists classify this category as advertising or
    /// tracking (the §4.3 label; the paper finds 70% of third-party
    /// scripts are ad/tracking).
    pub fn is_ad_tracking(&self) -> bool {
        matches!(
            self,
            VendorCategory::TagManager
                | VendorCategory::Analytics
                | VendorCategory::AdExchange
                | VendorCategory::SocialWidget
                | VendorCategory::ConsentManager
        )
    }
}

/// A cookie a vendor ghost-writes into the first-party jar.
#[derive(Debug, Clone)]
pub struct CookieSpec {
    /// Cookie name.
    pub name: String,
    /// Value shape.
    pub value: ValueSpec,
    /// Lifetime (None = session).
    pub max_age_s: Option<i64>,
    /// Scope to `Domain=<site>`.
    pub site_wide: bool,
    /// Probability the cookie is set on a given site.
    pub prob: f64,
}

impl CookieSpec {
    fn new(name: &str, value: ValueSpec, max_age_s: Option<i64>, prob: f64) -> CookieSpec {
        CookieSpec {
            name: name.into(),
            value,
            max_age_s,
            site_wide: true,
            prob,
        }
    }
}

/// Which cookies an exfiltration behaviour takes.
#[derive(Debug, Clone)]
pub enum ExfilSelection {
    /// The full visible jar.
    All,
    /// Specific names.
    Named(Vec<String>),
    /// Each cookie with the given percent probability (RTB payloads).
    Sample(u8),
}

/// One exfiltration behaviour.
#[derive(Debug, Clone)]
pub struct ExfilSpec {
    /// Fixed destination hosts.
    pub dests: Vec<String>,
    /// Request path on each destination.
    pub path: String,
    /// Cookie selection.
    pub selection: ExfilSelection,
    /// Segment policy.
    pub segment: SegmentPolicy,
    /// Encoding applied before transmission.
    pub encoding: Encoding,
    /// Resource type of the request.
    pub kind: RequestKind,
    /// Probability the behaviour fires on a given site.
    pub prob: f64,
    /// Read through `cookieStore.getAll()` instead of `document.cookie`.
    pub via_store: bool,
    /// Additionally sample this many destinations from the global
    /// destination pool (RTB fan-out).
    pub extra_dest_samples: usize,
}

/// What an overwrite targets.
#[derive(Debug, Clone)]
pub enum OverwriteTarget {
    /// A specific (usually another vendor's) cookie name.
    Named(String),
    /// A generic collision-prone name (`cookie_test`, `user_id`, …).
    GenericName,
}

/// One overwrite behaviour.
#[derive(Debug, Clone)]
pub struct OverwriteSpec {
    /// Target cookie.
    pub target: OverwriteTarget,
    /// Replacement value shape.
    pub value: ValueSpec,
    /// Probability of firing per site.
    pub prob: f64,
    /// Write even when the cookie is not visible.
    pub blind: bool,
}

/// What a delete targets.
#[derive(Debug, Clone)]
pub enum DeleteTarget {
    /// A specific cookie name.
    Named(String),
    /// One of the site's own first-party cookies (consent managers
    /// clearing site cookies on declined consent).
    RandomFirstParty,
}

/// One delete behaviour.
#[derive(Debug, Clone)]
pub struct DeleteSpec {
    /// Target cookie.
    pub target: DeleteTarget,
    /// Probability of firing per site.
    pub prob: f64,
    /// Use `cookieStore.delete`.
    pub via_store: bool,
}

/// A vendor: one script-hosting service and its behaviour profile.
#[derive(Debug, Clone)]
pub struct VendorSpec {
    /// eTLD+1 of the script host.
    pub domain: String,
    /// Full host serving the script.
    pub host: String,
    /// Script path.
    pub path: String,
    /// Category.
    pub category: VendorCategory,
    /// Cookies set via `document.cookie`.
    pub sets: Vec<CookieSpec>,
    /// Cookies set via `cookieStore.set`.
    pub store_sets: Vec<CookieSpec>,
    /// Probability of a bare `document.cookie` read.
    pub reads_all_prob: f64,
    /// Exfiltration behaviours.
    pub exfils: Vec<ExfilSpec>,
    /// Overwrite behaviours.
    pub overwrites: Vec<OverwriteSpec>,
    /// Delete behaviours.
    pub deletes: Vec<DeleteSpec>,
    /// Vendor domains this vendor always injects when present.
    pub inject_domains: Vec<String>,
    /// Min/max extra vendors injected from the site's ambient pool
    /// (tag-manager fan-out).
    pub inject_pool_count: (u8, u8),
    /// Relative adoption weight across sites.
    pub weight: f64,
    /// Probability of a cross-domain DOM mutation (§8 pilot).
    pub dom_mutate_prob: f64,
    /// Functional feature this vendor manages, with the cookie the
    /// feature depends on: `(feature, cookie, sibling_reader_domain)`.
    /// When a sibling domain is given, a second script from that domain
    /// performs the dependent read (the fbcdn.net pattern).
    pub feature: Option<(String, String, Option<String>)>,
}

impl VendorSpec {
    /// The script URL this vendor serves.
    pub fn script_url(&self) -> String {
        format!("https://{}{}", self.host, self.path)
    }

    /// The vendor's signature ghost-written cookie — the first (highest
    /// set-probability, by construction) of its `document.cookie` sets,
    /// e.g. `_ga` for the GTM tag or `_fbp` for the Meta pixel. Scenario
    /// fixtures use this instead of re-hardcoding cookie names, so a
    /// registry rename cannot silently strand a scenario.
    pub fn signature_cookie(&self) -> Option<&str> {
        self.sets.first().map(|c| c.name.as_str())
    }

    fn base(
        domain: &str,
        host: &str,
        path: &str,
        category: VendorCategory,
        weight: f64,
    ) -> VendorSpec {
        VendorSpec {
            domain: domain.into(),
            host: host.into(),
            path: path.into(),
            category,
            sets: Vec::new(),
            store_sets: Vec::new(),
            reads_all_prob: 0.0,
            exfils: Vec::new(),
            overwrites: Vec::new(),
            deletes: Vec::new(),
            inject_domains: Vec::new(),
            inject_pool_count: (0, 0),
            weight,
            dom_mutate_prob: 0.0,
            feature: None,
        }
    }

    /// Assembles the behaviour program for this vendor on one site.
    ///
    /// `dest_pool` is the global pool of exfiltration destinations for
    /// RTB fan-out sampling; `first_party_cookies` are the site's own
    /// cookie names (for `RandomFirstParty` deletes).
    pub fn behavior<R: Rng>(
        &self,
        rng: &mut R,
        cfg: &GenConfig,
        dest_pool: &[String],
        first_party_cookies: &[String],
    ) -> Vec<ScriptOp> {
        let mut ops = Vec::new();

        for c in &self.sets {
            if rng.gen_bool(c.prob) {
                ops.push(ScriptOp::SetCookie {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    attrs: CookieAttrs {
                        max_age_s: c.max_age_s,
                        site_wide: c.site_wide,
                        path: None,
                        secure: false,
                    },
                });
            }
        }
        for c in &self.store_sets {
            if rng.gen_bool(c.prob) {
                ops.push(ScriptOp::CookieStoreSet {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    expires_in_ms: c.max_age_s.map(|s| s * 1000),
                });
            }
        }
        if self.reads_all_prob > 0.0 && rng.gen_bool(self.reads_all_prob) {
            ops.push(ScriptOp::ReadAllCookies);
        }

        for ex in &self.exfils {
            if !rng.gen_bool(ex.prob) {
                continue;
            }
            let mut dests = ex.dests.clone();
            for _ in 0..ex.extra_dest_samples {
                if !dest_pool.is_empty() {
                    dests.push(dest_pool[rng.gen_range(0..dest_pool.len())].clone());
                }
            }
            let mut exfil_ops: Vec<ScriptOp> = dests
                .into_iter()
                .map(|dest| ScriptOp::Exfiltrate {
                    dest_host: dest,
                    path: ex.path.clone(),
                    selection: match &ex.selection {
                        ExfilSelection::All => CookieSelection::All,
                        ExfilSelection::Named(names) => CookieSelection::Named(names.clone()),
                        ExfilSelection::Sample(pct) => CookieSelection::Sample(*pct),
                    },
                    segment: ex.segment,
                    encoding: ex.encoding,
                    kind: ex.kind,
                    via_store: ex.via_store,
                })
                .collect();
            // Trackers exfiltrate after the page settles; occasionally the
            // deferred callback loses its stack (§8).
            let lose = rng.gen_bool(cfg.async_attribution_loss_prob);
            ops.push(ScriptOp::Defer {
                delay_ms: rng.gen_range(400..1400),
                ops: std::mem::take(&mut exfil_ops),
                lose_attribution: lose,
            });
        }

        for ow in &self.overwrites {
            if !rng.gen_bool(ow.prob) {
                continue;
            }
            let target = match &ow.target {
                OverwriteTarget::Named(n) => n.clone(),
                OverwriteTarget::GenericName => crate::names::generic_cookie_name(rng),
            };
            // Attribute-change profile tuned to §5.5: 85.3% value,
            // 69.4% expires, 6.0% domain, 1.2% path.
            let changes = AttrChanges {
                value: rng.gen_bool(0.853),
                expires: rng.gen_bool(0.694),
                domain: rng.gen_bool(0.060),
                path: rng.gen_bool(0.012),
            };
            let changes = if !(changes.value || changes.expires || changes.domain || changes.path) {
                AttrChanges::value_and_expiry()
            } else {
                changes
            };
            ops.push(ScriptOp::Defer {
                delay_ms: rng.gen_range(800..2400),
                ops: vec![ScriptOp::OverwriteCookie {
                    target,
                    value: ow.value.clone(),
                    changes,
                    blind: ow.blind,
                }],
                lose_attribution: false,
            });
        }

        for del in &self.deletes {
            if !rng.gen_bool(del.prob) {
                continue;
            }
            let target = match &del.target {
                DeleteTarget::Named(n) => n.clone(),
                DeleteTarget::RandomFirstParty => {
                    if first_party_cookies.is_empty() {
                        continue;
                    }
                    first_party_cookies[rng.gen_range(0..first_party_cookies.len())].clone()
                }
            };
            ops.push(ScriptOp::Defer {
                delay_ms: rng.gen_range(1500..3200),
                ops: vec![ScriptOp::DeleteCookie {
                    target,
                    via_store: del.via_store,
                }],
                lose_attribution: false,
            });
        }

        if self.dom_mutate_prob > 0.0 && rng.gen_bool(self.dom_mutate_prob) {
            ops.push(ScriptOp::DomMutate {
                kind: cg_script::DomMutationKind::Content,
                foreign_target: true,
            });
        }

        ops
    }
}

/// The registry of all vendors: core (named) plus long-tail (generated).
#[derive(Debug, Clone)]
pub struct VendorRegistry {
    vendors: Vec<VendorSpec>,
    by_domain: HashMap<String, VendorId>,
    core_count: usize,
}

impl VendorRegistry {
    /// Builds a registry from the core list plus `longtail` extras.
    pub fn new(longtail: Vec<VendorSpec>) -> VendorRegistry {
        let mut vendors = core_vendors();
        let core_count = vendors.len();
        vendors.extend(longtail);
        let by_domain = vendors
            .iter()
            .enumerate()
            .map(|(i, v)| (v.domain.clone(), i))
            .collect();
        VendorRegistry {
            vendors,
            by_domain,
            core_count,
        }
    }

    /// All vendors (core first).
    pub fn all(&self) -> &[VendorSpec] {
        &self.vendors
    }

    /// Number of core (named) vendors.
    pub fn core_count(&self) -> usize {
        self.core_count
    }

    /// Lookup by eTLD+1.
    pub fn by_domain(&self, domain: &str) -> Option<&VendorSpec> {
        self.by_domain.get(domain).map(|&i| &self.vendors[i])
    }

    /// Id lookup by eTLD+1.
    pub fn id_of(&self, domain: &str) -> Option<VendorId> {
        self.by_domain.get(domain).copied()
    }

    /// Vendor by id.
    pub fn get(&self, id: VendorId) -> &VendorSpec {
        &self.vendors[id]
    }

    /// Ad/tracking domains (for filter-list generation), split by rough
    /// list category.
    pub fn filter_list_inputs(&self) -> cg_filterlist_inputs::ListInputsLike {
        let mut ads = Vec::new();
        let mut tracking = Vec::new();
        let mut social = Vec::new();
        let mut annoyance = Vec::new();
        for v in &self.vendors {
            match v.category {
                VendorCategory::AdExchange => ads.push(v.domain.clone()),
                VendorCategory::Analytics | VendorCategory::TagManager => {
                    tracking.push(v.domain.clone())
                }
                VendorCategory::SocialWidget => social.push(v.domain.clone()),
                VendorCategory::ConsentManager => annoyance.push(v.domain.clone()),
                _ => {}
            }
        }
        cg_filterlist_inputs::ListInputsLike {
            ads,
            tracking,
            social,
            annoyance,
        }
    }
}

/// A tiny seam so `cg-webgen` does not depend on `cg-filterlist`
/// directly: the analysis layer converts this into real `ListInputs`.
pub mod cg_filterlist_inputs {
    /// Domain lists destined for the synthetic filter lists.
    #[derive(Debug, Clone, Default)]
    pub struct ListInputsLike {
        /// Advertising domains.
        pub ads: Vec<String>,
        /// Tracking/analytics domains.
        pub tracking: Vec<String>,
        /// Social-widget domains.
        pub social: Vec<String>,
        /// Consent/annoyance domains.
        pub annoyance: Vec<String>,
    }
}

const YEAR: i64 = 31_536_000;
const DAY: i64 = 86_400;

/// Builds the ~50 named core vendors.
#[allow(clippy::vec_init_then_push)]
pub fn core_vendors() -> Vec<VendorSpec> {
    let mut v: Vec<VendorSpec> = Vec::new();

    // ---- Google stack -------------------------------------------------
    let mut gtm = VendorSpec::base(
        "googletagmanager.com",
        "www.googletagmanager.com",
        "/gtm.js",
        VendorCategory::TagManager,
        46.0,
    );
    gtm.sets = vec![
        CookieSpec::new("_ga", ValueSpec::GaStyle, Some(2 * YEAR), 0.92),
        CookieSpec::new("_gcl_au", ValueSpec::GaStyle, Some(90 * DAY), 0.70),
    ];
    gtm.reads_all_prob = 0.9;
    gtm.exfils = vec![ExfilSpec {
        dests: vec![
            "www.google-analytics.com".into(),
            "stats.g.doubleclick.net".into(),
        ],
        path: "/g/collect".into(),
        selection: ExfilSelection::Named(vec!["_ga".into(), "_gcl_au".into(), "_fplc".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Beacon,
        prob: 0.85,
        via_store: false,
        extra_dest_samples: 0,
    }];
    gtm.overwrites = vec![
        OverwriteSpec {
            target: OverwriteTarget::Named("_ga".into()),
            value: ValueSpec::GaStyle,
            prob: 0.20,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::Named("_gid".into()),
            value: ValueSpec::GaStyle,
            prob: 0.07,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::GenericName,
            value: ValueSpec::HexId(16),
            prob: 0.03,
            blind: true,
        },
    ];
    gtm.inject_domains = Vec::new(); // GA4: gtm.js is the analytics tag
    gtm.inject_pool_count = (5, 13);
    v.push(gtm);

    let mut ga = VendorSpec::base(
        "google-analytics.com",
        "www.google-analytics.com",
        "/analytics.js",
        VendorCategory::Analytics,
        30.0,
    );
    ga.sets = vec![
        CookieSpec::new("_gid", ValueSpec::GaStyle, Some(DAY), 0.9),
        CookieSpec::new("_ga", ValueSpec::GaStyle, Some(2 * YEAR), 0.12),
        CookieSpec::new("__utma", ValueSpec::GaStyle, Some(2 * YEAR), 0.12),
        CookieSpec::new("__utmb", ValueSpec::GaStyle, Some(1800), 0.10),
        CookieSpec::new("__utmz", ValueSpec::GaStyle, Some(180 * DAY), 0.10),
    ];
    ga.reads_all_prob = 0.95;
    ga.exfils = vec![ExfilSpec {
        dests: vec!["www.google-analytics.com".into()],
        path: "/collect".into(),
        selection: ExfilSelection::Named(vec![
            "_ga".into(),
            "_gid".into(),
            "_gcl_au".into(),
            "__utma".into(),
            "__utmb".into(),
            "__utmz".into(),
        ]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.42,
        via_store: false,
        extra_dest_samples: 0,
    }];
    ga.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("_ga".into()),
        value: ValueSpec::GaStyle,
        prob: 0.06,
        blind: false,
    }];
    v.push(ga);

    let mut dc = VendorSpec::base(
        "doubleclick.net",
        "securepubads.g.doubleclick.net",
        "/tag/js/gpt.js",
        VendorCategory::AdExchange,
        22.0,
    );
    dc.sets = vec![CookieSpec::new(
        "test_cookie",
        ValueSpec::Short,
        Some(900),
        0.8,
    )];
    dc.reads_all_prob = 0.95;
    dc.exfils = vec![ExfilSpec {
        dests: vec!["ad.doubleclick.net".into()],
        path: "/rtb/bid".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1, // RTB fan-out
    }];
    dc.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::GenericName,
        value: ValueSpec::HexId(22),
        prob: 0.03,
        blind: true,
    }];
    dc.inject_pool_count = (0, 4);
    v.push(dc);

    let mut gsyn = VendorSpec::base(
        "googlesyndication.com",
        "pagead2.googlesyndication.com",
        "/pagead/js/adsbygoogle.js",
        VendorCategory::AdExchange,
        16.0,
    );
    gsyn.sets = vec![CookieSpec::new(
        "__gads",
        ValueSpec::HexId(24),
        Some(390 * DAY),
        0.85,
    )];
    gsyn.reads_all_prob = 0.9;
    gsyn.exfils = vec![ExfilSpec {
        dests: vec!["pagead2.googlesyndication.com".into()],
        path: "/pagead/ads".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 2,
    }];
    gsyn.inject_pool_count = (0, 4);
    v.push(gsyn);

    // ---- Meta ----------------------------------------------------------
    let mut fb = VendorSpec::base(
        "facebook.net",
        "connect.facebook.net",
        "/en_US/fbevents.js",
        VendorCategory::SocialWidget,
        24.0,
    );
    fb.sets = vec![CookieSpec::new(
        "_fbp",
        ValueSpec::FbpStyle,
        Some(90 * DAY),
        0.95,
    )];
    fb.reads_all_prob = 0.9;
    fb.exfils = vec![ExfilSpec {
        dests: vec!["www.facebook.com".into()],
        path: "/tr/".into(),
        selection: ExfilSelection::Named(vec!["_fbp".into(), "fblo_state".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.85,
        via_store: false,
        extra_dest_samples: 0,
    }];
    fb.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("_fbp".into()),
        value: ValueSpec::FbpStyle,
        prob: 0.16,
        blind: false,
    }];
    v.push(fb);

    // ---- Microsoft -----------------------------------------------------
    let mut bing = VendorSpec::base(
        "bing.com",
        "bat.bing.com",
        "/bat.js",
        VendorCategory::AdExchange,
        12.0,
    );
    bing.sets = vec![
        CookieSpec::new("_uetsid", ValueSpec::HexId(32), Some(DAY), 0.9),
        CookieSpec::new("_uetvid", ValueSpec::HexId(32), Some(390 * DAY), 0.9),
    ];
    bing.reads_all_prob = 0.85;
    bing.exfils = vec![ExfilSpec {
        dests: vec!["bat.bing.com".into()],
        path: "/action/0".into(),
        selection: ExfilSelection::Named(vec!["_uetsid".into(), "_uetvid".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(bing);

    let mut licdn = VendorSpec::base(
        "licdn.com",
        "snap.licdn.com",
        "/li.lms-analytics/insight.min.js",
        VendorCategory::Analytics,
        9.0,
    );
    licdn.sets = vec![CookieSpec::new(
        "li_fat_id",
        ValueSpec::Uuid,
        Some(30 * DAY),
        0.6,
    )];
    licdn.reads_all_prob = 0.95;
    // §5.4 case study: targeted parsing of _ga/_gcl_au, Base64 segments.
    licdn.exfils = vec![ExfilSpec {
        dests: vec!["px.ads.linkedin.com".into()],
        path: "/attribution_trigger".into(),
        selection: ExfilSelection::Named(vec!["_ga".into(), "_gcl_au".into(), "_fplc".into()]),
        segment: SegmentPolicy::LongestSegment,
        encoding: Encoding::Base64,
        kind: RequestKind::Image,
        prob: 0.4,
        via_store: false,
        extra_dest_samples: 0,
    }];
    v.push(licdn);

    let mut clarity = VendorSpec::base(
        "clarity.ms",
        "www.clarity.ms",
        "/tag/clarity.js",
        VendorCategory::Analytics,
        8.0,
    );
    clarity.sets = vec![CookieSpec::new(
        "_clck",
        ValueSpec::HexId(16),
        Some(YEAR),
        0.9,
    )];
    clarity.reads_all_prob = 0.8;
    clarity.exfils = vec![ExfilSpec {
        dests: vec!["x.clarity.ms".into()],
        path: "/collect".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Beacon,
        prob: 0.6,
        via_store: false,
        extra_dest_samples: 0,
    }];
    v.push(clarity);

    // ---- Criteo / RTB ----------------------------------------------------
    let mut criteo = VendorSpec::base(
        "criteo.net",
        "dynamic.criteo.net",
        "/js/ld/ld.js",
        VendorCategory::AdExchange,
        10.0,
    );
    criteo.sets = vec![CookieSpec::new(
        "cto_bundle",
        ValueSpec::HexId(194),
        Some(390 * DAY),
        0.9,
    )];
    criteo.reads_all_prob = 0.9;
    criteo.exfils = vec![ExfilSpec {
        dests: vec!["sslwidget.criteo.com".into()],
        path: "/event".into(),
        selection: ExfilSelection::Named(vec!["cto_bundle".into(), "_fbp".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    criteo.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("cto_bundle".into()),
        value: ValueSpec::HexId(258),
        prob: 0.14,
        blind: false,
    }];
    v.push(criteo);

    let mut pubmatic = VendorSpec::base(
        "pubmatic.com",
        "ads.pubmatic.com",
        "/AdServer/js/pwt.js",
        VendorCategory::AdExchange,
        8.0,
    );
    pubmatic.sets = vec![
        CookieSpec::new("PugT", ValueSpec::HexId(10), Some(30 * DAY), 0.85),
        CookieSpec::new("SPugT", ValueSpec::HexId(10), Some(30 * DAY), 0.8),
    ];
    pubmatic.reads_all_prob = 0.9;
    pubmatic.exfils = vec![ExfilSpec {
        dests: vec!["image8.pubmatic.com".into()],
        path: "/AdServer/PugMaster".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 3,
    }];
    // §5.5 case study: Pubmatic overwrites Criteo's cto_bundle.
    pubmatic.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("cto_bundle".into()),
        value: ValueSpec::HexId(258),
        prob: 0.17,
        blind: false,
    }];
    pubmatic.inject_pool_count = (0, 2);
    v.push(pubmatic);

    let mut openx = VendorSpec::base(
        "openx.net",
        "us-u.openx.net",
        "/w/1.0/jstag",
        VendorCategory::AdExchange,
        7.0,
    );
    openx.sets = vec![
        CookieSpec::new("i", ValueSpec::Uuid, Some(390 * DAY), 0.85),
        CookieSpec::new("pd", ValueSpec::HexId(40), Some(390 * DAY), 0.8),
    ];
    openx.reads_all_prob = 0.9;
    openx.exfils = vec![ExfilSpec {
        dests: vec!["us-ads.openx.net".into()],
        path: "/w/1.0/pd".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    openx.inject_pool_count = (0, 2);
    v.push(openx);

    let mut amazon = VendorSpec::base(
        "amazon-adsystem.com",
        "c.amazon-adsystem.com",
        "/aax2/apstag.js",
        VendorCategory::AdExchange,
        9.0,
    );
    amazon.sets = vec![CookieSpec::new(
        "ad-id",
        ValueSpec::HexId(22),
        Some(230 * DAY),
        0.8,
    )];
    amazon.reads_all_prob = 0.9;
    amazon.exfils = vec![ExfilSpec {
        dests: vec!["s.amazon-adsystem.com".into()],
        path: "/ecm3".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    amazon.inject_pool_count = (0, 2);
    v.push(amazon);

    // ---- HubSpot family -------------------------------------------------
    for (domain, host, path, weight) in [
        ("hubspot.com", "js.hubspot.com", "/analytics.js", 6.0),
        ("hsforms.net", "js.hsforms.net", "/forms/embed/v2.js", 3.5),
        (
            "hscollectedforms.net",
            "js.hscollectedforms.net",
            "/collectedforms.js",
            3.0,
        ),
        (
            "hsleadflows.net",
            "js.hsleadflows.net",
            "/leadflows.js",
            2.5,
        ),
        (
            "usemessages.com",
            "js.usemessages.com",
            "/conversations-embed.js",
            2.0,
        ),
    ] {
        let mut hs = VendorSpec::base(domain, host, path, VendorCategory::Analytics, weight);
        if domain == "hubspot.com" {
            hs.sets = vec![
                CookieSpec::new("hubspotutk", ValueSpec::HexId(32), Some(180 * DAY), 0.9),
                CookieSpec::new("__hstc", ValueSpec::GaStyle, Some(180 * DAY), 0.85),
            ];
        }
        hs.reads_all_prob = 0.9;
        hs.exfils = vec![ExfilSpec {
            dests: vec!["track.hubspot.com".into(), "forms.hubspot.com".into()],
            path: "/__ptq.gif".into(),
            selection: ExfilSelection::Named(vec![
                "_ga".into(),
                "_gid".into(),
                "_gcl_au".into(),
                "hubspotutk".into(),
                "__hstc".into(),
            ]),
            segment: SegmentPolicy::Full,
            encoding: Encoding::Plain,
            kind: RequestKind::Image,
            prob: 0.35,
            via_store: false,
            extra_dest_samples: 0,
        }];
        v.push(hs);
    }

    // ---- Yandex ----------------------------------------------------------
    let mut yandex = VendorSpec::base(
        "yandex.ru",
        "mc.yandex.ru",
        "/metrika/tag.js",
        VendorCategory::Analytics,
        7.0,
    );
    yandex.sets = vec![
        CookieSpec::new("_ym_uid", ValueSpec::HexId(19), Some(YEAR), 0.9),
        CookieSpec::new("_ym_d", ValueSpec::HexId(10), Some(YEAR), 0.9),
    ];
    yandex.reads_all_prob = 0.95;
    yandex.exfils = vec![ExfilSpec {
        dests: vec!["mc.yandex.ru".into()],
        path: "/watch/".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.85,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(yandex);

    // ---- Content/ad management ------------------------------------------
    for (domain, host, path, weight, injects) in [
        ("adthrive.com", "ads.adthrive.com", "/sites/min.js", 4.0, 2),
        (
            "mediavine.com",
            "scripts.mediavine.com",
            "/tags/site.js",
            4.0,
            2,
        ),
        (
            "pub.network",
            "a.pub.network",
            "/core/pubfig.min.js",
            3.0,
            2,
        ),
        (
            "taboola.com",
            "cdn.taboola.com",
            "/libtrc/loader.js",
            5.0,
            1,
        ),
        (
            "outbrain.com",
            "widgets.outbrain.com",
            "/outbrain.js",
            4.0,
            1,
        ),
    ] {
        let mut m = VendorSpec::base(domain, host, path, VendorCategory::AdExchange, weight);
        m.sets = vec![CookieSpec::new(
            &format!("_{}_id", domain.split('.').next().unwrap()),
            ValueSpec::Uuid,
            Some(YEAR),
            0.7,
        )];
        m.reads_all_prob = 0.9;
        m.exfils = vec![ExfilSpec {
            dests: vec![host.to_string()],
            path: "/sync".into(),
            selection: ExfilSelection::Sample(2),
            segment: SegmentPolicy::Full,
            encoding: Encoding::Plain,
            kind: RequestKind::Xhr,
            prob: 0.75,
            via_store: false,
            extra_dest_samples: 1,
        }];
        m.inject_pool_count = (1, injects + 3);
        v.push(m);
    }

    // ---- Consent managers -------------------------------------------------
    let mut onetrust = VendorSpec::base(
        "cookielaw.org",
        "cdn.cookielaw.org",
        "/scripttemplates/otSDKStub.js",
        VendorCategory::ConsentManager,
        7.0,
    );
    onetrust.sets = vec![
        CookieSpec::new("OptanonConsent", ValueSpec::ConsentString, Some(YEAR), 0.95),
        CookieSpec::new("OptanonAlertBoxClosed", ValueSpec::Short, Some(YEAR), 0.9),
    ];
    onetrust.reads_all_prob = 0.95;
    onetrust.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("OptanonConsent".into()),
        value: ValueSpec::ConsentString,
        prob: 0.15,
        blind: false,
    }];
    onetrust.deletes = vec![
        DeleteSpec {
            target: DeleteTarget::Named("_fbp".into()),
            prob: 0.010,
            via_store: false,
        },
        DeleteSpec {
            target: DeleteTarget::Named("_uetvid".into()),
            prob: 0.008,
            via_store: false,
        },
    ];
    v.push(onetrust);

    for (domain, host, path, weight, del_prob) in [
        (
            "cdn-cookieyes.com",
            "cdn-cookieyes.com",
            "/client_data/cky.js",
            3.0,
            0.026,
        ),
        (
            "cookie-script.com",
            "cdn.cookie-script.com",
            "/s/cs.js",
            2.5,
            0.026,
        ),
        (
            "civiccomputing.com",
            "cc.cdn.civiccomputing.com",
            "/9/cookieControl-9.x.min.js",
            1.5,
            0.02,
        ),
        (
            "cookiebot.com",
            "consent.cookiebot.com",
            "/uc.js",
            2.5,
            0.016,
        ),
    ] {
        let mut cm = VendorSpec::base(domain, host, path, VendorCategory::ConsentManager, weight);
        cm.sets = vec![CookieSpec::new(
            "cky-consent",
            ValueSpec::Short,
            Some(YEAR),
            0.9,
        )];
        cm.reads_all_prob = 0.95;
        cm.deletes = vec![
            DeleteSpec {
                target: DeleteTarget::Named("_uetvid".into()),
                prob: del_prob,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::Named("_uetsid".into()),
                prob: del_prob * 0.9,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::Named("_ga".into()),
                prob: del_prob * 0.55,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::Named("_fbp".into()),
                prob: del_prob * 0.45,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::Named("_gid".into()),
                prob: del_prob * 0.4,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::Named("_gcl_au".into()),
                prob: del_prob * 0.4,
                via_store: false,
            },
            DeleteSpec {
                target: DeleteTarget::RandomFirstParty,
                prob: (del_prob * 4.5).min(0.9),
                via_store: false,
            },
        ];
        v.push(cm);
    }

    // Osano: the §5.4 cross-company case study (_fbp → Criteo).
    let mut osano = VendorSpec::base(
        "osano.com",
        "cmp.osano.com",
        "/1vX3GkPazR/osano.js",
        VendorCategory::ConsentManager,
        2.0,
    );
    osano.sets = vec![CookieSpec::new(
        "osano_consentmanager",
        ValueSpec::Uuid,
        Some(YEAR),
        0.9,
    )];
    osano.reads_all_prob = 0.95;
    osano.exfils = vec![ExfilSpec {
        dests: vec!["sslwidget.criteo.com".into()],
        path: "/event".into(),
        selection: ExfilSelection::Named(vec!["_fbp".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 0,
    }];
    osano.deletes = vec![DeleteSpec {
        target: DeleteTarget::Named("_fbp".into()),
        prob: 0.02,
        via_store: false,
    }];
    v.push(osano);

    let mut ketch = VendorSpec::base(
        "ketchjs.com",
        "global.ketchjs.com",
        "/web/v2/config/boot.js",
        VendorCategory::ConsentManager,
        1.5,
    );
    ketch.sets = vec![CookieSpec::new(
        "us_privacy",
        ValueSpec::UsPrivacy,
        Some(YEAR),
        0.95,
    )];
    ketch.reads_all_prob = 0.9;
    v.push(ketch);

    // ---- Tag managers / CDPs ----------------------------------------------
    let mut tealium = VendorSpec::base(
        "tiqcdn.com",
        "tags.tiqcdn.com",
        "/utag/main/prod/utag.js",
        VendorCategory::TagManager,
        4.0,
    );
    tealium.sets = vec![CookieSpec::new(
        "utag_main",
        ValueSpec::GaStyle,
        Some(YEAR),
        0.95,
    )];
    tealium.reads_all_prob = 0.95;
    tealium.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("utag_main".into()),
        value: ValueSpec::GaStyle,
        prob: 0.18,
        blind: false,
    }];
    tealium.deletes = vec![
        DeleteSpec {
            target: DeleteTarget::Named("_uetvid".into()),
            prob: 0.035,
            via_store: false,
        },
        DeleteSpec {
            target: DeleteTarget::Named("_uetsid".into()),
            prob: 0.035,
            via_store: false,
        },
    ];
    tealium.inject_pool_count = (3, 10);
    v.push(tealium);

    let mut segment = VendorSpec::base(
        "segment.com",
        "cdn.segment.com",
        "/analytics.js/v1/analytics.min.js",
        VendorCategory::TagManager,
        4.5,
    );
    segment.sets = vec![
        CookieSpec::new("ajs_anonymous_id", ValueSpec::Uuid, Some(YEAR), 0.95),
        CookieSpec::new("ajs_user_id", ValueSpec::HexId(24), Some(YEAR), 0.4),
    ];
    segment.reads_all_prob = 0.95;
    segment.exfils = vec![ExfilSpec {
        dests: vec!["api.segment.io".into()],
        path: "/v1/p".into(),
        selection: ExfilSelection::Named(vec![
            "ajs_anonymous_id".into(),
            "ajs_user_id".into(),
            "_ga".into(),
            "_fbp".into(),
        ]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 0,
    }];
    segment.overwrites = vec![
        OverwriteSpec {
            target: OverwriteTarget::Named("_fbp".into()),
            value: ValueSpec::FbpStyle,
            prob: 0.15,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::Named("_uetvid".into()),
            value: ValueSpec::HexId(32),
            prob: 0.12,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::Named("_uetsid".into()),
            value: ValueSpec::HexId(32),
            prob: 0.11,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::Named("ajs_anonymous_id".into()),
            value: ValueSpec::Uuid,
            prob: 0.08,
            blind: false,
        },
    ];
    segment.deletes = vec![
        DeleteSpec {
            target: DeleteTarget::Named("_uetvid".into()),
            prob: 0.016,
            via_store: false,
        },
        DeleteSpec {
            target: DeleteTarget::Named("ajs_user_id".into()),
            prob: 0.012,
            via_store: false,
        },
    ];
    segment.inject_pool_count = (1, 6);
    v.push(segment);

    let mut adobe = VendorSpec::base(
        "adobedtm.com",
        "assets.adobedtm.com",
        "/launch.min.js",
        VendorCategory::TagManager,
        3.5,
    );
    adobe.sets = vec![CookieSpec::new(
        "AMCV_",
        ValueSpec::HexId(38),
        Some(2 * YEAR),
        0.9,
    )];
    adobe.reads_all_prob = 0.9;
    adobe.exfils = vec![ExfilSpec {
        dests: vec!["dpm.demdex.net".into()],
        path: "/id".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.7,
        via_store: false,
        extra_dest_samples: 1,
    }];
    adobe.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::GenericName,
        value: ValueSpec::HexId(20),
        prob: 0.06,
        blind: true,
    }];
    adobe.inject_pool_count = (1, 6);
    v.push(adobe);

    // ---- Error/perf monitoring ---------------------------------------------
    let mut sentry = VendorSpec::base(
        "sentry-cdn.com",
        "browser.sentry-cdn.com",
        "/bundle.min.js",
        VendorCategory::Performance,
        5.0,
    );
    sentry.reads_all_prob = 0.6;
    // Table 5: "Functional Software" tops the _fbp overwriter list.
    sentry.overwrites = vec![
        OverwriteSpec {
            target: OverwriteTarget::Named("_fbp".into()),
            value: ValueSpec::FbpStyle,
            prob: 0.13,
            blind: false,
        },
        OverwriteSpec {
            target: OverwriteTarget::Named("ajs_anonymous_id".into()),
            value: ValueSpec::Uuid,
            prob: 0.06,
            blind: false,
        },
    ];
    v.push(sentry);

    for (domain, host, path, weight) in [
        (
            "newrelic.com",
            "js-agent.newrelic.com",
            "/nr-loader.min.js",
            4.0,
        ),
        ("dynatrace.com", "js.dynatrace.com", "/jstag.js", 2.0),
        (
            "go-mpulse.net",
            "c.go-mpulse.net",
            "/boomerang/BOOM.js",
            2.0,
        ),
    ] {
        let mut p = VendorSpec::base(domain, host, path, VendorCategory::Performance, weight);
        p.reads_all_prob = 0.5;
        p.overwrites = vec![OverwriteSpec {
            target: OverwriteTarget::Named("OptanonConsent".into()),
            value: ValueSpec::ConsentString,
            prob: if domain == "newrelic.com" {
                0.07
            } else {
                0.035
            },
            blind: false,
        }];
        v.push(p);
    }

    // ---- A/B testing ---------------------------------------------------------
    for (domain, host, path, weight, own) in [
        (
            "optimizely.com",
            "cdn.optimizely.com",
            "/js/optimizely.js",
            3.0,
            "optimizelyEndUserId",
        ),
        (
            "visualwebsiteoptimizer.com",
            "dev.visualwebsiteoptimizer.com",
            "/j.php",
            2.5,
            "_vwo_uuid",
        ),
    ] {
        let mut ab = VendorSpec::base(domain, host, path, VendorCategory::AbTesting, weight);
        ab.sets = vec![CookieSpec::new(own, ValueSpec::Uuid, Some(180 * DAY), 0.9)];
        ab.reads_all_prob = 0.85;
        ab.overwrites = vec![OverwriteSpec {
            target: OverwriteTarget::Named("utag_main".into()),
            value: ValueSpec::GaStyle,
            prob: 0.06,
            blind: false,
        }];
        v.push(ab);
    }

    // ---- Chat / support --------------------------------------------------------
    let mut olark = VendorSpec::base(
        "olark.com",
        "static.olark.com",
        "/jsclient/loader.js",
        VendorCategory::CustomerSupport,
        2.0,
    );
    olark.sets = vec![CookieSpec::new(
        "olfsk",
        ValueSpec::HexId(20),
        Some(2 * YEAR),
        0.9,
    )];
    olark.reads_all_prob = 0.7;
    olark.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::Named("_gid".into()),
        value: ValueSpec::GaStyle,
        prob: 0.10,
        blind: false,
    }];
    olark.feature = Some(("chat".into(), "olfsk".into(), None));
    v.push(olark);

    let mut intercom = VendorSpec::base(
        "intercom.io",
        "widget.intercom.io",
        "/widget/app.js",
        VendorCategory::CustomerSupport,
        2.5,
    );
    intercom.sets = vec![CookieSpec::new(
        "intercom-id",
        ValueSpec::Uuid,
        Some(270 * DAY),
        0.9,
    )];
    intercom.reads_all_prob = 0.6;
    intercom.feature = Some(("chat".into(), "intercom-id".into(), None));
    v.push(intercom);

    // ---- Misc named trackers (Tables 2/5 rows) ----------------------------------
    let mut marketo = VendorSpec::base(
        "marketo.net",
        "munchkin.marketo.net",
        "/munchkin.js",
        VendorCategory::Analytics,
        2.0,
    );
    marketo.sets = vec![CookieSpec::new(
        "_mkto_trk",
        ValueSpec::HexId(40),
        Some(2 * YEAR),
        0.9,
    )];
    marketo.reads_all_prob = 0.85;
    marketo.exfils = vec![ExfilSpec {
        dests: vec!["munchkin.marketo.net".into()],
        path: "/munchkin".into(),
        selection: ExfilSelection::Named(vec!["_mkto_trk".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(marketo);

    let mut lotame = VendorSpec::base(
        "crwdcntrl.net",
        "tags.crwdcntrl.net",
        "/lt/c/16589/lt.min.js",
        VendorCategory::AdExchange,
        1.8,
    );
    lotame.sets = vec![CookieSpec::new(
        "lotame_domain_check",
        ValueSpec::HexId(12),
        Some(DAY),
        0.9,
    )];
    lotame.reads_all_prob = 0.9;
    lotame.exfils = vec![ExfilSpec {
        dests: vec!["bcp.crwdcntrl.net".into()],
        path: "/5/c".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.8,
        via_store: false,
        extra_dest_samples: 2,
    }];
    v.push(lotame);

    let mut statcounter = VendorSpec::base(
        "statcounter.com",
        "www.statcounter.com",
        "/counter/counter.js",
        VendorCategory::Analytics,
        1.6,
    );
    statcounter.sets = vec![CookieSpec::new(
        "sc_is_visitor_unique",
        ValueSpec::HexId(16),
        Some(2 * YEAR),
        0.9,
    )];
    statcounter.reads_all_prob = 0.85;
    statcounter.exfils = vec![ExfilSpec {
        dests: vec!["c.statcounter.com".into()],
        path: "/t.php".into(),
        selection: ExfilSelection::Named(vec!["sc_is_visitor_unique".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(statcounter);

    let mut gaconn = VendorSpec::base(
        "gaconnector.com",
        "tracker.gaconnector.com",
        "/gaconnector.js",
        VendorCategory::Analytics,
        1.2,
    );
    gaconn.sets = vec![
        CookieSpec::new(
            "gaconnector_GA_Client_ID",
            ValueSpec::GaStyle,
            Some(YEAR),
            0.9,
        ),
        CookieSpec::new(
            "gaconnector_GA_Session_ID",
            ValueSpec::HexId(16),
            Some(DAY),
            0.9,
        ),
    ];
    gaconn.reads_all_prob = 0.95;
    gaconn.exfils = vec![ExfilSpec {
        dests: vec!["track.gaconnector.com".into()],
        path: "/track".into(),
        selection: ExfilSelection::Named(vec![
            "_ga".into(),
            "gaconnector_GA_Client_ID".into(),
            "gaconnector_GA_Session_ID".into(),
        ]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.45,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(gaconn);

    let mut yimg = VendorSpec::base(
        "yimg.jp",
        "s.yimg.jp",
        "/images/listing/tool/cv/ytag.js",
        VendorCategory::AdExchange,
        1.2,
    );
    yimg.sets = vec![CookieSpec::new(
        "_yjsu_yjad",
        ValueSpec::GaStyle,
        Some(YEAR),
        0.9,
    )];
    yimg.reads_all_prob = 0.85;
    yimg.exfils = vec![ExfilSpec {
        dests: vec!["b97.yahoo.co.jp".into()],
        path: "/bid".into(),
        selection: ExfilSelection::Named(vec![
            "_yjsu_yjad".into(),
            "_ga".into(),
            "us_privacy".into(),
        ]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.35,
        via_store: false,
        extra_dest_samples: 1,
    }];
    v.push(yimg);

    let mut cxense = VendorSpec::base(
        "cxense.com",
        "cdn.cxense.com",
        "/cx.js",
        VendorCategory::Analytics,
        1.2,
    );
    cxense.sets = vec![CookieSpec::new(
        "_cookie_test",
        ValueSpec::Short,
        Some(DAY),
        0.9,
    )];
    cxense.reads_all_prob = 0.8;
    cxense.overwrites = vec![OverwriteSpec {
        target: OverwriteTarget::GenericName,
        value: ValueSpec::Short,
        prob: 0.15,
        blind: true,
    }];
    cxense.deletes = vec![DeleteSpec {
        target: DeleteTarget::Named("_cookie_test".into()),
        prob: 0.05,
        via_store: false,
    }];
    v.push(cxense);

    let mut snap = VendorSpec::base(
        "sc-static.net",
        "sc-static.net",
        "/scevent.min.js",
        VendorCategory::SocialWidget,
        2.0,
    );
    snap.sets = vec![
        CookieSpec::new("_scid", ValueSpec::Uuid, Some(390 * DAY), 0.9),
        CookieSpec::new("_screload", ValueSpec::Short, Some(DAY), 0.5),
    ];
    snap.reads_all_prob = 0.8;
    snap.exfils = vec![ExfilSpec {
        dests: vec!["tr.snapchat.com".into()],
        path: "/p".into(),
        selection: ExfilSelection::Named(vec!["_scid".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.32,
        via_store: false,
        extra_dest_samples: 0,
    }];
    snap.deletes = vec![DeleteSpec {
        target: DeleteTarget::Named("_screload".into()),
        prob: 0.028,
        via_store: false,
    }];
    v.push(snap);

    let mut tiktok = VendorSpec::base(
        "analytics-tiktok.com",
        "analytics.tiktok.com",
        "/i18n/pixel/events.js",
        VendorCategory::SocialWidget,
        3.0,
    );
    tiktok.sets = vec![CookieSpec::new(
        "_ttp",
        ValueSpec::HexId(28),
        Some(390 * DAY),
        0.9,
    )];
    tiktok.reads_all_prob = 0.85;
    tiktok.exfils = vec![ExfilSpec {
        dests: vec!["analytics.tiktok.com".into()],
        path: "/api/v2/pixel".into(),
        selection: ExfilSelection::Named(vec!["_ttp".into(), "_ga".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.32,
        via_store: false,
        extra_dest_samples: 0,
    }];
    v.push(tiktok);

    let mut hotjar = VendorSpec::base(
        "hotjar.com",
        "static.hotjar.com",
        "/c/hotjar.js",
        VendorCategory::Analytics,
        4.5,
    );
    hotjar.sets = vec![CookieSpec::new(
        "_hjSessionUser",
        ValueSpec::Uuid,
        Some(YEAR),
        0.9,
    )];
    hotjar.reads_all_prob = 0.8;
    hotjar.exfils = vec![ExfilSpec {
        dests: vec!["in.hotjar.com".into()],
        path: "/api/v2/client".into(),
        selection: ExfilSelection::Named(vec!["_hjSessionUser".into()]),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.6,
        via_store: false,
        extra_dest_samples: 0,
    }];
    v.push(hotjar);

    // LiveIntent — Fig. 2 top-20 exfiltrator.
    let mut liadm = VendorSpec::base(
        "liadm.com",
        "b-code.liadm.com",
        "/lc2.min.js",
        VendorCategory::AdExchange,
        1.5,
    );
    liadm.sets = vec![CookieSpec::new(
        "_li_dcdm_c",
        ValueSpec::HexId(20),
        Some(30 * DAY),
        0.8,
    )];
    liadm.reads_all_prob = 0.9;
    liadm.exfils = vec![ExfilSpec {
        dests: vec!["rp.liadm.com".into()],
        path: "/j".into(),
        selection: ExfilSelection::Sample(2),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        prob: 0.8,
        via_store: false,
        extra_dest_samples: 2,
    }];
    v.push(liadm);

    for (domain, host, weight) in [
        ("mountain.com", "dx.mountain.com", 1.2),
        ("script.ac", "cdn.script.ac", 1.2),
        ("cloudfront.net", "d1af033869koo7.cloudfront.net", 3.0),
    ] {
        let mut m = VendorSpec::base(domain, host, "/tag.js", VendorCategory::AdExchange, weight);
        m.reads_all_prob = 0.9;
        m.exfils = vec![ExfilSpec {
            dests: vec![host.to_string()],
            path: "/e".into(),
            selection: ExfilSelection::Sample(2),
            segment: SegmentPolicy::Full,
            encoding: Encoding::Plain,
            kind: RequestKind::Image,
            prob: 0.8,
            via_store: false,
            extra_dest_samples: 2,
        }];
        if domain == "script.ac" {
            m.overwrites = vec![OverwriteSpec {
                target: OverwriteTarget::Named("cto_bundle".into()),
                value: ValueSpec::HexId(258),
                prob: 0.09,
                blind: false,
            }];
        }
        if domain == "cloudfront.net" {
            m.overwrites = vec![OverwriteSpec {
                target: OverwriteTarget::GenericName,
                value: ValueSpec::HexId(16),
                prob: 0.05,
                blind: true,
            }];
            m.deletes = vec![DeleteSpec {
                target: DeleteTarget::RandomFirstParty,
                prob: 0.01,
                via_store: false,
            }];
        }
        v.push(m);
    }

    // ---- cookieStore users (§5.2) -----------------------------------------
    let mut shopify = VendorSpec::base(
        "shopifycloud.com",
        "cdn.shopifycloud.com",
        "/perf-kit/shopify-perf-kit-1.6.2.min.js",
        VendorCategory::Commerce,
        0.0, // included only on commerce sites
    );
    shopify.store_sets = vec![CookieSpec::new(
        "keep_alive",
        ValueSpec::HexId(12),
        Some(1800),
        0.95,
    )];
    shopify.reads_all_prob = 0.3;
    v.push(shopify);

    let mut admiral = VendorSpec::base(
        "getadmiral.com",
        "cdn.getadmiral.com",
        "/scripts/admiral.js",
        VendorCategory::AdExchange,
        0.0, // included only on ad-funded content sites
    );
    admiral.store_sets = vec![CookieSpec::new(
        "_awl",
        ValueSpec::CounterTimestampSession,
        Some(7 * DAY),
        0.95,
    )];
    admiral.reads_all_prob = 0.7;
    admiral.exfils = vec![ExfilSpec {
        dests: vec!["collect.getadmiral.com".into()],
        path: "/a".into(),
        selection: ExfilSelection::All,
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Xhr,
        prob: 0.35,
        via_store: true,
        extra_dest_samples: 0,
    }];
    v.push(admiral);

    // ---- SSO providers (Table 3 breakage mechanics) -------------------------
    // Each provider's primary script sets the session cookie; when the
    // flow uses a sibling domain, a second script from that domain
    // performs the dependent read.
    let mut gsso = VendorSpec::base(
        "gstatic.com",
        "accounts.gstatic.com",
        "/gsi/client.js",
        VendorCategory::SsoProvider,
        5.0,
    );
    gsso.sets = vec![CookieSpec::new(
        "g_state",
        ValueSpec::HexId(24),
        Some(180 * DAY),
        0.95,
    )];
    gsso.feature = Some(("sso".into(), "g_state".into(), Some("google.com".into())));
    v.push(gsso);

    let mut mssso = VendorSpec::base(
        "msauth.net",
        "logincdn.msauth.net",
        "/shared/msal-browser.min.js",
        VendorCategory::SsoProvider,
        2.5,
    );
    mssso.sets = vec![CookieSpec::new(
        "msal.session",
        ValueSpec::HexId(32),
        None,
        0.95,
    )];
    mssso.feature = Some(("sso".into(), "msal.session".into(), Some("live.com".into())));
    v.push(mssso);

    let mut fbsso = VendorSpec::base(
        "facebook.com",
        "www.facebook.com",
        "/connect/en_US/sdk.js",
        VendorCategory::SsoProvider,
        2.5,
    );
    fbsso.sets = vec![CookieSpec::new(
        "fblo_state",
        ValueSpec::HexId(24),
        None,
        0.95,
    )];
    fbsso.feature = Some(("sso".into(), "fblo_state".into(), Some("fbcdn.net".into())));
    v.push(fbsso);

    let mut okta = VendorSpec::base(
        "oktacdn.com",
        "global.oktacdn.com",
        "/okta-signin-widget/7/js/okta-sign-in.min.js",
        VendorCategory::SsoProvider,
        1.5,
    );
    okta.sets = vec![CookieSpec::new(
        "okta-oauth-state",
        ValueSpec::HexId(32),
        None,
        0.95,
    )];
    okta.feature = Some(("sso".into(), "okta-oauth-state".into(), None));
    v.push(okta);

    let mut auth0 = VendorSpec::base(
        "auth0.com",
        "cdn.auth0.com",
        "/js/auth0-spa-js/2/auth0-spa-js.production.js",
        VendorCategory::SsoProvider,
        1.5,
    );
    auth0.sets = vec![CookieSpec::new(
        "auth0.is.authenticated",
        ValueSpec::HexId(24),
        None,
        0.95,
    )];
    auth0.feature = Some(("sso".into(), "auth0.is.authenticated".into(), None));
    v.push(auth0);

    // Sibling-domain reader stubs for SSO pairs and the fbcdn messenger
    // case: scripts that only read/probe cookies their sibling set.
    let mut google_reader = VendorSpec::base(
        "google.com",
        "apis.google.com",
        "/js/platform.js",
        VendorCategory::SsoProvider,
        0.0, // only included via SSO pairing
    );
    google_reader.reads_all_prob = 1.0;
    google_reader.feature = Some(("sso".into(), "g_state".into(), None));
    v.push(google_reader);

    let mut live_reader = VendorSpec::base(
        "live.com",
        "login.live.com",
        "/sso/wsfed.js",
        VendorCategory::SsoProvider,
        0.0,
    );
    live_reader.reads_all_prob = 1.0;
    live_reader.feature = Some(("sso".into(), "msal.session".into(), None));
    v.push(live_reader);

    let mut fbcdn = VendorSpec::base(
        "fbcdn.net",
        "static.xx.fbcdn.net",
        "/rsrc.php/messenger.js",
        VendorCategory::SocialWidget,
        0.0,
    );
    fbcdn.reads_all_prob = 1.0;
    fbcdn.feature = Some(("functionality".into(), "fblo_state".into(), None));
    v.push(fbcdn);

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registry_builds_with_unique_domains() {
        let reg = VendorRegistry::new(Vec::new());
        let mut seen = std::collections::HashSet::new();
        for vendor in reg.all() {
            assert!(
                seen.insert(vendor.domain.clone()),
                "duplicate vendor {}",
                vendor.domain
            );
            assert!(
                cg_url::Url::parse(&vendor.script_url()).is_ok(),
                "bad url {}",
                vendor.script_url()
            );
        }
        assert!(
            reg.core_count() >= 45,
            "expected ≥45 core vendors, got {}",
            reg.core_count()
        );
    }

    #[test]
    fn paper_table_vendors_present() {
        let reg = VendorRegistry::new(Vec::new());
        for d in [
            "googletagmanager.com",
            "google-analytics.com",
            "doubleclick.net",
            "facebook.net",
            "bing.com",
            "criteo.net",
            "pubmatic.com",
            "openx.net",
            "hubspot.com",
            "yandex.ru",
            "licdn.com",
            "cookielaw.org",
            "cdn-cookieyes.com",
            "cookie-script.com",
            "tiqcdn.com",
            "segment.com",
            "sentry-cdn.com",
            "marketo.net",
            "crwdcntrl.net",
            "statcounter.com",
            "ketchjs.com",
            "yimg.jp",
            "gaconnector.com",
            "cxense.com",
            "shopifycloud.com",
            "getadmiral.com",
            "osano.com",
        ] {
            assert!(reg.by_domain(d).is_some(), "missing vendor {d}");
        }
    }

    #[test]
    fn behaviors_deterministic_per_seed() {
        let reg = VendorRegistry::new(Vec::new());
        let gtm = reg.by_domain("googletagmanager.com").unwrap();
        let cfg = GenConfig::default();
        let pool = vec!["dest.example.com".to_string()];
        let a = gtm.behavior(&mut StdRng::seed_from_u64(9), &cfg, &pool, &[]);
        let b = gtm.behavior(&mut StdRng::seed_from_u64(9), &cfg, &pool, &[]);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn consent_managers_delete_tracker_cookies() {
        let reg = VendorRegistry::new(Vec::new());
        let cm = reg.by_domain("cdn-cookieyes.com").unwrap();
        let cfg = GenConfig::default();
        // With enough trials, deletion ops must appear.
        let mut saw_delete = false;
        for seed in 0..50 {
            let ops = cm.behavior(
                &mut StdRng::seed_from_u64(seed),
                &cfg,
                &[],
                &["site_sess".to_string()],
            );
            fn has_delete(ops: &[ScriptOp]) -> bool {
                ops.iter().any(|op| match op {
                    ScriptOp::DeleteCookie { .. } => true,
                    ScriptOp::Defer { ops, .. } | ScriptOp::Microtask { ops } => has_delete(ops),
                    _ => false,
                })
            }
            if has_delete(&ops) {
                saw_delete = true;
                break;
            }
        }
        assert!(saw_delete);
    }

    #[test]
    fn shopify_uses_cookie_store() {
        let reg = VendorRegistry::new(Vec::new());
        let sh = reg.by_domain("shopifycloud.com").unwrap();
        assert!(!sh.store_sets.is_empty());
        assert_eq!(sh.store_sets[0].name, "keep_alive");
    }

    #[test]
    fn category_tracking_labels() {
        assert!(VendorCategory::Analytics.is_ad_tracking());
        assert!(VendorCategory::TagManager.is_ad_tracking());
        assert!(!VendorCategory::SsoProvider.is_ad_tracking());
        assert!(!VendorCategory::CustomerSupport.is_ad_tracking());
    }

    #[test]
    fn filter_inputs_cover_categories() {
        let reg = VendorRegistry::new(Vec::new());
        let inputs = reg.filter_list_inputs();
        assert!(inputs.ads.contains(&"doubleclick.net".to_string()));
        assert!(inputs
            .tracking
            .contains(&"google-analytics.com".to_string()));
        assert!(inputs.social.contains(&"facebook.net".to_string()));
        assert!(inputs.annoyance.contains(&"cookielaw.org".to_string()));
    }
}
