//! Synthesizes realistic `Content-Security-Policy` headers for
//! generated sites — the §2.1 experiment's input.
//!
//! Real deployments that use CSP for scripts overwhelmingly allowlist
//! the vendors they intentionally include (otherwise the site breaks on
//! day one), usually with `'unsafe-inline'` because removing inline
//! handlers is expensive. That is exactly the configuration that makes
//! the paper's point: the policy admits every intended third-party
//! script, and once admitted, CSP says nothing about what the script
//! may do to the cookie jar.

use crate::blueprint::SiteBlueprint;
use cg_url::Url;
use std::collections::BTreeSet;

/// How thoroughly the synthesized policy covers the site's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CspStyle {
    /// Allowlist `'self'`, `'unsafe-inline'`, and the hosts of the
    /// site's *markup* (directly included) scripts. Transitively
    /// injected vendors are not listed — the common real-world gap that
    /// silently blocks part of a tag manager's fan-out.
    DirectVendorsOnly,
    /// Additionally allowlist every injectable host the site's vendors
    /// may pull in (the "copy the console errors into the policy until
    /// it stops breaking" endpoint). Admits the whole stack.
    FullStack,
}

/// Builds a `script-src` policy for `site` in the given style. Returns
/// the raw header value, e.g.
/// `script-src 'self' 'unsafe-inline' cdn.vendor.com tags.tm.io`.
pub fn csp_for_site(site: &SiteBlueprint, style: CspStyle) -> String {
    let mut hosts: BTreeSet<String> = BTreeSet::new();
    let push = |url: &str, hosts: &mut BTreeSet<String>| {
        if let Ok(u) = Url::parse(url) {
            hosts.insert(u.host_str().into_owned());
        }
    };
    for page in std::iter::once(&site.landing).chain(site.subpages.iter()) {
        for script in &page.scripts {
            if let Some(u) = &script.url {
                push(u, &mut hosts);
            }
        }
    }
    if style == CspStyle::FullStack {
        for url in site.injectables.keys() {
            push(url, &mut hosts);
        }
    }
    // The site's own host is covered by 'self'.
    let own = format!("www.{}", site.spec.domain);
    hosts.remove(&own);

    let mut policy = String::from("script-src 'self' 'unsafe-inline'");
    for h in hosts {
        policy.push(' ');
        policy.push_str(&h);
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GenConfig, WebGenerator};
    use cg_http::CspPolicy;

    fn site_with_scripts() -> SiteBlueprint {
        let g = WebGenerator::new(GenConfig::small(200), 0xC00C1E);
        (1..=200)
            .map(|r| g.blueprint(r))
            .find(|b| {
                b.spec.crawl_ok
                    && b.landing.scripts.iter().any(|s| s.url.is_some())
                    && !b.injectables.is_empty()
            })
            .expect("site with markup scripts and injectables")
    }

    #[test]
    fn direct_style_admits_markup_scripts() {
        let site = site_with_scripts();
        let header = csp_for_site(&site, CspStyle::DirectVendorsOnly);
        let policy = CspPolicy::parse(&header);
        let doc = Url::parse(&site.landing_url()).unwrap();
        assert!(policy.allows_inline());
        for s in &site.landing.scripts {
            if let Some(u) = &s.url {
                let su = Url::parse(u).unwrap();
                assert!(
                    policy.allows_external(&su, &doc, None),
                    "directly included {u} must be admitted by the site's own policy"
                );
            }
        }
    }

    #[test]
    fn direct_style_blocks_unlisted_injectables() {
        let site = site_with_scripts();
        let header = csp_for_site(&site, CspStyle::DirectVendorsOnly);
        let policy = CspPolicy::parse(&header);
        let doc = Url::parse(&site.landing_url()).unwrap();
        // At least one injectable from a host that is not also a markup
        // script host must be blocked.
        let blocked = site.injectables.keys().any(|u| {
            Url::parse(u)
                .map(|su| !policy.allows_external(&su, &doc, None))
                .unwrap_or(false)
        });
        assert!(
            blocked,
            "DirectVendorsOnly must leave some fan-out unlisted: {header}"
        );
    }

    #[test]
    fn full_stack_admits_everything() {
        let site = site_with_scripts();
        let header = csp_for_site(&site, CspStyle::FullStack);
        let policy = CspPolicy::parse(&header);
        let doc = Url::parse(&site.landing_url()).unwrap();
        for u in site.injectables.keys() {
            let su = Url::parse(u).unwrap();
            assert!(
                policy.allows_external(&su, &doc, None),
                "{u} missing from FullStack policy"
            );
        }
    }

    #[test]
    fn own_host_rides_on_self() {
        let site = site_with_scripts();
        let header = csp_for_site(&site, CspStyle::FullStack);
        assert!(
            !header.contains(&format!("www.{}", site.spec.domain)),
            "own host must be covered by 'self'"
        );
        let policy = CspPolicy::parse(&header);
        let doc = Url::parse(&site.landing_url()).unwrap();
        // Same scheme as the document: 'self' is scheme-sensitive.
        let own = Url::parse(&format!("{}app.js", site.landing_url())).unwrap();
        assert!(policy.allows_external(&own, &doc, None));
    }
}
