//! Generator calibration constants.
//!
//! Every probability that shapes the ecosystem lives here so the
//! calibration experiments (EXPERIMENTS.md) can tune the synthetic web
//! toward the paper's measured marginals in one place.

/// Calibration knobs for [`crate::WebGenerator`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of ranked sites (paper: 20,000).
    pub site_count: usize,
    /// Number of long-tail vendor domains (drives Table 2's >1,100
    /// distinct exfiltrator entities).
    pub longtail_vendors: usize,
    /// Number of long-tail destination-only domains (entities that only
    /// *receive* exfiltrated identifiers).
    pub longtail_destinations: usize,
    /// Probability a site embeds no third-party scripts at all
    /// (paper §5.1: 93.3% have at least one ⇒ 6.7% have none).
    pub no_third_party_prob: f64,
    /// Mean number of *direct* third-party vendors on a site that has any
    /// (indirect inclusions come from tag managers on top of this;
    /// paper §5.6: indirect ≈ 2.5 × direct, ~19 distinct 3p scripts/site).
    pub direct_vendors_mean: f64,
    /// Mean number of long-tail vendors included directly per site.
    pub longtail_per_site_mean: f64,
    /// Probability a site uses `document.cookie` through its own
    /// first-party scripts even when it embeds no vendors (tunes the
    /// §5.2 96.3% document.cookie site share).
    pub first_party_script_prob: f64,
    /// How many cookies the site's own scripts set (mean; paper: 4 per
    /// site from first-party scripts).
    pub first_party_cookies_mean: f64,
    /// Mean number of HTTP `Set-Cookie` cookies served by the site
    /// itself (some HttpOnly).
    pub http_cookies_mean: f64,
    /// Probability a served HTTP cookie is HttpOnly.
    pub http_only_prob: f64,
    /// Probability a site has a consent manager (drives deletions).
    pub consent_manager_prob: f64,
    /// Probability a site has an SSO login flow.
    pub sso_prob: f64,
    /// Given SSO, probability the flow is managed by third-party scripts
    /// from *two sibling domains of the same entity* (breaks under
    /// strict isolation; healed by entity grouping).
    pub sso_same_entity_pair_prob: f64,
    /// Given SSO, probability the flow spans *two unrelated entities*
    /// (breaks even with grouping — the residual 3% of Table 3).
    pub sso_cross_entity_prob: f64,
    /// Probability a site self-hosts a copy of an analytics script on its
    /// own domain (bypasses CookieGuard by design; keeps Fig. 5's
    /// residual cross-domain activity non-zero).
    pub self_hosted_tracker_prob: f64,
    /// Probability a vendor's exfiltration runs in a deferred callback
    /// that loses stack attribution (§8 limitation).
    pub async_attribution_loss_prob: f64,
    /// Mean number of inline scripts per site.
    pub inline_scripts_mean: f64,
    /// Probability a page visit fails to produce complete data
    /// (paper: 14,917 / 20,000 complete ⇒ ~25.4% incomplete).
    pub crawl_failure_prob: f64,
    /// Size of the dedicated CookieStore-vendor pool (§5.2's 361 setter
    /// domains).
    pub cookie_store_vendors: usize,
    /// Probability a site includes one CookieStore vendor from that pool.
    pub cookie_store_site_prob: f64,
    /// Probability a Shopping site runs the Shopify performance SDK
    /// (`keep_alive` via cookieStore).
    pub shopify_on_commerce_prob: f64,
    /// Probability an ad-funded content site runs Admiral (`_awl`).
    pub admiral_on_content_prob: f64,
    /// Probability a site CNAME-cloaks a tracker behind a first-party
    /// subdomain (§8's hardest evasion; bypasses URL-keyed attribution).
    pub cname_cloaking_prob: f64,
    /// Probability a site (with functional features) exposes a cart /
    /// chat / search feature managed by a same-entity sibling domain
    /// (Table 3 functionality breakage, healed by grouping).
    pub functional_same_entity_prob: f64,
    /// Probability a news/content site shows third-party ads whose
    /// rendering depends on cross-domain cookie reads (minor breakage:
    /// ads not shown).
    pub ad_display_dependency_prob: f64,
    /// Probability a site deploys first-party *server-side tagging*
    /// (§5.7): a site-hosted collector endpoint receives the full cookie
    /// jar (query payload + `Cookie:` header) and relays it to a tracker
    /// server-side — invisible to client-side defenses.
    pub server_side_tagging_prob: f64,
    /// Given server-side tagging, probability a third-party pixel also
    /// routes its events through the first-party gateway (Meta
    /// Conversions-API style).
    pub capi_gateway_prob: f64,
    /// Probability an ad/tracking vendor on a consent-managed site
    /// deploys a *respawning* listener: a CookieStore change handler
    /// that re-sets its identifier the moment a consent manager deletes
    /// it (the respawning behaviour of the paper's related work \[29\]).
    pub respawn_tracker_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            site_count: 20_000,
            longtail_vendors: 1_600,
            longtail_destinations: 450,
            no_third_party_prob: 0.067,
            direct_vendors_mean: 2.4,
            longtail_per_site_mean: 1.4,
            first_party_script_prob: 0.62,
            first_party_cookies_mean: 2.4,
            http_cookies_mean: 1.7,
            http_only_prob: 0.45,
            consent_manager_prob: 0.15,
            sso_prob: 0.30,
            sso_same_entity_pair_prob: 0.27,
            sso_cross_entity_prob: 0.13,
            self_hosted_tracker_prob: 0.14,
            async_attribution_loss_prob: 0.08,
            inline_scripts_mean: 2.2,
            cookie_store_vendors: 420,
            cookie_store_site_prob: 0.013,
            shopify_on_commerce_prob: 0.07,
            admiral_on_content_prob: 0.025,
            cname_cloaking_prob: 0.03,
            crawl_failure_prob: 0.254,
            functional_same_entity_prob: 0.10,
            ad_display_dependency_prob: 0.12,
            server_side_tagging_prob: 0.08,
            capi_gateway_prob: 0.5,
            respawn_tracker_prob: 0.12,
        }
    }
}

impl GenConfig {
    /// A scaled-down configuration for tests and examples: `n` sites,
    /// proportionally fewer long-tail vendors.
    pub fn small(n: usize) -> GenConfig {
        GenConfig {
            site_count: n,
            longtail_vendors: (n / 10).clamp(20, 1_600),
            longtail_destinations: (n / 30).clamp(10, 450),
            ..GenConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = GenConfig::default();
        assert_eq!(c.site_count, 20_000);
        assert!((c.crawl_failure_prob - 0.254).abs() < 1e-9);
    }

    #[test]
    fn small_scales_down() {
        let c = GenConfig::small(500);
        assert_eq!(c.site_count, 500);
        assert!(c.longtail_vendors <= 1_600);
        assert!(c.longtail_vendors >= 20);
    }
}
