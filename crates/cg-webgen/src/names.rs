//! Deterministic name generation: site domains, long-tail vendor domains,
//! and cookie names.

use rand::Rng;

const SITE_STEMS: &[&str] = &[
    "daily", "global", "metro", "prime", "urban", "alpha", "nova", "vista", "bright", "swift",
    "cedar", "lumen", "quartz", "ember", "willow", "harbor", "summit", "aspen", "meadow", "coral",
    "orchid", "falcon", "beacon", "canyon", "breeze", "garnet", "indigo", "jasper", "laurel",
    "maple",
];

const SITE_NOUNS: &[&str] = &[
    "news", "times", "post", "shop", "store", "market", "blog", "journal", "media", "tech",
    "health", "clinic", "travel", "kitchen", "sports", "games", "finance", "bank", "academy",
    "labs", "studio", "gallery", "forum", "hub", "portal", "review", "guide", "daily", "world",
    "express",
];

const SITE_TLDS: &[(&str, u32)] = &[
    ("com", 58),
    ("org", 8),
    ("net", 7),
    ("io", 4),
    ("co", 3),
    ("de", 4),
    ("ru", 3),
    ("co.uk", 3),
    ("fr", 2),
    ("jp", 2),
    ("com.br", 2),
    ("in", 1),
    ("it", 1),
    ("nl", 1),
    ("es", 1),
];

const VENDOR_STEMS: &[&str] = &[
    "pixel", "track", "metric", "insight", "audience", "beacon", "signal", "vector", "datum",
    "quant", "reach", "engage", "convert", "funnel", "spark", "pulse", "radar", "scope", "prism",
    "lens", "grid", "sync", "bridge", "relay", "stream", "cast", "echo", "wave", "flux", "orbit",
];

const VENDOR_SUFFIXES: &[&str] = &[
    "analytics",
    "ads",
    "media",
    "tag",
    "cdn",
    "js",
    "api",
    "hub",
    "lab",
    "net",
    "io",
    "ly",
    "ware",
    "metrics",
    "data",
    "stats",
    "serve",
    "feed",
    "link",
    "zone",
];

const VENDOR_TLDS: &[(&str, u32)] = &[
    ("com", 55),
    ("net", 15),
    ("io", 12),
    ("co", 6),
    ("ai", 4),
    ("ru", 4),
    ("tech", 4),
];

const GENERIC_COOKIE_STEMS: &[&str] = &[
    "session",
    "visitor",
    "uid",
    "user_id",
    "cookie_test",
    "tracker",
    "visit",
    "client",
    "device",
    "browser",
    "anon",
    "guest",
    "pref",
    "consent",
    "locale",
    "theme",
    "cart",
    "basket",
    "csrf",
    "token",
    "campaign",
    "ref",
    "source",
    "utm_track",
    "abtest",
    "variant",
    "exp",
    "seg",
];

fn pick_weighted<'a, R: Rng>(rng: &mut R, table: &'a [(&'a str, u32)]) -> &'a str {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (item, w) in table {
        if roll < *w {
            return item;
        }
        roll -= w;
    }
    table[0].0
}

/// Generates a site domain for `rank` (deterministic for a given rng
/// state): `<stem><noun>-<rank>.<tld>`.
pub fn site_domain<R: Rng>(rng: &mut R, rank: usize) -> String {
    let stem = SITE_STEMS[rng.gen_range(0..SITE_STEMS.len())];
    let noun = SITE_NOUNS[rng.gen_range(0..SITE_NOUNS.len())];
    let tld = pick_weighted(rng, SITE_TLDS);
    format!("{stem}{noun}-{rank}.{tld}")
}

/// Generates a long-tail vendor domain: `<stem><suffix><n>.<tld>`.
pub fn vendor_domain<R: Rng>(rng: &mut R, index: usize) -> String {
    let stem = VENDOR_STEMS[rng.gen_range(0..VENDOR_STEMS.len())];
    let suffix = VENDOR_SUFFIXES[rng.gen_range(0..VENDOR_SUFFIXES.len())];
    let tld = pick_weighted(rng, VENDOR_TLDS);
    format!("{stem}{suffix}{index}.{tld}")
}

/// Generates a generic cookie name (the collision-prone names of §5.5:
/// `cookie_test`, `user_id`, …), optionally decorated with a short
/// random suffix.
pub fn generic_cookie_name<R: Rng>(rng: &mut R) -> String {
    let stem = GENERIC_COOKIE_STEMS[rng.gen_range(0..GENERIC_COOKIE_STEMS.len())];
    if rng.gen_bool(0.5) {
        format!("_{stem}")
    } else {
        stem.to_string()
    }
}

/// Generates a site-specific first-party cookie name.
pub fn first_party_cookie_name<R: Rng>(rng: &mut R) -> String {
    let stem = GENERIC_COOKIE_STEMS[rng.gen_range(0..GENERIC_COOKIE_STEMS.len())];
    format!("{}_{:x}", stem, rng.gen_range(0x1000u32..0xffff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn site_domains_are_valid_and_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for rank in 1..200 {
            let da = site_domain(&mut a, rank);
            let db = site_domain(&mut b, rank);
            assert_eq!(da, db);
            assert!(
                cg_url::registrable_domain(&da).is_some(),
                "{da} lacks eTLD+1"
            );
            // The domain must be its own registrable domain (no subdomain).
            assert_eq!(cg_url::registrable_domain(&da).unwrap(), da);
        }
    }

    #[test]
    fn vendor_domains_unique_by_index() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = vendor_domain(&mut rng, 1);
        let b = vendor_domain(&mut rng, 2);
        assert_ne!(a, b);
        assert!(cg_url::registrable_domain(&a).is_some());
    }

    #[test]
    fn cookie_names_nonempty() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!generic_cookie_name(&mut rng).is_empty());
            let fp = first_party_cookie_name(&mut rng);
            assert!(fp.contains('_'));
        }
    }
}
