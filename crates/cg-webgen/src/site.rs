//! Site generation: ranked sites with category-dependent vendor stacks.

use crate::blueprint::{PageBlueprint, ScriptBlueprint, SiteBlueprint};
use crate::config::GenConfig;
use crate::longtail::{generate_destinations, generate_longtail, generate_store_vendors};
use crate::names;
use crate::vendors::{VendorCategory, VendorId, VendorRegistry, VendorSpec};
use cg_http::RequestKind;
use cg_script::{CookieAttrs, CookieSelection, Encoding, ScriptOp, SegmentPolicy, ValueSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Site vertical; shifts which vendors a site adopts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteCategory {
    /// News and publishing (ad-heavy).
    News,
    /// E-commerce.
    Shopping,
    /// Personal/blog content.
    Blog,
    /// Corporate / B2B.
    Corporate,
    /// Technology / SaaS.
    Tech,
    /// Entertainment / streaming.
    Entertainment,
    /// Healthcare.
    Health,
    /// Education.
    Education,
    /// Finance.
    Finance,
}

/// The SSO flow shape on a site — the mechanics behind Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SsoKind {
    /// One provider domain sets and reads its own session cookie
    /// (never breaks under CookieGuard: the creator reads its own cookie).
    SingleDomain {
        /// Provider script domain.
        provider: String,
    },
    /// Two sibling domains of one entity split the flow (e.g. the
    /// `msauth.net` setter and the `live.com` reader on zoom.us):
    /// breaks under strict isolation, healed by entity grouping.
    SameEntityPair {
        /// Setter domain.
        provider: String,
        /// Sibling reader domain.
        reader: String,
    },
    /// The flow spans two unrelated entities: breaks even with
    /// grouping (the residual 3%).
    CrossEntity {
        /// Setter domain.
        provider: String,
        /// Unrelated reader domain.
        reader: String,
    },
}

/// One server-side relay rule on a site's own infrastructure (§5.7):
/// requests hitting the site's host under `path_prefix` are forwarded to
/// `forwards_to` by the site's server, out of any client-side defense's
/// sight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerForward {
    /// Path prefix on the site's own host (e.g. `/g/collect`).
    pub path_prefix: String,
    /// The tracker eTLD+1 the server relays matching requests to.
    pub forwards_to: String,
}

/// Site-level metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Tranco-style rank (1 = most popular).
    pub rank: usize,
    /// The site's registrable domain.
    pub domain: String,
    /// Vertical.
    pub category: SiteCategory,
    /// Whether the site serves HTTPS (vast majority).
    pub https: bool,
    /// Whether the crawl of this site yields complete data
    /// (paper: 14,917 of 20,000 do).
    pub crawl_ok: bool,
    /// The SSO flow, if the site has a login.
    pub sso: Option<SsoKind>,
    /// Directly included vendor domains (for tests/forensics; the
    /// blueprint is authoritative).
    pub direct_vendor_domains: Vec<String>,
    /// Whether the site self-hosts an analytics copy on its own domain.
    pub self_hosted_tracker: bool,
    /// Whether the site serves a CNAME-cloaked tracker from a first-party
    /// subdomain (§8).
    pub cname_cloaked: bool,
    /// Whether the site runs a first-party server-side tagging endpoint
    /// (§5.7's CookieGuard bypass).
    pub server_side_tagging: bool,
    /// Server-side relay rules active on the site's own host.
    pub server_forwards: Vec<ServerForward>,
    /// A tracker that respawns its identifier on deletion, as
    /// `(script domain, cookie name)`.
    pub respawning_tracker: Option<(String, String)>,
}

/// The tracking identifiers consent managers purge on declined consent
/// (the most-deleted cookies of the paper's Table 5).
const CONSENT_PURGE_TARGETS: &[&str] = &["_uetvid", "_uetsid", "_ga", "_fbp", "_gid", "_gcl_au"];

/// SplitMix64: cheap, high-quality per-site seed derivation, so sites can
/// be generated independently (and in parallel) from one master seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generator: deterministic site blueprints from a master seed.
pub struct WebGenerator {
    cfg: GenConfig,
    seed: u64,
    registry: VendorRegistry,
    dest_pool: Vec<String>,
    /// Cumulative weights for core-vendor sampling.
    core_weighted: Vec<(VendorId, f64)>,
    /// Ids of long-tail vendors.
    longtail_ids: Vec<VendorId>,
    store_vendor_ids: Vec<VendorId>,
    consent_ids: Vec<VendorId>,
    sso_provider_ids: Vec<VendorId>,
}

impl WebGenerator {
    /// Builds a generator (vendor registry included) for `cfg` and `seed`.
    pub fn new(cfg: GenConfig, seed: u64) -> WebGenerator {
        let mut longtail = generate_longtail(seed, cfg.longtail_vendors);
        let longtail_count = longtail.len();
        longtail.extend(generate_store_vendors(seed, cfg.cookie_store_vendors));
        let registry = VendorRegistry::new(longtail);
        let mut dest_pool = generate_destinations(seed, cfg.longtail_destinations);
        // Vendor hosts are also legitimate destinations.
        for v in registry.all().iter().take(registry.core_count()) {
            dest_pool.push(v.host.clone());
        }
        let core_weighted: Vec<(VendorId, f64)> = registry
            .all()
            .iter()
            .enumerate()
            .take(registry.core_count())
            .filter(|(_, v)| v.weight > 0.0 && v.category != VendorCategory::SsoProvider)
            .map(|(i, v)| (i, v.weight))
            .collect();
        let longtail_ids: Vec<VendorId> =
            (registry.core_count()..registry.core_count() + longtail_count).collect();
        let store_vendor_ids: Vec<VendorId> =
            (registry.core_count() + longtail_count..registry.all().len()).collect();
        let consent_ids: Vec<VendorId> = registry
            .all()
            .iter()
            .enumerate()
            .take(registry.core_count())
            .filter(|(_, v)| v.category == VendorCategory::ConsentManager)
            .map(|(i, _)| i)
            .collect();
        let sso_provider_ids: Vec<VendorId> = registry
            .all()
            .iter()
            .enumerate()
            .take(registry.core_count())
            .filter(|(_, v)| v.category == VendorCategory::SsoProvider && v.weight > 0.0)
            .map(|(i, _)| i)
            .collect();
        WebGenerator {
            cfg,
            seed,
            registry,
            dest_pool,
            core_weighted,
            longtail_ids,
            store_vendor_ids,
            consent_ids,
            sso_provider_ids,
        }
    }

    /// The vendor registry backing this generator.
    pub fn registry(&self) -> &VendorRegistry {
        &self.registry
    }

    /// The configuration in use.
    pub fn config(&self) -> &GenConfig {
        &self.cfg
    }

    /// The master seed this generator was built with. Together with
    /// [`WebGenerator::config`] it fully determines every blueprint —
    /// the identity a crawl checkpoint must record.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// The per-site RNG seed for `rank` (exposed so the browser can
    /// derive correlated-but-independent streams).
    pub fn site_seed(&self, rank: usize) -> u64 {
        splitmix64(self.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9))
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.cfg.site_count
    }

    /// Generates the full blueprint for the site at `rank` (1-based).
    pub fn blueprint(&self, rank: usize) -> SiteBlueprint {
        let mut rng = StdRng::seed_from_u64(self.site_seed(rank));
        let domain = names::site_domain(&mut rng, rank);
        let category = sample_category(&mut rng);
        let https = rng.gen_bool(0.97);
        let crawl_ok = !rng.gen_bool(self.cfg.crawl_failure_prob);

        // ---------------- vendor adoption ----------------
        let mut direct: Vec<VendorId> = Vec::new();
        let mut present: HashSet<VendorId> = HashSet::new();
        let no_third_party = rng.gen_bool(self.cfg.no_third_party_prob);
        if !no_third_party {
            let rank_factor = 1.25 - 0.5 * (rank as f64 / self.cfg.site_count.max(1) as f64);
            let n_core = poisson_like(&mut rng, self.cfg.direct_vendors_mean * rank_factor).min(14);
            for _ in 0..n_core {
                if let Some(id) = sample_weighted(&mut rng, &self.core_weighted, &present) {
                    present.insert(id);
                    direct.push(id);
                }
            }
            // Category flavour.
            match category {
                SiteCategory::Shopping if rng.gen_bool(self.cfg.shopify_on_commerce_prob) => {
                    self.force_include(&mut rng, "shopifycloud.com", &mut direct, &mut present);
                }
                SiteCategory::News | SiteCategory::Entertainment
                    if rng.gen_bool(self.cfg.admiral_on_content_prob) =>
                {
                    self.force_include(&mut rng, "getadmiral.com", &mut direct, &mut present);
                }
                _ => {}
            }
            // Rare CookieStore SDK adoption (the §5.2 long tail).
            if rng.gen_bool(self.cfg.cookie_store_site_prob) && !self.store_vendor_ids.is_empty() {
                let id = self.store_vendor_ids[rng.gen_range(0..self.store_vendor_ids.len())];
                if present.insert(id) {
                    direct.push(id);
                }
            }
            // Long-tail adoption.
            let n_tail = poisson_like(&mut rng, self.cfg.longtail_per_site_mean).min(10);
            for _ in 0..n_tail {
                let id = self.longtail_ids[rng.gen_range(0..self.longtail_ids.len())];
                if present.insert(id) {
                    direct.push(id);
                }
            }
            // Consent manager.
            if rng.gen_bool(self.cfg.consent_manager_prob) {
                let id = self.consent_ids[rng.gen_range(0..self.consent_ids.len())];
                if present.insert(id) {
                    direct.push(id);
                }
            }
        }

        // ---------------- SSO ----------------
        // Third-party-managed SSO presupposes third-party scripts.
        let sso = if !no_third_party
            && rng.gen_bool(self.cfg.sso_prob)
            && !self.sso_provider_ids.is_empty()
        {
            let pid = self.sso_provider_ids[rng.gen_range(0..self.sso_provider_ids.len())];
            let provider = self.registry.get(pid);
            let roll: f64 = rng.gen();
            let kind = if roll < self.cfg.sso_cross_entity_prob {
                // Reader from an unrelated long-tail widget domain.
                let reader_id = self.longtail_ids[rng.gen_range(0..self.longtail_ids.len())];
                SsoKind::CrossEntity {
                    provider: provider.domain.clone(),
                    reader: self.registry.get(reader_id).domain.clone(),
                }
            } else if roll < self.cfg.sso_cross_entity_prob + self.cfg.sso_same_entity_pair_prob {
                match &provider.feature {
                    Some((_, _, Some(sibling))) => SsoKind::SameEntityPair {
                        provider: provider.domain.clone(),
                        reader: sibling.clone(),
                    },
                    _ => SsoKind::SingleDomain {
                        provider: provider.domain.clone(),
                    },
                }
            } else {
                SsoKind::SingleDomain {
                    provider: provider.domain.clone(),
                }
            };
            present.insert(pid);
            direct.push(pid);
            Some(kind)
        } else {
            None
        };

        // ---------------- first-party content ----------------
        let n_fp_cookies = poisson_like(&mut rng, self.cfg.first_party_cookies_mean).min(10);
        let fp_cookie_names: Vec<String> = (0..n_fp_cookies)
            .map(|_| names::first_party_cookie_name(&mut rng))
            .collect();
        let self_hosted_tracker =
            !no_third_party && rng.gen_bool(self.cfg.self_hosted_tracker_prob);
        let cname_cloaked = !no_third_party && rng.gen_bool(self.cfg.cname_cloaking_prob);

        // Server-side tagging (§5.7): the site operates first-party
        // collector endpoints that relay to trackers server-side.
        let server_side_tagging =
            !no_third_party && rng.gen_bool(self.cfg.server_side_tagging_prob);
        let mut server_forwards = Vec::new();
        if server_side_tagging {
            server_forwards.push(ServerForward {
                path_prefix: "/g/collect".to_string(),
                forwards_to: "google-analytics.com".to_string(),
            });
            if rng.gen_bool(self.cfg.capi_gateway_prob) {
                server_forwards.push(ServerForward {
                    path_prefix: "/capi-events".to_string(),
                    forwards_to: "facebook.net".to_string(),
                });
            }
        }

        // Respawning tracker: on consent-managed sites, an ad/tracking
        // vendor may watch for deletion of its identifier and re-set it.
        // The identifier must be one the consent manager actually purges
        // (the cookies the §5.5 deletion tables name), so these sites are
        // deterministic consent-war battlegrounds.
        let has_consent_manager = direct
            .iter()
            .any(|&id| self.registry.get(id).category == VendorCategory::ConsentManager);
        let respawning_tracker =
            if has_consent_manager && rng.gen_bool(self.cfg.respawn_tracker_prob) {
                direct
                    .iter()
                    .map(|&id| self.registry.get(id))
                    .find_map(|v| {
                        if !v.category.is_ad_tracking() {
                            return None;
                        }
                        v.sets
                            .iter()
                            .find(|c| CONSENT_PURGE_TARGETS.contains(&c.name.as_str()))
                            .map(|c| (v.domain.clone(), c.name.clone()))
                    })
            } else {
                None
            };

        let spec = SiteSpec {
            rank,
            domain: domain.clone(),
            category,
            https,
            crawl_ok,
            sso: sso.clone(),
            direct_vendor_domains: direct
                .iter()
                .map(|&i| self.registry.get(i).domain.clone())
                .collect(),
            self_hosted_tracker,
            cname_cloaked,
            server_side_tagging,
            server_forwards,
            respawning_tracker,
        };

        // ---------------- landing page assembly ----------------
        let mut injectables: HashMap<String, Vec<ScriptOp>> = HashMap::new();
        let mut landing = self.build_page(
            &mut rng,
            &spec,
            "/",
            &direct,
            &fp_cookie_names,
            &sso,
            self_hosted_tracker,
            true,
            &mut injectables,
        );

        // ---------------- subpages ----------------
        let mut subpages = Vec::new();
        for path in landing.links.clone().iter().take(3) {
            let page = self.build_page(
                &mut rng,
                &spec,
                path,
                &direct,
                &fp_cookie_names,
                &sso,
                self_hosted_tracker,
                false,
                &mut injectables,
            );
            subpages.push(page);
        }

        // CNAME cloaking: serve a tracker behaviour from a first-party
        // subdomain whose DNS CNAME points at the tracker (§8). URL-keyed
        // attribution sees a first-party script; only a DNS-aware guard
        // (VisitConfig::resolve_cnames) can uncloak it.
        let mut cnames = cg_url::CnameMap::new();
        if cname_cloaked {
            let alias = format!("metrics.{domain}");
            let target_id = self.longtail_ids[rng.gen_range(0..self.longtail_ids.len())];
            let target = self.registry.get(target_id);
            cnames.insert(&alias, &target.host);
            let scheme = if https { "https" } else { "http" };
            landing.scripts.push(crate::blueprint::ScriptBlueprint {
                url: Some(format!("{scheme}://{alias}/t.js")),
                ops: vec![
                    ScriptOp::SetCookie {
                        name: "_cloaked_uid".into(),
                        value: ValueSpec::Uuid,
                        attrs: CookieAttrs {
                            max_age_s: Some(31_536_000),
                            site_wide: true,
                            path: None,
                            secure: false,
                        },
                    },
                    ScriptOp::ReadAllCookies,
                    ScriptOp::Defer {
                        delay_ms: rng.gen_range(400..1200),
                        ops: vec![ScriptOp::Exfiltrate {
                            dest_host: target.host.clone(),
                            path: "/cloaked".into(),
                            selection: CookieSelection::Sample(20),
                            segment: SegmentPolicy::Full,
                            encoding: Encoding::Plain,
                            kind: RequestKind::Image,
                            via_store: false,
                        }],
                        lose_attribution: false,
                    },
                ],
            });
        }

        SiteBlueprint {
            spec,
            landing,
            subpages,
            injectables,
            cnames,
            csp: None,
        }
    }

    fn force_include(
        &self,
        _rng: &mut StdRng,
        domain: &str,
        direct: &mut Vec<VendorId>,
        present: &mut HashSet<VendorId>,
    ) {
        if let Some(id) = self.registry.id_of(domain) {
            if present.insert(id) {
                direct.push(id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_page(
        &self,
        rng: &mut StdRng,
        spec: &SiteSpec,
        path: &str,
        direct: &[VendorId],
        fp_cookie_names: &[String],
        sso: &Option<SsoKind>,
        self_hosted_tracker: bool,
        is_landing: bool,
        injectables: &mut HashMap<String, Vec<ScriptOp>>,
    ) -> PageBlueprint {
        let scheme = if spec.https { "https" } else { "http" };
        let mut scripts: Vec<ScriptBlueprint> = Vec::new();

        // Server cookies (landing only: the session is established once).
        let mut server_cookies = Vec::new();
        if is_landing {
            let n_http = poisson_like(rng, self.cfg.http_cookies_mean).min(5);
            for i in 0..n_http {
                let name = if i == 0 {
                    "session_id".to_string()
                } else {
                    names::first_party_cookie_name(rng)
                };
                let http_only = rng.gen_bool(self.cfg.http_only_prob);
                let mut raw = format!("{name}={}", ValueSpec::HexId(26).generate(0, rng));
                raw.push_str("; Path=/");
                if http_only {
                    raw.push_str("; HttpOnly");
                }
                server_cookies.push(raw);
            }
        }

        // First-party scripts.
        // Sites with no third-party stack sometimes run no cookie-touching
        // first-party code at all (the §5.2 3.7% without document.cookie).
        let use_fp_script = if direct.is_empty() {
            rng.gen_bool(0.35)
        } else {
            !fp_cookie_names.is_empty() || rng.gen_bool(self.cfg.first_party_script_prob)
        };
        if use_fp_script {
            let mut ops: Vec<ScriptOp> = Vec::new();
            for name in fp_cookie_names {
                if is_landing || rng.gen_bool(0.3) {
                    // Most site cookies are short tokens/preferences; only
                    // some carry ≥8-char identifier material (§4.4's
                    // candidate threshold keeps the rest out of scope).
                    let value = if rng.gen_bool(0.42) {
                        ValueSpec::HexId(20)
                    } else {
                        ValueSpec::Short
                    };
                    ops.push(ScriptOp::SetCookie {
                        name: name.clone(),
                        value,
                        attrs: CookieAttrs {
                            max_age_s: Some(86_400 * 30),
                            site_wide: false,
                            path: None,
                            secure: false,
                        },
                    });
                }
            }
            if is_landing && rng.gen_bool(0.30) {
                // Collision-prone generic names (`cookie_test`, `user_id`):
                // the §5.5 name-collision channel.
                ops.push(ScriptOp::SetCookie {
                    name: names::generic_cookie_name(rng),
                    value: if rng.gen_bool(0.4) {
                        ValueSpec::HexId(16)
                    } else {
                        ValueSpec::Short
                    },
                    attrs: CookieAttrs::default(),
                });
            }
            ops.push(ScriptOp::ReadAllCookies);
            if spec.category == SiteCategory::Shopping {
                ops.push(ScriptOp::SetCookie {
                    name: "cart_id".into(),
                    value: ValueSpec::Uuid,
                    attrs: CookieAttrs::default(),
                });
                ops.push(ScriptOp::Probe {
                    feature: "cart".into(),
                    cookie: "cart_id".into(),
                });
            }
            scripts.push(ScriptBlueprint {
                url: Some(format!("{scheme}://www.{}/static/app.js", spec.domain)),
                ops,
            });
        }

        // Self-hosted analytics copy: a first-party URL running a
        // tracker's behaviour — CookieGuard treats it as the site owner,
        // which is exactly the bypass §8 discusses. Besides exfiltrating,
        // self-hosted site code overwrites and occasionally clears
        // third-party identifiers, which is why Fig. 5's guarded bars are
        // not zero (reductions of 82–86%, not 100%).
        if self_hosted_tracker && is_landing {
            let mut ops = vec![
                ScriptOp::SetCookie {
                    name: "_ga".into(),
                    value: ValueSpec::GaStyle,
                    attrs: CookieAttrs {
                        max_age_s: Some(63_072_000),
                        site_wide: true,
                        path: None,
                        secure: false,
                    },
                },
                ScriptOp::ReadAllCookies,
                ScriptOp::Defer {
                    delay_ms: rng.gen_range(300..900),
                    ops: vec![ScriptOp::Exfiltrate {
                        dest_host: "www.google-analytics.com".into(),
                        path: "/collect".into(),
                        selection: CookieSelection::All,
                        segment: SegmentPolicy::Full,
                        encoding: Encoding::Plain,
                        kind: RequestKind::Image,
                        via_store: false,
                    }],
                    lose_attribution: false,
                },
            ];
            if rng.gen_bool(0.62) {
                let target =
                    ["_fbp", "_gid", "_gcl_au", "OptanonConsent"][rng.gen_range(0usize..4)];
                ops.push(ScriptOp::Defer {
                    delay_ms: rng.gen_range(900..2000),
                    ops: vec![ScriptOp::OverwriteCookie {
                        target: target.into(),
                        value: ValueSpec::HexId(24),
                        changes: cg_script::AttrChanges::value_and_expiry(),
                        blind: false,
                    }],
                    lose_attribution: false,
                });
            }
            if rng.gen_bool(0.09) {
                let target = ["_uetvid", "_fbp", "_gid"][rng.gen_range(0usize..3)];
                ops.push(ScriptOp::Defer {
                    delay_ms: rng.gen_range(1800..3000),
                    ops: vec![ScriptOp::DeleteCookie {
                        target: target.into(),
                        via_store: false,
                    }],
                    lose_attribution: false,
                });
            }
            scripts.push(ScriptBlueprint {
                url: Some(format!(
                    "{scheme}://www.{}/assets/analytics.js",
                    spec.domain
                )),
                ops,
            });
        }

        // Server-side tagging (§5.7). Two flavours:
        //
        // 1. A first-party-hosted tag loader (sGTM style) reads the whole
        //    jar — it is site-owned, so CookieGuard grants it everything —
        //    and posts it to the site's own collect endpoint, which the
        //    server relays to the analytics vendor. No client-side defense
        //    sees a third-party request.
        // 2. Optionally, a third-party pixel routes its events through a
        //    first-party gateway (Conversions-API style). Under
        //    CookieGuard its script-visible jar shrinks to its own
        //    cookies, but the `Cookie:` header on the first-party request
        //    still carries the entire jar.
        if spec.server_side_tagging && is_landing {
            scripts.push(ScriptBlueprint {
                url: Some(format!("{scheme}://www.{}/sgtm/loader.js", spec.domain)),
                ops: vec![
                    ScriptOp::ReadAllCookies,
                    ScriptOp::Defer {
                        delay_ms: rng.gen_range(500..1500),
                        ops: vec![ScriptOp::Exfiltrate {
                            dest_host: format!("www.{}", spec.domain),
                            path: "/g/collect".into(),
                            selection: CookieSelection::All,
                            segment: SegmentPolicy::Full,
                            encoding: Encoding::Plain,
                            kind: RequestKind::Beacon,
                            via_store: false,
                        }],
                        lose_attribution: false,
                    },
                ],
            });
            if spec
                .server_forwards
                .iter()
                .any(|f| f.path_prefix == "/capi-events")
            {
                scripts.push(ScriptBlueprint {
                    url: Some("https://connect.facebook.net/en_US/capig.js".to_string()),
                    ops: vec![
                        ScriptOp::SetCookie {
                            name: "_fbp".into(),
                            value: ValueSpec::FbpStyle,
                            attrs: CookieAttrs {
                                max_age_s: Some(7_776_000),
                                site_wide: true,
                                path: None,
                                secure: false,
                            },
                        },
                        ScriptOp::Defer {
                            delay_ms: rng.gen_range(600..1600),
                            ops: vec![ScriptOp::Exfiltrate {
                                dest_host: format!("www.{}", spec.domain),
                                path: "/capi-events".into(),
                                selection: CookieSelection::Named(vec![
                                    "_fbp".into(),
                                    "_ga".into(),
                                ]),
                                segment: SegmentPolicy::Full,
                                encoding: Encoding::Plain,
                                kind: RequestKind::Xhr,
                                via_store: false,
                            }],
                            lose_attribution: false,
                        },
                    ],
                });
            }
        }

        // Vendor scripts. Order: consent first, SSO next, tag managers,
        // then the rest; deletes/overwrites are deferred inside behaviours.
        let mut ordered: Vec<VendorId> = direct.to_vec();
        ordered.sort_by_key(|&id| match self.registry.get(id).category {
            VendorCategory::ConsentManager => 0,
            VendorCategory::SsoProvider => 1,
            VendorCategory::TagManager => 2,
            VendorCategory::Analytics => 3,
            _ => 4,
        });
        let mut ad_cookie_for_probe: Option<(String, String)> = None; // (cookie, setter domain)
        for &id in &ordered {
            let vendor = self.registry.get(id);
            // Subpages re-run a subset of vendors.
            if !is_landing && rng.gen_bool(0.45) {
                continue;
            }
            let mut ops = vendor.behavior(rng, &self.cfg, &self.dest_pool, fp_cookie_names);
            if !is_landing {
                // Identifier syncs, consent-driven deletions, and
                // overwrites happen once per visit; navigations re-run
                // the set/read/inject surface only.
                ops = strip_one_shot_ops(ops);
            }
            // Tag-manager / fan-out injection.
            self.attach_injections(rng, vendor, &mut ops, direct, injectables, 0);
            // Ad-display dependency probe (minor functionality breakage).
            if vendor.category == VendorCategory::AdExchange {
                if let Some((cookie, setter)) = &ad_cookie_for_probe {
                    if setter != &vendor.domain
                        && is_landing
                        && rng.gen_bool(self.cfg.ad_display_dependency_prob)
                    {
                        ops.push(ScriptOp::Probe {
                            feature: "ads".into(),
                            cookie: cookie.clone(),
                        });
                    }
                } else if let Some(c) = vendor.sets.first() {
                    ad_cookie_for_probe = Some((c.name.clone(), vendor.domain.clone()));
                }
            }
            // SSO feature probes for the provider itself.
            if let Some((feature, cookie, _)) = &vendor.feature {
                if feature == "sso" && sso.is_some() && is_landing {
                    ops.push(ScriptOp::Probe {
                        feature: feature.clone(),
                        cookie: cookie.clone(),
                    });
                }
                if feature == "chat" && is_landing && rng.gen_bool(0.8) {
                    ops.push(ScriptOp::Probe {
                        feature: feature.clone(),
                        cookie: cookie.clone(),
                    });
                }
            }
            // Cookie respawning: the designated tracker watches for the
            // consent manager deleting its identifier and re-sets it via
            // a CookieStore change listener. The identifier itself is
            // (re-)written unconditionally so the battleground exists
            // even when the probabilistic behaviour skipped it.
            if is_landing {
                if let Some((respawn_domain, respawn_cookie)) = &spec.respawning_tracker {
                    if respawn_domain == &vendor.domain {
                        let spec_cookie = vendor.sets.iter().find(|c| &c.name == respawn_cookie);
                        let attrs = CookieAttrs {
                            max_age_s: spec_cookie.and_then(|c| c.max_age_s).or(Some(31_536_000)),
                            site_wide: spec_cookie.is_some_and(|c| c.site_wide),
                            path: None,
                            secure: false,
                        };
                        let value = spec_cookie
                            .map(|c| c.value.clone())
                            .unwrap_or(ValueSpec::HexId(16));
                        ops.push(ScriptOp::SetCookie {
                            name: respawn_cookie.clone(),
                            value: value.clone(),
                            attrs: attrs.clone(),
                        });
                        ops.push(ScriptOp::OnCookieChange {
                            watch: Some(respawn_cookie.clone()),
                            deletions_only: true,
                            ops: vec![ScriptOp::SetCookie {
                                name: respawn_cookie.clone(),
                                value,
                                attrs,
                            }],
                        });
                    }
                }
                // On battleground sites the consent manager usually
                // purges the respawned identifier (declined consent) —
                // near-certain, but not guaranteed, so site-level
                // deletion prevalence stays close to Table 1's marginal.
                if vendor.category == VendorCategory::ConsentManager {
                    if let Some((_, respawn_cookie)) = &spec.respawning_tracker {
                        if rng.gen_bool(0.75) {
                            ops.push(ScriptOp::Defer {
                                delay_ms: rng.gen_range(1500..2600),
                                ops: vec![ScriptOp::DeleteCookie {
                                    target: respawn_cookie.clone(),
                                    via_store: false,
                                }],
                                lose_attribution: false,
                            });
                        }
                    }
                }
            }
            scripts.push(ScriptBlueprint {
                url: Some(vendor.script_url()),
                ops,
            });
        }

        // SSO reader scripts (sibling or cross-entity) go last so the
        // provider's session cookie exists by the time they probe.
        if is_landing {
            match sso {
                Some(SsoKind::SameEntityPair { provider, reader }) => {
                    if let Some((cookie, url)) = self.sso_cookie_and_reader_url(provider, reader) {
                        scripts.push(ScriptBlueprint {
                            url: Some(url),
                            ops: vec![
                                ScriptOp::ReadAllCookies,
                                ScriptOp::Probe {
                                    feature: "sso".into(),
                                    cookie,
                                },
                            ],
                        });
                    }
                }
                Some(SsoKind::CrossEntity { provider, reader }) => {
                    if let Some((cookie, _)) = self.sso_cookie_and_reader_url(provider, provider) {
                        scripts.push(ScriptBlueprint {
                            url: Some(format!("https://cdn.{reader}/sso-widget.js")),
                            ops: vec![
                                ScriptOp::ReadAllCookies,
                                ScriptOp::Probe {
                                    feature: "sso".into(),
                                    cookie,
                                },
                            ],
                        });
                    }
                }
                // A reload-style probe in a lost-attribution callback:
                // the source of the paper's *minor* SSO breakage
                // (cnn.com: login works, reload logs out).
                Some(SsoKind::SingleDomain { provider }) if rng.gen_bool(0.15) => {
                    if let Some((cookie, url)) = self.sso_cookie_and_reader_url(provider, provider)
                    {
                        scripts.push(ScriptBlueprint {
                            url: Some(url),
                            ops: vec![ScriptOp::Defer {
                                delay_ms: 1200,
                                ops: vec![ScriptOp::Probe {
                                    feature: "sso_reload".into(),
                                    cookie,
                                }],
                                lose_attribution: true,
                            }],
                        });
                    }
                }
                Some(SsoKind::SingleDomain { .. }) | None => {}
            }
            // The fbcdn.net functional sibling (Messenger-style) case.
            if spec
                .direct_vendor_domains
                .iter()
                .any(|d| d == "facebook.com")
                && rng.gen_bool(
                    self.cfg.functional_same_entity_prob / 0.025_f64.max(self.cfg.sso_prob),
                )
            {
                if let Some(fbcdn) = self.registry.by_domain("fbcdn.net") {
                    scripts.push(ScriptBlueprint {
                        url: Some(fbcdn.script_url()),
                        ops: vec![
                            ScriptOp::ReadAllCookies,
                            ScriptOp::Probe {
                                feature: "functionality".into(),
                                cookie: "fblo_state".into(),
                            },
                        ],
                    });
                }
            }
        }

        // Inline scripts.
        let n_inline = poisson_like(rng, self.cfg.inline_scripts_mean).min(6);
        for _ in 0..n_inline {
            let mut ops = Vec::new();
            if use_fp_script && rng.gen_bool(0.16) {
                ops.push(ScriptOp::SetCookie {
                    name: names::first_party_cookie_name(rng),
                    value: ValueSpec::Short,
                    attrs: CookieAttrs::default(),
                });
            }
            if use_fp_script && rng.gen_bool(0.5) {
                ops.push(ScriptOp::ReadAllCookies);
            }
            if ops.is_empty() {
                ops.push(ScriptOp::DomInsert { tag: "div".into() });
            }
            scripts.push(ScriptBlueprint { url: None, ops });
        }

        // Links and resources.
        let n_links = rng.gen_range(3..9);
        let links: Vec<String> = (0..n_links).map(|i| format!("/page-{i}")).collect();
        let resource_count = rng.gen_range(15u32..90) + scripts.len() as u32 * 6;

        PageBlueprint {
            path: path.to_string(),
            server_cookies,
            scripts,
            resource_count,
            links,
        }
    }

    /// The session cookie a provider sets, and the script URL of the
    /// reader on `reader_domain`.
    fn sso_cookie_and_reader_url(
        &self,
        provider: &str,
        reader_domain: &str,
    ) -> Option<(String, String)> {
        let provider_spec = self.registry.by_domain(provider)?;
        let cookie = provider_spec
            .feature
            .as_ref()
            .map(|(_, c, _)| c.clone())
            .or_else(|| provider_spec.sets.first().map(|c| c.name.clone()))?;
        let url = match self.registry.by_domain(reader_domain) {
            Some(v) => v.script_url(),
            None => format!("https://cdn.{reader_domain}/reader.js"),
        };
        Some((cookie, url))
    }

    /// Recursively attaches injection ops (tag-manager fan-out, RTB
    /// partner chains) to `ops`, registering injected behaviours.
    fn attach_injections(
        &self,
        rng: &mut StdRng,
        vendor: &VendorSpec,
        ops: &mut Vec<ScriptOp>,
        already_direct: &[VendorId],
        injectables: &mut HashMap<String, Vec<ScriptOp>>,
        depth: usize,
    ) {
        if depth >= 3 {
            return;
        }
        let mut targets: Vec<VendorId> = Vec::new();
        for d in &vendor.inject_domains {
            if let Some(id) = self.registry.id_of(d) {
                targets.push(id);
            }
        }
        let (lo, hi) = vendor.inject_pool_count;
        if hi > 0 {
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                // Tag managers pull from the full ecosystem: weighted core
                // most of the time, long-tail otherwise.
                let id = if rng.gen_bool(0.55) {
                    sample_weighted(rng, &self.core_weighted, &HashSet::new())
                } else {
                    Some(self.longtail_ids[rng.gen_range(0..self.longtail_ids.len())])
                };
                if let Some(id) = id {
                    if !already_direct.contains(&id)
                        && self.registry.get(id).domain != vendor.domain
                    {
                        targets.push(id);
                    }
                }
            }
        }
        for id in targets {
            let injected = self.registry.get(id);
            let url = injected.script_url();
            ops.push(ScriptOp::InjectScript { url: url.clone() });
            if !injectables.contains_key(&url) {
                let mut injected_ops = injected.behavior(rng, &self.cfg, &self.dest_pool, &[]);
                self.attach_injections(
                    rng,
                    injected,
                    &mut injected_ops,
                    already_direct,
                    injectables,
                    depth + 1,
                );
                injectables.insert(url, injected_ops);
            }
        }
    }
}

/// Drops exfiltration and manipulation ops (recursively through
/// `Defer`/`Microtask`) from a subpage behaviour.
fn strip_one_shot_ops(ops: Vec<ScriptOp>) -> Vec<ScriptOp> {
    ops.into_iter()
        .filter_map(|op| match op {
            ScriptOp::Exfiltrate { .. }
            | ScriptOp::OverwriteCookie { .. }
            | ScriptOp::DeleteCookie { .. } => None,
            ScriptOp::Defer {
                delay_ms,
                ops,
                lose_attribution,
            } => {
                let inner = strip_one_shot_ops(ops);
                if inner.is_empty() {
                    None
                } else {
                    Some(ScriptOp::Defer {
                        delay_ms,
                        ops: inner,
                        lose_attribution,
                    })
                }
            }
            ScriptOp::Microtask { ops } => {
                let inner = strip_one_shot_ops(ops);
                if inner.is_empty() {
                    None
                } else {
                    Some(ScriptOp::Microtask { ops: inner })
                }
            }
            other => Some(other),
        })
        .collect()
}

fn sample_category<R: Rng>(rng: &mut R) -> SiteCategory {
    match rng.gen_range(0..100) {
        0..=19 => SiteCategory::News,
        20..=37 => SiteCategory::Shopping,
        38..=52 => SiteCategory::Blog,
        53..=64 => SiteCategory::Corporate,
        65..=74 => SiteCategory::Tech,
        75..=84 => SiteCategory::Entertainment,
        85..=89 => SiteCategory::Health,
        90..=94 => SiteCategory::Education,
        _ => SiteCategory::Finance,
    }
}

/// Samples one vendor id from a weighted table, skipping ids already in
/// `exclude`. Returns `None` when every candidate is excluded.
fn sample_weighted<R: Rng>(
    rng: &mut R,
    weighted: &[(VendorId, f64)],
    exclude: &HashSet<VendorId>,
) -> Option<VendorId> {
    let total: f64 = weighted
        .iter()
        .filter(|(id, _)| !exclude.contains(id))
        .map(|(_, w)| w)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut roll = rng.gen::<f64>() * total;
    for (id, w) in weighted {
        if exclude.contains(id) {
            continue;
        }
        if roll < *w {
            return Some(*id);
        }
        roll -= w;
    }
    weighted
        .iter()
        .find(|(id, _)| !exclude.contains(id))
        .map(|(id, _)| *id)
}

/// A small-integer sampler with Poisson-like shape (mixture keeps a
/// heavier tail than the mean suggests, like real per-site script counts).
fn poisson_like<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    // Knuth's algorithm is fine at these small means.
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(n: usize) -> WebGenerator {
        WebGenerator::new(GenConfig::small(n), 0xC00C1E)
    }

    #[test]
    fn blueprints_deterministic() {
        let g = generator(100);
        let a = g.blueprint(5);
        let b = g.blueprint(5);
        assert_eq!(a.spec.domain, b.spec.domain);
        assert_eq!(a.landing.scripts.len(), b.landing.scripts.len());
        assert_eq!(a.landing.scripts, b.landing.scripts);
    }

    #[test]
    fn million_rank_generation_is_lazy_and_deterministic() {
        // Constructor cost is a function of the vendor/destination
        // config, never of site_count: a 2M-rank web must build as
        // fast as a 100-rank one, and any rank must be addressable
        // without materializing the ones before it.
        let g = generator(2_000_000);
        assert_eq!(g.site_count(), 2_000_000);
        for rank in [1, 999_983, 1_000_000, 2_000_000] {
            let bp = g.blueprint(rank);
            assert_eq!(bp.spec.rank, rank);
            assert!(!bp.spec.domain.is_empty());
            // Re-deriving the same rank from a fresh generator agrees —
            // the property crawl resume and parallel folds stand on.
            assert_eq!(
                bp.spec.domain,
                generator(2_000_000).blueprint(rank).spec.domain
            );
        }
    }

    #[test]
    fn different_ranks_differ() {
        let g = generator(100);
        assert_ne!(g.blueprint(1).spec.domain, g.blueprint(2).spec.domain);
    }

    #[test]
    fn most_sites_have_third_party_scripts() {
        let g = generator(300);
        let mut with_tp = 0;
        for rank in 1..=300 {
            let bp = g.blueprint(rank);
            let site = &bp.spec.domain;
            let has_tp = bp.landing.scripts.iter().any(|s| {
                s.url
                    .as_deref()
                    .is_some_and(|u| cg_url::url_domain(u).is_some_and(|d| &d != site))
            });
            if has_tp {
                with_tp += 1;
            }
        }
        let share = with_tp as f64 / 300.0;
        assert!((0.85..=0.99).contains(&share), "third-party share {share}");
    }

    #[test]
    fn sso_kinds_distribute() {
        let g = generator(1000);
        let (mut single, mut same, mut cross, mut none) = (0, 0, 0, 0);
        for rank in 1..=1000 {
            match g.blueprint(rank).spec.sso {
                Some(SsoKind::SingleDomain { .. }) => single += 1,
                Some(SsoKind::SameEntityPair { .. }) => same += 1,
                Some(SsoKind::CrossEntity { .. }) => cross += 1,
                None => none += 1,
            }
        }
        assert!(none > 600, "none={none}");
        assert!(single > 100, "single={single}");
        assert!(same > 30, "same={same}");
        assert!(cross > 5, "cross={cross}");
    }

    #[test]
    fn injectables_registered_for_inject_ops() {
        let g = generator(200);
        for rank in 1..=50 {
            let bp = g.blueprint(rank);
            fn collect_injects(ops: &[ScriptOp], urls: &mut Vec<String>) {
                for op in ops {
                    match op {
                        ScriptOp::InjectScript { url } => urls.push(url.clone()),
                        ScriptOp::Defer { ops, .. } | ScriptOp::Microtask { ops } => {
                            collect_injects(ops, urls)
                        }
                        _ => {}
                    }
                }
            }
            let mut urls = Vec::new();
            for s in &bp.landing.scripts {
                collect_injects(&s.ops, &mut urls);
            }
            for u in &bp.injectables.keys().cloned().collect::<Vec<_>>() {
                collect_injects(&bp.injectables[u], &mut urls);
            }
            for url in urls {
                assert!(
                    bp.injectables.contains_key(&url),
                    "missing injectable {url} on rank {rank}"
                );
            }
        }
    }

    #[test]
    fn crawl_failure_rate_near_quarter() {
        let g = generator(1000);
        let failed = (1..=1000)
            .filter(|&r| !g.blueprint(r).spec.crawl_ok)
            .count();
        let rate = failed as f64 / 1000.0;
        assert!((0.20..=0.32).contains(&rate), "failure rate {rate}");
    }

    #[test]
    fn shopping_sites_probe_cart() {
        let g = generator(400);
        let mut cart_probes = 0;
        for rank in 1..=400 {
            let bp = g.blueprint(rank);
            if bp.spec.category == SiteCategory::Shopping {
                let has_cart = bp.landing.scripts.iter().any(|s| {
                    s.ops.iter().any(
                        |op| matches!(op, ScriptOp::Probe { feature, .. } if feature == "cart"),
                    )
                });
                if has_cart {
                    cart_probes += 1;
                }
            }
        }
        assert!(cart_probes > 20, "cart probes {cart_probes}");
    }

    #[test]
    fn landing_url_shape() {
        let g = generator(50);
        let bp = g.blueprint(3);
        let url = bp.landing_url();
        assert!(url.starts_with("http"));
        assert!(cg_url::Url::parse(&url).is_ok());
    }

    #[test]
    fn splitmix_spreads_bits() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff_ffff, b & 0xffff_ffff);
    }
}
