//! Blueprints: the generator's output, the browser simulator's input.

use crate::site::SiteSpec;
use cg_script::ScriptOp;
use cg_url::CnameMap;
use std::collections::HashMap;

/// One script slot on a page.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptBlueprint {
    /// Script URL; `None` for inline scripts.
    pub url: Option<String>,
    /// The behaviour program.
    pub ops: Vec<ScriptOp>,
}

/// One page of a site.
#[derive(Debug, Clone, PartialEq)]
pub struct PageBlueprint {
    /// Path of the page (`/`, `/article-3`, …).
    pub path: String,
    /// Raw `Set-Cookie` header values the server attaches to the
    /// page response.
    pub server_cookies: Vec<String>,
    /// Markup-level scripts in document order.
    pub scripts: Vec<ScriptBlueprint>,
    /// Rough count of non-script subresources (images/CSS), used by the
    /// page-load timing model.
    pub resource_count: u32,
    /// Internal link paths the crawler may click.
    pub links: Vec<String>,
}

/// A complete generated site.
#[derive(Debug, Clone)]
pub struct SiteBlueprint {
    /// Site-level metadata.
    pub spec: SiteSpec,
    /// The landing page.
    pub landing: PageBlueprint,
    /// Linked subpages (the crawler clicks up to three).
    pub subpages: Vec<PageBlueprint>,
    /// Behaviours of dynamically injectable scripts, keyed by script URL.
    /// The browser resolves `ScriptOp::InjectScript { url }` against
    /// this map.
    pub injectables: HashMap<String, Vec<ScriptOp>>,
    /// The site's DNS CNAME records (cloaked tracker subdomains). Empty
    /// for uncloaked sites.
    pub cnames: CnameMap,
    /// `Content-Security-Policy` header the site serves, if any. The
    /// generator leaves this `None` (the §5 calibration does not model
    /// CSP adoption); the §2.1 CSP experiment synthesizes policies via
    /// [`crate::csp_for_site`].
    pub csp: Option<String>,
}

impl SiteBlueprint {
    /// The landing-page URL.
    pub fn landing_url(&self) -> String {
        let scheme = if self.spec.https { "https" } else { "http" };
        format!("{}://www.{}/", scheme, self.spec.domain)
    }

    /// URL of a subpage by path.
    pub fn page_url(&self, path: &str) -> String {
        let scheme = if self.spec.https { "https" } else { "http" };
        format!("{}://www.{}{}", scheme, self.spec.domain, path)
    }

    /// Total number of markup scripts across all pages.
    pub fn script_count(&self) -> usize {
        self.landing.scripts.len() + self.subpages.iter().map(|p| p.scripts.len()).sum::<usize>()
    }
}
