//! Long-tail vendor generation.
//!
//! The measurement's entity-diversity numbers (Table 2: >1,100 distinct
//! exfiltrator entities for `_ga`, ~700 destination entities) cannot come
//! from a few dozen named vendors: the real web has a long tail of small
//! tracking and widget domains. This module generates that tail.

use crate::names;
use crate::vendors::{
    CookieSpec, DeleteSpec, DeleteTarget, ExfilSelection, ExfilSpec, OverwriteSpec,
    OverwriteTarget, VendorCategory, VendorSpec,
};
use cg_http::RequestKind;
use cg_script::{Encoding, SegmentPolicy, ValueSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POPULAR_OVERWRITE_TARGETS: &[(&str, f64)] = &[
    ("_fbp", 0.30),
    ("OptanonConsent", 0.18),
    ("_ga", 0.14),
    ("cto_bundle", 0.08),
    ("_gid", 0.07),
    ("_uetvid", 0.06),
    ("_uetsid", 0.05),
    ("ajs_anonymous_id", 0.05),
    ("utag_main", 0.04),
    ("_gcl_au", 0.03),
];

/// Identifier cookies the long tail grabs by name — the weights shape
/// Table 2's exfiltrator-entity counts per cookie.
const POPULAR_EXFIL_TARGETS: &[(&str, f64)] = &[
    ("_ga", 0.26),
    ("_gid", 0.15),
    ("_gcl_au", 0.12),
    ("_fbp", 0.07),
    ("i", 0.05),
    ("pd", 0.05),
    ("SPugT", 0.04),
    ("PugT", 0.04),
    ("__utma", 0.035),
    ("__utmb", 0.03),
    ("__utmz", 0.03),
    ("_mkto_trk", 0.025),
    ("_ym_d", 0.025),
    ("lotame_domain_check", 0.02),
    ("us_privacy", 0.02),
    ("_yjsu_yjad", 0.02),
    ("gaconnector_GA_Client_ID", 0.015),
    ("gaconnector_GA_Session_ID", 0.015),
    ("sc_is_visitor_unique", 0.015),
    ("_awl", 0.004),
    ("keep_alive", 0.003),
];

const POPULAR_DELETE_TARGETS: &[(&str, f64)] = &[
    ("_uetvid", 0.25),
    ("_uetsid", 0.22),
    ("_ga", 0.15),
    ("_fbp", 0.12),
    ("_gid", 0.10),
    ("_gcl_au", 0.08),
    ("_cookie_test", 0.05),
    ("_screload", 0.03),
];

fn pick_weighted<R: Rng>(rng: &mut R, table: &[(&str, f64)]) -> String {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen::<f64>() * total;
    for (name, w) in table {
        if roll < *w {
            return name.to_string();
        }
        roll -= w;
    }
    table[0].0.to_string()
}

/// Generates `count` long-tail vendors, deterministically from `seed`.
pub fn generate_longtail(seed: u64, count: usize) -> Vec<VendorSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10f7_7a11);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let domain = names::vendor_domain(&mut rng, i);
        let host = format!("cdn.{domain}");
        let category = match rng.gen_range(0..100) {
            0..=24 => VendorCategory::Analytics,
            25..=46 => VendorCategory::AdExchange,
            47..=51 => VendorCategory::SocialWidget,
            52..=57 => VendorCategory::ConsentManager,
            58..=71 => VendorCategory::CustomerSupport,
            72..=83 => VendorCategory::Performance,
            84..=89 => VendorCategory::AbTesting,
            _ => VendorCategory::Cdn,
        };
        let mut v = VendorSpec {
            domain: domain.clone(),
            host: host.clone(),
            path: format!("/t/{i}.js"),
            category,
            sets: Vec::new(),
            store_sets: Vec::new(),
            reads_all_prob: 0.0,
            exfils: Vec::new(),
            overwrites: Vec::new(),
            deletes: Vec::new(),
            inject_domains: Vec::new(),
            inject_pool_count: (0, 0),
            // Pareto-ish adoption weight: most long-tail vendors are rare.
            weight: 0.05 + rng.gen::<f64>().powi(3) * 0.9,
            dom_mutate_prob: if rng.gen_bool(0.032) { 0.38 } else { 0.0 },
            feature: None,
        };
        // Own cookies: 0–2, generic or branded names.
        let n_cookies = rng.gen_range(0..=2);
        for _ in 0..n_cookies {
            let name = if rng.gen_bool(0.18) {
                names::generic_cookie_name(&mut rng)
            } else {
                format!("_{}_uid", domain.split('.').next().unwrap_or("lt"))
            };
            let value = match rng.gen_range(0..4) {
                0 => ValueSpec::Uuid,
                1 => ValueSpec::HexId(rng.gen_range(16..40)),
                2 => ValueSpec::GaStyle,
                _ => ValueSpec::Short,
            };
            v.sets.push(CookieSpec {
                name,
                value,
                max_age_s: Some(86_400 * rng.gen_range(1i64..400)),
                site_wide: true,
                prob: 0.8,
            });
        }
        let is_trackerish = category.is_ad_tracking();
        v.reads_all_prob = if is_trackerish { 0.6 } else { 0.25 };
        // Bulk exfiltration: the signature long-tail behaviour.
        let exfil_prob: f64 = if is_trackerish { 0.50 } else { 0.08 };
        if rng.gen_bool(exfil_prob) {
            let selection = if rng.gen_bool(0.62) {
                let mut names: Vec<String> = Vec::new();
                let n = rng.gen_range(1..=3);
                for _ in 0..n {
                    let pick = pick_weighted(&mut rng, POPULAR_EXFIL_TARGETS);
                    if !names.contains(&pick) {
                        names.push(pick);
                    }
                }
                // Long-tail trackers also report their own identifier.
                if let Some(own) = v.sets.first() {
                    names.push(own.name.clone());
                }
                ExfilSelection::Named(names)
            } else {
                ExfilSelection::Sample(rng.gen_range(2..=5))
            };
            v.exfils.push(ExfilSpec {
                dests: vec![host],
                path: "/collect".into(),
                selection,
                segment: SegmentPolicy::Full,
                // A slice of the tail hashes or encodes before sending;
                // Full+Base64 is deliberately kept in the mix as a case
                // the paper's detector cannot match (full-value encoding
                // destroys segment alignment) — a documented miss path.
                encoding: match rng.gen_range(0..20) {
                    0..=15 => Encoding::Plain,
                    16 | 17 => Encoding::Md5,
                    18 => Encoding::Sha1,
                    _ => Encoding::Base64,
                },
                kind: if rng.gen_bool(0.5) {
                    RequestKind::Image
                } else {
                    RequestKind::Xhr
                },
                prob: 0.30,
                via_store: false,
                extra_dest_samples: rng.gen_range(1..=2),
            });
        }
        // Occasional overwriters (drives Table 5's manipulator counts).
        if rng.gen_bool(0.030) {
            let target = if rng.gen_bool(0.72) {
                OverwriteTarget::Named(pick_weighted(&mut rng, POPULAR_OVERWRITE_TARGETS))
            } else {
                OverwriteTarget::GenericName
            };
            v.overwrites.push(OverwriteSpec {
                target,
                value: ValueSpec::HexId(rng.gen_range(16..64)),
                prob: 0.7,
                blind: rng.gen_bool(0.35),
            });
        }
        // Rare deleters outside the consent category.
        let delete_prob = if category == VendorCategory::ConsentManager {
            0.10
        } else {
            0.005
        };
        if rng.gen_bool(delete_prob) {
            v.deletes.push(DeleteSpec {
                target: DeleteTarget::Named(pick_weighted(&mut rng, POPULAR_DELETE_TARGETS)),
                prob: 0.5,
                via_store: false,
            });
            if category == VendorCategory::ConsentManager {
                v.deletes.push(DeleteSpec {
                    target: DeleteTarget::RandomFirstParty,
                    prob: 0.3,
                    via_store: false,
                });
            }
        }
        // Tracker-ish tail vendors occasionally chain-load partners.
        if is_trackerish && rng.gen_bool(0.6) {
            v.inject_pool_count = (0, 3);
        }
        out.push(v);
    }
    out
}

/// Generates the dedicated CookieStore-using vendor pool (§5.2's long
/// tail of 361 distinct setter domains with only 13 distinct names).
/// Each vendor sets one structured cookie via `cookieStore.set`; a small
/// fraction also reads the store back and reports home.
pub fn generate_store_vendors(seed: u64, count: usize) -> Vec<VendorSpec> {
    const STORE_NAMES: &[&str] = &[
        "_awl",
        "_awl",
        "_awl",
        "_awl",
        "keep_alive",
        "keep_alive",
        "keep_alive",
        "st_id",
        "kv_sync",
        "cs_probe",
        "perf_beat",
        "hb_tick",
        "sw_state",
        "px_keep",
        "tab_sync",
        "live_ping",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5708_e5e5);
    (0..count)
        .map(|i| {
            let domain = names::vendor_domain(&mut rng, 50_000 + i);
            let host = format!("cdn.{domain}");
            let name = STORE_NAMES[rng.gen_range(0..STORE_NAMES.len())];
            let mut v = VendorSpec {
                domain,
                host: host.clone(),
                path: format!("/sdk/{i}.js"),
                category: VendorCategory::Performance,
                sets: Vec::new(),
                store_sets: vec![CookieSpec {
                    name: name.into(),
                    value: ValueSpec::CounterTimestampSession,
                    max_age_s: Some(86_400),
                    site_wide: true,
                    prob: 0.95,
                }],
                reads_all_prob: 0.0,
                exfils: Vec::new(),
                overwrites: Vec::new(),
                deletes: Vec::new(),
                inject_domains: Vec::new(),
                inject_pool_count: (0, 0),
                weight: 0.0, // adoption handled by the dedicated sampler
                dom_mutate_prob: 0.0,
                feature: None,
            };
            if rng.gen_bool(0.3) {
                v.exfils.push(ExfilSpec {
                    dests: vec![host],
                    path: "/beat".into(),
                    selection: ExfilSelection::All,
                    segment: SegmentPolicy::Full,
                    encoding: Encoding::Plain,
                    kind: RequestKind::Beacon,
                    prob: 0.8,
                    via_store: true,
                    extra_dest_samples: 0,
                });
            }
            v
        })
        .collect()
}

/// Generates the destination-only domain pool (entities that receive
/// exfiltrated identifiers without serving scripts).
pub fn generate_destinations(seed: u64, count: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    (0..count)
        .map(|i| format!("sync.{}", names::vendor_domain(&mut rng, 100_000 + i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longtail_deterministic_and_diverse() {
        let a = generate_longtail(1, 200);
        let b = generate_longtail(1, 200);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
        }
        let exfiltrators = a.iter().filter(|v| !v.exfils.is_empty()).count();
        assert!(
            exfiltrators > 60,
            "expected a majority-ish of exfiltrators, got {exfiltrators}"
        );
        let overwriters = a.iter().filter(|v| !v.overwrites.is_empty()).count();
        // Overwriting is rare by design (a few % of the tail); the exact
        // count depends on the RNG stream, so only require presence.
        assert!(overwriters >= 3, "got {overwriters}");
    }

    #[test]
    fn tracking_share_is_majority_but_not_all() {
        // The occurrence-weighted 70% of §5.1 comes from the core vendors
        // dominating adoption; the long tail itself sits near 58%.
        let tail = generate_longtail(42, 1000);
        let tracking = tail.iter().filter(|v| v.category.is_ad_tracking()).count();
        let share = tracking as f64 / 1000.0;
        assert!((0.48..0.70).contains(&share), "tracking share {share}");
    }

    #[test]
    fn store_vendors_set_via_cookie_store_only() {
        let sv = generate_store_vendors(9, 100);
        assert_eq!(sv.len(), 100);
        for v in &sv {
            assert!(v.sets.is_empty());
            assert_eq!(v.store_sets.len(), 1);
            assert_eq!(v.weight, 0.0);
        }
        // Name diversity stays small (§5.2: 13 unique names).
        let names: std::collections::HashSet<&str> =
            sv.iter().map(|v| v.store_sets[0].name.as_str()).collect();
        assert!(names.len() <= 11);
    }

    #[test]
    fn destinations_unique() {
        let d = generate_destinations(7, 100);
        let set: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(set.len(), 100);
    }
}
