//! Programmatic blueprint construction — the scenario hook.
//!
//! [`crate::WebGenerator`] emits *populations*: thousands of sites whose
//! vendor stacks are sampled from calibrated distributions. Adversarial
//! scenario work (crate `cg-scenarios`) needs the opposite: one
//! hand-posed site whose every script, header, and DNS record is chosen
//! to exercise a specific guard decision. [`SiteBuilder`] constructs
//! such a [`SiteBlueprint`] directly, without sampling, while keeping
//! every invariant the browser simulator relies on:
//!
//! * the landing URL is `https://www.<domain>/` (or `http` when
//!   [`SiteBuilder::insecure`] is called);
//! * `spec.crawl_ok` is always true — a posed site is never discarded;
//! * vendor scripts registered through [`SiteBuilder::vendor_script`]
//!   are recorded in `spec.direct_vendor_domains`, so forensics and
//!   filter-list tooling see the same stack the page executes;
//! * CNAME records registered through [`SiteBuilder::cname`] mark
//!   `spec.cname_cloaked`, mirroring the generator.

use crate::blueprint::{PageBlueprint, ScriptBlueprint, SiteBlueprint};
use crate::site::{SiteCategory, SiteSpec, SsoKind};
use crate::vendors::VendorSpec;
use cg_script::ScriptOp;
use cg_url::CnameMap;
use std::collections::HashMap;

/// Builds one hand-posed [`SiteBlueprint`].
#[derive(Debug, Clone)]
pub struct SiteBuilder {
    spec: SiteSpec,
    landing_scripts: Vec<ScriptBlueprint>,
    server_cookies: Vec<String>,
    subpages: Vec<PageBlueprint>,
    injectables: HashMap<String, Vec<ScriptOp>>,
    cnames: CnameMap,
    csp: Option<String>,
}

impl SiteBuilder {
    /// Starts a builder for an HTTPS site on `domain` (an eTLD+1, e.g.
    /// `"shop-example.com"`), rank 1, category [`SiteCategory::Tech`].
    pub fn new(domain: &str) -> SiteBuilder {
        SiteBuilder {
            spec: SiteSpec {
                rank: 1,
                domain: domain.to_string(),
                category: SiteCategory::Tech,
                https: true,
                crawl_ok: true,
                sso: None,
                direct_vendor_domains: Vec::new(),
                self_hosted_tracker: false,
                cname_cloaked: false,
                server_side_tagging: false,
                server_forwards: Vec::new(),
                respawning_tracker: None,
            },
            landing_scripts: Vec::new(),
            server_cookies: Vec::new(),
            subpages: Vec::new(),
            injectables: HashMap::new(),
            cnames: CnameMap::new(),
            csp: None,
        }
    }

    /// Sets the Tranco-style rank (default 1).
    pub fn rank(mut self, rank: usize) -> SiteBuilder {
        self.spec.rank = rank;
        self
    }

    /// Sets the site vertical (default [`SiteCategory::Tech`]).
    pub fn category(mut self, category: SiteCategory) -> SiteBuilder {
        self.spec.category = category;
        self
    }

    /// Serves the site over plain HTTP (disables the CookieStore API,
    /// which requires a secure context).
    pub fn insecure(mut self) -> SiteBuilder {
        self.spec.https = false;
        self
    }

    /// Declares the site's SSO flow (drives breakage probes).
    pub fn sso(mut self, kind: SsoKind) -> SiteBuilder {
        self.spec.sso = Some(kind);
        self
    }

    /// Attaches a raw `Set-Cookie` header to the landing-page response.
    pub fn server_cookie(mut self, raw: &str) -> SiteBuilder {
        self.server_cookies.push(raw.to_string());
        self
    }

    /// Adds an inline (origin-less) landing script.
    pub fn inline_script(mut self, ops: Vec<ScriptOp>) -> SiteBuilder {
        self.landing_scripts
            .push(ScriptBlueprint { url: None, ops });
        self
    }

    /// Adds an external landing script served from `url`.
    pub fn external_script(mut self, url: &str, ops: Vec<ScriptOp>) -> SiteBuilder {
        self.landing_scripts.push(ScriptBlueprint {
            url: Some(url.to_string()),
            ops,
        });
        self
    }

    /// Adds a landing script served from a registry vendor's canonical
    /// URL and records the vendor in `spec.direct_vendor_domains` — use
    /// this (not [`SiteBuilder::external_script`]) for third-party
    /// vendors, so the posed site cannot drift from the generator's
    /// vendor registry.
    pub fn vendor_script(mut self, vendor: &VendorSpec, ops: Vec<ScriptOp>) -> SiteBuilder {
        self.spec.direct_vendor_domains.push(vendor.domain.clone());
        self.landing_scripts.push(ScriptBlueprint {
            url: Some(vendor.script_url()),
            ops,
        });
        self
    }

    /// Like [`SiteBuilder::vendor_script`], but serves the vendor's
    /// behaviour from a host under the *site's own* domain (self-hosted
    /// vendor copies and CNAME-cloaked inclusions).
    pub fn first_party_hosted(
        mut self,
        subdomain: &str,
        path: &str,
        ops: Vec<ScriptOp>,
    ) -> SiteBuilder {
        self.spec.self_hosted_tracker = true;
        let url = format!("https://{subdomain}.{}{path}", self.spec.domain);
        self.landing_scripts.push(ScriptBlueprint {
            url: Some(url),
            ops,
        });
        self
    }

    /// Registers a dynamically injectable script (resolved by
    /// `ScriptOp::InjectScript`).
    pub fn injectable(mut self, url: &str, ops: Vec<ScriptOp>) -> SiteBuilder {
        self.injectables.insert(url.to_string(), ops);
        self
    }

    /// Adds a DNS CNAME record: `alias` (a host under the site's
    /// domain) resolves to `target` (a tracker host). Marks the site
    /// cloaked.
    pub fn cname(mut self, alias: &str, target: &str) -> SiteBuilder {
        self.spec.cname_cloaked = true;
        self.cnames.insert(alias, target);
        self
    }

    /// Serves a `Content-Security-Policy` header.
    pub fn csp(mut self, policy: &str) -> SiteBuilder {
        self.csp = Some(policy.to_string());
        self
    }

    /// Adds a subpage at `path` with the given scripts; the landing page
    /// links to it so the interaction protocol will click through.
    pub fn subpage(mut self, path: &str, scripts: Vec<ScriptBlueprint>) -> SiteBuilder {
        self.subpages.push(PageBlueprint {
            path: path.to_string(),
            server_cookies: Vec::new(),
            scripts,
            resource_count: 8,
            links: Vec::new(),
        });
        self
    }

    /// Finalizes the blueprint.
    pub fn build(self) -> SiteBlueprint {
        let links = self.subpages.iter().map(|p| p.path.clone()).collect();
        SiteBlueprint {
            spec: self.spec,
            landing: PageBlueprint {
                path: "/".to_string(),
                server_cookies: self.server_cookies,
                scripts: self.landing_scripts,
                resource_count: 12,
                links,
            },
            subpages: self.subpages,
            injectables: self.injectables,
            cnames: self.cnames,
            csp: self.csp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendors::core_vendors;

    #[test]
    fn builder_produces_visitable_blueprint() {
        let vendors = core_vendors();
        let gtm = vendors
            .iter()
            .find(|v| v.domain == "googletagmanager.com")
            .unwrap();
        let site = SiteBuilder::new("posed-site.com")
            .server_cookie("session=abc; Path=/")
            .vendor_script(gtm, vec![ScriptOp::ReadAllCookies])
            .subpage("/checkout", vec![])
            .build();
        assert!(site.spec.crawl_ok);
        assert_eq!(site.landing_url(), "https://www.posed-site.com/");
        assert_eq!(
            site.spec.direct_vendor_domains,
            vec!["googletagmanager.com".to_string()]
        );
        assert_eq!(site.landing.links, vec!["/checkout".to_string()]);
        assert_eq!(
            site.landing.scripts[0].url.as_deref(),
            Some("https://www.googletagmanager.com/gtm.js")
        );
    }

    #[test]
    fn cname_marks_cloaking() {
        let site = SiteBuilder::new("posed-site.com")
            .cname("metrics.posed-site.com", "collect.tracker.net")
            .build();
        assert!(site.spec.cname_cloaked);
        assert!(site.cnames.is_cloaked("metrics.posed-site.com"));
    }
}
