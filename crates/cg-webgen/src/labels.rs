//! Ground-truth cookie labels: which generated cookies are trackers.
//!
//! The field studies (COOKIEGRAPH, the sync surveys) score detectors
//! against sampled manual labels; here the generator itself knows every
//! cookie's intent, so labels are *derived from realized behaviour*,
//! not hand-maintained lists. A cookie is a **tracker** exactly when
//! the ecosystem treats it as a shared identifier:
//!
//! 1. its value shape is a stable identifier (GA/FBP-style, UUID, or a
//!    hex id of ≥ 8 chars — something §4.4 segment extraction can
//!    latch onto),
//! 2. it persists (requested lifetime ≥ [`PERSIST_CUTOFF_S`]; session
//!    cookies such as SSO state tokens never qualify), and
//! 3. some vendor in the realized registry (core *or* generated
//!    long-tail) deliberately ships it by name — the union of all
//!    [`ExfilSelection::Named`] lists. Bulk selections (`All`,
//!    `Sample`) are indiscriminate payload stuffing, not
//!    identifier-sharing intent, so they do not make a cookie a
//!    tracker by themselves.
//!
//! This makes labels seed-dependent on purpose: a long-tail ecosystem
//! that happens to harvest `keep_alive` by name turns that cookie into
//! a tracker *in that ecosystem*, which is exactly the operational
//! definition a detector is scored against. Two behaviourally
//! identical cookie programs always share a label.
//!
//! Known honest edge: "dormant" identifiers (persistent ids that no
//! vendor ships by name — `__gads`, `_clck`, `li_fat_id`, `AMCV_`, …)
//! are labeled functional even though a human analyst might call them
//! trackers-in-waiting; nothing in the observable crawl distinguishes
//! them from device-bound state.

use crate::vendors::{ExfilSelection, VendorRegistry};
use cg_script::ValueSpec;
use std::collections::{BTreeMap, BTreeSet};

/// Minimum requested lifetime (seconds) for a cookie to count as
/// persistent — condition 2 of the tracker definition. 10 minutes is
/// far below every real identifier lifetime in the registry (the
/// shortest is `__utmb` at 30 minutes) and above every session/probe
/// cookie.
pub const PERSIST_CUTOFF_S: i64 = 600;

/// Ground-truth intent of one generated cookie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CookieLabel {
    /// A stable identifier deliberately shared across entities.
    Tracker,
    /// Everything else: consent state, SSO/session tokens, feature
    /// cookies, probe values, and dormant identifiers nobody ships.
    Functional,
}

impl CookieLabel {
    /// Stable lowercase name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            CookieLabel::Tracker => "tracker",
            CookieLabel::Functional => "functional",
        }
    }
}

/// The realized label table: every cookie the registry can ghost-write,
/// keyed by `(name, owning vendor domain)`, plus name-keyed overrides
/// for the cookies `cg-webgen`'s site builder synthesizes outside the
/// registry (self-hosted analytics, CNAME-cloaked uid).
#[derive(Debug, Clone)]
pub struct CookieLabels {
    by_pair: BTreeMap<(String, String), CookieLabel>,
    name_overrides: BTreeMap<String, CookieLabel>,
    harvested: BTreeSet<String>,
}

/// Whether a value spec mints a stable identifier — condition 1 of the
/// tracker definition. Counter/consent/flag shapes are excluded even
/// though some contain ≥8-char segments (timestamps, consent ids).
fn stable_identifier(spec: &ValueSpec) -> bool {
    match spec {
        ValueSpec::GaStyle | ValueSpec::FbpStyle | ValueSpec::Uuid => true,
        ValueSpec::HexId(n) => *n >= 8,
        ValueSpec::Fixed(_)
        | ValueSpec::CounterTimestampSession
        | ValueSpec::ConsentString
        | ValueSpec::UsPrivacy
        | ValueSpec::Short => false,
    }
}

impl CookieLabels {
    /// Derives the table from a realized registry. Deterministic for a
    /// given registry (ordered maps throughout).
    pub fn derive(registry: &VendorRegistry) -> CookieLabels {
        let mut harvested: BTreeSet<String> = BTreeSet::new();
        for v in registry.all() {
            for ex in &v.exfils {
                if ex.prob <= 0.0 {
                    continue;
                }
                if let ExfilSelection::Named(names) = &ex.selection {
                    harvested.extend(names.iter().cloned());
                }
            }
        }
        let mut by_pair = BTreeMap::new();
        for v in registry.all() {
            for c in v.sets.iter().chain(&v.store_sets) {
                let tracker = stable_identifier(&c.value)
                    && c.max_age_s.is_some_and(|a| a >= PERSIST_CUTOFF_S)
                    && harvested.contains(&c.name);
                let label = if tracker {
                    CookieLabel::Tracker
                } else {
                    CookieLabel::Functional
                };
                by_pair.insert((c.name.clone(), v.domain.clone()), label);
            }
        }
        // Cookies the site builder synthesizes outside vendor programs.
        // Both are persistent identifiers their setter always ships
        // off-site (`SiteBuilder` attaches an unconditional exfil), so
        // they are trackers wherever they appear — including when the
        // observed owner is the site itself (self-hosted analytics) or
        // a CNAME-uncloaked long-tail vendor.
        let mut name_overrides = BTreeMap::new();
        name_overrides.insert("_ga".to_string(), CookieLabel::Tracker);
        name_overrides.insert("_cloaked_uid".to_string(), CookieLabel::Tracker);
        // Scenario-posed cookies (cg-scenarios catalog) that exist
        // outside any vendor program but inside the scored universe:
        // the CNAME-cloaked HTTP identifier, the sync-chain adoptive
        // copy of `_ga`, and the SSO session token (a persistent UUID
        // that is never shipped — the canonical must-not-flag case).
        name_overrides.insert("_dcid".to_string(), CookieLabel::Tracker);
        name_overrides.insert("_cc_ga".to_string(), CookieLabel::Tracker);
        name_overrides.insert("idp_session".to_string(), CookieLabel::Functional);
        CookieLabels {
            by_pair,
            name_overrides,
            harvested,
        }
    }

    /// The label for cookie `name` as owned by `owner` (an eTLD+1: a
    /// vendor domain, or the visited site for first-party-attributed
    /// writes). `None` = the pair is not a registry cookie (site-local
    /// names, blind-write collision names) and is outside the scored
    /// universe.
    pub fn label_of(&self, name: &str, owner: &str) -> Option<CookieLabel> {
        if let Some(&l) = self.name_overrides.get(name) {
            return Some(l);
        }
        self.by_pair
            .get(&(name.to_string(), owner.to_string()))
            .copied()
    }

    /// [`CookieLabels::label_of`] that panics with context — the drift
    /// guard scenario fixtures use so a registry rename cannot silently
    /// strand a scored cookie.
    pub fn require(&self, name: &str, owner: &str) -> CookieLabel {
        self.label_of(name, owner).unwrap_or_else(|| {
            panic!("cookie ({name}, {owner}) has no ground-truth label — registry drift")
        })
    }

    /// Whether any realized vendor ships `name` deliberately (condition
    /// 3 on its own).
    pub fn harvested(&self, name: &str) -> bool {
        self.harvested.contains(name)
    }

    /// Iterates the name-keyed overrides (cookies labeled regardless of
    /// observed owner) in sorted order.
    pub fn name_overrides(&self) -> impl Iterator<Item = (&str, CookieLabel)> {
        self.name_overrides.iter().map(|(n, &l)| (n.as_str(), l))
    }

    /// Iterates every labeled `(name, owner)` pair in sorted order.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str, CookieLabel)> {
        self.by_pair
            .iter()
            .map(|((n, o), &l)| (n.as_str(), o.as_str(), l))
    }

    /// Number of labeled pairs (name overrides excluded).
    pub fn len(&self) -> usize {
        self.by_pair.len()
    }

    /// True when no registry pair is labeled (never, for a real
    /// registry).
    pub fn is_empty(&self) -> bool {
        self.by_pair.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::WebGenerator;

    fn labels() -> CookieLabels {
        let gen = WebGenerator::new(GenConfig::small(200), 7);
        CookieLabels::derive(gen.registry())
    }

    #[test]
    fn canonical_trackers_and_functionals() {
        let l = labels();
        assert_eq!(
            l.label_of("_ga", "googletagmanager.com"),
            Some(CookieLabel::Tracker)
        );
        assert_eq!(
            l.label_of("_fbp", "facebook.net"),
            Some(CookieLabel::Tracker)
        );
        // Consent signal: structured value, not an id.
        assert_eq!(
            l.label_of("OptanonConsent", "cookielaw.org"),
            Some(CookieLabel::Functional)
        );
        // SSO state: session lifetime, never persistent.
        assert_eq!(
            l.label_of("fblo_state", "facebook.com"),
            Some(CookieLabel::Functional)
        );
        // Dormant id: persistent but never shipped by name.
        assert_eq!(
            l.label_of("__gads", "googlesyndication.com"),
            Some(CookieLabel::Functional)
        );
        // Site-builder synthetics resolve through name overrides.
        assert_eq!(
            l.label_of("_cloaked_uid", "anything.example"),
            Some(CookieLabel::Tracker)
        );
        // Unknown pair: outside the scored universe.
        assert_eq!(l.label_of("sess_id", "some-site.example"), None);
    }

    #[test]
    fn labels_are_behaviour_derived_not_category_derived() {
        let l = labels();
        // `_awl` is shipped (via `All`) and persistent but its value is
        // a counter/timestamp, not a stable id → functional.
        assert_eq!(
            l.label_of("_awl", "getadmiral.com"),
            Some(CookieLabel::Functional)
        );
        // `us_privacy` is harvested by name but carries no identifier.
        assert!(l.harvested("us_privacy"));
        assert_eq!(
            l.label_of("us_privacy", "ketchjs.com"),
            Some(CookieLabel::Functional)
        );
    }

    #[test]
    #[should_panic(expected = "no ground-truth label")]
    fn require_panics_on_drift() {
        labels().require("definitely_not_a_cookie", "nowhere.example");
    }
}
