//! The synthetic web ecosystem — this reproduction's stand-in for the
//! Tranco top-20,000 crawl (§4.2).
//!
//! The generator produces, deterministically from a seed:
//!
//! * a **core vendor registry** (~50 named third-party services with the
//!   behaviours the paper documents: Google Tag Manager injecting other
//!   trackers, the Meta pixel ghost-writing `_fbp`, RTB exchanges
//!   bulk-exfiltrating the jar, consent managers deleting tracker
//!   cookies, the LinkedIn insight tag's targeted `_ga` parsing, the
//!   Shopify/Admiral `cookieStore` users, SSO providers, …);
//! * a **long-tail population** of ~1,600 generated tracker/widget
//!   domains (the paper's Table 2 counts >1,100 distinct exfiltrator
//!   entities for `_ga` alone — that diversity must exist for the
//!   analysis to reproduce);
//! * **20,000 ranked sites** with Zipf-flavoured vendor adoption,
//!   category-dependent stacks (commerce sites carry Shopify, news sites
//!   carry ad exchanges), first-party scripts and HTTP cookies, inline
//!   scripts, SSO flows, functional features (cart/chat/search), internal
//!   links for crawler interaction, and a crawl-failure model matching
//!   the paper's 14,917/20,000 completion rate.
//!
//! Everything is emitted as *blueprints* (`SiteBlueprint`,
//! `PageBlueprint`, `ScriptBlueprint`) that the browser simulator
//! executes; the generator never touches a cookie jar itself.
//!
//! **Layer:** ecosystem root (no simulator dependencies; emits
//! blueprints only). **Invariant:** generation is deterministic per
//! (config, master seed, rank) — sites can be re-derived independently
//! and in parallel. **Entry points:** `WebGenerator`, `SiteBlueprint`,
//! `SiteBuilder` (hand-posed scenario sites), `VendorRegistry`.

pub mod blueprint;
pub mod builder;
pub mod config;
pub mod csp;
pub mod labels;
pub mod longtail;
pub mod names;
pub mod site;
pub mod vendors;

pub use blueprint::{PageBlueprint, ScriptBlueprint, SiteBlueprint};
pub use builder::SiteBuilder;
pub use config::GenConfig;
pub use csp::{csp_for_site, CspStyle};
pub use labels::{CookieLabel, CookieLabels};
pub use site::{ServerForward, SiteCategory, SiteSpec, SsoKind, WebGenerator};
pub use vendors::{VendorCategory, VendorId, VendorRegistry, VendorSpec};
