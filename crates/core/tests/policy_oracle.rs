//! Differential testing: the id-compiled decision path
//! ([`cookieguard_core::CompiledPolicy`]) against the retained verbatim
//! string-path oracle (`GuardEngine::check_str_oracle`).
//!
//! For random configs (inline policy × whitelist × entity map), sites,
//! callers, and creators — in mixed case, with stray edge dots, and
//! including domains unknown to the entity map — the two paths must
//! return *identical* `AccessDecision`s, reasons included. CI runs the
//! property below by name so a test-filter regression cannot silently
//! skip it.

use cg_entity::EntityMap;
use cookieguard_core::{AccessDecision, Caller, GuardConfig, GuardEngine, InlinePolicy};
use proptest::prelude::*;

/// Domain pool: mixed case and stray edge dots (both paths apply the
/// interner's normalization — lowercase, dots trimmed — and must
/// agree), entity-mapped and unmapped domains, and spellings that
/// collapse to the same normalized domain.
fn domain() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "site.com",
        "SITE.com",
        "site.com.",
        "Shop.Example",
        "tracker.com",
        "ads.net",
        "facebook.net",
        "FBCDN.net",
        "fbcdn.net",
        ".fbcdn.net",
        "instagram.com",
        "criteo.com",
        "partner.io",
        ".Partner.IO.",
        "unknown-a.example",
        "Unknown-B.example",
        "cdn.io",
    ])
}

fn entity() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["Meta", "Criteo", "Org-C"])
}

fn build_config(relaxed: bool, whitelist: &[&str], entities: &[(&str, &str)]) -> GuardConfig {
    let mut config = if relaxed {
        GuardConfig::relaxed()
    } else {
        GuardConfig::strict()
    };
    for d in whitelist {
        config = config.with_whitelisted(d);
    }
    if !entities.is_empty() {
        let mut map = EntityMap::new();
        for (d, e) in entities {
            map.insert(d, e);
        }
        config = config.with_entity_grouping(map);
    }
    config
}

proptest! {
    /// THE differential property: for every generated (config, site,
    /// caller, creator) the compiled path and the string oracle agree
    /// exactly — on `check` and on `check_create`.
    #[test]
    fn compiled_policy_matches_string_oracle(
        site in domain(),
        caller in prop::option::of(domain()),
        creator in prop::option::of(domain()),
        relaxed in any::<bool>(),
        whitelist in prop::collection::vec(domain(), 0..3),
        entities in prop::collection::vec((domain(), entity()), 0..6),
    ) {
        let config = build_config(relaxed, &whitelist, &entities);
        let engine = GuardEngine::new(config);

        let caller_struct = match caller {
            Some(d) => Caller::external(d),
            None => Caller::inline(),
        };
        let compiled = engine.check(site, &caller_struct, creator);
        let oracle = engine.check_str_oracle(site, caller, creator);
        prop_assert_eq!(
            compiled, oracle,
            "check diverged: site={:?} caller={:?} creator={:?}",
            site, caller, creator
        );

        let compiled_create = engine.check_create(site, &caller_struct);
        let oracle_create = engine.check_create_str_oracle(site, caller);
        prop_assert_eq!(
            compiled_create, oracle_create,
            "check_create diverged: site={:?} caller={:?}",
            site, caller
        );
    }
}

/// Exhaustive sweep over the full pool for the two fixed configs the
/// paper evaluates (strict, strict+grouping) — no sampling gaps for the
/// edge cases named in the issue: case-normalization and domains unknown
/// to the entity map.
#[test]
fn compiled_policy_matches_string_oracle_exhaustively() {
    let pool = [
        "site.com",
        "SITE.com",
        "site.com.",
        "tracker.com",
        "facebook.net",
        "fbcdn.net",
        "FBCDN.net",
        ".fbcdn.net",
        "criteo.com",
        "partner.io",
        "unknown-a.example",
        "Unknown-B.example",
    ];
    let configs = [
        GuardConfig::strict(),
        GuardConfig::strict()
            .with_whitelisted("partner.io")
            .with_entity_grouping(cg_entity::builtin_entity_map()),
        GuardConfig::relaxed().with_entity_grouping(cg_entity::builtin_entity_map()),
    ];
    let mut checked = 0usize;
    for config in configs {
        let engine = GuardEngine::new(config);
        for site in pool {
            for caller in pool.iter().map(Some).chain([None]) {
                for creator in pool.iter().map(Some).chain([None]) {
                    let caller_struct = match caller {
                        Some(d) => Caller::external(d),
                        None => Caller::inline(),
                    };
                    let compiled = engine.check(site, &caller_struct, creator.copied());
                    let oracle = engine.check_str_oracle(site, caller.copied(), creator.copied());
                    assert_eq!(
                        compiled, oracle,
                        "diverged: site={site:?} caller={caller:?} creator={creator:?}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 3_000, "sweep actually ran ({checked} cases)");
}

/// The inline-policy edge: origin-less callers must take the configured
/// inline branch identically on both paths.
#[test]
fn inline_callers_follow_inline_policy_on_both_paths() {
    for (relaxed, expect_allow) in [(false, false), (true, true)] {
        let engine = GuardEngine::new(build_config(relaxed, &[], &[]));
        let compiled = engine.check("site.com", &Caller::inline(), Some("tracker.com"));
        let oracle = engine.check_str_oracle("site.com", None, Some("tracker.com"));
        assert_eq!(compiled, oracle);
        assert_eq!(compiled.is_allow(), expect_allow);
        match engine.config().inline_policy {
            InlinePolicy::Strict => assert!(matches!(compiled, AccessDecision::Block(_))),
            InlinePolicy::Relaxed => assert!(matches!(compiled, AccessDecision::Allow(_))),
        }
    }
}
