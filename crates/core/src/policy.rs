//! The policy engine: who may touch which cookie.

use crate::config::GuardConfig;
use cg_url::DomainId;
use serde::{Deserialize, Serialize};

/// The identity of a script performing a cookie operation, as recovered
/// from the stack trace.
///
/// The domain is carried as an interned [`DomainId`] — resolved once,
/// at attribution time, so every policy check downstream is an integer
/// comparison. `Caller` is `Copy`: contexts clone it for free. The serde
/// impls resolve the id back to the domain *name* (via [`cg_url::name`]),
/// so serialized callers never contain ids — the wire-format invariant
/// shared with the rest of the compiled policy stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Caller {
    /// The script's interned eTLD+1; `None` for inline scripts and async
    /// callbacks whose stack was lost (both attribute as "no reliable
    /// origin").
    pub domain: Option<DomainId>,
}

impl Caller {
    /// A caller attributed to an external script domain (interned,
    /// normalized to lowercase).
    pub fn external(domain: &str) -> Caller {
        Caller {
            domain: Some(cg_url::intern(domain)),
        }
    }

    /// A caller attributed to an already-interned domain — the zero-cost
    /// constructor for hot paths that resolved the id earlier.
    pub fn from_id(domain: DomainId) -> Caller {
        Caller {
            domain: Some(domain),
        }
    }

    /// An inline / unattributable caller.
    pub fn inline() -> Caller {
        Caller { domain: None }
    }

    /// The caller's domain name (normalized form), when attributed.
    pub fn domain_name(&self) -> Option<&'static str> {
        self.domain.map(cg_url::name)
    }
}

// Ids never cross a serialization boundary: the wire form is the domain
// name, exactly as it was before `Caller` was compiled to ids.
impl Serialize for Caller {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![(
            serde::Content::Str("domain".to_string()),
            match self.domain {
                Some(id) => serde::Content::Str(cg_url::name(id).to_string()),
                None => serde::Content::Null,
            },
        )])
    }
}

impl<'de> Deserialize<'de> for Caller {
    fn from_content(content: &serde::Content) -> Result<Caller, serde::DeError> {
        let domain = match content.get("domain") {
            Some(serde::Content::Str(s)) => Some(cg_url::intern(s)),
            Some(serde::Content::Null) | None => None,
            Some(other) => {
                return Err(serde::DeError(format!(
                    "Caller.domain: expected string or null, got {}",
                    other.kind()
                )))
            }
        };
        Ok(Caller { domain })
    }
}

/// Why an access was allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllowReason {
    /// Caller is the site owner (full-access policy, §6.1).
    SiteOwner,
    /// Caller's domain created the cookie.
    Creator,
    /// Caller's entity matches the creator's entity (grouping enabled).
    SameEntity,
    /// Caller is on the explicit whitelist.
    Whitelisted,
    /// The cookie did not exist: creating a new cookie is always allowed
    /// (ownership is then recorded to the caller).
    NewCookie,
    /// Inline caller under the relaxed policy (treated as first-party).
    RelaxedInline,
}

/// Why an access was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// Caller's domain differs from the cookie's creator.
    CrossDomain,
    /// Inline caller under the strict policy.
    InlineStrict,
}

/// The outcome of a policy check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessDecision {
    /// Access granted.
    Allow(AllowReason),
    /// Access denied.
    Block(BlockReason),
}

impl AccessDecision {
    /// True for `Allow`.
    pub fn is_allow(&self) -> bool {
        matches!(self, AccessDecision::Allow(_))
    }
}

/// Site-bound policy view: a [`GuardEngine`](crate::GuardEngine) plus
/// the one `site_domain` it is answering for.
///
/// Historically this type owned the config outright; it is now a thin
/// adapter over a shared engine, kept because "policy checks for one
/// site" is a convenient shape for tests and probing tools. All decision
/// logic lives in [`crate::GuardEngine::check`] /
/// [`crate::GuardEngine::check_create`].
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    engine: std::sync::Arc<crate::GuardEngine>,
    site_id: DomainId,
}

impl PolicyEngine {
    /// Builds an engine for one site visit (compiles a fresh single-use
    /// [`crate::GuardEngine`]; share one via [`PolicyEngine::on_engine`]
    /// instead when checking many sites).
    pub fn new(config: GuardConfig, site_domain: &str) -> PolicyEngine {
        PolicyEngine::on_engine(crate::GuardEngine::shared(config), site_domain)
    }

    /// Binds an existing shared engine to a site (the site domain is
    /// interned once, here).
    pub fn on_engine(
        engine: std::sync::Arc<crate::GuardEngine>,
        site_domain: &str,
    ) -> PolicyEngine {
        PolicyEngine {
            engine,
            site_id: cg_url::intern(site_domain),
        }
    }

    /// The site this engine guards.
    pub fn site_domain(&self) -> &str {
        cg_url::name(self.site_id)
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        self.engine.config()
    }

    /// May `caller` access a cookie created by `creator`? See
    /// [`crate::GuardEngine::check`].
    pub fn check(&self, caller: &Caller, creator: Option<&str>) -> AccessDecision {
        self.engine
            .compiled()
            .check(self.site_id, caller, creator.map(cg_url::intern))
    }

    /// May `caller` create a cookie that does not exist yet? See
    /// [`crate::GuardEngine::check_create`].
    pub fn check_create(&self, caller: &Caller) -> AccessDecision {
        self.engine.compiled().check_create(self.site_id, caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuardConfig;

    fn engine() -> PolicyEngine {
        PolicyEngine::new(GuardConfig::strict(), "site.com")
    }

    #[test]
    fn creator_allowed() {
        let d = engine().check(&Caller::external("tracker.com"), Some("tracker.com"));
        assert_eq!(d, AccessDecision::Allow(AllowReason::Creator));
    }

    #[test]
    fn cross_domain_blocked() {
        let d = engine().check(&Caller::external("other.com"), Some("tracker.com"));
        assert_eq!(d, AccessDecision::Block(BlockReason::CrossDomain));
    }

    #[test]
    fn site_owner_full_access() {
        let d = engine().check(&Caller::external("site.com"), Some("tracker.com"));
        assert_eq!(d, AccessDecision::Allow(AllowReason::SiteOwner));
    }

    #[test]
    fn inline_strict_vs_relaxed() {
        assert_eq!(
            engine().check(&Caller::inline(), Some("tracker.com")),
            AccessDecision::Block(BlockReason::InlineStrict)
        );
        let relaxed = PolicyEngine::new(GuardConfig::relaxed(), "site.com");
        assert!(relaxed
            .check(&Caller::inline(), Some("tracker.com"))
            .is_allow());
    }

    #[test]
    fn unattributed_cookie_is_site_owned() {
        // Only the owner reaches a cookie with no recorded creator.
        assert!(engine()
            .check(&Caller::external("site.com"), None)
            .is_allow());
        assert!(!engine()
            .check(&Caller::external("tracker.com"), None)
            .is_allow());
    }

    #[test]
    fn whitelist_grants_full_access() {
        let e = PolicyEngine::new(
            GuardConfig::strict().with_whitelisted("partner.io"),
            "site.com",
        );
        assert_eq!(
            e.check(&Caller::external("partner.io"), Some("anyone.com")),
            AccessDecision::Allow(AllowReason::Whitelisted)
        );
    }

    #[test]
    fn entity_grouping_same_org() {
        let e = PolicyEngine::new(
            GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
            "facebook.com",
        );
        // fbcdn.net script reading a facebook.net-created cookie: same entity.
        assert_eq!(
            e.check(&Caller::external("fbcdn.net"), Some("facebook.net")),
            AccessDecision::Allow(AllowReason::SameEntity)
        );
        // criteo stays blocked.
        assert_eq!(
            e.check(&Caller::external("criteo.com"), Some("facebook.net")),
            AccessDecision::Block(BlockReason::CrossDomain)
        );
    }

    #[test]
    fn unknown_domains_do_not_group() {
        let e = PolicyEngine::new(
            GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
            "site.com",
        );
        // Two unknown domains both fall back to "self" entities — they
        // must not be considered the same entity.
        assert!(!e
            .check(&Caller::external("unknown-a.com"), Some("unknown-b.com"))
            .is_allow());
    }

    #[test]
    fn create_decisions() {
        assert!(engine()
            .check_create(&Caller::external("new.com"))
            .is_allow());
        assert!(!engine().check_create(&Caller::inline()).is_allow());
        let relaxed = PolicyEngine::new(GuardConfig::relaxed(), "site.com");
        assert!(relaxed.check_create(&Caller::inline()).is_allow());
    }
}
