//! **CookieGuard** — per-script-domain isolation of the first-party cookie
//! jar. This crate is the paper's primary contribution (§6).
//!
//! # What it does
//!
//! Browsers treat every cookie in the main frame's jar as first-party,
//! no matter which script created it; any script in the main frame can
//! read, overwrite, delete, or exfiltrate any of them. CookieGuard closes
//! that gap with an ownership model:
//!
//! * a [`MetadataStore`] records, for every cookie, the eTLD+1 of the
//!   script or server that created it (updated on `document.cookie`
//!   writes, `cookieStore.set`, and HTTP `Set-Cookie`);
//! * a [`GuardEngine`] decides, for every access, whether the calling
//!   script's domain may see or modify a given cookie. The engine is
//!   immutable, `Send + Sync`, compiled **once per deployment**, and
//!   shared behind an `Arc` by every visit;
//! * a [`GuardSession`] is the cheap per-visit state (metadata + stats)
//!   bound to one top-level site on a shared engine;
//! * [`CookieGuard`] glues the two together at the same interception
//!   points the measurement instruments — [`CookieGuard::new`] for a
//!   self-contained guard, [`CookieGuard::with_engine`] to share one
//!   engine across a crawl. ([`PolicyEngine`] remains as a site-bound
//!   policy view over an engine.)
//! * [`GuardedJar`] is the **access layer**: the one sanctioned API
//!   through which runtime code reads and mutates the jar. It fuses
//!   policy check, storage mutation, and instrument-event emission so
//!   no caller re-implements that sequence (see [`access`]).
//!
//! # Policy (paper §6.1)
//!
//! * A script may always access cookies **its own domain created**.
//! * Scripts from the **site owner's domain** get the full jar
//!   (functionality preservation: carts, preferences, sessions).
//! * **Inline scripts** have no reliable origin. In [`InlinePolicy::Strict`]
//!   they see nothing (safe-by-default; used in the paper's evaluation);
//!   in [`InlinePolicy::Relaxed`] they are treated as first-party.
//! * With **entity grouping** enabled, domains of the same organization
//!   (e.g. `facebook.net` and `fbcdn.net`) share access — the whitelist
//!   refinement that reduces breakage from 11% to 3% (§7.2).
//!
//! # Example
//!
//! ```
//! use cookieguard_core::{Caller, CookieGuard, GuardConfig};
//!
//! let mut guard = CookieGuard::new(GuardConfig::strict(), "shop.example");
//!
//! // tracker.com's script creates a cookie: recorded as its creator.
//! let tracker = Caller::external("tracker.com");
//! assert!(guard.authorize_write(&tracker, "_tid").is_allow());
//!
//! // A different third party cannot see or touch it…
//! let other = Caller::external("ads.example.net");
//! let visible = guard.filter_names(&other, &["_tid"]);
//! assert!(visible.is_empty());
//! assert!(!guard.authorize_write(&other, "_tid").is_allow());
//!
//! // …but the site owner can.
//! let owner = Caller::external("shop.example");
//! assert_eq!(guard.filter_names(&owner, &["_tid"]).len(), 1);
//! ```
//!
//! # Compiled policy
//!
//! All of the above runs on interned ids internally: [`GuardEngine::new`]
//! lowers the config to a [`CompiledPolicy`] (whitelist as
//! `HashSet<DomainId>`, entity map as a dense `DomainId → EntityId`
//! table), sessions intern their site domain once, and callers carry a
//! pre-resolved [`cg_url::DomainId`] — so the per-operation decision is
//! a handful of integer comparisons with zero allocation. Ids live only
//! in memory: every serde boundary resolves them back to names.
//!
//! **Layer:** policy (pure decisions + per-visit state; no I/O).
//! **Invariants:** `GuardEngine` is immutable and `Send + Sync`;
//! decisions run entirely on interned ids with zero allocation; ids
//! never serialize. **Entry points:** `GuardEngine`/`GuardSession`,
//! the `CookieGuard` facade, and `GuardedJar` — the single sanctioned
//! access layer for every cookie operation.

#![warn(missing_docs)]

pub mod access;
pub mod config;
pub mod deployment;
pub mod engine;
pub mod guard;
pub mod metadata;
pub mod policy;

pub use access::{
    AccessContext, BatchOp, BatchResult, CookieView, GuardedJar, Outcome, SetRequest,
};
pub use config::{GuardConfig, InlinePolicy};
pub use deployment::{DeploymentStage, PrivacyPreset};
pub use engine::{CompiledPolicy, GuardEngine};
pub use guard::{CookieGuard, GuardSession, GuardStats};
pub use metadata::{CookieOrigin, MetadataStore, NameId, OwnershipRecord};
pub use policy::{AccessDecision, AllowReason, BlockReason, Caller, PolicyEngine};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn domain_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "site.com".to_string(),
            "tracker.com".to_string(),
            "ads.net".to_string(),
            "facebook.net".to_string(),
            "fbcdn.net".to_string(),
            "cdn.io".to_string(),
        ])
    }

    proptest! {
        /// Invariant 1: a third-party script never observes a cookie
        /// created by a different eTLD+1 (strict mode, no grouping).
        #[test]
        fn no_cross_domain_visibility(creator in domain_strategy(), reader in domain_strategy()) {
            let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
            guard.authorize_write(&Caller::external(&creator), "c");
            let visible = guard.filter_names(&Caller::external(&reader), &["c"]);
            let allowed = reader == creator || reader == "site.com";
            prop_assert_eq!(!visible.is_empty(), allowed);
        }

        /// Invariant 2: the site owner always sees the full jar.
        #[test]
        fn site_owner_sees_everything(creators in proptest::collection::vec(domain_strategy(), 1..8)) {
            let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
            let names: Vec<String> = creators.iter().enumerate().map(|(i, c)| {
                let name = format!("c{}", i);
                guard.authorize_write(&Caller::external(c), &name);
                name
            }).collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let owner = Caller::external("site.com");
            prop_assert_eq!(guard.filter_names(&owner, &name_refs).len(), names.len());
        }

        /// Invariant 3: strict mode ⇒ inline scripts see nothing.
        #[test]
        fn strict_inline_sees_nothing(creator in domain_strategy()) {
            let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
            guard.authorize_write(&Caller::external(&creator), "c");
            let visible = guard.filter_names(&Caller::inline(), &["c"]);
            prop_assert!(visible.is_empty());
        }

        /// Invariant 5: filtering is idempotent.
        #[test]
        fn filtering_idempotent(creator in domain_strategy(), reader in domain_strategy()) {
            let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
            guard.authorize_write(&Caller::external(&creator), "c");
            let caller = Caller::external(&reader);
            let once = guard.filter_names(&caller, &["c"]);
            let twice = guard.filter_names(&caller, &once);
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn entity_grouping_only_adds_within_entity() {
        // Invariant 4: enabling grouping may only add visibility within an
        // entity, never across entities.
        let entities = cg_entity::builtin_entity_map();
        let domains = [
            "facebook.net",
            "fbcdn.net",
            "criteo.com",
            "site.com",
            "tracker.com",
        ];
        for creator in domains {
            for reader in domains {
                let mut strict = CookieGuard::new(GuardConfig::strict(), "site.com");
                strict.authorize_write(&Caller::external(creator), "c");
                let mut grouped = CookieGuard::new(
                    GuardConfig::strict().with_entity_grouping(entities.clone()),
                    "site.com",
                );
                grouped.authorize_write(&Caller::external(creator), "c");

                let caller = Caller::external(reader);
                let s = !strict.filter_names(&caller, &["c"]).is_empty();
                let g = !grouped.filter_names(&caller, &["c"]).is_empty();
                if s {
                    assert!(g, "grouping removed visibility {creator}->{reader}");
                }
                if g && !s {
                    assert!(
                        entities.same_entity(creator, reader),
                        "grouping leaked {creator}->{reader}"
                    );
                }
            }
        }
    }
}
