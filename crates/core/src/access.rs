//! The cookie access layer: [`GuardedJar`], the **single enforcement
//! point** every first-party cookie operation runs through.
//!
//! CookieGuard's contract (§6) is that *every* access — script read,
//! script write/delete, HTTP `Set-Cookie`, CookieStore call — passes the
//! same per-script-origin policy check. Before this module existed, the
//! browser hand-interleaved three concerns at every interception point:
//! the [`GuardSession`] check, the [`CookieJar`] mutation, and the
//! instrument event — a dance each new workload re-implemented and
//! could silently get wrong. `GuardedJar` owns that dance:
//!
//! ```text
//!   caller (Page, service worker, future workloads)
//!        │  read / get / set / delete / apply_set_cookie_headers
//!        ▼
//!   GuardedJar ── 1. policy   (GuardSession, optional)
//!              ── 2. storage  (CookieJar, shard-pinned)
//!              ── 3. event    (EventSink)
//! ```
//!
//! Callers never consult the guard, mutate the jar, or synthesize
//! `SetEvent`/`ReadEvent`s by hand; they receive an [`Outcome`] that
//! says what was decided, what changed, and what was logged. Running
//! guard-less (a vanilla measurement crawl) is the same API with
//! `guard = None`.
//!
//! The jar's host → shard resolution is pinned once per `GuardedJar`
//! (the document URL is fixed for its lifetime), and [`GuardedJar::run_batch`]
//! additionally reuses one [`AccessContext`] and a cached post-filter
//! view across a burst of operations — the hot crawl path.

use crate::guard::GuardSession;
use crate::policy::{AccessDecision, Caller};
use cg_cookiejar::{Cookie, CookieChange, CookieJar, SetCookieError, ShardPin};
use cg_http::parse_set_cookie;
use cg_instrument::{AttrChangeFlags, CookieApi, EventSink, ReadEvent, SetEvent, WriteKind};
use cg_url::{DomainId, Url};
use std::sync::Arc;

/// The identity and timing of one mediated cookie operation.
///
/// Carries *two* identities because policy and measurement can
/// legitimately disagree: `caller` is the policy identity (possibly
/// CNAME-uncloaked or signature-attributed), while `actor` is the
/// identity the instrumentation may observe (the raw stack-trace
/// eTLD+1). A batch of operations from one script shares one context.
///
/// Both identities are interned ids, resolved once per script at
/// attribution time, so building and cloning a context per operation is
/// allocation-free (`Caller` and `DomainId` are `Copy`; the script URL
/// is a shared `Arc<str>`). Event emission resolves ids back to names —
/// the instrument wire format never changes.
#[derive(Debug, Clone)]
pub struct AccessContext {
    /// Policy identity: who the guard judges.
    pub caller: Caller,
    /// Measured identity: the interned eTLD+1 recorded on events
    /// (None = inline). Resolved to its name at event-emission time.
    pub actor: Option<DomainId>,
    /// Full script URL recorded on write events, when attributable;
    /// shared, not cloned, across the ops of one script.
    pub actor_url: Option<Arc<str>>,
    /// Absolute wall-clock time (unix ms) for jar expiry/storage.
    pub now_ms: i64,
    /// Visit-relative time recorded on events.
    pub time_ms: u64,
}

impl AccessContext {
    /// The actor's domain name (normalized form), when attributed.
    fn actor_name(&self) -> Option<String> {
        self.actor.map(|id| cg_url::name(id).to_string())
    }
}

/// The post-guard view of the jar one read produced.
#[derive(Debug, Clone)]
pub struct CookieView {
    /// The cookies the caller may see, in serialization order.
    pub cookies: Vec<Cookie>,
    /// How many additional cookies the guard withheld.
    pub filtered: usize,
}

impl CookieView {
    /// The `document.cookie` string form: `"a=1; b=2"`.
    pub fn serialize(&self) -> String {
        self.cookies
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The `(name, value)` pairs (the CookieStore `getAll` shape).
    pub fn pairs(&self) -> Vec<(String, String)> {
        self.cookies
            .iter()
            .map(|c| (c.name.clone(), c.value.clone()))
            .collect()
    }
}

/// One write-path request: what the script asked for, before policy.
#[derive(Debug, Clone, Copy)]
pub enum SetRequest<'r> {
    /// `document.cookie = raw` — the legacy string interface, with its
    /// expiry-in-the-past deletion idiom and attribute-change taxonomy.
    DocumentCookie {
        /// The raw cookie string as the script wrote it.
        raw: &'r str,
    },
    /// `cookieStore.set(name, value, expires)` — the structured API
    /// (spec defaults: `Path=/`, host-only domain).
    CookieStore {
        /// Cookie name.
        name: &'r str,
        /// Cookie value.
        value: &'r str,
        /// Absolute expiry (unix ms), None = session cookie.
        expires_abs_ms: Option<i64>,
    },
}

/// The structured result of one mediated mutation: what the policy
/// decided, what the jar did, and what the instrumentation saw.
///
/// `Outcome` exists so callers never reconstruct any of the three by
/// hand — the access layer is the only place that knows, e.g., that a
/// blocked write still emits a `blocked: true` [`SetEvent`], or that a
/// `document.cookie` delete of an absent cookie logs a delete event but
/// reports `applied: false`.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The guard's ruling; `None` when no guard is attached or the
    /// operation never reached policy (e.g. an unparseable write).
    pub decision: Option<AccessDecision>,
    /// How the operation was classified (create / overwrite / delete).
    pub kind: WriteKind,
    /// Whether the jar was actually mutated (for deletes: whether a
    /// visible cookie was removed).
    pub applied: bool,
    /// The jar's storage-level rejection, if any (validation, prefix
    /// contracts, HttpOnly protection).
    pub error: Option<SetCookieError>,
    /// The change-log record of the mutation itself, if any. Knock-on
    /// records the same operation triggered (a per-domain-cap eviction
    /// after a create) follow it in the jar's change log.
    pub change: Option<CookieChange>,
    /// The instrument event that was emitted to the sink, if any — a
    /// faithful copy, so callers can inspect what was logged without
    /// owning the sink.
    pub event: Option<SetEvent>,
}

impl Outcome {
    /// True when the guard blocked the operation.
    pub fn blocked(&self) -> bool {
        matches!(&self.decision, Some(d) if !d.is_allow())
    }

    fn unparseable() -> Outcome {
        Outcome {
            decision: None,
            kind: WriteKind::Create,
            applied: false,
            error: Some(SetCookieError::Unparseable),
            change: None,
            event: None,
        }
    }
}

/// One operation of a batch (see [`GuardedJar::run_batch`]).
#[derive(Debug, Clone, Copy)]
pub enum BatchOp<'r> {
    /// A full read (`document.cookie` getter / `getAll`).
    Read {
        /// Which API surface the read uses (recorded on the event).
        api: CookieApi,
    },
    /// A single-name read (`cookieStore.get`).
    Get {
        /// The requested cookie name.
        name: &'r str,
    },
    /// A write (either API).
    Set(SetRequest<'r>),
    /// A `cookieStore.delete`.
    Delete {
        /// The targeted cookie name.
        name: &'r str,
    },
}

/// The result of one [`BatchOp`], in op order.
#[derive(Debug, Clone)]
pub enum BatchResult {
    /// Result of [`BatchOp::Read`].
    Read(CookieView),
    /// Result of [`BatchOp::Get`].
    Get(Option<String>),
    /// Result of [`BatchOp::Set`] / [`BatchOp::Delete`].
    Mutation(Outcome),
}

/// The guarded cookie jar: the only sanctioned way to touch cookies.
///
/// Borrows the visit's jar, (optionally) its guard session, and an
/// event sink for the lifetime of one document; see the module docs for
/// the contract.
pub struct GuardedJar<'v> {
    jar: &'v mut CookieJar,
    guard: Option<&'v mut GuardSession>,
    sink: &'v mut dyn EventSink,
    url: Url,
    pin: ShardPin,
}

impl<'v> GuardedJar<'v> {
    /// Binds the access layer to `url`'s document. Resolves the host's
    /// jar shard once; every operation reuses it.
    pub fn new(
        url: Url,
        jar: &'v mut CookieJar,
        guard: Option<&'v mut GuardSession>,
        sink: &'v mut dyn EventSink,
    ) -> GuardedJar<'v> {
        let pin = ShardPin::for_host(&url.host_str());
        GuardedJar {
            jar,
            guard,
            sink,
            url,
            pin,
        }
    }

    /// The bound document URL.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// Whether a guard session is attached (false = vanilla crawl).
    pub fn is_guarded(&self) -> bool {
        self.guard.is_some()
    }

    /// The event sink, for non-cookie events (requests, DOM, probes,
    /// inclusions) that share the same instrumentation stream.
    pub fn sink(&mut self) -> &mut dyn EventSink {
        self.sink
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// A full post-guard read of the document's cookies, logged as one
    /// read event on `api`.
    pub fn read(&mut self, ctx: &AccessContext, api: CookieApi) -> CookieView {
        let (cookies, filtered) = self.visible(ctx);
        self.finish_read(ctx, api, cookies, filtered)
    }

    /// `cookieStore.get(name)`: the value, if present and visible.
    /// Logged as a CookieStore read of at most one pair.
    pub fn get(&mut self, ctx: &AccessContext, name: &str) -> Option<String> {
        let (visible, filtered) = self.visible(ctx);
        self.finish_get(ctx, name, &visible, filtered)
    }

    /// Emits the read event for a post-filter view and wraps it up —
    /// the one place the full-read event is constructed (per-op and
    /// batch paths both end here).
    fn finish_read(
        &mut self,
        ctx: &AccessContext,
        api: CookieApi,
        cookies: Vec<Cookie>,
        filtered: usize,
    ) -> CookieView {
        self.sink.cookie_read(ReadEvent {
            actor: ctx.actor_name(),
            api,
            cookies: cookies
                .iter()
                .map(|c| (c.name.clone(), c.value.clone()))
                .collect(),
            filtered_count: filtered,
            time_ms: ctx.time_ms,
        });
        CookieView { cookies, filtered }
    }

    /// Single-name counterpart of [`GuardedJar::finish_read`]: logs at
    /// most one pair and at most one withheld cookie.
    fn finish_get(
        &mut self,
        ctx: &AccessContext,
        name: &str,
        visible: &[Cookie],
        filtered: usize,
    ) -> Option<String> {
        let found = visible
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value.clone());
        self.sink.cookie_read(ReadEvent {
            actor: ctx.actor_name(),
            api: CookieApi::CookieStore,
            cookies: found
                .iter()
                .map(|v| (name.to_string(), v.clone()))
                .collect(),
            filtered_count: filtered.min(1),
            time_ms: ctx.time_ms,
        });
        found
    }

    /// Non-mutating visibility check (CookieStore `change`-event
    /// filtering): may `caller` observe cookie `name`? Guard-less jars
    /// answer yes.
    pub fn may_observe(&self, caller: &Caller, name: &str) -> bool {
        match self.guard.as_deref() {
            Some(g) => g.may_observe(caller, name),
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// A script write through either API: classifies it (create /
    /// overwrite / delete-by-expiry), consults the guard, applies it to
    /// the jar, and emits the write event.
    pub fn set(&mut self, ctx: &AccessContext, req: SetRequest<'_>) -> Outcome {
        match req {
            SetRequest::DocumentCookie { raw } => self.set_document_cookie(ctx, raw),
            SetRequest::CookieStore {
                name,
                value,
                expires_abs_ms,
            } => self.set_cookie_store(ctx, name, value, expires_abs_ms),
        }
    }

    fn set_document_cookie(&mut self, ctx: &AccessContext, raw: &str) -> Outcome {
        let Some(sc) = parse_set_cookie(raw) else {
            return Outcome::unparseable();
        };
        let now = ctx.now_ms;

        // Classify the write like the measurement does: a write whose
        // expiry is already in the past is a deletion; a write to an
        // existing name is an overwrite.
        let prior = self
            .jar
            .cookies_for_document_pinned(&self.pin, &self.url, now)
            .into_iter()
            .find(|c| c.name == sc.name);
        let expires_abs = match (sc.max_age_s, sc.expires_ms) {
            (Some(ma), _) => Some(now + ma * 1000),
            (None, Some(e)) => Some(e),
            (None, None) => None,
        };
        let is_delete = matches!(expires_abs, Some(e) if e <= now);
        // The lifetime the write *requested*, relative seconds — what
        // the detection pipeline reads as persistence.
        let max_age_s = expires_abs.map(|e| (e - now) / 1000);
        let kind = if is_delete {
            WriteKind::Delete
        } else if prior.is_some() {
            WriteKind::Overwrite
        } else {
            WriteKind::Create
        };

        // Policy.
        let mut decision = None;
        if let Some(g) = self.guard.as_deref_mut() {
            let d = if is_delete {
                g.authorize_delete(&ctx.caller, &sc.name)
            } else {
                g.authorize_write(&ctx.caller, &sc.name)
            };
            if !d.is_allow() {
                let event = self.emit_set(
                    ctx,
                    &sc.name,
                    &sc.value,
                    CookieApi::DocumentCookie,
                    kind,
                    max_age_s,
                    None,
                    true,
                );
                return Outcome {
                    decision: Some(d),
                    kind,
                    applied: false,
                    error: None,
                    change: None,
                    event: Some(event),
                };
            }
            decision = Some(d);
        }

        // Attribute-change taxonomy (§5.5), overwrites only.
        let changes = prior
            .as_ref()
            .filter(|_| kind == WriteKind::Overwrite)
            .map(|p| AttrChangeFlags {
                value: p.value != sc.value,
                expires: p.expires_ms != expires_abs,
                domain: sc.domain.as_deref().is_some_and(|d| d != p.domain) && !p.host_only
                    || (p.host_only && sc.domain.is_some()),
                path: sc.path.as_deref().is_some_and(|pt| pt != p.path),
            });

        // Storage.
        let change_mark = self.jar.change_count();
        let (applied, error) = if is_delete {
            (
                self.jar.delete_pinned(&self.pin, &sc.name, &self.url, now),
                None,
            )
        } else {
            match self
                .jar
                .set_parsed_document_cookie_pinned(&self.pin, &sc, &self.url, now)
            {
                Ok(_) => (true, None),
                Err(e) => (false, Some(e)),
            }
        };

        // Event: deletions are logged even when nothing matched (the
        // script's intent is observable either way).
        let event = (applied || is_delete).then(|| {
            self.emit_set(
                ctx,
                &sc.name,
                &sc.value,
                CookieApi::DocumentCookie,
                kind,
                max_age_s,
                changes,
                false,
            )
        });

        Outcome {
            decision,
            kind,
            applied,
            error,
            change: self.jar.changes_since(change_mark).first().cloned(),
            event,
        }
    }

    fn set_cookie_store(
        &mut self,
        ctx: &AccessContext,
        name: &str,
        value: &str,
        expires_abs_ms: Option<i64>,
    ) -> Outcome {
        let now = ctx.now_ms;
        let prior_exists = self
            .jar
            .cookies_for_document_pinned(&self.pin, &self.url, now)
            .iter()
            .any(|c| c.name == name);
        let kind = if prior_exists {
            WriteKind::Overwrite
        } else {
            WriteKind::Create
        };
        let max_age_s = expires_abs_ms.map(|e| (e - now) / 1000);

        let mut decision = None;
        if let Some(g) = self.guard.as_deref_mut() {
            let d = g.authorize_write(&ctx.caller, name);
            if !d.is_allow() {
                let event = self.emit_set(
                    ctx,
                    name,
                    value,
                    CookieApi::CookieStore,
                    kind,
                    max_age_s,
                    None,
                    true,
                );
                return Outcome {
                    decision: Some(d),
                    kind,
                    applied: false,
                    error: None,
                    change: None,
                    event: Some(event),
                };
            }
            decision = Some(d);
        }

        // CookieStore defaults Path=/ (spec), domain host-only.
        let mut raw = format!("{name}={value}; Path=/");
        if let Some(e) = expires_abs_ms {
            raw.push_str(&format!("; Expires=@{e}"));
        }
        let change_mark = self.jar.change_count();
        let (applied, error) = match self
            .jar
            .set_document_cookie_pinned(&self.pin, &raw, &self.url, now)
        {
            Ok(_) => (true, None),
            Err(e) => (false, Some(e)),
        };
        let event = applied.then(|| {
            self.emit_set(
                ctx,
                name,
                value,
                CookieApi::CookieStore,
                kind,
                max_age_s,
                None,
                false,
            )
        });
        Outcome {
            decision,
            kind,
            applied,
            error,
            change: self.jar.changes_since(change_mark).first().cloned(),
            event,
        }
    }

    /// `cookieStore.delete(name)`: consults the guard, expires the
    /// cookie, and logs the delete.
    pub fn delete(&mut self, ctx: &AccessContext, name: &str) -> Outcome {
        let mut decision = None;
        if let Some(g) = self.guard.as_deref_mut() {
            let d = g.authorize_delete(&ctx.caller, name);
            if !d.is_allow() {
                let event = self.emit_set(
                    ctx,
                    name,
                    "",
                    CookieApi::CookieStore,
                    WriteKind::Delete,
                    None,
                    None,
                    true,
                );
                return Outcome {
                    decision: Some(d),
                    kind: WriteKind::Delete,
                    applied: false,
                    error: None,
                    change: None,
                    event: Some(event),
                };
            }
            decision = Some(d);
        }
        let change_mark = self.jar.change_count();
        let applied = self
            .jar
            .delete_pinned(&self.pin, name, &self.url, ctx.now_ms);
        let event = applied.then(|| {
            self.emit_set(
                ctx,
                name,
                "",
                CookieApi::CookieStore,
                WriteKind::Delete,
                None,
                None,
                false,
            )
        });
        Outcome {
            decision,
            kind: WriteKind::Delete,
            applied,
            error: None,
            change: self.jar.changes_since(change_mark).first().cloned(),
            event,
        }
    }

    /// Applies a response's `Set-Cookie` headers (the
    /// `webRequest.onHeadersReceived` path). `response_domain` is the
    /// responding server's eTLD+1 — it becomes the cookies' recorded
    /// creator and the event actor. HttpOnly cookies store and are
    /// attributed, but emit no event: the measurement extension cannot
    /// see them (§4.1).
    pub fn apply_set_cookie_headers(
        &mut self,
        response_domain: &str,
        raw_headers: &[String],
        now_ms: i64,
    ) -> Vec<Outcome> {
        raw_headers
            .iter()
            .map(|raw| {
                let Some(sc) = parse_set_cookie(raw) else {
                    return Outcome::unparseable();
                };
                let change_mark = self.jar.change_count();
                let result = self
                    .jar
                    .set_from_header_pinned(&self.pin, &sc, &self.url, now_ms);
                let applied = result.is_ok();
                let mut event = None;
                if applied {
                    if let Some(g) = self.guard.as_deref_mut() {
                        g.record_http_set_cookie(&sc.name, response_domain);
                    }
                    // The extension only sees non-HttpOnly values (§4.1).
                    if !sc.http_only {
                        let ev = SetEvent {
                            name: sc.name.clone(),
                            value: sc.value.clone(),
                            actor: Some(response_domain.to_string()),
                            actor_url: None,
                            api: CookieApi::HttpHeader,
                            kind: WriteKind::Create,
                            max_age_s: match (sc.max_age_s, sc.expires_ms) {
                                (Some(ma), _) => Some(ma),
                                (None, Some(e)) => Some((e - now_ms) / 1000),
                                (None, None) => None,
                            },
                            changes: None,
                            blocked: false,
                            time_ms: 0,
                        };
                        self.sink.cookie_set(ev.clone());
                        event = Some(ev);
                    }
                }
                Outcome {
                    decision: None,
                    kind: WriteKind::Create,
                    applied,
                    error: result.err(),
                    change: self.jar.changes_since(change_mark).first().cloned(),
                    event,
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Batch
    // ------------------------------------------------------------------

    /// Runs a burst of operations under one [`AccessContext`]: the
    /// caller identity is derived once, the shard stays pinned, and
    /// consecutive reads share one post-filter view (invalidated by any
    /// write). Events, guard stats, and results are identical to
    /// issuing the ops one by one.
    pub fn run_batch(&mut self, ctx: &AccessContext, ops: &[BatchOp<'_>]) -> Vec<BatchResult> {
        let mut cache: Option<(Vec<Cookie>, usize)> = None;
        ops.iter()
            .map(|op| match op {
                BatchOp::Read { api } => {
                    let (cookies, filtered) = self.visible_cached(ctx, &mut cache);
                    let owned = cookies.to_vec();
                    BatchResult::Read(self.finish_read(ctx, *api, owned, filtered))
                }
                BatchOp::Get { name } => {
                    let (visible, filtered) = self.visible_cached(ctx, &mut cache);
                    BatchResult::Get(self.finish_get(ctx, name, visible, filtered))
                }
                BatchOp::Set(req) => {
                    cache = None;
                    BatchResult::Mutation(self.set(ctx, *req))
                }
                BatchOp::Delete { name } => {
                    cache = None;
                    BatchResult::Mutation(self.delete(ctx, name))
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Non-mediated passthroughs
    // ------------------------------------------------------------------

    /// The `Cookie:` header for a subresource request — the network
    /// channel. CookieGuard mediates *script* access; the browser still
    /// attaches every matching cookie (HttpOnly included, SameSite
    /// permitting) to requests, which is exactly the server-side
    /// collection channel §5.7 measures. Read-only on the jar.
    pub fn cookie_header_for_subresource(
        &self,
        dest: &Url,
        top_level_site: &str,
        now_ms: i64,
    ) -> String {
        self.jar
            .cookie_header_for_subresource(dest, top_level_site, now_ms)
    }

    /// Jar change-log cursor (CookieStore `change` events). Read-only.
    pub fn change_count(&self) -> usize {
        self.jar.change_count()
    }

    /// Jar change records since `cursor`. Read-only.
    pub fn changes_since(&self, cursor: usize) -> &[CookieChange] {
        self.jar.changes_since(cursor)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The post-guard visible cookie list and the withheld count.
    fn visible(&mut self, ctx: &AccessContext) -> (Vec<Cookie>, usize) {
        let cookies = self
            .jar
            .cookies_for_document_pinned(&self.pin, &self.url, ctx.now_ms);
        match self.guard.as_deref_mut() {
            Some(g) => {
                let before = cookies.len();
                let visible = g.filter_read(&ctx.caller, cookies);
                let filtered = before - visible.len();
                (visible, filtered)
            }
            None => (cookies, 0),
        }
    }

    /// Batch-path `visible`: serves repeats from the cache (borrowed,
    /// not cloned), replaying the guard's per-read stats bump so
    /// counters match per-op access.
    fn visible_cached<'c>(
        &mut self,
        ctx: &AccessContext,
        cache: &'c mut Option<(Vec<Cookie>, usize)>,
    ) -> (&'c [Cookie], usize) {
        match cache {
            Some((_, filtered)) => {
                if let Some(g) = self.guard.as_deref_mut() {
                    g.note_cached_read(*filtered);
                }
            }
            None => *cache = Some(self.visible(ctx)),
        }
        let (cookies, filtered) = cache.as_ref().expect("cache just filled");
        (cookies.as_slice(), *filtered)
    }

    /// Builds, emits, and returns one write event.
    #[allow(clippy::too_many_arguments)]
    fn emit_set(
        &mut self,
        ctx: &AccessContext,
        name: &str,
        value: &str,
        api: CookieApi,
        kind: WriteKind,
        max_age_s: Option<i64>,
        changes: Option<AttrChangeFlags>,
        blocked: bool,
    ) -> SetEvent {
        let event = SetEvent {
            name: name.to_string(),
            value: value.to_string(),
            actor: ctx.actor_name(),
            actor_url: ctx.actor_url.as_deref().map(str::to_string),
            api,
            kind,
            max_age_s,
            changes,
            blocked,
            time_ms: ctx.time_ms,
        };
        self.sink.cookie_set(event.clone());
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuardConfig;
    use crate::engine::GuardEngine;
    use cg_instrument::Recorder;

    fn ctx_for(domain: Option<&str>, now_ms: i64, time_ms: u64) -> AccessContext {
        AccessContext {
            caller: match domain {
                Some(d) => Caller::external(d),
                None => Caller::inline(),
            },
            actor: domain.map(cg_url::intern),
            actor_url: domain.map(|d| Arc::from(format!("https://{d}/s.js").as_str())),
            now_ms,
            time_ms,
        }
    }

    fn url() -> Url {
        Url::parse("https://www.shop.example/").unwrap()
    }

    fn session() -> GuardSession {
        GuardEngine::shared(GuardConfig::strict()).session("shop.example")
    }

    #[test]
    fn set_read_delete_round_trip_with_events() {
        let mut jar = CookieJar::new();
        let mut guard = session();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut rec);

        let t = ctx_for(Some("tracker.io"), 1_000, 10);
        let out = access.set(&t, SetRequest::DocumentCookie { raw: "_tid=abc" });
        assert!(out.applied && !out.blocked());
        assert_eq!(out.kind, WriteKind::Create);
        assert!(out.decision.unwrap().is_allow());
        assert_eq!(out.event.as_ref().unwrap().name, "_tid");
        assert_eq!(
            out.change.unwrap().cause,
            cg_cookiejar::ChangeCause::Created
        );

        // The creator reads its cookie back; a stranger sees nothing.
        let view = access.read(&t, CookieApi::DocumentCookie);
        assert_eq!(view.serialize(), "_tid=abc");
        let s = ctx_for(Some("other.net"), 2_000, 20);
        let view = access.read(&s, CookieApi::DocumentCookie);
        assert!(view.cookies.is_empty());
        assert_eq!(view.filtered, 1);

        // The stranger cannot delete it; the creator can.
        assert!(access.delete(&s, "_tid").blocked());
        let del = access.delete(&t, "_tid");
        assert!(del.applied && !del.blocked());
        assert_eq!(del.kind, WriteKind::Delete);

        let log = rec.finish();
        assert_eq!(log.sets.len(), 3); // create + blocked delete + delete
        assert_eq!(log.reads.len(), 2);
        assert!(log.sets[1].blocked);
        assert_eq!(guard.stats().deletes_blocked, 1);
    }

    #[test]
    fn outcome_change_is_the_mutation_even_under_eviction() {
        // Fill the domain to its 180-cookie cap; the next create also
        // evicts the oldest cookie. The Outcome must report the Created
        // record for the written cookie, not the knock-on Evicted one.
        let mut jar = CookieJar::new();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, None, &mut rec);
        let c = ctx_for(Some("shop.example"), 1_000, 1);
        for i in 0..180 {
            let raw = format!("c{i}=v");
            assert!(
                access
                    .set(&c, SetRequest::DocumentCookie { raw: &raw })
                    .applied
            );
        }
        let out = access.set(&c, SetRequest::DocumentCookie { raw: "straw=1" });
        assert!(out.applied);
        let change = out.change.unwrap();
        assert_eq!(change.name, "straw");
        assert_eq!(change.cause, cg_cookiejar::ChangeCause::Created);
        // The eviction is still on the jar's log, right after.
        assert_eq!(
            jar.changes().last().map(|ch| ch.cause),
            Some(cg_cookiejar::ChangeCause::Evicted)
        );
    }

    #[test]
    fn guard_less_jar_mediates_storage_only() {
        let mut jar = CookieJar::new();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, None, &mut rec);
        let a = ctx_for(Some("a.com"), 0, 0);
        let b = ctx_for(Some("b.com"), 1, 1);
        assert!(
            access
                .set(&a, SetRequest::DocumentCookie { raw: "x=1" })
                .applied
        );
        // No guard: everyone sees everything, decision is None.
        let out = access.set(&b, SetRequest::DocumentCookie { raw: "x=2" });
        assert!(out.applied && out.decision.is_none());
        assert_eq!(out.kind, WriteKind::Overwrite);
        assert!(out.change.is_some());
        assert_eq!(
            access.read(&b, CookieApi::DocumentCookie).serialize(),
            "x=2"
        );
    }

    #[test]
    fn storage_rejections_surface_in_outcome() {
        let mut jar = CookieJar::new();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, None, &mut rec);
        let c = ctx_for(Some("a.com"), 0, 0);
        let out = access.set(
            &c,
            SetRequest::DocumentCookie {
                raw: "x=1; Domain=unrelated.example",
            },
        );
        assert!(!out.applied);
        assert_eq!(out.error, Some(SetCookieError::DomainMismatch));
        assert!(out.event.is_none() && out.change.is_none());
        let out = access.set(&c, SetRequest::DocumentCookie { raw: "" });
        assert_eq!(out.error, Some(SetCookieError::Unparseable));
    }

    #[test]
    fn http_headers_attribute_and_log_like_the_extension() {
        let mut jar = CookieJar::new();
        let mut guard = session();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut rec);
        let outcomes = access.apply_set_cookie_headers(
            "shop.example",
            &[
                "sid=s3cr3t; Path=/; HttpOnly".to_string(),
                "prefs=dark".to_string(),
                String::new(),
            ],
            0,
        );
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].applied && outcomes[0].event.is_none());
        assert!(outcomes[1].applied && outcomes[1].event.is_some());
        assert_eq!(outcomes[2].error, Some(SetCookieError::Unparseable));
        assert_eq!(jar.len(), 2);
        assert_eq!(guard.metadata().creator("sid"), Some("shop.example"));
        let log = rec.finish();
        assert_eq!(log.sets.len(), 1);
        assert_eq!(log.sets[0].api, CookieApi::HttpHeader);
    }

    #[test]
    fn batch_matches_per_op_exactly() {
        let seed = |jar: &mut CookieJar, guard: &mut GuardSession, rec: &mut Recorder| {
            let mut access = GuardedJar::new(url(), jar, Some(guard), rec);
            let owner = ctx_for(Some("shop.example"), 0, 0);
            for i in 0..12 {
                access.set(
                    &owner,
                    SetRequest::DocumentCookie {
                        raw: &format!("c{i}={i}"),
                    },
                );
            }
        };
        let ops: Vec<BatchOp> = vec![
            BatchOp::Read {
                api: CookieApi::DocumentCookie,
            },
            BatchOp::Get { name: "c3" },
            BatchOp::Set(SetRequest::CookieStore {
                name: "mine",
                value: "1",
                expires_abs_ms: None,
            }),
            BatchOp::Read {
                api: CookieApi::CookieStore,
            },
            BatchOp::Delete { name: "mine" },
            BatchOp::Get { name: "mine" },
        ];
        let c = ctx_for(Some("vendor.net"), 5_000, 50);

        // Batched run.
        let (mut jar_a, mut guard_a) = (CookieJar::new(), session());
        let mut rec_a = Recorder::new("shop.example", 1);
        seed(&mut jar_a, &mut guard_a, &mut rec_a);
        let mut access = GuardedJar::new(url(), &mut jar_a, Some(&mut guard_a), &mut rec_a);
        let batched = access.run_batch(&c, &ops);

        // Per-op run.
        let (mut jar_b, mut guard_b) = (CookieJar::new(), session());
        let mut rec_b = Recorder::new("shop.example", 1);
        seed(&mut jar_b, &mut guard_b, &mut rec_b);
        let mut access = GuardedJar::new(url(), &mut jar_b, Some(&mut guard_b), &mut rec_b);
        let mut single = Vec::new();
        for op in &ops {
            single.push(match op {
                BatchOp::Read { api } => BatchResult::Read(access.read(&c, *api)),
                BatchOp::Get { name } => BatchResult::Get(access.get(&c, name)),
                BatchOp::Set(req) => BatchResult::Mutation(access.set(&c, *req)),
                BatchOp::Delete { name } => BatchResult::Mutation(access.delete(&c, name)),
            });
        }

        // Identical logs, stats, and jar state.
        let (log_a, log_b) = (rec_a.finish(), rec_b.finish());
        assert_eq!(log_a.sets, log_b.sets);
        assert_eq!(log_a.reads, log_b.reads);
        assert_eq!(guard_a.stats(), guard_b.stats());
        assert_eq!(jar_a.len(), jar_b.len());
        assert_eq!(batched.len(), single.len());
        for (a, b) in batched.iter().zip(&single) {
            match (a, b) {
                (BatchResult::Read(x), BatchResult::Read(y)) => {
                    assert_eq!(x.serialize(), y.serialize());
                    assert_eq!(x.filtered, y.filtered);
                }
                (BatchResult::Get(x), BatchResult::Get(y)) => assert_eq!(x, y),
                (BatchResult::Mutation(x), BatchResult::Mutation(y)) => {
                    assert_eq!(x.applied, y.applied);
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.blocked(), y.blocked());
                }
                _ => panic!("result shapes diverged"),
            }
        }
    }

    #[test]
    fn document_cookie_expiry_in_past_is_delete() {
        let mut jar = CookieJar::new();
        let mut guard = session();
        let mut rec = Recorder::new("shop.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut rec);
        let t = ctx_for(Some("tracker.io"), 100_000, 1);
        access.set(&t, SetRequest::DocumentCookie { raw: "_tid=x" });
        let out = access.set(
            &t,
            SetRequest::DocumentCookie {
                raw: "_tid=; Max-Age=-1",
            },
        );
        assert_eq!(out.kind, WriteKind::Delete);
        assert!(out.applied);
        // Deleting an absent cookie still logs the intent…
        let out = access.set(
            &t,
            SetRequest::DocumentCookie {
                raw: "_tid=; Max-Age=-1",
            },
        );
        assert!(!out.applied, "nothing left to remove");
        assert!(out.event.is_some(), "…but the event is still emitted");
    }
}
