//! The CookieGuard runtime: metadata + policy at the interception points.
//!
//! Split into two layers (see also [`crate::engine`]):
//!
//! * [`GuardSession`] — the cheap, per-visit state: a metadata store and
//!   stats counters bound to one top-level site, borrowing all policy
//!   decisions from a shared [`GuardEngine`];
//! * [`CookieGuard`] — the historical single-type facade. It behaves
//!   exactly as before the split (one constructor, same methods), but is
//!   now a thin wrapper around a session whose engine can also be
//!   injected ([`CookieGuard::with_engine`]) to share policy state
//!   across an entire crawl or deployment.

use crate::config::GuardConfig;
use crate::engine::GuardEngine;
use crate::metadata::{CookieOrigin, MetadataStore, OwnershipRecord};
use crate::policy::{AccessDecision, Caller};
use cg_cookiejar::Cookie;
use cg_url::DomainId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counters for everything the guard blocked or allowed — the raw
/// numbers behind the Figure 5 evaluation and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Cookies hidden from `document.cookie` / `cookieStore` reads.
    pub cookies_filtered: u64,
    /// Read operations that had at least one cookie filtered.
    pub reads_filtered: u64,
    /// Write operations blocked (overwrites of foreign cookies).
    pub writes_blocked: u64,
    /// Delete operations blocked.
    pub deletes_blocked: u64,
    /// Writes allowed (new cookies or authorized overwrites).
    pub writes_allowed: u64,
    /// Reads that passed through unfiltered.
    pub reads_clean: u64,
}

impl GuardStats {
    /// Element-wise sum — used when aggregating per-visit sessions into
    /// crawl- or deployment-level totals.
    pub fn merge(&self, other: &GuardStats) -> GuardStats {
        GuardStats {
            cookies_filtered: self.cookies_filtered + other.cookies_filtered,
            reads_filtered: self.reads_filtered + other.reads_filtered,
            writes_blocked: self.writes_blocked + other.writes_blocked,
            deletes_blocked: self.deletes_blocked + other.deletes_blocked,
            writes_allowed: self.writes_allowed + other.writes_allowed,
            reads_clean: self.reads_clean + other.reads_clean,
        }
    }
}

/// Per-visit guard state: one session per top-level page visit, like the
/// extension's per-tab state. Policy and entity data live in the shared
/// [`GuardEngine`]; the session only owns the metadata store and stats.
///
/// The site domain is interned to a [`DomainId`] when the session opens;
/// every enforcement decision below runs on the engine's
/// [`CompiledPolicy`](crate::CompiledPolicy) with ids on both sides —
/// no per-operation string normalization, hashing, or allocation.
#[derive(Debug, Clone)]
pub struct GuardSession {
    engine: Arc<GuardEngine>,
    site_id: DomainId,
    /// The engine's policy generation when this session opened. A
    /// session pins its engine `Arc` for its whole life, so every
    /// decision it makes runs under exactly this epoch — the invariant
    /// the hot-swap drain proof in `cg-service` relies on.
    opened_epoch: u64,
    metadata: MetadataStore,
    stats: GuardStats,
}

impl GuardSession {
    /// Opens a session for a visit to `site_domain` on a shared engine.
    /// The site domain is interned here, once per visit, and the
    /// engine's policy epoch is recorded as the session's pinned
    /// generation.
    pub fn new(engine: Arc<GuardEngine>, site_domain: &str) -> GuardSession {
        let opened_epoch = engine.policy_epoch();
        GuardSession {
            engine,
            site_id: cg_url::intern(site_domain),
            opened_epoch,
            metadata: MetadataStore::new(),
            stats: GuardStats::default(),
        }
    }

    /// The shared policy engine.
    pub fn engine(&self) -> &Arc<GuardEngine> {
        &self.engine
    }

    /// The policy generation this session opened under (and therefore
    /// decides under — the session never re-reads a swapped slot).
    pub fn policy_epoch(&self) -> u64 {
        self.opened_epoch
    }

    /// The guarded site (normalized form).
    pub fn site_domain(&self) -> &str {
        cg_url::name(self.site_id)
    }

    /// The guarded site's interned id.
    pub fn site_id(&self) -> DomainId {
        self.site_id
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Read access to the metadata store (forensics / tests).
    pub fn metadata(&self) -> &MetadataStore {
        &self.metadata
    }

    // ------------------------------------------------------------------
    // Creation-event bookkeeping (the "set" paths of Figure 3)
    // ------------------------------------------------------------------

    /// Records an HTTP `Set-Cookie` observed on a response from
    /// `response_domain` (eTLD+1). Mirrors `background.js` watching
    /// `webRequest.onHeadersReceived`.
    pub fn record_http_set_cookie(&mut self, name: &str, response_domain: &str) {
        self.metadata
            .record(name, Some(response_domain), CookieOrigin::HttpHeader);
    }

    /// Admits a cookie that existed before the guard attached under the
    /// §8 migration policy: it stays fully visible (legacy behaviour)
    /// until an authorized write re-attributes it to a creator. This is
    /// the ITP-style "grandfathering" easing staged deployment.
    pub fn grandfather(&mut self, name: &str) {
        if !self.metadata.knows(name) {
            self.metadata.record_grandfathered(name);
        }
    }

    // ------------------------------------------------------------------
    // Enforcement (the "get"/"set" interception of cookieGuard.js)
    // ------------------------------------------------------------------

    /// The per-cookie visibility decision: one metadata hash, then pure
    /// id comparisons on the compiled policy. Grandfathered cookies keep
    /// legacy full visibility.
    #[inline]
    fn may_access(&self, caller: &Caller, name: &str) -> bool {
        let (grandfathered, creator) = match self.metadata.lookup(name) {
            Some(OwnershipRecord {
                origin: CookieOrigin::Grandfathered,
                ..
            }) => (true, None),
            Some(r) => (false, r.creator),
            None => (false, None),
        };
        grandfathered
            || self
                .engine
                .compiled()
                .check(self.site_id, caller, creator)
                .is_allow()
    }

    /// Non-mutating visibility check: may `caller` observe cookie
    /// `name`? Used to filter CookieStore `change` events — a script must
    /// not learn about changes to cookies it could not read (otherwise a
    /// respawning tracker could watch for a consent manager deleting
    /// foreign identifiers).
    pub fn may_observe(&self, caller: &Caller, name: &str) -> bool {
        self.may_access(caller, name)
    }

    /// Filters a `document.cookie` / `cookieStore.getAll` result for
    /// `caller`: only cookies whose recorded creator the caller may
    /// access are returned.
    pub fn filter_read(&mut self, caller: &Caller, cookies: Vec<Cookie>) -> Vec<Cookie> {
        let before = cookies.len();
        let visible: Vec<Cookie> = cookies
            .into_iter()
            .filter(|c| self.may_access(caller, &c.name))
            .collect();
        if visible.len() < before {
            self.stats.reads_filtered += 1;
            self.stats.cookies_filtered += (before - visible.len()) as u64;
        } else {
            self.stats.reads_clean += 1;
        }
        visible
    }

    /// Accounts for a read served from a still-valid cached post-filter
    /// view (the access layer's batch path): bumps the same counters
    /// [`GuardSession::filter_read`] would have, so per-op and batch
    /// access produce identical [`GuardStats`].
    pub fn note_cached_read(&mut self, filtered_count: usize) {
        if filtered_count > 0 {
            self.stats.reads_filtered += 1;
            self.stats.cookies_filtered += filtered_count as u64;
        } else {
            self.stats.reads_clean += 1;
        }
    }

    /// Name-only variant of [`GuardSession::filter_read`] for callers
    /// that work with cookie names (tests, policy probing). Borrows the
    /// input names and returns the visible subset as borrowed slices —
    /// no cloning.
    pub fn filter_names<'n>(&mut self, caller: &Caller, names: &[&'n str]) -> Vec<&'n str> {
        let before = names.len();
        let visible: Vec<&'n str> = names
            .iter()
            .filter(|n| self.may_access(caller, n))
            .copied()
            .collect();
        if visible.len() < before {
            self.stats.reads_filtered += 1;
            self.stats.cookies_filtered += (before - visible.len()) as u64;
        } else {
            self.stats.reads_clean += 1;
        }
        visible
    }

    /// Authorizes a write (create or overwrite) of cookie `name` by
    /// `caller`. On success the metadata records the caller as creator
    /// (for new cookies) or keeps/moves ownership per policy.
    pub fn authorize_write(&mut self, caller: &Caller, name: &str) -> AccessDecision {
        let record = self.metadata.lookup(name);
        let grandfathered = matches!(
            record,
            Some(OwnershipRecord {
                origin: CookieOrigin::Grandfathered,
                ..
            })
        );
        let compiled = self.engine.compiled();
        let decision = match record {
            // Legacy cookie: any writer may claim it (relearning phase).
            _ if grandfathered => compiled.check_create(self.site_id, caller),
            Some(r) => compiled.check(self.site_id, caller, r.creator),
            None => compiled.check_create(self.site_id, caller),
        };
        if decision.is_allow() {
            self.stats.writes_allowed += 1;
            if grandfathered || record.is_none() {
                // New (or relearned) cookie: ownership goes to the
                // (attributed) caller; inline-relaxed writes are owned by
                // the site.
                let creator = caller.domain.unwrap_or(self.site_id);
                self.metadata
                    .record_id(name, Some(creator), CookieOrigin::DocumentCookie);
            }
        } else {
            self.stats.writes_blocked += 1;
        }
        decision
    }

    /// Authorizes a deletion of cookie `name` by `caller`; on success the
    /// metadata forgets the cookie.
    pub fn authorize_delete(&mut self, caller: &Caller, name: &str) -> AccessDecision {
        let compiled = self.engine.compiled();
        let decision = match self.metadata.lookup(name) {
            // Legacy cookie: deletable by anyone (pre-guard behaviour).
            Some(OwnershipRecord {
                origin: CookieOrigin::Grandfathered,
                ..
            }) => compiled.check_create(self.site_id, caller),
            Some(r) => compiled.check(self.site_id, caller, r.creator),
            // Deleting a cookie the guard never saw: treat like touching
            // an unattributed (site-owned) cookie.
            None => compiled.check(self.site_id, caller, None),
        };
        if decision.is_allow() {
            self.metadata.forget(name);
        } else {
            self.stats.deletes_blocked += 1;
        }
        decision
    }
}

/// The per-site CookieGuard instance: one per top-level page visit.
///
/// Historically this type owned its policy outright; it is now a facade
/// over [`GuardSession`] + [`GuardEngine`]. [`CookieGuard::new`] keeps
/// the old build-everything-per-visit behaviour for standalone use;
/// crawls and deployments should build one engine and attach per-visit
/// via [`CookieGuard::with_engine`] (or use [`GuardSession`] directly).
#[derive(Debug, Clone)]
pub struct CookieGuard {
    session: GuardSession,
}

impl CookieGuard {
    /// Creates a self-contained guard for a visit to `site_domain` under
    /// `config` (compiles a fresh single-use engine).
    pub fn new(config: GuardConfig, site_domain: &str) -> CookieGuard {
        CookieGuard {
            session: GuardEngine::shared(config).session(site_domain),
        }
    }

    /// Creates a guard sharing an existing engine — the cheap per-visit
    /// path for crawls.
    pub fn with_engine(engine: Arc<GuardEngine>, site_domain: &str) -> CookieGuard {
        CookieGuard {
            session: GuardSession::new(engine, site_domain),
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &GuardSession {
        &self.session
    }

    /// Mutable access to the underlying session — what the access layer
    /// ([`crate::GuardedJar`]) borrows for the duration of a page.
    pub fn session_mut(&mut self) -> &mut GuardSession {
        &mut self.session
    }

    /// The shared policy engine.
    pub fn engine(&self) -> &Arc<GuardEngine> {
        self.session.engine()
    }

    /// The guarded site.
    pub fn site_domain(&self) -> &str {
        self.session.site_domain()
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> GuardStats {
        self.session.stats()
    }

    /// Read access to the metadata store (forensics / tests).
    pub fn metadata(&self) -> &MetadataStore {
        self.session.metadata()
    }

    /// See [`GuardSession::record_http_set_cookie`].
    pub fn record_http_set_cookie(&mut self, name: &str, response_domain: &str) {
        self.session.record_http_set_cookie(name, response_domain);
    }

    /// See [`GuardSession::grandfather`].
    pub fn grandfather(&mut self, name: &str) {
        self.session.grandfather(name);
    }

    /// See [`GuardSession::may_observe`].
    pub fn may_observe(&self, caller: &Caller, name: &str) -> bool {
        self.session.may_observe(caller, name)
    }

    /// See [`GuardSession::filter_read`].
    pub fn filter_read(&mut self, caller: &Caller, cookies: Vec<Cookie>) -> Vec<Cookie> {
        self.session.filter_read(caller, cookies)
    }

    /// See [`GuardSession::filter_names`].
    pub fn filter_names<'n>(&mut self, caller: &Caller, names: &[&'n str]) -> Vec<&'n str> {
        self.session.filter_names(caller, names)
    }

    /// See [`GuardSession::authorize_write`].
    pub fn authorize_write(&mut self, caller: &Caller, name: &str) -> AccessDecision {
        self.session.authorize_write(caller, name)
    }

    /// See [`GuardSession::authorize_delete`].
    pub fn authorize_delete(&mut self, caller: &Caller, name: &str) -> AccessDecision {
        self.session.authorize_delete(caller, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_cookiejar::CookieJar;
    use cg_url::Url;

    fn jar_cookies(names: &[&str]) -> Vec<Cookie> {
        let url = Url::parse("https://site.com/").unwrap();
        let mut jar = CookieJar::new();
        for (i, n) in names.iter().enumerate() {
            jar.set_document_cookie(&format!("{n}=v{i}"), &url, i as i64)
                .unwrap();
        }
        jar.cookies_for_document(&url, 100)
    }

    fn guard() -> CookieGuard {
        CookieGuard::new(GuardConfig::strict(), "site.com")
    }

    #[test]
    fn figure3_scenario() {
        // Reproduces the walkthrough of Figure 3.
        let mut g = guard();
        // 1. server at site.com sets c0 via Set-Cookie.
        g.record_http_set_cookie("c0", "site.com");
        // 2. site.com script sets c1.
        assert!(g
            .authorize_write(&Caller::external("site.com"), "c1")
            .is_allow());
        // 3. ad.com script sets c2.
        assert!(g
            .authorize_write(&Caller::external("ad.com"), "c2")
            .is_allow());

        let cookies = jar_cookies(&["c0", "c1", "c2"]);
        // 4. ad.com reads: sees only c2.
        let ad_view = g.filter_read(&Caller::external("ad.com"), cookies.clone());
        assert_eq!(
            ad_view.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["c2"]
        );
        // 5. site.com reads: sees everything.
        let owner_view = g.filter_read(&Caller::external("site.com"), cookies);
        assert_eq!(owner_view.len(), 3);
    }

    #[test]
    fn cross_domain_overwrite_blocked_and_counted() {
        let mut g = guard();
        g.authorize_write(&Caller::external("facebook.net"), "_fbp");
        let d = g.authorize_write(&Caller::external("pubmatic.com"), "_fbp");
        assert!(!d.is_allow());
        assert_eq!(g.stats().writes_blocked, 1);
        // Ownership unchanged.
        assert_eq!(g.metadata().creator("_fbp"), Some("facebook.net"));
    }

    #[test]
    fn authorized_delete_forgets_ownership() {
        let mut g = guard();
        g.authorize_write(&Caller::external("tracker.com"), "tmp");
        assert!(g
            .authorize_delete(&Caller::external("tracker.com"), "tmp")
            .is_allow());
        assert!(!g.metadata().knows("tmp"));
        // A different party can now claim the name.
        assert!(g
            .authorize_write(&Caller::external("other.com"), "tmp")
            .is_allow());
        assert_eq!(g.metadata().creator("tmp"), Some("other.com"));
    }

    #[test]
    fn cross_domain_delete_blocked() {
        let mut g = guard();
        g.authorize_write(&Caller::external("bing.com"), "_uetvid");
        assert!(!g
            .authorize_delete(&Caller::external("cookie-script.com"), "_uetvid")
            .is_allow());
        assert_eq!(g.stats().deletes_blocked, 1);
        assert!(g.metadata().knows("_uetvid"));
    }

    #[test]
    fn stats_track_filtering() {
        let mut g = guard();
        g.authorize_write(&Caller::external("a.com"), "ca");
        g.authorize_write(&Caller::external("b.com"), "cb");
        let cookies = jar_cookies(&["ca", "cb"]);
        g.filter_read(&Caller::external("a.com"), cookies.clone());
        assert_eq!(g.stats().reads_filtered, 1);
        assert_eq!(g.stats().cookies_filtered, 1);
        g.filter_read(&Caller::external("site.com"), cookies);
        assert_eq!(g.stats().reads_clean, 1);
    }

    #[test]
    fn http_cookie_ownership_enforced() {
        let mut g = guard();
        // A CDN response sets a cookie; its domain owns it.
        g.record_http_set_cookie("cdn_pref", "cdn-provider.net");
        let cookies = jar_cookies(&["cdn_pref"]);
        assert!(g
            .filter_read(&Caller::external("tracker.com"), cookies.clone())
            .is_empty());
        assert_eq!(
            g.filter_read(&Caller::external("cdn-provider.net"), cookies)
                .len(),
            1
        );
    }

    #[test]
    fn inline_strict_blocked_everywhere() {
        let mut g = guard();
        assert!(!g.authorize_write(&Caller::inline(), "x").is_allow());
        g.authorize_write(&Caller::external("a.com"), "y");
        assert!(g
            .filter_read(&Caller::inline(), jar_cookies(&["y"]))
            .is_empty());
    }

    #[test]
    fn relaxed_inline_acts_as_first_party() {
        let mut g = CookieGuard::new(GuardConfig::relaxed(), "site.com");
        assert!(g.authorize_write(&Caller::inline(), "pref").is_allow());
        // Ownership recorded to the site.
        assert_eq!(g.metadata().creator("pref"), Some("site.com"));
        assert_eq!(
            g.filter_read(&Caller::inline(), jar_cookies(&["pref"]))
                .len(),
            1
        );
    }

    // ------------------------------------------------------------------
    // Grandfathering (§8 staged deployment)
    // ------------------------------------------------------------------

    #[test]
    fn grandfathered_cookies_keep_legacy_visibility() {
        let mut g = guard();
        g.grandfather("_legacy");
        // Everyone can still read it, as before the guard shipped.
        assert_eq!(
            g.filter_read(&Caller::external("anyone.net"), jar_cookies(&["_legacy"]))
                .len(),
            1
        );
        assert!(g.may_observe(&Caller::external("anyone.net"), "_legacy"));
    }

    #[test]
    fn grandfathered_cookie_relearned_on_write() {
        let mut g = guard();
        g.grandfather("_tid");
        // The tracker refreshes its identifier: ownership is relearned.
        assert!(g
            .authorize_write(&Caller::external("tracker.com"), "_tid")
            .is_allow());
        assert_eq!(g.metadata().creator("_tid"), Some("tracker.com"));
        // From now on isolation applies.
        assert!(g
            .filter_read(&Caller::external("other.com"), jar_cookies(&["_tid"]))
            .is_empty());
        assert!(!g
            .authorize_write(&Caller::external("other.com"), "_tid")
            .is_allow());
    }

    #[test]
    fn grandfather_does_not_override_known_creators() {
        let mut g = guard();
        g.authorize_write(&Caller::external("a.com"), "c");
        g.grandfather("c"); // no-op: creator already known
        assert_eq!(g.metadata().creator("c"), Some("a.com"));
        assert!(g
            .filter_read(&Caller::external("b.com"), jar_cookies(&["c"]))
            .is_empty());
    }

    #[test]
    fn grandfathered_cookie_deletable_by_anyone() {
        let mut g = guard();
        g.grandfather("stale");
        assert!(g
            .authorize_delete(&Caller::external("consent.io"), "stale")
            .is_allow());
        assert!(!g.metadata().knows("stale"));
    }

    // ------------------------------------------------------------------
    // Engine/session split
    // ------------------------------------------------------------------

    #[test]
    fn with_engine_shares_policy_across_visits() {
        let engine = GuardEngine::shared(GuardConfig::strict().with_whitelisted("partner.io"));
        let mut site_a = CookieGuard::with_engine(Arc::clone(&engine), "a.com");
        let mut site_b = CookieGuard::with_engine(Arc::clone(&engine), "b.com");
        // Policy (whitelist) comes from the shared engine…
        site_a.authorize_write(&Caller::external("x.net"), "c");
        site_b.authorize_write(&Caller::external("y.net"), "c");
        assert!(site_a.may_observe(&Caller::external("partner.io"), "c"));
        assert!(site_b.may_observe(&Caller::external("partner.io"), "c"));
        // …while metadata stays per-session.
        assert_eq!(site_a.metadata().creator("c"), Some("x.net"));
        assert_eq!(site_b.metadata().creator("c"), Some("y.net"));
        assert!(Arc::ptr_eq(site_a.engine(), site_b.engine()));
    }

    #[test]
    fn stats_merge_adds_elementwise() {
        let a = GuardStats {
            cookies_filtered: 3,
            reads_filtered: 2,
            writes_blocked: 1,
            ..Default::default()
        };
        let b = GuardStats {
            cookies_filtered: 4,
            writes_allowed: 7,
            reads_clean: 5,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.cookies_filtered, 7);
        assert_eq!(m.reads_filtered, 2);
        assert_eq!(m.writes_blocked, 1);
        assert_eq!(m.writes_allowed, 7);
        assert_eq!(m.reads_clean, 5);
    }
}
