//! CookieGuard configuration.

use cg_entity::EntityMap;
use std::collections::HashSet;

/// How inline scripts (no attributable origin) are treated — §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlinePolicy {
    /// Safe-by-default: inline scripts are untrusted and see no cookies.
    /// This is the mode the paper evaluates.
    Strict,
    /// Inline scripts are treated as first-party (site-owner) scripts.
    /// Included to illustrate the alternative design choice; not used in
    /// the paper's evaluation.
    Relaxed,
}

/// CookieGuard's policy knobs.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Inline-script handling.
    pub inline_policy: InlinePolicy,
    /// When present, domains belonging to the same organization share
    /// cookie access (the §7.2 whitelist refinement).
    pub entity_map: Option<EntityMap>,
    /// Extra domains granted full jar access (site-operator escape hatch;
    /// empty by default).
    pub whitelist: HashSet<String>,
}

impl GuardConfig {
    /// The paper's evaluation configuration: strict inline handling, no
    /// entity grouping, empty whitelist.
    pub fn strict() -> GuardConfig {
        GuardConfig {
            inline_policy: InlinePolicy::Strict,
            entity_map: None,
            whitelist: HashSet::new(),
        }
    }

    /// Relaxed inline handling (illustrative alternative).
    pub fn relaxed() -> GuardConfig {
        GuardConfig {
            inline_policy: InlinePolicy::Relaxed,
            ..GuardConfig::strict()
        }
    }

    /// Enables entity grouping with the given map.
    pub fn with_entity_grouping(mut self, map: EntityMap) -> GuardConfig {
        self.entity_map = Some(map);
        self
    }

    /// Adds a domain to the full-access whitelist.
    pub fn with_whitelisted(mut self, domain: &str) -> GuardConfig {
        self.whitelist.insert(domain.to_ascii_lowercase());
        self
    }
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig::strict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_default() {
        let c = GuardConfig::default();
        assert_eq!(c.inline_policy, InlinePolicy::Strict);
        assert!(c.entity_map.is_none());
        assert!(c.whitelist.is_empty());
    }

    #[test]
    fn builders_compose() {
        let c = GuardConfig::relaxed()
            .with_entity_grouping(cg_entity::builtin_entity_map())
            .with_whitelisted("TRUSTED.example");
        assert_eq!(c.inline_policy, InlinePolicy::Relaxed);
        assert!(c.entity_map.is_some());
        assert!(c.whitelist.contains("trusted.example"));
    }
}
