//! The shared guard engine: one immutable policy core per deployment.
//!
//! Before this split, every [`crate::CookieGuard`] carried its own copy
//! of the [`GuardConfig`] — entity map, whitelist, and all — so a crawl
//! over N sites deep-cloned and re-derived the policy state N times. A
//! [`GuardEngine`] is built **once**, is `Send + Sync`, and is shared
//! behind an [`Arc`] by any number of per-visit
//! [`GuardSession`](crate::GuardSession)s across any number of threads.
//!
//! The engine is the *stateless* half of CookieGuard: configuration and
//! policy decisions. The *stateful* half — the per-site metadata store
//! and counters — lives in [`GuardSession`](crate::GuardSession).

use crate::config::{GuardConfig, InlinePolicy};
use crate::guard::GuardSession;
use crate::policy::{AccessDecision, AllowReason, BlockReason, Caller};
use std::sync::Arc;

/// Immutable, shareable policy core: config + entity registry, compiled
/// once per deployment.
#[derive(Debug)]
pub struct GuardEngine {
    config: GuardConfig,
}

impl GuardEngine {
    /// Compiles a config into an engine. Whitelist entries are
    /// normalized here so the per-access checks are pure lookups.
    pub fn new(config: GuardConfig) -> GuardEngine {
        let mut config = config;
        config.whitelist = config
            .whitelist
            .iter()
            .map(|d| d.to_ascii_lowercase())
            .collect();
        GuardEngine { config }
    }

    /// Convenience: a ready-to-share engine.
    pub fn shared(config: GuardConfig) -> Arc<GuardEngine> {
        Arc::new(GuardEngine::new(config))
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Opens a cheap per-visit session for a top-level page on
    /// `site_domain`, sharing this engine.
    pub fn session(self: &Arc<Self>, site_domain: &str) -> GuardSession {
        GuardSession::new(Arc::clone(self), site_domain)
    }

    /// May `caller` access a cookie created by `creator` on a visit to
    /// `site_domain`?
    ///
    /// `creator == None` means the cookie pre-dates the guard or its
    /// creator was never attributed; such cookies are conservatively
    /// treated as site-owned (only the owner reaches them).
    pub fn check(
        &self,
        site_domain: &str,
        caller: &Caller,
        creator: Option<&str>,
    ) -> AccessDecision {
        let caller_domain = match &caller.domain {
            Some(d) => d.as_str(),
            None => {
                return match self.config.inline_policy {
                    InlinePolicy::Strict => AccessDecision::Block(BlockReason::InlineStrict),
                    InlinePolicy::Relaxed => AccessDecision::Allow(AllowReason::RelaxedInline),
                }
            }
        };
        if caller_domain.eq_ignore_ascii_case(site_domain) {
            return AccessDecision::Allow(AllowReason::SiteOwner);
        }
        if self.config.whitelist.contains(caller_domain) {
            return AccessDecision::Allow(AllowReason::Whitelisted);
        }
        let creator = match creator {
            Some(c) => c,
            // Unattributed cookie: treated as the site's own.
            None => site_domain,
        };
        if caller_domain.eq_ignore_ascii_case(creator) {
            return AccessDecision::Allow(AllowReason::Creator);
        }
        if let Some(map) = &self.config.entity_map {
            // Only group when both domains are actually known to the map;
            // the identity fallback must not make unknown == unknown leak.
            if map.contains(caller_domain)
                && map.contains(creator)
                && map.same_entity(caller_domain, creator)
            {
                return AccessDecision::Allow(AllowReason::SameEntity);
            }
        }
        AccessDecision::Block(BlockReason::CrossDomain)
    }

    /// May `caller` create a cookie that does not exist yet on a visit
    /// to `site_domain`? Always yes for attributable callers; inline
    /// callers follow the inline policy.
    pub fn check_create(&self, site_domain: &str, caller: &Caller) -> AccessDecision {
        match (&caller.domain, self.config.inline_policy) {
            (Some(d), _) if d.eq_ignore_ascii_case(site_domain) => {
                AccessDecision::Allow(AllowReason::SiteOwner)
            }
            (Some(_), _) => AccessDecision::Allow(AllowReason::NewCookie),
            (None, InlinePolicy::Relaxed) => AccessDecision::Allow(AllowReason::RelaxedInline),
            (None, InlinePolicy::Strict) => AccessDecision::Block(BlockReason::InlineStrict),
        }
    }
}

// The engine is shared across crawler threads; its state is immutable
// after construction, so these bounds must hold by composition. The
// assertions keep that contract explicit at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GuardEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitelist_normalized_at_build_time() {
        let mut config = GuardConfig::strict();
        config.whitelist.insert("MiXeD.Example".to_string());
        let engine = GuardEngine::new(config);
        assert!(engine.config().whitelist.contains("mixed.example"));
        assert!(engine
            .check(
                "site.com",
                &Caller::external("mixed.example"),
                Some("other.com")
            )
            .is_allow());
    }

    #[test]
    fn one_engine_serves_many_sites() {
        let engine = GuardEngine::shared(GuardConfig::strict());
        // Same engine, different site context, different verdicts.
        let caller = Caller::external("shop.example");
        assert!(engine
            .check("shop.example", &caller, Some("anyone.net"))
            .is_allow());
        assert!(!engine
            .check("news.example", &caller, Some("anyone.net"))
            .is_allow());
    }

    #[test]
    fn sessions_share_without_cloning_config() {
        let engine = GuardEngine::shared(GuardConfig::strict());
        let a = engine.session("a.com");
        let b = engine.session("b.com");
        assert!(
            Arc::ptr_eq(a.engine(), b.engine()),
            "sessions must share one engine"
        );
        assert_eq!(Arc::strong_count(&engine), 3);
    }
}
