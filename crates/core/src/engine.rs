//! The shared guard engine: one immutable policy core per deployment.
//!
//! Before this split, every [`crate::CookieGuard`] carried its own copy
//! of the [`GuardConfig`] — entity map, whitelist, and all — so a crawl
//! over N sites deep-cloned and re-derived the policy state N times. A
//! [`GuardEngine`] is built **once**, is `Send + Sync`, and is shared
//! behind an [`Arc`] by any number of per-visit
//! [`GuardSession`]s across any number of threads.
//!
//! The engine is the *stateless* half of CookieGuard: configuration and
//! policy decisions. The *stateful* half — the per-site metadata store
//! and counters — lives in [`GuardSession`].
//!
//! # Compiled policy
//!
//! [`GuardEngine::new`] compiles the string-level [`GuardConfig`] into a
//! [`CompiledPolicy`] over interned [`DomainId`]s: the whitelist becomes
//! a `HashSet<DomainId>`, the entity map flattens into a dense
//! `DomainId → EntityId` table ([`cg_entity::CompiledEntityMap`]), and
//! every decision on the hot path ([`CompiledPolicy::check`]) is a chain
//! of integer comparisons — no lowercasing, no string hashing, no
//! allocation. Domain *names* exist only at the boundaries: attribution
//! interns them on the way in; serialization resolves ids back through
//! [`cg_url::name`] on the way out. Ids never appear in wire formats.
//!
//! The pre-compilation string-path decision procedure is retained
//! verbatim (doc-hidden) as a differential-testing oracle; the
//! `policy_oracle` integration test and the `decide` bench hold the two
//! paths equal and the compiled one fast.

use crate::config::{GuardConfig, InlinePolicy};
use crate::guard::GuardSession;
use crate::policy::{AccessDecision, AllowReason, BlockReason, Caller};
use cg_entity::CompiledEntityMap;
use cg_url::DomainId;
use std::collections::HashSet;
use std::sync::Arc;

/// The guard's decision procedure compiled to interned ids — the form
/// every per-operation check runs against.
///
/// Built once per [`GuardEngine`]; immutable afterwards. All lookups are
/// integer-keyed: the whitelist is a `HashSet<DomainId>` (one `u32`
/// hash), entity grouping is two reads of a dense table. **Invariant:**
/// `DomainId`/`EntityId` values are process-local handles and never
/// cross a serialization boundary — wire formats (VisitLog JSON, jar
/// JSON, instrument events) always carry resolved names.
#[derive(Debug)]
pub struct CompiledPolicy {
    inline_policy: InlinePolicy,
    whitelist: HashSet<DomainId>,
    entities: Option<CompiledEntityMap>,
}

impl CompiledPolicy {
    /// Compiles `config`: interns every whitelist entry and flattens the
    /// entity map. The one place strings are touched.
    pub fn compile(config: &GuardConfig) -> CompiledPolicy {
        CompiledPolicy {
            inline_policy: config.inline_policy,
            whitelist: config.whitelist.iter().map(|d| cg_url::intern(d)).collect(),
            entities: config.entity_map.as_ref().map(CompiledEntityMap::compile),
        }
    }

    /// May `caller` access a cookie created by `creator` on a visit to
    /// `site`? Allocation-free: every step is an id comparison.
    ///
    /// `creator == None` means the cookie pre-dates the guard or its
    /// creator was never attributed; such cookies are conservatively
    /// treated as site-owned (only the owner reaches them).
    pub fn check(
        &self,
        site: DomainId,
        caller: &Caller,
        creator: Option<DomainId>,
    ) -> AccessDecision {
        let caller_id = match caller.domain {
            Some(d) => d,
            None => {
                return match self.inline_policy {
                    InlinePolicy::Strict => AccessDecision::Block(BlockReason::InlineStrict),
                    InlinePolicy::Relaxed => AccessDecision::Allow(AllowReason::RelaxedInline),
                }
            }
        };
        if caller_id == site {
            return AccessDecision::Allow(AllowReason::SiteOwner);
        }
        if self.whitelist.contains(&caller_id) {
            return AccessDecision::Allow(AllowReason::Whitelisted);
        }
        // Unattributed cookie: treated as the site's own.
        let creator = creator.unwrap_or(site);
        if caller_id == creator {
            return AccessDecision::Allow(AllowReason::Creator);
        }
        if let Some(ents) = &self.entities {
            // Only group when both domains are actually known to the map;
            // unknown == unknown must not leak (same_entity on the
            // compiled table is already strict about that).
            if ents.same_entity(caller_id, creator) {
                return AccessDecision::Allow(AllowReason::SameEntity);
            }
        }
        AccessDecision::Block(BlockReason::CrossDomain)
    }

    /// May `caller` create a cookie that does not exist yet on a visit
    /// to `site`? Always yes for attributable callers; inline callers
    /// follow the inline policy.
    pub fn check_create(&self, site: DomainId, caller: &Caller) -> AccessDecision {
        match (caller.domain, self.inline_policy) {
            (Some(d), _) if d == site => AccessDecision::Allow(AllowReason::SiteOwner),
            (Some(_), _) => AccessDecision::Allow(AllowReason::NewCookie),
            (None, InlinePolicy::Relaxed) => AccessDecision::Allow(AllowReason::RelaxedInline),
            (None, InlinePolicy::Strict) => AccessDecision::Block(BlockReason::InlineStrict),
        }
    }
}

/// Immutable, shareable policy core: config + compiled policy, built
/// once per deployment.
///
/// Every engine carries a **policy epoch** — a caller-assigned
/// generation number ([`GuardEngine::policy_epoch`]). A standalone
/// engine is generation 0; a serving layer that hot-swaps recompiled
/// policies (see `cg-service`) builds each replacement with
/// [`GuardEngine::with_epoch`] and a strictly increasing epoch, so any
/// session — and any debugging output — can state exactly which policy
/// generation it decided under.
#[derive(Debug)]
pub struct GuardEngine {
    config: GuardConfig,
    compiled: CompiledPolicy,
    policy_epoch: u64,
}

impl GuardEngine {
    /// Compiles a config into an engine. Whitelist entries are
    /// normalized here (lowercased, stray edge dots trimmed — the
    /// interner's normalization, so an operator entry like
    /// `".doubleclick.net"` matches), and the whole config is lowered to
    /// a [`CompiledPolicy`] over interned ids, so the per-access checks
    /// are pure integer lookups. The engine is policy generation 0; use
    /// [`GuardEngine::with_epoch`] when compiling a replacement policy.
    pub fn new(config: GuardConfig) -> GuardEngine {
        GuardEngine::with_epoch(config, 0)
    }

    /// Compiles a config into an engine stamped with policy generation
    /// `epoch`. Epochs are assigned by whoever owns the swap protocol
    /// (monotonically increasing per deployment slot); the engine itself
    /// only records the number.
    pub fn with_epoch(config: GuardConfig, epoch: u64) -> GuardEngine {
        let mut config = config;
        config.whitelist = config
            .whitelist
            .iter()
            .map(|d| d.trim_matches('.').to_ascii_lowercase())
            .collect();
        let compiled = CompiledPolicy::compile(&config);
        GuardEngine {
            config,
            compiled,
            policy_epoch: epoch,
        }
    }

    /// The policy generation this engine was compiled as. Monotonically
    /// increasing across hot-swaps of one deployment slot; 0 for
    /// standalone engines.
    pub fn policy_epoch(&self) -> u64 {
        self.policy_epoch
    }

    /// Convenience: a ready-to-share engine.
    pub fn shared(config: GuardConfig) -> Arc<GuardEngine> {
        Arc::new(GuardEngine::new(config))
    }

    /// The active configuration (string form; the compiled form is
    /// [`GuardEngine::compiled`]).
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// The id-compiled decision procedure — what sessions and the access
    /// layer consult per operation.
    pub fn compiled(&self) -> &CompiledPolicy {
        &self.compiled
    }

    /// Opens a cheap per-visit session for a top-level page on
    /// `site_domain`, sharing this engine. The site domain is interned
    /// here, once per visit.
    pub fn session(self: &Arc<Self>, site_domain: &str) -> GuardSession {
        GuardSession::new(Arc::clone(self), site_domain)
    }

    /// String-boundary form of [`CompiledPolicy::check`]: interns `site`
    /// and `creator` and delegates. Convenient for tests and probing
    /// tools; hot paths resolve ids once and call the compiled form.
    pub fn check(
        &self,
        site_domain: &str,
        caller: &Caller,
        creator: Option<&str>,
    ) -> AccessDecision {
        self.compiled.check(
            cg_url::intern(site_domain),
            caller,
            creator.map(cg_url::intern),
        )
    }

    /// String-boundary form of [`CompiledPolicy::check_create`].
    pub fn check_create(&self, site_domain: &str, caller: &Caller) -> AccessDecision {
        self.compiled
            .check_create(cg_url::intern(site_domain), caller)
    }

    /// The pre-compilation string-path decision procedure, kept as the
    /// differential-testing oracle for [`CompiledPolicy::check`]: the
    /// decision logic is verbatim; the entry normalization applies the
    /// interner's rule (lowercase + stray edge dots trimmed) to every
    /// input so both paths see the same domain space — a raw-string
    /// `".Site.COM."` and the id for `site.com` must decide alike. Not
    /// part of the public API.
    #[doc(hidden)]
    pub fn check_str_oracle(
        &self,
        site_domain: &str,
        caller_domain: Option<&str>,
        creator: Option<&str>,
    ) -> AccessDecision {
        let caller_domain = match caller_domain {
            Some(d) => d.trim_matches('.').to_ascii_lowercase(),
            None => {
                return match self.config.inline_policy {
                    InlinePolicy::Strict => AccessDecision::Block(BlockReason::InlineStrict),
                    InlinePolicy::Relaxed => AccessDecision::Allow(AllowReason::RelaxedInline),
                }
            }
        };
        let site_domain = site_domain.trim_matches('.').to_ascii_lowercase();
        if caller_domain.eq_ignore_ascii_case(&site_domain) {
            return AccessDecision::Allow(AllowReason::SiteOwner);
        }
        if self.config.whitelist.contains(&caller_domain) {
            return AccessDecision::Allow(AllowReason::Whitelisted);
        }
        let creator = creator.map(|c| c.trim_matches('.').to_ascii_lowercase());
        let creator = match &creator {
            Some(c) => c.as_str(),
            None => site_domain.as_str(),
        };
        if caller_domain.eq_ignore_ascii_case(creator) {
            return AccessDecision::Allow(AllowReason::Creator);
        }
        if let Some(map) = &self.config.entity_map {
            if map.contains(&caller_domain)
                && map.contains(creator)
                && map.same_entity(&caller_domain, creator)
            {
                return AccessDecision::Allow(AllowReason::SameEntity);
            }
        }
        AccessDecision::Block(BlockReason::CrossDomain)
    }

    /// String-path oracle for [`CompiledPolicy::check_create`]; see
    /// [`GuardEngine::check_str_oracle`].
    #[doc(hidden)]
    pub fn check_create_str_oracle(
        &self,
        site_domain: &str,
        caller_domain: Option<&str>,
    ) -> AccessDecision {
        let site_domain = site_domain.trim_matches('.');
        match (
            caller_domain.map(|d| d.trim_matches('.')),
            self.config.inline_policy,
        ) {
            (Some(d), _) if d.eq_ignore_ascii_case(site_domain) => {
                AccessDecision::Allow(AllowReason::SiteOwner)
            }
            (Some(_), _) => AccessDecision::Allow(AllowReason::NewCookie),
            (None, InlinePolicy::Relaxed) => AccessDecision::Allow(AllowReason::RelaxedInline),
            (None, InlinePolicy::Strict) => AccessDecision::Block(BlockReason::InlineStrict),
        }
    }
}

// The engine is shared across crawler threads; its state is immutable
// after construction, so these bounds must hold by composition. The
// assertions keep that contract explicit at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GuardEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitelist_normalized_at_build_time() {
        let mut config = GuardConfig::strict();
        config.whitelist.insert("MiXeD.Example".to_string());
        let engine = GuardEngine::new(config);
        assert!(engine.config().whitelist.contains("mixed.example"));
        assert!(engine
            .check(
                "site.com",
                &Caller::external("mixed.example"),
                Some("other.com")
            )
            .is_allow());
    }

    #[test]
    fn policy_epoch_is_recorded_and_pinned_by_sessions() {
        let e0 = GuardEngine::shared(GuardConfig::strict());
        assert_eq!(e0.policy_epoch(), 0);
        let e7 = Arc::new(GuardEngine::with_epoch(GuardConfig::strict(), 7));
        assert_eq!(e7.policy_epoch(), 7);
        let s = e7.session("site.com");
        assert_eq!(s.policy_epoch(), 7);
        // The session's epoch is a property of the engine it opened on,
        // not of any later engine.
        drop(e7);
        assert_eq!(s.policy_epoch(), 7);
    }

    #[test]
    fn one_engine_serves_many_sites() {
        let engine = GuardEngine::shared(GuardConfig::strict());
        // Same engine, different site context, different verdicts.
        let caller = Caller::external("shop.example");
        assert!(engine
            .check("shop.example", &caller, Some("anyone.net"))
            .is_allow());
        assert!(!engine
            .check("news.example", &caller, Some("anyone.net"))
            .is_allow());
    }

    #[test]
    fn sessions_share_without_cloning_config() {
        let engine = GuardEngine::shared(GuardConfig::strict());
        let a = engine.session("a.com");
        let b = engine.session("b.com");
        assert!(
            Arc::ptr_eq(a.engine(), b.engine()),
            "sessions must share one engine"
        );
        assert_eq!(Arc::strong_count(&engine), 3);
    }

    #[test]
    fn compiled_check_runs_on_ids() {
        let engine = GuardEngine::new(
            GuardConfig::strict()
                .with_whitelisted("partner.io")
                .with_entity_grouping(cg_entity::builtin_entity_map()),
        );
        let site = cg_url::intern("site.com");
        let compiled = engine.compiled();
        assert_eq!(
            compiled.check(site, &Caller::external("site.com"), None),
            AccessDecision::Allow(AllowReason::SiteOwner)
        );
        assert_eq!(
            compiled.check(
                site,
                &Caller::external("partner.io"),
                Some(cg_url::intern("anyone.net"))
            ),
            AccessDecision::Allow(AllowReason::Whitelisted)
        );
        assert_eq!(
            compiled.check(
                site,
                &Caller::external("fbcdn.net"),
                Some(cg_url::intern("facebook.net"))
            ),
            AccessDecision::Allow(AllowReason::SameEntity)
        );
        assert_eq!(
            compiled.check(
                site,
                &Caller::external("stranger.net"),
                Some(cg_url::intern("tracker.com"))
            ),
            AccessDecision::Block(BlockReason::CrossDomain)
        );
    }
}
