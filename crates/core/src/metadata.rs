//! The metadata store: cookie name → creator.
//!
//! This is CookieGuard's database (§6.2, Figure 4): one record per cookie
//! name holding the eTLD+1 of the creating script or server and how the
//! cookie was created. The store is per-site (per top-level page), like
//! the extension's per-tab dataset.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a cookie came to exist — which API created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CookieOrigin {
    /// An HTTP `Set-Cookie` response header.
    HttpHeader,
    /// A `document.cookie` write.
    DocumentCookie,
    /// A `cookieStore.set` call.
    CookieStore,
    /// The cookie pre-dates the guard's activation and was admitted
    /// under the migration policy (§8): it keeps legacy full visibility
    /// until an authorized write re-attributes it. Mirrors WebKit's ITP
    /// "grandfathering" of existing site data.
    Grandfathered,
}

/// One cookie's ownership record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipRecord {
    /// eTLD+1 of the creating script or responding server; `None` when
    /// the creator could not be attributed (inline script in relaxed
    /// mode writes are recorded against the site owner instead, so
    /// `None` never appears there — it is kept for forensics).
    pub creator: Option<String>,
    /// Which API created the cookie.
    pub origin: CookieOrigin,
}

/// The per-site metadata store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetadataStore {
    records: HashMap<String, OwnershipRecord>,
}

impl MetadataStore {
    /// An empty store.
    pub fn new() -> MetadataStore {
        MetadataStore::default()
    }

    /// Records (or re-records) the creator of `name`. Re-recording models
    /// an authorized overwrite: ownership follows the latest authorized
    /// writer, matching the extension's dataset-update behaviour.
    pub fn record(&mut self, name: &str, creator: Option<&str>, origin: CookieOrigin) {
        self.records.insert(
            name.to_string(),
            OwnershipRecord {
                creator: creator.map(|c| c.to_ascii_lowercase()),
                origin,
            },
        );
    }

    /// Marks `name` as grandfathered: it existed before the guard
    /// attached, so no creator is known and legacy visibility applies.
    pub fn record_grandfathered(&mut self, name: &str) {
        self.records.insert(
            name.to_string(),
            OwnershipRecord {
                creator: None,
                origin: CookieOrigin::Grandfathered,
            },
        );
    }

    /// Whether `name` is currently under the grandfathering policy.
    pub fn is_grandfathered(&self, name: &str) -> bool {
        matches!(
            self.records.get(name),
            Some(OwnershipRecord {
                origin: CookieOrigin::Grandfathered,
                ..
            })
        )
    }

    /// The creator of `name`, if known.
    pub fn creator(&self, name: &str) -> Option<&str> {
        self.records.get(name).and_then(|r| r.creator.as_deref())
    }

    /// The full record for `name`.
    pub fn record_of(&self, name: &str) -> Option<&OwnershipRecord> {
        self.records.get(name)
    }

    /// Whether any record exists for `name`.
    pub fn knows(&self, name: &str) -> bool {
        self.records.contains_key(name)
    }

    /// Forgets a cookie (after an authorized deletion) so a future
    /// same-name cookie is treated as new.
    pub fn forget(&mut self, name: &str) {
        self.records.remove(name);
    }

    /// Number of tracked cookies.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(name, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OwnershipRecord)> {
        self.records.iter().map(|(n, r)| (n.as_str(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut m = MetadataStore::new();
        m.record(
            "_ga",
            Some("Googletagmanager.COM"),
            CookieOrigin::DocumentCookie,
        );
        assert_eq!(m.creator("_ga"), Some("googletagmanager.com"));
        assert!(m.knows("_ga"));
        assert!(!m.knows("_gid"));
        assert_eq!(
            m.record_of("_ga").unwrap().origin,
            CookieOrigin::DocumentCookie
        );
    }

    #[test]
    fn rerecord_moves_ownership() {
        let mut m = MetadataStore::new();
        m.record("c", Some("a.com"), CookieOrigin::DocumentCookie);
        m.record("c", Some("b.com"), CookieOrigin::HttpHeader);
        assert_eq!(m.creator("c"), Some("b.com"));
        assert_eq!(m.record_of("c").unwrap().origin, CookieOrigin::HttpHeader);
    }

    #[test]
    fn forget_clears() {
        let mut m = MetadataStore::new();
        m.record("c", Some("a.com"), CookieOrigin::CookieStore);
        m.forget("c");
        assert!(!m.knows("c"));
        assert!(m.is_empty());
    }
}
