//! The metadata store: cookie name → creator.
//!
//! This is CookieGuard's database (§6.2, Figure 4): one record per cookie
//! name holding the creating script or server and how the cookie was
//! created. The store is per-site (per top-level page), like the
//! extension's per-tab dataset.
//!
//! Storage is id-compiled: cookie names intern to session-local
//! [`NameId`]s (one hash on first sight, a slot index afterwards) and
//! creators are process-wide [`DomainId`]s, so the per-operation lookup
//! chain — name → record → creator — costs one string hash and two
//! array/int reads, with zero allocation. The serde impls resolve both
//! id kinds back to names, so the wire format is exactly the historical
//! name/creator-string map — ids never serialize.

use cg_url::DomainId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a cookie came to exist — which API created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CookieOrigin {
    /// An HTTP `Set-Cookie` response header.
    HttpHeader,
    /// A `document.cookie` write.
    DocumentCookie,
    /// A `cookieStore.set` call.
    CookieStore,
    /// The cookie pre-dates the guard's activation and was admitted
    /// under the migration policy (§8): it keeps legacy full visibility
    /// until an authorized write re-attributes it. Mirrors WebKit's ITP
    /// "grandfathering" of existing site data.
    Grandfathered,
}

/// A dense, copyable handle for a cookie name interned by one
/// [`MetadataStore`]. Session-local: ids from different stores are
/// unrelated, and (like [`DomainId`]s) they never serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The raw index (dense from 0 in interning order).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One cookie's ownership record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnershipRecord {
    /// Interned eTLD+1 of the creating script or responding server;
    /// `None` when the creator could not be attributed (inline script in
    /// relaxed mode writes are recorded against the site owner instead,
    /// so `None` never appears there — it is kept for forensics).
    pub creator: Option<DomainId>,
    /// Which API created the cookie.
    pub origin: CookieOrigin,
}

impl OwnershipRecord {
    /// The creator's domain name (normalized form), when attributed.
    pub fn creator_name(&self) -> Option<&'static str> {
        self.creator.map(cg_url::name)
    }
}

/// The per-site metadata store.
#[derive(Debug, Clone, Default)]
pub struct MetadataStore {
    /// Cookie name → session-local id. Names stay interned across
    /// [`MetadataStore::forget`] so a recreated cookie reuses its slot.
    ids: HashMap<Box<str>, NameId>,
    /// Indexed by [`NameId`]; `None` = forgotten (deleted) cookie.
    records: Vec<Option<OwnershipRecord>>,
}

impl MetadataStore {
    /// An empty store.
    pub fn new() -> MetadataStore {
        MetadataStore::default()
    }

    /// The session-local id for `name`, if it was ever recorded.
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.ids.get(name).copied()
    }

    /// Interns `name` (allocates only on first sight).
    fn intern_name(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.records.len()).expect("metadata interner overflow"));
        self.ids.insert(Box::from(name), id);
        self.records.push(None);
        id
    }

    /// The live record for `name`, if any — the one-hash hot-path
    /// lookup every enforcement decision starts from.
    pub fn lookup(&self, name: &str) -> Option<OwnershipRecord> {
        self.ids
            .get(name)
            .and_then(|id| self.records[id.0 as usize])
    }

    /// Records (or re-records) the creator of `name` by id. Re-recording
    /// models an authorized overwrite: ownership follows the latest
    /// authorized writer, matching the extension's dataset-update
    /// behaviour.
    pub fn record_id(&mut self, name: &str, creator: Option<DomainId>, origin: CookieOrigin) {
        let id = self.intern_name(name);
        self.records[id.0 as usize] = Some(OwnershipRecord { creator, origin });
    }

    /// String-boundary form of [`MetadataStore::record_id`]: interns the
    /// creator (normalizing to lowercase) first.
    pub fn record(&mut self, name: &str, creator: Option<&str>, origin: CookieOrigin) {
        self.record_id(name, creator.map(cg_url::intern), origin);
    }

    /// Marks `name` as grandfathered: it existed before the guard
    /// attached, so no creator is known and legacy visibility applies.
    pub fn record_grandfathered(&mut self, name: &str) {
        self.record_id(name, None, CookieOrigin::Grandfathered);
    }

    /// Whether `name` is currently under the grandfathering policy.
    pub fn is_grandfathered(&self, name: &str) -> bool {
        matches!(
            self.lookup(name),
            Some(OwnershipRecord {
                origin: CookieOrigin::Grandfathered,
                ..
            })
        )
    }

    /// The creator of `name`, if known (resolved name form).
    pub fn creator(&self, name: &str) -> Option<&'static str> {
        self.lookup(name).and_then(|r| r.creator_name())
    }

    /// The creator of `name` as an id, if known — the hot-path form.
    pub fn creator_id(&self, name: &str) -> Option<DomainId> {
        self.lookup(name).and_then(|r| r.creator)
    }

    /// The full record for `name`.
    pub fn record_of(&self, name: &str) -> Option<OwnershipRecord> {
        self.lookup(name)
    }

    /// Whether any record exists for `name`.
    pub fn knows(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }

    /// Forgets a cookie (after an authorized deletion) so a future
    /// same-name cookie is treated as new. The name stays interned; its
    /// slot empties.
    pub fn forget(&mut self, name: &str) {
        if let Some(&id) = self.ids.get(name) {
            self.records[id.0 as usize] = None;
        }
    }

    /// Number of tracked cookies.
    pub fn len(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.iter().all(|r| r.is_none())
    }

    /// Iterates over `(name, record)` pairs, live records only.
    pub fn iter(&self) -> impl Iterator<Item = (&str, OwnershipRecord)> {
        self.ids
            .iter()
            .filter_map(|(n, id)| self.records[id.0 as usize].map(|r| (n.as_ref(), r)))
    }
}

// The wire format is the historical `{"records": {name: {creator,
// origin}}}` shape with creator *names* — session-local NameIds and
// process-local DomainIds never serialize (keys sorted for determinism,
// matching the vendored serde's HashMap behaviour).
impl Serialize for MetadataStore {
    fn to_content(&self) -> serde::Content {
        let mut entries: Vec<(&str, OwnershipRecord)> = self.iter().collect();
        entries.sort_unstable_by_key(|(n, _)| *n);
        let records = entries
            .into_iter()
            .map(|(n, r)| {
                (
                    serde::Content::Str(n.to_string()),
                    serde::Content::Map(vec![
                        (
                            serde::Content::Str("creator".to_string()),
                            match r.creator_name() {
                                Some(c) => serde::Content::Str(c.to_string()),
                                None => serde::Content::Null,
                            },
                        ),
                        (
                            serde::Content::Str("origin".to_string()),
                            r.origin.to_content(),
                        ),
                    ]),
                )
            })
            .collect();
        serde::Content::Map(vec![(
            serde::Content::Str("records".to_string()),
            serde::Content::Map(records),
        )])
    }
}

impl<'de> Deserialize<'de> for MetadataStore {
    fn from_content(content: &serde::Content) -> Result<MetadataStore, serde::DeError> {
        let records = match content.get("records") {
            Some(serde::Content::Map(entries)) => entries,
            Some(other) => {
                return Err(serde::DeError(format!(
                    "MetadataStore.records: expected map, got {}",
                    other.kind()
                )))
            }
            None => return Err(serde::DeError("MetadataStore: missing records".into())),
        };
        let mut store = MetadataStore::new();
        for (key, value) in records {
            let name = match key {
                serde::Content::Str(s) => s.as_str(),
                other => {
                    return Err(serde::DeError(format!(
                        "MetadataStore record key: expected string, got {}",
                        other.kind()
                    )))
                }
            };
            let creator = match value.get("creator") {
                Some(serde::Content::Str(s)) => Some(s.as_str()),
                Some(serde::Content::Null) | None => None,
                Some(other) => {
                    return Err(serde::DeError(format!(
                        "OwnershipRecord.creator: expected string or null, got {}",
                        other.kind()
                    )))
                }
            };
            let origin = match value.get("origin") {
                Some(c) => CookieOrigin::from_content(c)?,
                None => return Err(serde::DeError("OwnershipRecord: missing origin".into())),
            };
            store.record(name, creator, origin);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut m = MetadataStore::new();
        m.record(
            "_ga",
            Some("Googletagmanager.COM"),
            CookieOrigin::DocumentCookie,
        );
        assert_eq!(m.creator("_ga"), Some("googletagmanager.com"));
        assert!(m.knows("_ga"));
        assert!(!m.knows("_gid"));
        assert_eq!(
            m.record_of("_ga").unwrap().origin,
            CookieOrigin::DocumentCookie
        );
    }

    #[test]
    fn rerecord_moves_ownership() {
        let mut m = MetadataStore::new();
        m.record("c", Some("a.com"), CookieOrigin::DocumentCookie);
        m.record("c", Some("b.com"), CookieOrigin::HttpHeader);
        assert_eq!(m.creator("c"), Some("b.com"));
        assert_eq!(m.record_of("c").unwrap().origin, CookieOrigin::HttpHeader);
    }

    #[test]
    fn forget_clears() {
        let mut m = MetadataStore::new();
        m.record("c", Some("a.com"), CookieOrigin::CookieStore);
        m.forget("c");
        assert!(!m.knows("c"));
        assert!(m.is_empty());
    }

    #[test]
    fn forget_keeps_the_interned_slot_stable() {
        let mut m = MetadataStore::new();
        m.record("c", Some("a.com"), CookieOrigin::DocumentCookie);
        let id = m.name_id("c").unwrap();
        m.forget("c");
        assert!(m.name_id("c").is_some());
        m.record("c", Some("b.com"), CookieOrigin::DocumentCookie);
        assert_eq!(m.name_id("c"), Some(id), "recreated name reuses its slot");
        assert_eq!(m.creator("c"), Some("b.com"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn serde_round_trips_with_name_strings_on_the_wire() {
        let mut m = MetadataStore::new();
        m.record("_ga", Some("gtm.example"), CookieOrigin::DocumentCookie);
        m.record("sid", None, CookieOrigin::HttpHeader);
        m.record_grandfathered("_old");
        let json = serde_json::to_string(&m).unwrap();
        // Names and creators on the wire; no integers anywhere.
        assert!(json.contains("\"_ga\""));
        assert!(json.contains("\"gtm.example\""));
        assert!(json.contains("\"Grandfathered\""));
        let back: MetadataStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.creator("_ga"), Some("gtm.example"));
        assert!(back.is_grandfathered("_old"));
        assert_eq!(
            back.record_of("sid").unwrap().origin,
            CookieOrigin::HttpHeader
        );
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
