//! Staged deployment (§8 "Toward Practical Deployment").
//!
//! The paper sketches the rollout path browser vendors have historically
//! taken for disruptive privacy features — Safari's ITP shipped in 2017
//! with limited cookie blocking, reached full third-party blocking in
//! 2020, and bridged the transition with "grandfathering" of existing
//! site data. This module models that ladder for CookieGuard:
//!
//! * a [`DeploymentStage`] determines what share of page views run with
//!   the guard attached (opt-in → private-browsing-only → default-on);
//! * [`PrivacyPreset`]s are the user-selectable policy bundles the paper
//!   proposes ("expose CookieGuard's policies as user-selectable privacy
//!   settings");
//! * grandfathering itself lives on [`crate::CookieGuard::grandfather`].
//!
//! The rollout *simulation* — weighting protection and breakage by the
//! guarded share — lives in `cg-experiments`; this module owns the
//! policy-level vocabulary so library users can configure deployments
//! without the experiment harness.

use crate::config::{GuardConfig, InlinePolicy};
use cg_entity::EntityMap;

/// Where in the rollout ladder a browser population sits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeploymentStage {
    /// The guard is not shipped: 0% of page views are protected.
    Disabled,
    /// Shipped behind a flag; `adoption` is the fraction of users who
    /// turned it on (0.0–1.0).
    OptIn {
        /// Fraction of users with the flag enabled.
        adoption: f64,
    },
    /// Enforced only in private-browsing windows; `private_share` is the
    /// fraction of page views that happen in private mode.
    PrivateBrowsing {
        /// Fraction of page views in private windows.
        private_share: f64,
    },
    /// Default-on for everyone.
    DefaultOn,
}

impl DeploymentStage {
    /// The fraction of page views the guard protects at this stage.
    pub fn guarded_share(&self) -> f64 {
        match self {
            DeploymentStage::Disabled => 0.0,
            DeploymentStage::OptIn { adoption } => adoption.clamp(0.0, 1.0),
            DeploymentStage::PrivateBrowsing { private_share } => private_share.clamp(0.0, 1.0),
            DeploymentStage::DefaultOn => 1.0,
        }
    }

    /// A human label for reports.
    pub fn label(&self) -> String {
        match self {
            DeploymentStage::Disabled => "disabled".to_string(),
            DeploymentStage::OptIn { adoption } => {
                format!("opt-in ({:.0}% adoption)", adoption * 100.0)
            }
            DeploymentStage::PrivateBrowsing { private_share } => {
                format!("private browsing ({:.0}% of views)", private_share * 100.0)
            }
            DeploymentStage::DefaultOn => "default on".to_string(),
        }
    }

    /// The ITP-style ladder the paper envisions: flag → private mode →
    /// default, with adoption/share figures in line with published
    /// browser-telemetry ballparks.
    pub fn ladder() -> Vec<DeploymentStage> {
        vec![
            DeploymentStage::Disabled,
            DeploymentStage::OptIn { adoption: 0.05 },
            DeploymentStage::PrivateBrowsing {
                private_share: 0.12,
            },
            DeploymentStage::OptIn { adoption: 0.40 },
            DeploymentStage::DefaultOn,
        ]
    }
}

/// User-selectable policy bundles — the paper's "user-selectable privacy
/// settings, allowing users to balance functionality and privacy".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyPreset {
    /// Maximum compatibility: relaxed inline handling, entity grouping,
    /// and grandfathering of pre-existing cookies.
    Permissive,
    /// The paper's recommended operating point (§7.2): strict inline
    /// handling *with* entity grouping — 3% residual breakage.
    Balanced,
    /// The paper's evaluation configuration (§7.1): strict inline
    /// handling, no grouping — maximum isolation, 11% SSO breakage.
    Strict,
}

impl PrivacyPreset {
    /// Materializes the preset into a [`GuardConfig`]. `entities` feeds
    /// the grouping presets; pass the Tracker-Radar-style map.
    pub fn config(&self, entities: &EntityMap) -> GuardConfig {
        match self {
            PrivacyPreset::Permissive => GuardConfig {
                inline_policy: InlinePolicy::Relaxed,
                entity_map: Some(entities.clone()),
                whitelist: Default::default(),
            },
            PrivacyPreset::Balanced => GuardConfig::strict().with_entity_grouping(entities.clone()),
            PrivacyPreset::Strict => GuardConfig::strict(),
        }
    }

    /// Whether visits under this preset grandfather pre-existing cookies.
    pub fn grandfathers(&self) -> bool {
        matches!(self, PrivacyPreset::Permissive)
    }

    /// All presets, weakest first.
    pub fn all() -> [PrivacyPreset; 3] {
        [
            PrivacyPreset::Permissive,
            PrivacyPreset::Balanced,
            PrivacyPreset::Strict,
        ]
    }

    /// A human label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PrivacyPreset::Permissive => "permissive",
            PrivacyPreset::Balanced => "balanced",
            PrivacyPreset::Strict => "strict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_share_per_stage() {
        assert_eq!(DeploymentStage::Disabled.guarded_share(), 0.0);
        assert_eq!(DeploymentStage::DefaultOn.guarded_share(), 1.0);
        assert!((DeploymentStage::OptIn { adoption: 0.05 }.guarded_share() - 0.05).abs() < 1e-12);
        // Out-of-range inputs are clamped, never amplified.
        assert_eq!(
            DeploymentStage::OptIn { adoption: 7.0 }.guarded_share(),
            1.0
        );
        assert_eq!(
            DeploymentStage::OptIn { adoption: -1.0 }.guarded_share(),
            0.0
        );
    }

    #[test]
    fn ladder_is_monotone_in_protection() {
        let shares: Vec<f64> = DeploymentStage::ladder()
            .iter()
            .map(|s| s.guarded_share())
            .collect();
        for w in shares.windows(2) {
            assert!(w[0] <= w[1], "ladder must not step backwards: {shares:?}");
        }
    }

    #[test]
    fn presets_materialize() {
        let entities = cg_entity::builtin_entity_map();
        let permissive = PrivacyPreset::Permissive.config(&entities);
        assert_eq!(permissive.inline_policy, InlinePolicy::Relaxed);
        assert!(permissive.entity_map.is_some());
        assert!(PrivacyPreset::Permissive.grandfathers());

        let balanced = PrivacyPreset::Balanced.config(&entities);
        assert_eq!(balanced.inline_policy, InlinePolicy::Strict);
        assert!(balanced.entity_map.is_some());
        assert!(!PrivacyPreset::Balanced.grandfathers());

        let strict = PrivacyPreset::Strict.config(&entities);
        assert_eq!(strict.inline_policy, InlinePolicy::Strict);
        assert!(strict.entity_map.is_none());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = DeploymentStage::ladder()
            .iter()
            .map(|s| s.label())
            .collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
