//! The `CookieStore` API analog: structured, promise-based cookie access.
//!
//! The paper (§2.3, §5.2) measures this newer API separately from
//! `document.cookie` and finds it on only 2.8% of sites, dominated by two
//! cookies (`_awl`, `keep_alive`). The simulator exposes the same four
//! operations the paper's extension wraps: `get`, `getAll`, `set`,
//! `delete`. "Promises" are modelled by the event loop in `cg-script`
//! scheduling the callback as a microtask; this module only provides the
//! synchronous storage semantics.

use crate::cookie::Cookie;
use crate::jar::{CookieJar, SetCookieError};
use cg_http::SameSite;
use cg_url::Url;
use serde::{Deserialize, Serialize};

/// The structured cookie object `cookieStore.get`/`getAll` resolve with —
/// a mirror of the web platform's `CookieListItem`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieListItem {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain, or `None` for host-only cookies (matching the web API,
    /// which reports `null`).
    pub domain: Option<String>,
    /// Path.
    pub path: String,
    /// Expiry in unix ms, `None` for session cookies.
    pub expires: Option<i64>,
    /// Whether the cookie is `Secure`.
    pub secure: bool,
    /// `SameSite`, defaulting to `Strict` like the real API reports.
    pub same_site: Option<SameSite>,
}

impl CookieListItem {
    fn from_cookie(c: &Cookie) -> CookieListItem {
        CookieListItem {
            name: c.name.clone(),
            value: c.value.clone(),
            domain: if c.host_only {
                None
            } else {
                Some(c.domain.clone())
            },
            path: c.path.clone(),
            expires: c.expires_ms,
            secure: c.secure,
            same_site: c.same_site,
        }
    }
}

/// Options accepted by `cookieStore.set` (the dictionary form).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetOptions {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Optional domain (eTLD+1-scoped sharing).
    pub domain: Option<String>,
    /// Optional path (defaults to `/` — note: *not* the document default
    /// path; the CookieStore spec always defaults to `/`).
    pub path: Option<String>,
    /// Optional expiry, unix ms.
    pub expires: Option<i64>,
    /// Optional SameSite.
    pub same_site: Option<SameSite>,
}

/// A thin facade over [`CookieJar`] implementing CookieStore semantics.
///
/// The store requires a secure context (https), like the real API.
pub struct CookieStore<'a> {
    jar: &'a mut CookieJar,
    document_url: Url,
}

impl<'a> CookieStore<'a> {
    /// Binds the store to a jar and a document. Returns `None` when the
    /// document is not a secure context, mirroring the API's availability.
    pub fn open(jar: &'a mut CookieJar, document_url: &Url) -> Option<CookieStore<'a>> {
        if document_url.scheme != "https" {
            return None;
        }
        Some(CookieStore {
            jar,
            document_url: document_url.clone(),
        })
    }

    /// `cookieStore.get(name)` — the first matching cookie.
    pub fn get(&self, name: &str, now_ms: i64) -> Option<CookieListItem> {
        self.jar
            .cookies_for_document(&self.document_url, now_ms)
            .iter()
            .find(|c| c.name == name)
            .map(CookieListItem::from_cookie)
    }

    /// `cookieStore.getAll()` — every script-visible cookie, structured.
    pub fn get_all(&self, now_ms: i64) -> Vec<CookieListItem> {
        self.jar
            .cookies_for_document(&self.document_url, now_ms)
            .iter()
            .map(CookieListItem::from_cookie)
            .collect()
    }

    /// `cookieStore.set(options)` (or the two-argument shorthand).
    pub fn set(&mut self, opts: &SetOptions, now_ms: i64) -> Result<(), SetCookieError> {
        let mut raw = format!("{}={}", opts.name, opts.value);
        if let Some(d) = &opts.domain {
            raw.push_str("; Domain=");
            raw.push_str(d);
        }
        // CookieStore defaults the path to "/" (unlike document.cookie).
        raw.push_str("; Path=");
        raw.push_str(opts.path.as_deref().unwrap_or("/"));
        if let Some(e) = opts.expires {
            raw.push_str(&format!("; Expires=@{e}"));
        }
        if let Some(ss) = opts.same_site {
            raw.push_str(&format!("; SameSite={ss}"));
        }
        self.jar
            .set_document_cookie(&raw, &self.document_url, now_ms)
            .map(|_| ())
    }

    /// `cookieStore.delete(name)`.
    pub fn delete(&mut self, name: &str, now_ms: i64) -> bool {
        self.jar.delete(name, &self.document_url, now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn requires_secure_context() {
        let mut jar = CookieJar::new();
        assert!(CookieStore::open(&mut jar, &url("http://site.com/")).is_none());
        assert!(CookieStore::open(&mut jar, &url("https://site.com/")).is_some());
    }

    #[test]
    fn set_get_round_trip() {
        let mut jar = CookieJar::new();
        let u = url("https://shop.example/");
        let mut store = CookieStore::open(&mut jar, &u).unwrap();
        store
            .set(
                &SetOptions {
                    name: "keep_alive".into(),
                    value: "tab1:1".into(),
                    expires: Some(60_000),
                    ..SetOptions::default()
                },
                0,
            )
            .unwrap();
        let item = store.get("keep_alive", 1).unwrap();
        assert_eq!(item.value, "tab1:1");
        assert_eq!(item.path, "/");
        assert_eq!(item.expires, Some(60_000));
        assert_eq!(item.domain, None); // host-only reports null domain
    }

    #[test]
    fn get_all_returns_structured_list() {
        let mut jar = CookieJar::new();
        let u = url("https://site.com/");
        jar.set_document_cookie("_awl=1.1746838827.5-abc", &u, 0)
            .unwrap();
        jar.set_document_cookie("other=x", &u, 1).unwrap();
        let store = CookieStore::open(&mut jar, &u).unwrap();
        let all = store.get_all(2);
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|c| c.name == "_awl"));
    }

    #[test]
    fn delete_expires_cookie() {
        let mut jar = CookieJar::new();
        let u = url("https://site.com/");
        jar.set_document_cookie("gone=1", &u, 0).unwrap();
        let mut store = CookieStore::open(&mut jar, &u).unwrap();
        assert!(store.delete("gone", 1));
        assert!(store.get("gone", 2).is_none());
    }

    #[test]
    fn domain_scoped_set() {
        let mut jar = CookieJar::new();
        let u = url("https://www.site.com/");
        let mut store = CookieStore::open(&mut jar, &u).unwrap();
        store
            .set(
                &SetOptions {
                    name: "shared".into(),
                    value: "1".into(),
                    domain: Some("site.com".into()),
                    ..SetOptions::default()
                },
                0,
            )
            .unwrap();
        let item = store.get("shared", 1).unwrap();
        assert_eq!(item.domain.as_deref(), Some("site.com"));
        // Visible from a sibling subdomain too.
        assert_eq!(
            jar.document_cookie(&url("https://api.site.com/"), 1),
            "shared=1"
        );
    }

    #[test]
    fn get_missing_returns_none() {
        let mut jar = CookieJar::new();
        let u = url("https://site.com/");
        let store = CookieStore::open(&mut jar, &u).unwrap();
        assert!(store.get("nope", 0).is_none());
    }
}
