//! The cookie jar proper: storage, matching, and the `document.cookie`
//! string interface.
//!
//! # Storage layout
//!
//! The jar is *domain-sharded*: cookies live in per-eTLD+1 buckets keyed
//! by interned [`DomainId`]s (see [`cg_url::intern()`]). Every lookup —
//! `document.cookie`, `Cookie:` header assembly, deletion, eviction —
//! resolves the request host to its shard id once (memoized process-wide)
//! and then touches only that bucket, never the whole jar. This is sound
//! because RFC 6265 domain-matching can only relate hosts within one
//! registrable domain: a cookie's `Domain` attribute must domain-match
//! the setting host, so cookie and every host it can match share an
//! eTLD+1. (The one historical exception — a cookie whose `Domain` *is*
//! a public suffix, settable only by that suffix itself — stays in the
//! suffix's own shard and no longer leaks to every site under it.)
//!
//! Insertion order is preserved via per-cookie sequence numbers so that
//! iteration, serialization, and eviction tie-breaks behave exactly like
//! the historical flat-`Vec` jar (kept as [`crate::flat::FlatJar`] for
//! equivalence tests and benchmarks).

use crate::changes::{ChangeCause, CookieChange};
use crate::cookie::{default_path, Cookie};
use cg_http::{parse_set_cookie, SetCookie};
use cg_url::intern::{self, DomainId};
use cg_url::{psl, Url};
use serde::{de, Content, DeError, Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Per-domain cookie cap, matching Chromium's 180-per-eTLD+1 limit.
/// When exceeded, the oldest cookies for that domain are evicted.
pub(crate) const MAX_COOKIES_PER_DOMAIN: usize = 180;

/// Why a `Set-Cookie` (header or JS write) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetCookieError {
    /// The string did not parse as a cookie at all.
    Unparseable,
    /// The `Domain` attribute does not domain-match the setting host.
    DomainMismatch,
    /// The `Domain` attribute is a public suffix (`Domain=com`).
    PublicSuffixDomain,
    /// A script attempted to create an `HttpOnly` cookie (forbidden for
    /// non-HTTP APIs, RFC 6265 §5.3 step 10).
    HttpOnlyFromScript,
    /// A script attempted to overwrite an existing `HttpOnly` cookie
    /// (RFC 6265 §5.3 step 11.2).
    OverwritesHttpOnly,
    /// A `Secure` cookie cannot be set from an insecure context.
    SecureFromInsecure,
    /// A `__Secure-`/`__Host-` prefixed name whose attributes violate
    /// the prefix contract (RFC 6265bis §4.1.3).
    InvalidPrefix,
}

impl fmt::Display for SetCookieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetCookieError::Unparseable => "unparseable cookie string",
            SetCookieError::DomainMismatch => "Domain attribute does not match setting host",
            SetCookieError::PublicSuffixDomain => "Domain attribute is a public suffix",
            SetCookieError::HttpOnlyFromScript => "scripts cannot create HttpOnly cookies",
            SetCookieError::OverwritesHttpOnly => "scripts cannot overwrite HttpOnly cookies",
            SetCookieError::SecureFromInsecure => "Secure cookie from insecure context",
            SetCookieError::InvalidPrefix => "cookie name prefix contract violated",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SetCookieError {}

/// A cookie plus the jar-local insertion sequence that keeps iteration
/// and serialization deterministic across the sharded layout.
#[derive(Debug, Clone)]
struct StoredCookie {
    seq: u64,
    cookie: Cookie,
}

/// A host's eTLD+1 shard binding, resolved once and reused across a
/// burst of operations for the same document.
///
/// Every per-operation entry point re-resolves `host → DomainId`
/// through the process-wide memo table (a normalize + lock + hash per
/// call). A burst of cookie operations from one page always targets the
/// same host, so the access layer (`cookieguard_core`'s `GuardedJar`)
/// resolves the pin once per page and calls the `*_pinned` variants.
#[derive(Debug, Clone)]
pub struct ShardPin {
    host: String,
    id: DomainId,
}

impl ShardPin {
    /// Resolves the shard pin for `host` (the document's host).
    pub fn for_host(host: &str) -> ShardPin {
        ShardPin {
            host: host.to_ascii_lowercase(),
            id: intern::shard_id_for_host(host),
        }
    }

    /// The pinned host (normalized to lowercase).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The shard id this cookie's stored domain lives under: the pinned
    /// id when the domain is the pinned host itself (host-only cookies,
    /// the common case), otherwise resolved fresh. A `Domain` attribute
    /// always shares the host's registrable domain (validation enforces
    /// it), but hosts *without* a registrable domain shard by exact
    /// host, so a differing domain string must be re-resolved.
    fn shard_for_domain(&self, domain: &str) -> DomainId {
        if domain.eq_ignore_ascii_case(&self.host) {
            self.id
        } else {
            intern::shard_id_for_host(domain)
        }
    }
}

/// The browser's cookie store for one profile, sharded by eTLD+1.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    shards: HashMap<DomainId, Vec<StoredCookie>>,
    next_seq: u64,
    total: usize,
    changes: Vec<CookieChange>,
}

impl CookieJar {
    /// An empty jar.
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    /// Number of stored (possibly expired, not yet purged) cookies.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the jar holds nothing.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of non-empty eTLD+1 shards (capacity planning, tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Iterates over all stored cookies in insertion order (tests and
    /// forensics; not a hot path — lookups go through the shard index).
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        let mut all: Vec<&StoredCookie> = self.shards.values().flatten().collect();
        all.sort_by_key(|s| s.seq);
        all.into_iter().map(|s| &s.cookie)
    }

    /// The shard bucket a host's cookies live in, if any.
    fn shard_for_host(&self, host: &str) -> Option<&Vec<StoredCookie>> {
        self.shards.get(&intern::shard_id_for_host(host))
    }

    // ------------------------------------------------------------------
    // Change log (CookieStore `change` event substrate)
    // ------------------------------------------------------------------

    /// Total number of change records so far. Use as a cursor for
    /// [`CookieJar::changes_since`].
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// All change records.
    pub fn changes(&self) -> &[CookieChange] {
        &self.changes
    }

    /// Change records appended since `cursor` (a previous
    /// [`CookieJar::change_count`] value). Out-of-range cursors yield an
    /// empty slice.
    pub fn changes_since(&self, cursor: usize) -> &[CookieChange] {
        self.changes.get(cursor..).unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Storage
    // ------------------------------------------------------------------

    /// Stores a cookie arriving on an HTTP response for `url` (the analog
    /// of processing a `Set-Cookie` header).
    ///
    /// Prefer mediating HTTP cookies through the access layer
    /// (`cookieguard_core::GuardedJar::apply_set_cookie_headers`), which
    /// also handles guard bookkeeping and instrumentation; this raw
    /// entry point remains for fixtures and storage-level tests.
    #[doc(hidden)]
    pub fn set_from_header(
        &mut self,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
    ) -> Result<(), SetCookieError> {
        self.store(sc, url, now_ms, true, None).map(|_| ())
    }

    /// [`CookieJar::set_from_header`] with a pre-resolved [`ShardPin`]
    /// for `url`'s host (the access layer's per-page HTTP path).
    #[doc(hidden)]
    pub fn set_from_header_pinned(
        &mut self,
        pin: &ShardPin,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
    ) -> Result<(), SetCookieError> {
        self.store(sc, url, now_ms, true, Some(pin)).map(|_| ())
    }

    /// Stores a cookie written through `document.cookie = "…"` or
    /// `cookieStore.set(…)` on the document at `url`.
    ///
    /// Returns the stored cookie on success so instrumentation can log the
    /// exact stored form.
    ///
    /// This is the *storage* step only: script-facing writes in the
    /// browser must run through `cookieguard_core::GuardedJar`, the one
    /// enforcement point that also consults the guard and emits the
    /// instrument event. Direct use is for jar fixtures and
    /// non-instrumented analytical workloads (e.g. partitioning
    /// baselines).
    pub fn set_document_cookie(
        &mut self,
        raw: &str,
        url: &Url,
        now_ms: i64,
    ) -> Result<Cookie, SetCookieError> {
        self.set_document_cookie_impl(raw, url, now_ms, None)
    }

    /// [`CookieJar::set_document_cookie`] with a pre-resolved
    /// [`ShardPin`] for `url`'s host (burst path; see [`ShardPin`]).
    #[doc(hidden)]
    pub fn set_document_cookie_pinned(
        &mut self,
        pin: &ShardPin,
        raw: &str,
        url: &Url,
        now_ms: i64,
    ) -> Result<Cookie, SetCookieError> {
        self.set_document_cookie_impl(raw, url, now_ms, Some(pin))
    }

    /// [`CookieJar::set_document_cookie_pinned`] for a `Set-Cookie`
    /// string the caller already parsed — the access layer parses once
    /// for write classification and hands the result straight down.
    #[doc(hidden)]
    pub fn set_parsed_document_cookie_pinned(
        &mut self,
        pin: &ShardPin,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
    ) -> Result<Cookie, SetCookieError> {
        self.store_document_cookie(sc, url, now_ms, Some(pin))
    }

    fn set_document_cookie_impl(
        &mut self,
        raw: &str,
        url: &Url,
        now_ms: i64,
        pin: Option<&ShardPin>,
    ) -> Result<Cookie, SetCookieError> {
        let sc = parse_set_cookie(raw).ok_or(SetCookieError::Unparseable)?;
        self.store_document_cookie(&sc, url, now_ms, pin)
    }

    fn store_document_cookie(
        &mut self,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
        pin: Option<&ShardPin>,
    ) -> Result<Cookie, SetCookieError> {
        self.store(sc, url, now_ms, false, pin)
    }

    fn store(
        &mut self,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
        http_api: bool,
        pin: Option<&ShardPin>,
    ) -> Result<Cookie, SetCookieError> {
        let host = url.host_str();
        validate_set(sc, url, &host, http_api)?;
        let cookie = Cookie::from_set_cookie(sc, &host, &default_path(&url.path), now_ms);

        // The cookie's domain and the setting host share an eTLD+1 (the
        // Domain checks above guarantee it), so the shard id is computed
        // from the stored domain.
        let shard_id = match pin {
            Some(p) => p.shard_for_domain(&cookie.domain),
            None => intern::shard_id_for_host(&cookie.domain),
        };
        let shard = self.shards.entry(shard_id).or_default();

        // Replace any cookie with the same (name, domain, path) identity.
        if let Some(existing) = shard.iter_mut().find(|s| {
            s.cookie.name == cookie.name
                && s.cookie.domain == cookie.domain
                && s.cookie.path == cookie.path
        }) {
            if existing.cookie.http_only && !http_api {
                return Err(SetCookieError::OverwritesHttpOnly);
            }
            // Creation time is preserved on replacement (RFC 6265 §5.3.11.3).
            let created = existing.cookie.created_at_ms;
            existing.cookie = cookie;
            existing.cookie.created_at_ms = created;
            let stored = existing.cookie.clone();
            self.changes.push(CookieChange {
                name: stored.name.clone(),
                value: stored.value.clone(),
                cause: ChangeCause::Replaced,
                http_only: stored.http_only,
                at_ms: now_ms,
            });
            Ok(stored)
        } else {
            self.changes.push(CookieChange {
                name: cookie.name.clone(),
                value: cookie.value.clone(),
                cause: ChangeCause::Created,
                http_only: cookie.http_only,
                at_ms: now_ms,
            });
            let stored = cookie.clone();
            let seq = self.next_seq;
            self.next_seq += 1;
            shard.push(StoredCookie { seq, cookie });
            self.total += 1;
            self.evict_if_needed(shard_id, now_ms);
            Ok(stored)
        }
    }

    /// Expires a cookie immediately (what `cookieStore.delete` and the
    /// `expires-in-the-past` JS idiom do). Returns true when a visible
    /// cookie was removed.
    ///
    /// Script-facing deletions in the browser run through
    /// `cookieguard_core::GuardedJar::delete`, which consults the guard
    /// and emits the instrument event; this raw entry point remains for
    /// fixtures and storage-level tests.
    #[doc(hidden)]
    pub fn delete(&mut self, name: &str, url: &Url, now_ms: i64) -> bool {
        let shard_id = intern::shard_id_for_host(&url.host_str());
        self.delete_in_shard(shard_id, name, url, now_ms)
    }

    /// [`CookieJar::delete`] with a pre-resolved [`ShardPin`] for
    /// `url`'s host (burst path; see [`ShardPin`]).
    #[doc(hidden)]
    pub fn delete_pinned(&mut self, pin: &ShardPin, name: &str, url: &Url, now_ms: i64) -> bool {
        self.delete_in_shard(pin.id, name, url, now_ms)
    }

    fn delete_in_shard(&mut self, shard_id: DomainId, name: &str, url: &Url, now_ms: i64) -> bool {
        let host = url.host_str();
        let Some(shard) = self.shards.get_mut(&shard_id) else {
            return false;
        };
        let before = shard.len();
        let changes = &mut self.changes;
        shard.retain(|s| {
            let c = &s.cookie;
            let hit = c.name == name
                && c.domain_matches(&host)
                && c.path_matches(&url.path)
                && !c.is_expired(now_ms);
            if hit {
                changes.push(CookieChange {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    cause: ChangeCause::Deleted,
                    http_only: c.http_only,
                    at_ms: now_ms,
                });
            }
            !hit
        });
        let removed = before - shard.len();
        if shard.is_empty() {
            self.shards.remove(&shard_id);
        }
        self.total -= removed;
        removed > 0
    }

    /// Drops expired cookies.
    pub fn purge_expired(&mut self, now_ms: i64) {
        let changes = &mut self.changes;
        let mut removed = 0usize;
        for shard in self.shards.values_mut() {
            let before = shard.len();
            shard.retain(|s| {
                if s.cookie.is_expired(now_ms) {
                    changes.push(CookieChange {
                        name: s.cookie.name.clone(),
                        value: s.cookie.value.clone(),
                        cause: ChangeCause::Expired,
                        http_only: s.cookie.http_only,
                        at_ms: now_ms,
                    });
                    false
                } else {
                    true
                }
            });
            removed += before - shard.len();
        }
        self.shards.retain(|_, shard| !shard.is_empty());
        self.total -= removed;
    }

    fn evict_if_needed(&mut self, shard_id: DomainId, now_ms: i64) {
        let Some(shard) = self.shards.get_mut(&shard_id) else {
            return;
        };
        // The shard *is* the per-eTLD+1 population, so the cap check is a
        // length read instead of the flat jar's full-scan recount.
        if shard.len() > MAX_COOKIES_PER_DOMAIN {
            // Evict the oldest cookie for this registrable domain
            // (creation time, then insertion order — the flat jar's
            // first-minimal semantics).
            if let Some(idx) = shard
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.cookie.created_at_ms, s.seq))
                .map(|(idx, _)| idx)
            {
                let evicted = shard.remove(idx);
                self.total -= 1;
                self.changes.push(CookieChange {
                    name: evicted.cookie.name,
                    value: evicted.cookie.value,
                    cause: ChangeCause::Evicted,
                    http_only: evicted.cookie.http_only,
                    at_ms: now_ms,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Retrieval
    // ------------------------------------------------------------------

    /// The cookies a script at `url`'s document can observe: domain- and
    /// path-matching, unexpired, not `HttpOnly`, and `Secure` only when
    /// the document is https. This is the raw jar view that
    /// `document.cookie` serializes and that CookieGuard filters.
    ///
    /// Only the host's eTLD+1 shard is scanned; the rest of the jar is
    /// never touched.
    pub fn cookies_for_document(&self, url: &Url, now_ms: i64) -> Vec<Cookie> {
        self.document_view(self.shard_for_host(&url.host_str()), url, now_ms)
    }

    /// [`CookieJar::cookies_for_document`] with a pre-resolved
    /// [`ShardPin`] for `url`'s host (burst path; see [`ShardPin`]).
    pub fn cookies_for_document_pinned(
        &self,
        pin: &ShardPin,
        url: &Url,
        now_ms: i64,
    ) -> Vec<Cookie> {
        self.document_view(self.shards.get(&pin.id), url, now_ms)
    }

    fn document_view(
        &self,
        shard: Option<&Vec<StoredCookie>>,
        url: &Url,
        now_ms: i64,
    ) -> Vec<Cookie> {
        let host = url.host_str();
        let mut matching: Vec<Cookie> = shard
            .map(|shard| {
                shard
                    .iter()
                    .filter(|s| {
                        let c = &s.cookie;
                        !c.is_expired(now_ms)
                            && !c.http_only
                            && c.domain_matches(&host)
                            && c.path_matches(&url.path)
                            && (!c.secure || url.scheme == "https")
                    })
                    .map(|s| s.cookie.clone())
                    .collect()
            })
            .unwrap_or_default();
        sort_for_serialization(&mut matching);
        matching
    }

    /// The `document.cookie` getter: `"a=1; b=2"`.
    pub fn document_cookie(&self, url: &Url, now_ms: i64) -> String {
        self.cookies_for_document(url, now_ms)
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The `Cookie:` header value attached to an HTTP request for `url`.
    /// Unlike the document view, `HttpOnly` cookies are included — they
    /// are invisible to scripts, not to the network.
    pub fn cookie_header_for_request(&self, url: &Url, now_ms: i64) -> String {
        let host = url.host_str();
        let mut matching: Vec<Cookie> = self
            .shard_for_host(&host)
            .map(|shard| {
                shard
                    .iter()
                    .filter(|s| {
                        let c = &s.cookie;
                        !c.is_expired(now_ms)
                            && c.domain_matches(&host)
                            && c.path_matches(&url.path)
                            && (!c.secure || url.scheme == "https")
                    })
                    .map(|s| s.cookie.clone())
                    .collect()
            })
            .unwrap_or_default();
        sort_for_serialization(&mut matching);
        matching
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The `Cookie:` header for a *subresource* request to `url` made
    /// by a page whose top-level site is `top_level_site`, with RFC
    /// 6265bis `SameSite` enforcement:
    ///
    /// * same-site requests (destination's registrable domain equals
    ///   the top-level site) attach everything, like
    ///   [`CookieJar::cookie_header_for_request`];
    /// * cross-site requests attach only `SameSite=None; Secure`
    ///   cookies. Unspecified `SameSite` defaults to `Lax` (the modern
    ///   browser default), and `SameSite=None` without `Secure` is
    ///   treated as `Lax` — both therefore stay home.
    pub fn cookie_header_for_subresource(
        &self,
        url: &Url,
        top_level_site: &str,
        now_ms: i64,
    ) -> String {
        let same_site = url
            .registrable_domain()
            .is_some_and(|d| d.eq_ignore_ascii_case(top_level_site));
        if same_site {
            return self.cookie_header_for_request(url, now_ms);
        }
        let host = url.host_str();
        let mut matching: Vec<Cookie> = self
            .shard_for_host(&host)
            .map(|shard| {
                shard
                    .iter()
                    .filter(|s| {
                        let c = &s.cookie;
                        !c.is_expired(now_ms)
                            && c.domain_matches(&host)
                            && c.path_matches(&url.path)
                            && url.scheme == "https"
                            && c.same_site == Some(cg_http::SameSite::None)
                            && c.secure
                    })
                    .map(|s| s.cookie.clone())
                    .collect()
            })
            .unwrap_or_default();
        sort_for_serialization(&mut matching);
        matching
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

// ---------------------------------------------------------------------
// Serde: the wire format stays the flat `{cookies, changes}` shape the
// pre-sharding jar used, so persisted jars round-trip across versions.
// ---------------------------------------------------------------------

impl Serialize for CookieJar {
    fn to_content(&self) -> Content {
        let cookies: Vec<&Cookie> = self.iter().collect();
        Content::Map(vec![
            (Content::Str("cookies".to_string()), cookies.to_content()),
            (
                Content::Str("changes".to_string()),
                self.changes.to_content(),
            ),
        ])
    }
}

impl<'de> Deserialize<'de> for CookieJar {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let cookies: Vec<Cookie> = match content.get("cookies") {
            Some(v) => Vec::from_content(v)?,
            None => return Err(de::Error::custom("missing field `cookies`")),
        };
        let changes: Vec<CookieChange> = match content.get("changes") {
            Some(v) => Vec::from_content(v)?,
            None => Vec::new(),
        };
        let mut jar = CookieJar {
            changes,
            ..CookieJar::default()
        };
        for cookie in cookies {
            let shard_id = intern::shard_id_for_host(&cookie.domain);
            let seq = jar.next_seq;
            jar.next_seq += 1;
            jar.shards
                .entry(shard_id)
                .or_default()
                .push(StoredCookie { seq, cookie });
            jar.total += 1;
        }
        Ok(jar)
    }
}

/// RFC 6265 / 6265bis storage validation shared by [`CookieJar`] and
/// [`crate::flat::FlatJar`]: HttpOnly-from-script, Secure-context,
/// `__Secure-`/`__Host-` name-prefix contracts (checked
/// case-insensitively, as modern browsers do), and `Domain`-attribute
/// public-suffix / domain-match rules.
pub(crate) fn validate_set(
    sc: &SetCookie,
    url: &Url,
    host: &str,
    http_api: bool,
) -> Result<(), SetCookieError> {
    if !http_api && sc.http_only {
        return Err(SetCookieError::HttpOnlyFromScript);
    }
    if sc.secure && url.scheme != "https" {
        return Err(SetCookieError::SecureFromInsecure);
    }
    let lower_name = sc.name.to_ascii_lowercase();
    if lower_name.starts_with("__secure-") && !(sc.secure && url.scheme == "https") {
        return Err(SetCookieError::InvalidPrefix);
    }
    if lower_name.starts_with("__host-") {
        let path_ok = sc.path.as_deref() == Some("/");
        if !(sc.secure && url.scheme == "https" && sc.domain.is_none() && path_ok) {
            return Err(SetCookieError::InvalidPrefix);
        }
    }
    if let Some(d) = &sc.domain {
        if psl::is_public_suffix(d) && !host.eq_ignore_ascii_case(d) {
            return Err(SetCookieError::PublicSuffixDomain);
        }
        if !cg_url::host::domain_match(host, d) {
            return Err(SetCookieError::DomainMismatch);
        }
    }
    Ok(())
}

/// RFC 6265 §5.4 step 2: longer paths first; among equal-length paths,
/// earlier creation times first.
pub(crate) fn sort_for_serialization(cookies: &mut [Cookie]) {
    cookies.sort_by(|a, b| {
        b.path
            .len()
            .cmp(&a.path.len())
            .then(a.created_at_ms.cmp(&b.created_at_ms))
            .then(a.name.cmp(&b.name))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn jar_with(raws: &[&str], at: &str) -> CookieJar {
        let mut jar = CookieJar::new();
        let u = url(at);
        for (i, raw) in raws.iter().enumerate() {
            jar.set_document_cookie(raw, &u, i as i64).unwrap();
        }
        jar
    }

    #[test]
    fn document_cookie_serializes_in_order() {
        let jar = jar_with(&["a=1", "b=2", "c=3"], "https://www.site.com/");
        assert_eq!(
            jar.document_cookie(&url("https://www.site.com/"), 10),
            "a=1; b=2; c=3"
        );
    }

    #[test]
    fn longer_path_sorts_first() {
        let u = url("https://site.com/a/b/page");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("root=1; Path=/", &u, 0).unwrap();
        jar.set_document_cookie("deep=2; Path=/a/b", &u, 1).unwrap();
        assert_eq!(jar.document_cookie(&u, 10), "deep=2; root=1");
    }

    #[test]
    fn http_only_invisible_to_scripts_but_sent_on_requests() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "");
        assert_eq!(jar.cookie_header_for_request(&u, 1), "sid=secret");
    }

    #[test]
    fn script_cannot_create_or_overwrite_httponly() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("x=1; HttpOnly", &u, 0).unwrap_err(),
            SetCookieError::HttpOnlyFromScript
        );
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(
            jar.set_document_cookie("sid=stolen", &u, 1).unwrap_err(),
            SetCookieError::OverwritesHttpOnly
        );
        assert_eq!(jar.cookie_header_for_request(&u, 2), "sid=secret");
    }

    #[test]
    fn domain_attribute_validation() {
        let u = url("https://www.site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("a=1; Domain=other.com", &u, 0)
                .unwrap_err(),
            SetCookieError::DomainMismatch
        );
        assert_eq!(
            jar.set_document_cookie("a=1; Domain=com", &u, 0)
                .unwrap_err(),
            SetCookieError::PublicSuffixDomain
        );
        jar.set_document_cookie("a=1; Domain=site.com", &u, 0)
            .unwrap();
        assert_eq!(jar.document_cookie(&url("https://api.site.com/"), 1), "a=1");
    }

    #[test]
    fn secure_requires_https() {
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("a=1; Secure", &url("http://site.com/"), 0)
                .unwrap_err(),
            SetCookieError::SecureFromInsecure
        );
        jar.set_document_cookie("a=1; Secure", &url("https://site.com/"), 0)
            .unwrap();
        assert_eq!(jar.document_cookie(&url("http://site.com/"), 1), "");
        assert_eq!(jar.document_cookie(&url("https://site.com/"), 1), "a=1");
    }

    #[test]
    fn delete_removes_visible_cookie() {
        let u = url("https://site.com/");
        let mut jar = jar_with(&["a=1", "b=2"], "https://site.com/");
        assert!(jar.delete("a", &u, 10));
        assert!(!jar.delete("a", &u, 10));
        assert_eq!(jar.document_cookie(&u, 10), "b=2");
    }

    #[test]
    fn replacement_preserves_creation_time() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 5).unwrap();
        jar.set_document_cookie("b=2", &u, 6).unwrap();
        jar.set_document_cookie("a=99", &u, 100).unwrap();
        // "a" keeps its original creation time, so it still sorts first.
        assert_eq!(jar.document_cookie(&u, 200), "a=99; b=2");
    }

    #[test]
    fn eviction_caps_per_domain() {
        let u = url("https://big.com/");
        let mut jar = CookieJar::new();
        for i in 0..(MAX_COOKIES_PER_DOMAIN + 20) {
            jar.set_document_cookie(&format!("c{i}=v"), &u, i as i64)
                .unwrap();
        }
        assert!(jar.len() <= MAX_COOKIES_PER_DOMAIN + 1);
        // The earliest cookies were evicted.
        assert!(!jar.document_cookie(&u, 0).contains("c0=v"));
    }

    #[test]
    fn purge_expired_drops_cookies() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1; Max-Age=1", &u, 0).unwrap();
        jar.set_document_cookie("b=2", &u, 0).unwrap();
        jar.purge_expired(2_000);
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn subdomain_cannot_read_host_only_cookie_of_parent() {
        let mut jar = CookieJar::new();
        jar.set_document_cookie("ho=1", &url("https://site.com/"), 0)
            .unwrap();
        assert_eq!(jar.document_cookie(&url("https://sub.site.com/"), 1), "");
    }

    // ------------------------------------------------------------------
    // RFC 6265bis: name prefixes and SameSite
    // ------------------------------------------------------------------

    #[test]
    fn secure_prefix_requires_secure_attribute() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("__Secure-id=1", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        jar.set_document_cookie("__Secure-id=1; Secure", &u, 0)
            .unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "__Secure-id=1");
        // Case-insensitive prefix check, like modern browsers.
        assert_eq!(
            jar.set_document_cookie("__secure-other=1", &u, 0)
                .unwrap_err(),
            SetCookieError::InvalidPrefix
        );
    }

    #[test]
    fn host_prefix_contract() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        // Missing Secure.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Path=/", &u, 0)
                .unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // Missing Path=/.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Secure", &u, 0)
                .unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // Domain attribute forbidden.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Secure; Path=/; Domain=site.com", &u, 0)
                .unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // The conforming form stores (and is host-only).
        jar.set_document_cookie("__Host-sid=1; Secure; Path=/", &u, 0)
            .unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "__Host-sid=1");
        assert_eq!(jar.document_cookie(&url("https://sub.site.com/"), 1), "");
    }

    #[test]
    fn host_prefix_rejected_on_http() {
        let u = url("http://site.com/");
        let mut jar = CookieJar::new();
        // On http the Secure attribute itself is rejected first; either
        // way the cookie must not store.
        assert!(jar
            .set_document_cookie("__Host-sid=1; Secure; Path=/", &u, 0)
            .is_err());
        assert!(jar.is_empty());
    }

    #[test]
    fn prefixed_rejections_emit_no_change() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let _ = jar.set_document_cookie("__Host-x=1", &u, 0);
        let _ = jar.set_document_cookie("__Secure-y=1", &u, 0);
        assert_eq!(jar.change_count(), 0);
    }

    #[test]
    fn same_site_subresource_attachment() {
        let u = url("https://tracker.com/");
        let mut jar = CookieJar::new();
        // Four flavours on the tracker's own domain.
        let hdr = |raw: &str| cg_http::parse_set_cookie(raw).unwrap();
        jar.set_from_header(&hdr("none_ok=1; SameSite=None; Secure"), &u, 0)
            .unwrap();
        jar.set_from_header(&hdr("none_insecure=1; SameSite=None"), &u, 0)
            .unwrap();
        jar.set_from_header(&hdr("lax=1; SameSite=Lax"), &u, 0)
            .unwrap();
        jar.set_from_header(&hdr("unspecified=1"), &u, 0).unwrap();

        // Cross-site: a page on site.com requests tracker.com.
        let cross = jar.cookie_header_for_subresource(&u, "site.com", 1);
        assert_eq!(
            cross, "none_ok=1",
            "only SameSite=None; Secure travels cross-site"
        );

        // Same-site: a tracker.com page requesting tracker.com gets all.
        let same = jar.cookie_header_for_subresource(&u, "tracker.com", 1);
        for name in ["none_ok", "none_insecure", "lax", "unspecified"] {
            assert!(
                same.contains(name),
                "{name} missing from same-site header: {same}"
            );
        }
    }

    #[test]
    fn same_site_strict_never_travels_cross_site() {
        let u = url("https://idp.com/");
        let mut jar = CookieJar::new();
        let sc =
            cg_http::parse_set_cookie("session=tok; SameSite=Strict; Secure; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.cookie_header_for_subresource(&u, "shop.com", 1), "");
        assert_eq!(
            jar.cookie_header_for_subresource(&u, "idp.com", 1),
            "session=tok"
        );
    }

    // ------------------------------------------------------------------
    // Change log
    // ------------------------------------------------------------------

    #[test]
    fn change_log_records_create_replace_delete() {
        use crate::changes::ChangeCause;
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 0).unwrap();
        jar.set_document_cookie("a=2", &u, 1).unwrap();
        jar.delete("a", &u, 2);
        let causes: Vec<ChangeCause> = jar.changes().iter().map(|c| c.cause).collect();
        assert_eq!(
            causes,
            vec![
                ChangeCause::Created,
                ChangeCause::Replaced,
                ChangeCause::Deleted
            ]
        );
        assert_eq!(jar.changes()[1].value, "2");
        assert!(jar.changes()[2].is_removal());
    }

    #[test]
    fn change_cursor_yields_only_new_records() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 0).unwrap();
        let cursor = jar.change_count();
        assert!(jar.changes_since(cursor).is_empty());
        jar.set_document_cookie("b=2", &u, 1).unwrap();
        let fresh = jar.changes_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].name, "b");
        // Out-of-range cursors are harmless.
        assert!(jar.changes_since(cursor + 100).is_empty());
    }

    #[test]
    fn failed_sets_emit_no_change() {
        let u = url("https://www.site.com/");
        let mut jar = CookieJar::new();
        assert!(jar
            .set_document_cookie("a=1; Domain=other.com", &u, 0)
            .is_err());
        assert!(jar.set_document_cookie("x=1; HttpOnly", &u, 0).is_err());
        assert_eq!(jar.change_count(), 0);
    }

    #[test]
    fn httponly_changes_are_flagged() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.change_count(), 1);
        assert!(jar.changes()[0].http_only);
    }

    #[test]
    fn expiry_purge_emits_expired_changes() {
        use crate::changes::ChangeCause;
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("temp=1; Max-Age=1", &u, 0).unwrap();
        jar.purge_expired(5_000);
        let last = jar.changes().last().unwrap();
        assert_eq!(last.cause, ChangeCause::Expired);
        assert_eq!(last.name, "temp");
    }

    #[test]
    fn eviction_emits_evicted_change() {
        use crate::changes::ChangeCause;
        let u = url("https://big.com/");
        let mut jar = CookieJar::new();
        for i in 0..(MAX_COOKIES_PER_DOMAIN + 1) {
            jar.set_document_cookie(&format!("c{i}=v"), &u, i as i64)
                .unwrap();
        }
        assert!(jar
            .changes()
            .iter()
            .any(|c| c.cause == ChangeCause::Evicted && c.name == "c0"));
    }

    // ------------------------------------------------------------------
    // Sharded-index behaviour
    // ------------------------------------------------------------------

    #[test]
    fn shards_group_by_etld_plus_one() {
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &url("https://www.one.com/"), 0)
            .unwrap();
        jar.set_document_cookie("b=2; Domain=one.com", &url("https://api.one.com/"), 1)
            .unwrap();
        jar.set_document_cookie("c=3", &url("https://two.com/"), 2)
            .unwrap();
        jar.set_document_cookie("d=4", &url("https://shop.example.co.uk/"), 3)
            .unwrap();
        assert_eq!(jar.len(), 4);
        assert_eq!(jar.shard_count(), 3, "one.com hosts must share a shard");
    }

    #[test]
    fn iter_preserves_insertion_order_across_shards() {
        let mut jar = CookieJar::new();
        let hosts = [
            "https://z-last.com/",
            "https://a-first.com/",
            "https://m-mid.net/",
        ];
        for (i, h) in hosts.iter().enumerate() {
            jar.set_document_cookie(&format!("c{i}=v"), &url(h), i as i64)
                .unwrap();
        }
        let names: Vec<&str> = jar.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["c0", "c1", "c2"]);
    }

    #[test]
    fn eviction_is_per_domain_and_ordered() {
        // Fill one domain to the cap, interleaved with cookies of other
        // domains; only the full domain evicts, oldest-first.
        let big = url("https://evict-big.com/");
        let small = url("https://evict-small.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("keep=1", &small, 0).unwrap();
        for i in 0..MAX_COOKIES_PER_DOMAIN {
            jar.set_document_cookie(&format!("c{i}=v"), &big, (i + 1) as i64)
                .unwrap();
        }
        assert_eq!(
            jar.len(),
            MAX_COOKIES_PER_DOMAIN + 1,
            "cap not yet exceeded"
        );

        // The 181st cookie for big.com evicts big.com's oldest (c0), not
        // the other domain's cookie.
        jar.set_document_cookie("straw=1", &big, 9_999).unwrap();
        assert_eq!(jar.len(), MAX_COOKIES_PER_DOMAIN + 1);
        let doc = jar.document_cookie(&big, 0);
        assert!(!doc.contains("c0=v"), "oldest big.com cookie must go first");
        assert!(doc.contains("c1=v"));
        assert_eq!(
            jar.document_cookie(&small, 0),
            "keep=1",
            "other domains untouched"
        );

        // Two more: eviction continues in creation order (c1, then c2).
        jar.set_document_cookie("straw2=1", &big, 10_000).unwrap();
        jar.set_document_cookie("straw3=1", &big, 10_001).unwrap();
        let doc = jar.document_cookie(&big, 0);
        assert!(!doc.contains("c1=v") && !doc.contains("c2=v"));
        assert!(doc.contains("c3=v"));
        let evicted: Vec<&str> = jar
            .changes()
            .iter()
            .filter(|c| c.cause == ChangeCause::Evicted)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            evicted,
            vec!["c0", "c1", "c2"],
            "eviction order is oldest-first"
        );
    }

    #[test]
    fn pinned_ops_match_unpinned() {
        // The shard-pinned burst variants are pure fast paths: identical
        // results and identical jar state, including the Domain-attribute
        // case where the stored domain differs from the document host.
        let u = url("https://www.pin-site.com/a/b");
        let pin = ShardPin::for_host(&u.host_str());
        let mut pinned = CookieJar::new();
        let mut plain = CookieJar::new();
        let raws = [
            "a=1",
            "b=2; Domain=pin-site.com",
            "deep=3; Path=/a",
            "a=9", // replacement
        ];
        for (i, raw) in raws.iter().enumerate() {
            let p = pinned.set_document_cookie_pinned(&pin, raw, &u, i as i64);
            let q = plain.set_document_cookie(raw, &u, i as i64);
            assert_eq!(p, q, "store diverged for {raw}");
        }
        assert_eq!(
            pinned.cookies_for_document_pinned(&pin, &u, 10),
            plain.cookies_for_document(&u, 10)
        );
        assert_eq!(
            pinned.delete_pinned(&pin, "a", &u, 11),
            plain.delete("a", &u, 11)
        );
        assert_eq!(
            pinned.delete_pinned(&pin, "missing", &u, 11),
            plain.delete("missing", &u, 11)
        );
        assert_eq!(pinned.len(), plain.len());
        assert_eq!(pinned.changes(), plain.changes());
        assert_eq!(
            serde_json::to_string(&pinned).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
    }

    #[test]
    fn pin_resolves_subdomains_to_one_shard() {
        let www = ShardPin::for_host("www.pin-two.com");
        let mut jar = CookieJar::new();
        let u = url("https://www.pin-two.com/");
        jar.set_document_cookie_pinned(&www, "x=1; Domain=pin-two.com", &u, 0)
            .unwrap();
        // The sibling host reads the same shard through its own pin.
        let api = ShardPin::for_host("api.pin-two.com");
        let au = url("https://api.pin-two.com/");
        assert_eq!(
            jar.cookies_for_document_pinned(&api, &au, 1)
                .iter()
                .map(|c| c.pair())
                .collect::<Vec<_>>(),
            vec!["x=1".to_string()]
        );
    }

    #[test]
    fn serde_round_trip_of_populated_jar() {
        let mut jar = CookieJar::new();
        jar.set_document_cookie("plain=1", &url("https://rt-one.com/"), 0)
            .unwrap();
        jar.set_document_cookie(
            "scoped=2; Domain=rt-one.com; Path=/a",
            &url("https://www.rt-one.com/a/b"),
            1,
        )
        .unwrap();
        jar.set_document_cookie("other=3; Max-Age=60", &url("https://rt-two.org/"), 2)
            .unwrap();
        let sc = cg_http::parse_set_cookie("sid=s; HttpOnly; Secure; SameSite=Strict").unwrap();
        jar.set_from_header(&sc, &url("https://rt-two.org/"), 3)
            .unwrap();
        jar.delete("plain", &url("https://rt-one.com/"), 4);

        let json = serde_json::to_string(&jar).expect("serialize jar");
        let back: CookieJar = serde_json::from_str(&json).expect("deserialize jar");

        assert_eq!(back.len(), jar.len());
        assert_eq!(back.shard_count(), jar.shard_count());
        let a: Vec<&Cookie> = jar.iter().collect();
        let b: Vec<&Cookie> = back.iter().collect();
        assert_eq!(a, b, "cookie list must round-trip in order");
        assert_eq!(back.changes(), jar.changes(), "change log must round-trip");

        // The restored jar answers queries identically.
        for u in [
            "https://www.rt-one.com/a/b",
            "https://rt-one.com/",
            "https://rt-two.org/",
        ] {
            let u = url(u);
            assert_eq!(back.document_cookie(&u, 10), jar.document_cookie(&u, 10));
            assert_eq!(
                back.cookie_header_for_request(&u, 10),
                jar.cookie_header_for_request(&u, 10)
            );
        }
    }

    #[test]
    fn wire_format_is_the_flat_cookies_changes_shape() {
        // Compatibility contract: persisted jars are `{cookies: [...],
        // changes: [...]}` with a flat cookie list, like the pre-sharding
        // serialization.
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &url("https://wire.com/"), 0)
            .unwrap();
        let v: serde_json::Value = serde_json::to_value(&jar).unwrap();
        let cookies = v
            .get("cookies")
            .and_then(|c| c.as_array())
            .expect("flat cookies list");
        assert_eq!(cookies.len(), 1);
        assert_eq!(cookies[0].get("name").and_then(|n| n.as_str()), Some("a"));
        assert!(v.get("changes").is_some());
        assert!(
            v.get("shards").is_none(),
            "shard structure must not leak into the wire format"
        );
    }

    #[test]
    fn sharded_matches_flat_on_adversarial_insert_order() {
        use crate::flat::FlatJar;
        // Interleave many domains, same-name cookies, subdomain-scoped
        // cookies, replacements, path variants, and expiries — in an
        // order chosen so a naive index would mis-sort (domains arrive
        // round-robin, names collide across domains, and a replacement
        // targets the middle of a shard).
        let inserts: Vec<(&str, &str)> = vec![
            ("https://adv-a.com/x/y", "sid=a0"),
            ("https://adv-b.com/x/y", "sid=b0"),
            ("https://adv-c.co.uk/x/y", "sid=c0"),
            ("https://www.adv-a.com/x/y", "shared=a1; Domain=adv-a.com"),
            ("https://www.adv-b.com/x/y", "shared=b1; Domain=adv-b.com"),
            ("https://adv-a.com/x/y", "deep=a2; Path=/x"),
            ("https://adv-b.com/x/y", "deep=b2; Path=/x/y"),
            ("https://adv-c.co.uk/x/y", "deep=c2; Path=/"),
            ("https://adv-a.com/x/y", "sid=a3"), // replacement, keeps creation time
            ("https://api.adv-b.com/x/y", "api=b3"),
            ("https://adv-c.co.uk/x/y", "temp=c3; Max-Age=1"),
            ("https://adv-a.com/x/y", "zz=a4"),
            ("https://adv-b.com/x/y", "aa=b4"),
        ];
        let mut sharded = CookieJar::new();
        let mut flat = FlatJar::new();
        for (i, (at, raw)) in inserts.iter().enumerate() {
            let u = url(at);
            let s = sharded.set_document_cookie(raw, &u, i as i64).map(|_| ());
            let f = flat.set_document_cookie(raw, &u, i as i64);
            assert_eq!(s, f, "store outcome diverged for {raw}");
        }
        assert_eq!(sharded.len(), flat.len());

        let queries = [
            "https://adv-a.com/x/y",
            "https://adv-a.com/",
            "https://www.adv-a.com/x/y",
            "https://adv-b.com/x/y",
            "https://api.adv-b.com/x/y",
            "https://adv-c.co.uk/x/y",
            "https://unrelated.net/",
        ];
        for q in queries {
            let u = url(q);
            for now in [0i64, 1_500, 10_000] {
                assert_eq!(
                    sharded.document_cookie(&u, now),
                    flat.document_cookie(&u, now),
                    "document_cookie diverged at {q} t={now}"
                );
                assert_eq!(
                    sharded.cookie_header_for_request(&u, now),
                    flat.cookie_header_for_request(&u, now),
                    "request header diverged at {q} t={now}"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_flat_under_eviction_pressure() {
        use crate::flat::FlatJar;
        // Three domains round-robin past the per-domain cap: eviction
        // decisions must be identical.
        let hosts = [
            "https://cap-a.com/",
            "https://cap-b.com/",
            "https://cap-c.com/",
        ];
        let mut sharded = CookieJar::new();
        let mut flat = FlatJar::new();
        for i in 0..(3 * (MAX_COOKIES_PER_DOMAIN + 25)) {
            let u = url(hosts[i % 3]);
            let raw = format!("c{}=v", i / 3);
            sharded.set_document_cookie(&raw, &u, i as i64).unwrap();
            flat.set_document_cookie(&raw, &u, i as i64).unwrap();
        }
        assert_eq!(sharded.len(), flat.len());
        for h in hosts {
            let u = url(h);
            assert_eq!(
                sharded.document_cookie(&u, 0),
                flat.document_cookie(&u, 0),
                "diverged at {h}"
            );
        }
    }
}
