//! The cookie jar proper: storage, matching, and the `document.cookie`
//! string interface.

use crate::changes::{ChangeCause, CookieChange};
use crate::cookie::{default_path, Cookie};
use cg_http::{parse_set_cookie, SetCookie};
use cg_url::{psl, Url};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-domain cookie cap, matching Chromium's 180-per-eTLD+1 limit.
/// When exceeded, the oldest cookies for that domain are evicted.
const MAX_COOKIES_PER_DOMAIN: usize = 180;

/// Why a `Set-Cookie` (header or JS write) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetCookieError {
    /// The string did not parse as a cookie at all.
    Unparseable,
    /// The `Domain` attribute does not domain-match the setting host.
    DomainMismatch,
    /// The `Domain` attribute is a public suffix (`Domain=com`).
    PublicSuffixDomain,
    /// A script attempted to create an `HttpOnly` cookie (forbidden for
    /// non-HTTP APIs, RFC 6265 §5.3 step 10).
    HttpOnlyFromScript,
    /// A script attempted to overwrite an existing `HttpOnly` cookie
    /// (RFC 6265 §5.3 step 11.2).
    OverwritesHttpOnly,
    /// A `Secure` cookie cannot be set from an insecure context.
    SecureFromInsecure,
    /// A `__Secure-`/`__Host-` prefixed name whose attributes violate
    /// the prefix contract (RFC 6265bis §4.1.3).
    InvalidPrefix,
}

impl fmt::Display for SetCookieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetCookieError::Unparseable => "unparseable cookie string",
            SetCookieError::DomainMismatch => "Domain attribute does not match setting host",
            SetCookieError::PublicSuffixDomain => "Domain attribute is a public suffix",
            SetCookieError::HttpOnlyFromScript => "scripts cannot create HttpOnly cookies",
            SetCookieError::OverwritesHttpOnly => "scripts cannot overwrite HttpOnly cookies",
            SetCookieError::SecureFromInsecure => "Secure cookie from insecure context",
            SetCookieError::InvalidPrefix => "cookie name prefix contract violated",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SetCookieError {}

/// The browser's cookie store for one profile.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
    #[serde(default)]
    changes: Vec<CookieChange>,
}

impl CookieJar {
    /// An empty jar.
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    /// Number of stored (possibly expired, not yet purged) cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True when the jar holds nothing.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Iterates over all stored cookies (tests and forensics).
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    // ------------------------------------------------------------------
    // Change log (CookieStore `change` event substrate)
    // ------------------------------------------------------------------

    /// Total number of change records so far. Use as a cursor for
    /// [`CookieJar::changes_since`].
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// All change records.
    pub fn changes(&self) -> &[CookieChange] {
        &self.changes
    }

    /// Change records appended since `cursor` (a previous
    /// [`CookieJar::change_count`] value). Out-of-range cursors yield an
    /// empty slice.
    pub fn changes_since(&self, cursor: usize) -> &[CookieChange] {
        self.changes.get(cursor..).unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Storage
    // ------------------------------------------------------------------

    /// Stores a cookie arriving on an HTTP response for `url` (the analog
    /// of processing a `Set-Cookie` header).
    pub fn set_from_header(&mut self, sc: &SetCookie, url: &Url, now_ms: i64) -> Result<(), SetCookieError> {
        self.store(sc, url, now_ms, true)
    }

    /// Stores a cookie written through `document.cookie = "…"` or
    /// `cookieStore.set(…)` on the document at `url`.
    ///
    /// Returns the stored cookie on success so instrumentation can log the
    /// exact stored form.
    pub fn set_document_cookie(&mut self, raw: &str, url: &Url, now_ms: i64) -> Result<Cookie, SetCookieError> {
        let sc = parse_set_cookie(raw).ok_or(SetCookieError::Unparseable)?;
        self.store(&sc, url, now_ms, false)?;
        // store() succeeded, so the cookie it stored is the last match.
        let host = url.host_str();
        let c = self
            .cookies
            .iter()
            .rev()
            .find(|c| c.name == sc.name && c.domain_matches(&host))
            .cloned()
            .expect("cookie just stored");
        Ok(c)
    }

    fn store(&mut self, sc: &SetCookie, url: &Url, now_ms: i64, http_api: bool) -> Result<(), SetCookieError> {
        let host = url.host_str();
        if !http_api && sc.http_only {
            return Err(SetCookieError::HttpOnlyFromScript);
        }
        if sc.secure && url.scheme != "https" {
            return Err(SetCookieError::SecureFromInsecure);
        }
        // RFC 6265bis §4.1.3 name-prefix contracts (checked
        // case-insensitively, as modern browsers do).
        let lower_name = sc.name.to_ascii_lowercase();
        if lower_name.starts_with("__secure-") && !(sc.secure && url.scheme == "https") {
            return Err(SetCookieError::InvalidPrefix);
        }
        if lower_name.starts_with("__host-") {
            let path_ok = sc.path.as_deref() == Some("/");
            if !(sc.secure && url.scheme == "https" && sc.domain.is_none() && path_ok) {
                return Err(SetCookieError::InvalidPrefix);
            }
        }
        if let Some(d) = &sc.domain {
            if psl::is_public_suffix(d) && !host.eq_ignore_ascii_case(d) {
                return Err(SetCookieError::PublicSuffixDomain);
            }
            if !cg_url::host::domain_match(&host, d) {
                return Err(SetCookieError::DomainMismatch);
            }
        }
        let cookie = Cookie::from_set_cookie(sc, &host, &default_path(&url.path), now_ms);

        // Replace any cookie with the same (name, domain, path) identity.
        if let Some(existing) = self
            .cookies
            .iter_mut()
            .find(|c| c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        {
            if existing.http_only && !http_api {
                return Err(SetCookieError::OverwritesHttpOnly);
            }
            // Creation time is preserved on replacement (RFC 6265 §5.3.11.3).
            let created = existing.created_at_ms;
            *existing = cookie;
            existing.created_at_ms = created;
            let (name, value, http_only) =
                (existing.name.clone(), existing.value.clone(), existing.http_only);
            self.changes.push(CookieChange {
                name,
                value,
                cause: ChangeCause::Replaced,
                http_only,
                at_ms: now_ms,
            });
        } else {
            self.changes.push(CookieChange {
                name: cookie.name.clone(),
                value: cookie.value.clone(),
                cause: ChangeCause::Created,
                http_only: cookie.http_only,
                at_ms: now_ms,
            });
            self.cookies.push(cookie);
            self.evict_if_needed(&host, now_ms);
        }
        Ok(())
    }

    /// Expires a cookie immediately (what `cookieStore.delete` and the
    /// `expires-in-the-past` JS idiom do). Returns true when a visible
    /// cookie was removed.
    pub fn delete(&mut self, name: &str, url: &Url, now_ms: i64) -> bool {
        let host = url.host_str();
        let before = self.cookies.len();
        let changes = &mut self.changes;
        self.cookies.retain(|c| {
            let hit = c.name == name
                && c.domain_matches(&host)
                && c.path_matches(&url.path)
                && !c.is_expired(now_ms);
            if hit {
                changes.push(CookieChange {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    cause: ChangeCause::Deleted,
                    http_only: c.http_only,
                    at_ms: now_ms,
                });
            }
            !hit
        });
        before != self.cookies.len()
    }

    /// Drops expired cookies.
    pub fn purge_expired(&mut self, now_ms: i64) {
        let changes = &mut self.changes;
        self.cookies.retain(|c| {
            if c.is_expired(now_ms) {
                changes.push(CookieChange {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    cause: ChangeCause::Expired,
                    http_only: c.http_only,
                    at_ms: now_ms,
                });
                false
            } else {
                true
            }
        });
    }

    fn evict_if_needed(&mut self, host: &str, now_ms: i64) {
        let domain_key = psl::registrable_domain(host).unwrap_or_else(|| host.to_string());
        let count = self
            .cookies
            .iter()
            .filter(|c| psl::registrable_domain(&c.domain).as_deref() == Some(domain_key.as_str()))
            .count();
        if count > MAX_COOKIES_PER_DOMAIN {
            // Evict the oldest cookie for this registrable domain.
            if let Some((idx, _)) = self
                .cookies
                .iter()
                .enumerate()
                .filter(|(_, c)| psl::registrable_domain(&c.domain).as_deref() == Some(domain_key.as_str()))
                .min_by_key(|(_, c)| c.created_at_ms)
            {
                let evicted = self.cookies.remove(idx);
                self.changes.push(CookieChange {
                    name: evicted.name,
                    value: evicted.value,
                    cause: ChangeCause::Evicted,
                    http_only: evicted.http_only,
                    at_ms: now_ms,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Retrieval
    // ------------------------------------------------------------------

    /// The cookies a script at `url`'s document can observe: domain- and
    /// path-matching, unexpired, not `HttpOnly`, and `Secure` only when
    /// the document is https. This is the raw jar view that
    /// `document.cookie` serializes and that CookieGuard filters.
    pub fn cookies_for_document(&self, url: &Url, now_ms: i64) -> Vec<Cookie> {
        let mut matching: Vec<Cookie> = self
            .cookies
            .iter()
            .filter(|c| {
                !c.is_expired(now_ms)
                    && !c.http_only
                    && c.domain_matches(&url.host_str())
                    && c.path_matches(&url.path)
                    && (!c.secure || url.scheme == "https")
            })
            .cloned()
            .collect();
        sort_for_serialization(&mut matching);
        matching
    }

    /// The `document.cookie` getter: `"a=1; b=2"`.
    pub fn document_cookie(&self, url: &Url, now_ms: i64) -> String {
        self.cookies_for_document(url, now_ms)
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The `Cookie:` header value attached to an HTTP request for `url`.
    /// Unlike the document view, `HttpOnly` cookies are included — they
    /// are invisible to scripts, not to the network.
    pub fn cookie_header_for_request(&self, url: &Url, now_ms: i64) -> String {
        let mut matching: Vec<Cookie> = self
            .cookies
            .iter()
            .filter(|c| {
                !c.is_expired(now_ms)
                    && c.domain_matches(&url.host_str())
                    && c.path_matches(&url.path)
                    && (!c.secure || url.scheme == "https")
            })
            .cloned()
            .collect();
        sort_for_serialization(&mut matching);
        matching.iter().map(Cookie::pair).collect::<Vec<_>>().join("; ")
    }

    /// The `Cookie:` header for a *subresource* request to `url` made
    /// by a page whose top-level site is `top_level_site`, with RFC
    /// 6265bis `SameSite` enforcement:
    ///
    /// * same-site requests (destination's registrable domain equals
    ///   the top-level site) attach everything, like
    ///   [`CookieJar::cookie_header_for_request`];
    /// * cross-site requests attach only `SameSite=None; Secure`
    ///   cookies. Unspecified `SameSite` defaults to `Lax` (the modern
    ///   browser default), and `SameSite=None` without `Secure` is
    ///   treated as `Lax` — both therefore stay home.
    pub fn cookie_header_for_subresource(&self, url: &Url, top_level_site: &str, now_ms: i64) -> String {
        let same_site = url
            .registrable_domain()
            .is_some_and(|d| d.eq_ignore_ascii_case(top_level_site));
        if same_site {
            return self.cookie_header_for_request(url, now_ms);
        }
        let mut matching: Vec<Cookie> = self
            .cookies
            .iter()
            .filter(|c| {
                !c.is_expired(now_ms)
                    && c.domain_matches(&url.host_str())
                    && c.path_matches(&url.path)
                    && (!c.secure || url.scheme == "https")
                    && c.same_site == Some(cg_http::SameSite::None)
                    && c.secure
            })
            .cloned()
            .collect();
        sort_for_serialization(&mut matching);
        matching.iter().map(Cookie::pair).collect::<Vec<_>>().join("; ")
    }
}

/// RFC 6265 §5.4 step 2: longer paths first; among equal-length paths,
/// earlier creation times first.
fn sort_for_serialization(cookies: &mut [Cookie]) {
    cookies.sort_by(|a, b| {
        b.path
            .len()
            .cmp(&a.path.len())
            .then(a.created_at_ms.cmp(&b.created_at_ms))
            .then(a.name.cmp(&b.name))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn jar_with(raws: &[&str], at: &str) -> CookieJar {
        let mut jar = CookieJar::new();
        let u = url(at);
        for (i, raw) in raws.iter().enumerate() {
            jar.set_document_cookie(raw, &u, i as i64).unwrap();
        }
        jar
    }

    #[test]
    fn document_cookie_serializes_in_order() {
        let jar = jar_with(&["a=1", "b=2", "c=3"], "https://www.site.com/");
        assert_eq!(jar.document_cookie(&url("https://www.site.com/"), 10), "a=1; b=2; c=3");
    }

    #[test]
    fn longer_path_sorts_first() {
        let u = url("https://site.com/a/b/page");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("root=1; Path=/", &u, 0).unwrap();
        jar.set_document_cookie("deep=2; Path=/a/b", &u, 1).unwrap();
        assert_eq!(jar.document_cookie(&u, 10), "deep=2; root=1");
    }

    #[test]
    fn http_only_invisible_to_scripts_but_sent_on_requests() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "");
        assert_eq!(jar.cookie_header_for_request(&u, 1), "sid=secret");
    }

    #[test]
    fn script_cannot_create_or_overwrite_httponly() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("x=1; HttpOnly", &u, 0).unwrap_err(),
            SetCookieError::HttpOnlyFromScript
        );
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(
            jar.set_document_cookie("sid=stolen", &u, 1).unwrap_err(),
            SetCookieError::OverwritesHttpOnly
        );
        assert_eq!(jar.cookie_header_for_request(&u, 2), "sid=secret");
    }

    #[test]
    fn domain_attribute_validation() {
        let u = url("https://www.site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("a=1; Domain=other.com", &u, 0).unwrap_err(),
            SetCookieError::DomainMismatch
        );
        assert_eq!(
            jar.set_document_cookie("a=1; Domain=com", &u, 0).unwrap_err(),
            SetCookieError::PublicSuffixDomain
        );
        jar.set_document_cookie("a=1; Domain=site.com", &u, 0).unwrap();
        assert_eq!(jar.document_cookie(&url("https://api.site.com/"), 1), "a=1");
    }

    #[test]
    fn secure_requires_https() {
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("a=1; Secure", &url("http://site.com/"), 0).unwrap_err(),
            SetCookieError::SecureFromInsecure
        );
        jar.set_document_cookie("a=1; Secure", &url("https://site.com/"), 0).unwrap();
        assert_eq!(jar.document_cookie(&url("http://site.com/"), 1), "");
        assert_eq!(jar.document_cookie(&url("https://site.com/"), 1), "a=1");
    }

    #[test]
    fn delete_removes_visible_cookie() {
        let u = url("https://site.com/");
        let mut jar = jar_with(&["a=1", "b=2"], "https://site.com/");
        assert!(jar.delete("a", &u, 10));
        assert!(!jar.delete("a", &u, 10));
        assert_eq!(jar.document_cookie(&u, 10), "b=2");
    }

    #[test]
    fn replacement_preserves_creation_time() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 5).unwrap();
        jar.set_document_cookie("b=2", &u, 6).unwrap();
        jar.set_document_cookie("a=99", &u, 100).unwrap();
        // "a" keeps its original creation time, so it still sorts first.
        assert_eq!(jar.document_cookie(&u, 200), "a=99; b=2");
    }

    #[test]
    fn eviction_caps_per_domain() {
        let u = url("https://big.com/");
        let mut jar = CookieJar::new();
        for i in 0..(MAX_COOKIES_PER_DOMAIN + 20) {
            jar.set_document_cookie(&format!("c{i}=v"), &u, i as i64).unwrap();
        }
        assert!(jar.len() <= MAX_COOKIES_PER_DOMAIN + 1);
        // The earliest cookies were evicted.
        assert!(!jar.document_cookie(&u, 0).contains("c0=v"));
    }

    #[test]
    fn purge_expired_drops_cookies() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1; Max-Age=1", &u, 0).unwrap();
        jar.set_document_cookie("b=2", &u, 0).unwrap();
        jar.purge_expired(2_000);
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn subdomain_cannot_read_host_only_cookie_of_parent() {
        let mut jar = CookieJar::new();
        jar.set_document_cookie("ho=1", &url("https://site.com/"), 0).unwrap();
        assert_eq!(jar.document_cookie(&url("https://sub.site.com/"), 1), "");
    }

    // ------------------------------------------------------------------
    // RFC 6265bis: name prefixes and SameSite
    // ------------------------------------------------------------------

    #[test]
    fn secure_prefix_requires_secure_attribute() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        assert_eq!(
            jar.set_document_cookie("__Secure-id=1", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        jar.set_document_cookie("__Secure-id=1; Secure", &u, 0).unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "__Secure-id=1");
        // Case-insensitive prefix check, like modern browsers.
        assert_eq!(
            jar.set_document_cookie("__secure-other=1", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
    }

    #[test]
    fn host_prefix_contract() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        // Missing Secure.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Path=/", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // Missing Path=/.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Secure", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // Domain attribute forbidden.
        assert_eq!(
            jar.set_document_cookie("__Host-sid=1; Secure; Path=/; Domain=site.com", &u, 0).unwrap_err(),
            SetCookieError::InvalidPrefix
        );
        // The conforming form stores (and is host-only).
        jar.set_document_cookie("__Host-sid=1; Secure; Path=/", &u, 0).unwrap();
        assert_eq!(jar.document_cookie(&u, 1), "__Host-sid=1");
        assert_eq!(jar.document_cookie(&url("https://sub.site.com/"), 1), "");
    }

    #[test]
    fn host_prefix_rejected_on_http() {
        let u = url("http://site.com/");
        let mut jar = CookieJar::new();
        // On http the Secure attribute itself is rejected first; either
        // way the cookie must not store.
        assert!(jar.set_document_cookie("__Host-sid=1; Secure; Path=/", &u, 0).is_err());
        assert!(jar.is_empty());
    }

    #[test]
    fn prefixed_rejections_emit_no_change() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let _ = jar.set_document_cookie("__Host-x=1", &u, 0);
        let _ = jar.set_document_cookie("__Secure-y=1", &u, 0);
        assert_eq!(jar.change_count(), 0);
    }

    #[test]
    fn same_site_subresource_attachment() {
        let u = url("https://tracker.com/");
        let mut jar = CookieJar::new();
        // Four flavours on the tracker's own domain.
        let hdr = |raw: &str| cg_http::parse_set_cookie(raw).unwrap();
        jar.set_from_header(&hdr("none_ok=1; SameSite=None; Secure"), &u, 0).unwrap();
        jar.set_from_header(&hdr("none_insecure=1; SameSite=None"), &u, 0).unwrap();
        jar.set_from_header(&hdr("lax=1; SameSite=Lax"), &u, 0).unwrap();
        jar.set_from_header(&hdr("unspecified=1"), &u, 0).unwrap();

        // Cross-site: a page on site.com requests tracker.com.
        let cross = jar.cookie_header_for_subresource(&u, "site.com", 1);
        assert_eq!(cross, "none_ok=1", "only SameSite=None; Secure travels cross-site");

        // Same-site: a tracker.com page requesting tracker.com gets all.
        let same = jar.cookie_header_for_subresource(&u, "tracker.com", 1);
        for name in ["none_ok", "none_insecure", "lax", "unspecified"] {
            assert!(same.contains(name), "{name} missing from same-site header: {same}");
        }
    }

    #[test]
    fn same_site_strict_never_travels_cross_site() {
        let u = url("https://idp.com/");
        let mut jar = CookieJar::new();
        let sc = cg_http::parse_set_cookie("session=tok; SameSite=Strict; Secure; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.cookie_header_for_subresource(&u, "shop.com", 1), "");
        assert_eq!(jar.cookie_header_for_subresource(&u, "idp.com", 1), "session=tok");
    }

    // ------------------------------------------------------------------
    // Change log
    // ------------------------------------------------------------------

    #[test]
    fn change_log_records_create_replace_delete() {
        use crate::changes::ChangeCause;
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 0).unwrap();
        jar.set_document_cookie("a=2", &u, 1).unwrap();
        jar.delete("a", &u, 2);
        let causes: Vec<ChangeCause> = jar.changes().iter().map(|c| c.cause).collect();
        assert_eq!(causes, vec![ChangeCause::Created, ChangeCause::Replaced, ChangeCause::Deleted]);
        assert_eq!(jar.changes()[1].value, "2");
        assert!(jar.changes()[2].is_removal());
    }

    #[test]
    fn change_cursor_yields_only_new_records() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("a=1", &u, 0).unwrap();
        let cursor = jar.change_count();
        assert!(jar.changes_since(cursor).is_empty());
        jar.set_document_cookie("b=2", &u, 1).unwrap();
        let fresh = jar.changes_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].name, "b");
        // Out-of-range cursors are harmless.
        assert!(jar.changes_since(cursor + 100).is_empty());
    }

    #[test]
    fn failed_sets_emit_no_change() {
        let u = url("https://www.site.com/");
        let mut jar = CookieJar::new();
        assert!(jar.set_document_cookie("a=1; Domain=other.com", &u, 0).is_err());
        assert!(jar.set_document_cookie("x=1; HttpOnly", &u, 0).is_err());
        assert_eq!(jar.change_count(), 0);
    }

    #[test]
    fn httponly_changes_are_flagged() {
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        let sc = cg_http::parse_set_cookie("sid=secret; HttpOnly").unwrap();
        jar.set_from_header(&sc, &u, 0).unwrap();
        assert_eq!(jar.change_count(), 1);
        assert!(jar.changes()[0].http_only);
    }

    #[test]
    fn expiry_purge_emits_expired_changes() {
        use crate::changes::ChangeCause;
        let u = url("https://site.com/");
        let mut jar = CookieJar::new();
        jar.set_document_cookie("temp=1; Max-Age=1", &u, 0).unwrap();
        jar.purge_expired(5_000);
        let last = jar.changes().last().unwrap();
        assert_eq!(last.cause, ChangeCause::Expired);
        assert_eq!(last.name, "temp");
    }

    #[test]
    fn eviction_emits_evicted_change() {
        use crate::changes::ChangeCause;
        let u = url("https://big.com/");
        let mut jar = CookieJar::new();
        for i in 0..(MAX_COOKIES_PER_DOMAIN + 1) {
            jar.set_document_cookie(&format!("c{i}=v"), &u, i as i64).unwrap();
        }
        assert!(jar.changes().iter().any(|c| c.cause == ChangeCause::Evicted && c.name == "c0"));
    }
}
