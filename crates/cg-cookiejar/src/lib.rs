//! The browser cookie jar: RFC 6265 storage semantics plus the two script
//! interfaces the paper instruments — the legacy `document.cookie` string
//! property and the modern structured `CookieStore` API.
//!
//! Design notes:
//!
//! * The jar models exactly what a real user agent stores: one cookie per
//!   (domain, path, name), host-only vs domain cookies, expiry, `Secure`,
//!   `HttpOnly`, and `SameSite`. It does **not** track which script created
//!   a cookie — that is precisely the gap the paper identifies (§2.3: the
//!   browser cannot distinguish genuine first-party cookies from
//!   ghost-written ones). Creator attribution lives in the instrumentation
//!   layer (`cg-instrument`) and in CookieGuard's metadata store
//!   (`cookieguard-core`), mirroring the paper's architecture.
//! * Time is injected (`now_ms`) rather than read from a clock, so every
//!   simulation is deterministic and property tests can travel in time.
//!
//! **Layer:** storage. **Invariants:** RFC 6265 semantics; shard by
//! eTLD+1 (every read/delete/evict touches one bucket); iteration
//! order and serde wire format identical to the historical flat jar
//! (`FlatJar` remains as the equivalence oracle). **Entry points:**
//! `CookieJar`, `ShardPin`.

#![warn(missing_docs)]

pub mod changes;
pub mod cookie;
pub mod flat;
pub mod jar;
pub mod store;

pub use changes::{ChangeCause, CookieChange};
pub use cookie::Cookie;
pub use flat::FlatJar;
pub use jar::{CookieJar, SetCookieError, ShardPin};
pub use store::{CookieListItem, CookieStore};

#[cfg(test)]
mod proptests {
    use super::*;
    use cg_url::Url;
    use proptest::prelude::*;

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-zA-Z_][a-zA-Z0-9_]{0,14}"
    }

    fn value_strategy() -> impl Strategy<Value = String> {
        "[a-zA-Z0-9._-]{0,24}"
    }

    proptest! {
        /// Setting a cookie via document.cookie then reading the document
        /// cookie string always surfaces the pair (round-trip invariant).
        #[test]
        fn set_then_get_round_trips(name in name_strategy(), value in value_strategy()) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut jar = CookieJar::new();
            let pair = format!("{}={}", name, value);
            jar.set_document_cookie(&pair, &url, 0).unwrap();
            let s = jar.document_cookie(&url, 0);
            prop_assert!(s.contains(&pair));
        }

        /// Setting the same name twice keeps exactly one cookie (uniqueness
        /// invariant on (domain, path, name)).
        #[test]
        fn same_name_overwrites(name in name_strategy(), v1 in value_strategy(), v2 in value_strategy()) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut jar = CookieJar::new();
            jar.set_document_cookie(&format!("{name}={v1}"), &url, 0).unwrap();
            jar.set_document_cookie(&format!("{name}={v2}"), &url, 1).unwrap();
            let matching = jar.cookies_for_document(&url, 2);
            let count = matching.iter().filter(|c| c.name == name).count();
            prop_assert_eq!(count, 1);
            prop_assert_eq!(&matching.iter().find(|c| c.name == name).unwrap().value, &v2);
        }

        /// The document-cookie serialization grammar always re-parses:
        /// splitting on "; " yields name=value chunks.
        #[test]
        fn serialization_reparses(names in proptest::collection::vec(name_strategy(), 1..6)) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut jar = CookieJar::new();
            for (i, n) in names.iter().enumerate() {
                jar.set_document_cookie(&format!("{n}=v{i}"), &url, i as i64).unwrap();
            }
            let s = jar.document_cookie(&url, 100);
            for chunk in s.split("; ").filter(|c| !c.is_empty()) {
                prop_assert!(chunk.contains('='), "chunk {:?} lacks '='", chunk);
            }
        }

        /// Expired cookies never appear, regardless of how the expiry was
        /// expressed (expiry monotonicity invariant).
        #[test]
        fn expired_cookies_invisible(age in 1i64..100_000) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut jar = CookieJar::new();
            jar.set_document_cookie(&format!("temp=1; Max-Age={age}"), &url, 0).unwrap();
            prop_assert!(jar.document_cookie(&url, age * 1000 - 1).contains("temp=1"));
            prop_assert!(!jar.document_cookie(&url, age * 1000 + 1).contains("temp=1"));
        }

        /// A cross-site subresource `Cookie:` header only ever carries
        /// `SameSite=None; Secure` cookies, whatever mix was stored
        /// (RFC 6265bis attachment invariant).
        #[test]
        fn cross_site_header_carries_only_samesite_none(
            entries in proptest::collection::vec(
                (name_strategy(), prop::sample::select(vec!["", "; SameSite=Lax", "; SameSite=Strict", "; SameSite=None; Secure", "; SameSite=None"])),
                1..10,
            )
        ) {
            let url = Url::parse("https://thirdparty.example/px").unwrap();
            let mut jar = CookieJar::new();
            for (i, (name, suffix)) in entries.iter().enumerate() {
                let raw = format!("{name}=v{suffix}");
                if let Some(sc) = cg_http::parse_set_cookie(&raw) {
                    let _ = jar.set_from_header(&sc, &url, i as i64);
                }
            }
            let header = jar.cookie_header_for_subresource(&url, "toplevel.example", 1_000);
            for pair in header.split("; ").filter(|c| !c.is_empty()) {
                let name = pair.split('=').next().unwrap();
                let stored = jar.iter().find(|c| c.name == name).unwrap();
                prop_assert_eq!(stored.same_site, Some(cg_http::SameSite::None));
                prop_assert!(stored.secure);
            }
            // Same-site requests attach every stored cookie.
            let same = jar.cookie_header_for_subresource(&url, "thirdparty.example", 1_000);
            let attached = same.split("; ").filter(|c| !c.is_empty()).count();
            prop_assert_eq!(attached, jar.len());
        }

        /// Prefix contract: whatever the attribute mix, a stored
        /// `__Host-` cookie is always Secure, host-only, and rooted at
        /// `/` — invalid combinations are rejected atomically (no
        /// partial state, no change-log entry).
        #[test]
        fn host_prefix_storage_invariant(
            secure in prop::bool::ANY,
            rooted in prop::bool::ANY,
            with_domain in prop::bool::ANY,
        ) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut raw = String::from("__Host-id=1");
            if secure { raw.push_str("; Secure"); }
            if rooted { raw.push_str("; Path=/"); }
            if with_domain { raw.push_str("; Domain=example.com"); }
            let mut jar = CookieJar::new();
            let result = jar.set_document_cookie(&raw, &url, 0);
            let should_store = secure && rooted && !with_domain;
            prop_assert_eq!(result.is_ok(), should_store, "{}", raw);
            prop_assert_eq!(jar.len(), usize::from(should_store));
            prop_assert_eq!(jar.change_count(), usize::from(should_store));
            if let Ok(c) = result {
                prop_assert!(c.secure && c.host_only);
                prop_assert_eq!(c.path, "/");
            }
        }

        /// The change log is a complete account of the jar: replaying
        /// creations minus removals reproduces the live cookie count, and
        /// every successful mutation appends exactly one record.
        #[test]
        fn change_log_accounts_for_jar_state(
            ops in proptest::collection::vec((name_strategy(), value_strategy(), prop::bool::ANY), 1..40)
        ) {
            let url = Url::parse("https://www.example.com/").unwrap();
            let mut jar = CookieJar::new();
            for (i, (name, value, delete)) in ops.iter().enumerate() {
                let before = jar.change_count();
                if *delete {
                    let removed = jar.delete(name, &url, i as i64);
                    prop_assert_eq!(jar.change_count() - before, usize::from(removed));
                } else {
                    jar.set_document_cookie(&format!("{name}={value}"), &url, i as i64).unwrap();
                    prop_assert_eq!(jar.change_count() - before, 1);
                }
            }
            let net: i64 = jar
                .changes()
                .iter()
                .map(|c| match c.cause {
                    ChangeCause::Created => 1,
                    ChangeCause::Replaced => 0,
                    _ => -1,
                })
                .sum();
            prop_assert_eq!(net, jar.len() as i64);
        }
    }
}
