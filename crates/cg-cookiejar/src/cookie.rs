//! A stored cookie: the unit the jar persists.

use cg_http::{SameSite, SetCookie};
use serde::{Deserialize, Serialize};

/// A cookie as stored by the user agent (RFC 6265 §5.3 storage model).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// The cookie's domain, lowercased, no leading dot. For host-only
    /// cookies this is the exact request host.
    pub domain: String,
    /// True when no `Domain` attribute was supplied: the cookie only
    /// matches the exact host that set it.
    pub host_only: bool,
    /// The cookie's path.
    pub path: String,
    /// Absolute expiry in unix-epoch ms; `None` means a session cookie.
    pub expires_ms: Option<i64>,
    /// `Secure`: only sent/visible on https.
    pub secure: bool,
    /// `HttpOnly`: invisible to `document.cookie` and `CookieStore`.
    pub http_only: bool,
    /// `SameSite` attribute, if any.
    pub same_site: Option<SameSite>,
    /// When the cookie was created (unix ms) — used for serialization
    /// ordering and eviction.
    pub created_at_ms: i64,
}

impl Cookie {
    /// Materializes a stored cookie from a parsed `Set-Cookie`, the
    /// request/document host and default path, at time `now_ms`.
    ///
    /// `Max-Age` takes precedence over `Expires` (RFC 6265 §5.3 step 3).
    pub fn from_set_cookie(sc: &SetCookie, host: &str, default_path: &str, now_ms: i64) -> Cookie {
        let (domain, host_only) = match &sc.domain {
            Some(d) => (d.clone(), false),
            None => (host.to_ascii_lowercase(), true),
        };
        let expires_ms = match (sc.max_age_s, sc.expires_ms) {
            (Some(ma), _) => Some(now_ms.saturating_add(ma.saturating_mul(1000))),
            (None, Some(e)) => Some(e),
            (None, None) => None,
        };
        Cookie {
            name: sc.name.clone(),
            value: sc.value.clone(),
            domain,
            host_only,
            path: sc.path.clone().unwrap_or_else(|| default_path.to_string()),
            expires_ms,
            secure: sc.secure,
            http_only: sc.http_only,
            same_site: sc.same_site,
            created_at_ms: now_ms,
        }
    }

    /// True when the cookie is expired at `now_ms`.
    pub fn is_expired(&self, now_ms: i64) -> bool {
        matches!(self.expires_ms, Some(e) if e <= now_ms)
    }

    /// RFC 6265 path-matching (§5.1.4).
    pub fn path_matches(&self, request_path: &str) -> bool {
        let cp = self.path.as_str();
        if request_path == cp {
            return true;
        }
        if request_path.starts_with(cp) {
            return cp.ends_with('/') || request_path.as_bytes().get(cp.len()) == Some(&b'/');
        }
        false
    }

    /// RFC 6265 domain-matching against a request host (§5.1.3), taking
    /// host-only cookies into account.
    pub fn domain_matches(&self, request_host: &str) -> bool {
        if self.host_only {
            request_host.eq_ignore_ascii_case(&self.domain)
        } else {
            cg_url::host::domain_match(request_host, &self.domain)
        }
    }

    /// The `name=value` form used in `Cookie:` headers and
    /// `document.cookie`.
    pub fn pair(&self) -> String {
        if self.name.is_empty() {
            self.value.clone()
        } else {
            format!("{}={}", self.name, self.value)
        }
    }
}

/// The default path for a URL per RFC 6265 §5.1.4: the request path up to
/// (but not including) its last `/`, or `/` when that would be empty.
pub fn default_path(url_path: &str) -> String {
    if !url_path.starts_with('/') {
        return "/".to_string();
    }
    match url_path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => url_path[..i].to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(raw: &str) -> SetCookie {
        cg_http::parse_set_cookie(raw).unwrap()
    }

    #[test]
    fn host_only_when_no_domain_attr() {
        let c = Cookie::from_set_cookie(&sc("a=1"), "www.example.com", "/", 0);
        assert!(c.host_only);
        assert!(c.domain_matches("www.example.com"));
        assert!(!c.domain_matches("example.com"));
        assert!(!c.domain_matches("sub.www.example.com"));
    }

    #[test]
    fn domain_cookie_matches_subdomains() {
        let c = Cookie::from_set_cookie(&sc("a=1; Domain=example.com"), "www.example.com", "/", 0);
        assert!(!c.host_only);
        assert!(c.domain_matches("example.com"));
        assert!(c.domain_matches("deep.sub.example.com"));
        assert!(!c.domain_matches("notexample.com"));
    }

    #[test]
    fn max_age_beats_expires() {
        let c = Cookie::from_set_cookie(
            &sc("a=1; Max-Age=60; Expires=@99999999"),
            "h.com",
            "/",
            1000,
        );
        assert_eq!(c.expires_ms, Some(61_000));
    }

    #[test]
    fn expiry_check() {
        let c = Cookie::from_set_cookie(&sc("a=1; Max-Age=10"), "h.com", "/", 0);
        assert!(!c.is_expired(9_999));
        assert!(c.is_expired(10_000));
        let session = Cookie::from_set_cookie(&sc("b=2"), "h.com", "/", 0);
        assert!(!session.is_expired(i64::MAX));
    }

    #[test]
    fn path_matching_rfc6265() {
        let mut c = Cookie::from_set_cookie(&sc("a=1; Path=/docs"), "h.com", "/", 0);
        assert!(c.path_matches("/docs"));
        assert!(c.path_matches("/docs/web"));
        assert!(!c.path_matches("/doc"));
        assert!(!c.path_matches("/docsx"));
        c.path = "/".into();
        assert!(c.path_matches("/anything"));
    }

    #[test]
    fn default_path_rules() {
        assert_eq!(default_path("/a/b/c"), "/a/b");
        assert_eq!(default_path("/a"), "/");
        assert_eq!(default_path("/"), "/");
        assert_eq!(default_path(""), "/");
    }

    #[test]
    fn pair_formats() {
        let c = Cookie::from_set_cookie(&sc("k=v"), "h.com", "/", 0);
        assert_eq!(c.pair(), "k=v");
        let nameless = Cookie::from_set_cookie(&sc("justvalue"), "h.com", "/", 0);
        assert_eq!(nameless.pair(), "justvalue");
    }
}
