//! The pre-sharding flat-`Vec` jar, kept as a reference implementation.
//!
//! [`FlatJar`] stores every cookie in one vector and scans the whole jar
//! on every lookup, recomputing eTLD+1 per cookie during eviction —
//! exactly what [`crate::CookieJar`] did before it was domain-sharded.
//! It exists for two purposes:
//!
//! * **equivalence testing** — the sharded jar must produce identical
//!   match results for any insert order (see the crate's test suite);
//! * **benchmarking** — `crates/bench/benches/cookiejar.rs` measures
//!   sharded vs. flat lookups on multi-domain jars.
//!
//! It deliberately implements only the storage/retrieval surface needed
//! for those comparisons (no change log); validation and the per-domain
//! cap are shared with the sharded jar so the two can never drift.

use crate::cookie::{default_path, Cookie};
use crate::jar::{sort_for_serialization, validate_set, SetCookieError, MAX_COOKIES_PER_DOMAIN};
use cg_http::{parse_set_cookie, SetCookie};
use cg_url::{psl, Url};

/// A flat, linear-scan cookie jar (the historical layout).
#[derive(Debug, Clone, Default)]
pub struct FlatJar {
    cookies: Vec<Cookie>,
}

impl FlatJar {
    /// An empty jar.
    pub fn new() -> FlatJar {
        FlatJar::default()
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True when the jar holds nothing.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Iterates over stored cookies in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    /// `document.cookie = "…"` with the same validation the sharded jar
    /// applies.
    pub fn set_document_cookie(
        &mut self,
        raw: &str,
        url: &Url,
        now_ms: i64,
    ) -> Result<(), SetCookieError> {
        let sc = parse_set_cookie(raw).ok_or(SetCookieError::Unparseable)?;
        self.store(&sc, url, now_ms, false)
    }

    /// HTTP `Set-Cookie` processing.
    pub fn set_from_header(
        &mut self,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
    ) -> Result<(), SetCookieError> {
        self.store(sc, url, now_ms, true)
    }

    fn store(
        &mut self,
        sc: &SetCookie,
        url: &Url,
        now_ms: i64,
        http_api: bool,
    ) -> Result<(), SetCookieError> {
        let host = url.host_str();
        validate_set(sc, url, &host, http_api)?;
        let cookie = Cookie::from_set_cookie(sc, &host, &default_path(&url.path), now_ms);

        if let Some(existing) = self
            .cookies
            .iter_mut()
            .find(|c| c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        {
            if existing.http_only && !http_api {
                return Err(SetCookieError::OverwritesHttpOnly);
            }
            let created = existing.created_at_ms;
            *existing = cookie;
            existing.created_at_ms = created;
        } else {
            self.cookies.push(cookie);
            self.evict_if_needed(&host, now_ms);
        }
        Ok(())
    }

    fn evict_if_needed(&mut self, host: &str, _now_ms: i64) {
        // The historical hot spot: every eviction check recomputes the
        // registrable domain of every cookie in the jar.
        let domain_key = psl::registrable_domain(host).unwrap_or_else(|| host.to_string());
        let count = self
            .cookies
            .iter()
            .filter(|c| psl::registrable_domain(&c.domain).as_deref() == Some(domain_key.as_str()))
            .count();
        if count > MAX_COOKIES_PER_DOMAIN {
            if let Some((idx, _)) = self
                .cookies
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    psl::registrable_domain(&c.domain).as_deref() == Some(domain_key.as_str())
                })
                .min_by_key(|(_, c)| c.created_at_ms)
            {
                self.cookies.remove(idx);
            }
        }
    }

    /// Script-visible cookies for a document: the full-jar linear scan.
    pub fn cookies_for_document(&self, url: &Url, now_ms: i64) -> Vec<Cookie> {
        let host = url.host_str();
        let mut matching: Vec<Cookie> = self
            .cookies
            .iter()
            .filter(|c| {
                !c.is_expired(now_ms)
                    && !c.http_only
                    && c.domain_matches(&host)
                    && c.path_matches(&url.path)
                    && (!c.secure || url.scheme == "https")
            })
            .cloned()
            .collect();
        sort_for_serialization(&mut matching);
        matching
    }

    /// The `document.cookie` getter.
    pub fn document_cookie(&self, url: &Url, now_ms: i64) -> String {
        self.cookies_for_document(url, now_ms)
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The `Cookie:` request header (HttpOnly included).
    pub fn cookie_header_for_request(&self, url: &Url, now_ms: i64) -> String {
        let host = url.host_str();
        let mut matching: Vec<Cookie> = self
            .cookies
            .iter()
            .filter(|c| {
                !c.is_expired(now_ms)
                    && c.domain_matches(&host)
                    && c.path_matches(&url.path)
                    && (!c.secure || url.scheme == "https")
            })
            .cloned()
            .collect();
        sort_for_serialization(&mut matching);
        matching
            .iter()
            .map(Cookie::pair)
            .collect::<Vec<_>>()
            .join("; ")
    }
}
