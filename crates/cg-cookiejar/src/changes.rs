//! The jar's change log — the substrate for the CookieStore `change`
//! event.
//!
//! The CookieStore specification fires a `change` event at the store
//! whenever a script-visible cookie is created, replaced, deleted,
//! evicted, or expires. The jar records every mutation here; the browser
//! layer drains the log and dispatches events to registered listeners
//! (filtered through CookieGuard, which hides foreign cookies' changes).

use serde::{Deserialize, Serialize};

/// Why a change record was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeCause {
    /// A new cookie was stored.
    Created,
    /// An existing cookie was replaced (same name/domain/path identity).
    Replaced,
    /// The cookie was removed by an explicit deletion (`cookieStore.delete`
    /// or an expiry-in-the-past `document.cookie` write).
    Deleted,
    /// The cookie was evicted by the per-domain cap.
    Evicted,
    /// The cookie was dropped because its expiry passed.
    Expired,
}

impl ChangeCause {
    /// True for causes that remove the cookie from the jar.
    pub fn is_removal(&self) -> bool {
        matches!(
            self,
            ChangeCause::Deleted | ChangeCause::Evicted | ChangeCause::Expired
        )
    }
}

/// One observable mutation of the jar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieChange {
    /// Cookie name.
    pub name: String,
    /// The stored value for creations/replacements; the last value for
    /// removals.
    pub value: String,
    /// What happened.
    pub cause: ChangeCause,
    /// Whether the affected cookie is `HttpOnly` — such changes are never
    /// delivered to script listeners (the CookieStore spec hides them).
    pub http_only: bool,
    /// Wall-clock time of the mutation (unix ms).
    pub at_ms: i64,
}

impl CookieChange {
    /// True when the change removed the cookie.
    pub fn is_removal(&self) -> bool {
        self.cause.is_removal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_causes() {
        assert!(ChangeCause::Deleted.is_removal());
        assert!(ChangeCause::Evicted.is_removal());
        assert!(ChangeCause::Expired.is_removal());
        assert!(!ChangeCause::Created.is_removal());
        assert!(!ChangeCause::Replaced.is_removal());
    }

    #[test]
    fn change_mirrors_cause() {
        let c = CookieChange {
            name: "_tid".into(),
            value: "abc".into(),
            cause: ChangeCause::Deleted,
            http_only: false,
            at_ms: 0,
        };
        assert!(c.is_removal());
    }
}
