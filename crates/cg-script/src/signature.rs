//! Behaviour signatures — the §8 signature-based attribution idea
//! (after Chen et al.'s event-loop-turn JavaScript signatures).
//!
//! CookieGuard's strict mode denies inline scripts everything, because
//! their origin is unknowable from the stack. The paper sketches an
//! alternative: fingerprint known third-party scripts by *behaviour*, and
//! when a first-party/inline script's behaviour matches a known tracker's
//! signature, attribute it to that tracker. A signature here is a
//! structural hash over the op sequence — op kinds, cookie names,
//! destination hosts — deliberately ignoring generated values and timing
//! jitter, so light obfuscation (renamed variables, re-minification,
//! shifted delays) does not change it.

use crate::behavior::{CookieSelection, ScriptOp};
use std::collections::HashMap;

/// FNV-1a, 64-bit — stable across platforms and runs.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }
}

/// Computes the structural signature of a behaviour program.
///
/// Included: op kinds (in order), cookie names, overwrite/delete targets,
/// exfiltration destinations/paths/selection shape. Excluded: generated
/// values, delays, attribute-change rolls — anything that varies between
/// runs of the same underlying script.
pub fn behavior_signature(ops: &[ScriptOp]) -> u64 {
    let mut h = Fnv::new();
    hash_ops(&mut h, ops);
    h.0
}

fn hash_ops(h: &mut Fnv, ops: &[ScriptOp]) {
    for op in ops {
        match op {
            ScriptOp::SetCookie { name, .. } => {
                h.str("set");
                h.str(name);
            }
            ScriptOp::CookieStoreSet { name, .. } => {
                h.str("store_set");
                h.str(name);
            }
            ScriptOp::ReadAllCookies => h.str("read_all"),
            ScriptOp::CookieStoreGet { name } => {
                h.str("store_get");
                h.str(name);
            }
            ScriptOp::CookieStoreGetAll => h.str("store_get_all"),
            ScriptOp::OverwriteCookie { target, .. } => {
                h.str("overwrite");
                h.str(target);
            }
            ScriptOp::DeleteCookie { target, via_store } => {
                h.str(if *via_store { "store_delete" } else { "delete" });
                h.str(target);
            }
            ScriptOp::Exfiltrate {
                dest_host,
                path,
                selection,
                ..
            } => {
                h.str("exfil");
                h.str(dest_host);
                h.str(path);
                match selection {
                    CookieSelection::All => h.str("all"),
                    CookieSelection::Sample(_) => h.str("sample"),
                    CookieSelection::Named(names) => {
                        h.str("named");
                        for n in names {
                            h.str(n);
                        }
                    }
                }
            }
            ScriptOp::SendRequest {
                dest_host, path, ..
            } => {
                h.str("req");
                h.str(dest_host);
                h.str(path);
            }
            ScriptOp::InjectScript { url } => {
                h.str("inject");
                h.str(url);
            }
            ScriptOp::DomInsert { tag } => {
                h.str("dom_insert");
                h.str(tag);
            }
            ScriptOp::DomMutate { foreign_target, .. } => {
                h.str(if *foreign_target {
                    "dom_mutate_foreign"
                } else {
                    "dom_mutate"
                });
            }
            // Timing and attribution details are *not* part of the
            // signature: only the nested structure is.
            ScriptOp::Defer { ops, .. } => {
                h.str("defer[");
                hash_ops(h, ops);
                h.str("]");
            }
            ScriptOp::Microtask { ops } => {
                h.str("micro[");
                hash_ops(h, ops);
                h.str("]");
            }
            ScriptOp::IfCookieVisible {
                cookie,
                then_ops,
                else_ops,
            } => {
                h.str("if_visible");
                h.str(cookie);
                h.str("then[");
                hash_ops(h, then_ops);
                h.str("]else[");
                hash_ops(h, else_ops);
                h.str("]");
            }
            ScriptOp::CopyCookie { from, to, .. } => {
                h.str("copy");
                h.str(from);
                h.str(to);
            }
            ScriptOp::Probe { feature, cookie } => {
                h.str("probe");
                h.str(feature);
                h.str(cookie);
            }
            ScriptOp::OnCookieChange {
                watch,
                deletions_only,
                ops,
            } => {
                h.str(if *deletions_only {
                    "on_change_del["
                } else {
                    "on_change["
                });
                if let Some(w) = watch {
                    h.str(w);
                }
                hash_ops(h, ops);
                h.str("]");
            }
        }
    }
}

/// A signature database: known third-party behaviours → their script
/// domain. Built by a "large-scale crawl" in the paper's sketch; here,
/// learned from the vendor registry's behaviours.
#[derive(Debug, Clone, Default)]
pub struct SignatureDb {
    map: HashMap<u64, String>,
}

impl SignatureDb {
    /// An empty database.
    pub fn new() -> SignatureDb {
        SignatureDb::default()
    }

    /// Learns `ops` as belonging to `domain`.
    pub fn learn(&mut self, domain: &str, ops: &[ScriptOp]) {
        self.map
            .insert(behavior_signature(ops), domain.to_ascii_lowercase());
    }

    /// Looks up a behaviour; returns the known owning domain, if any.
    pub fn attribute(&self, ops: &[ScriptOp]) -> Option<&str> {
        self.map.get(&behavior_signature(ops)).map(String::as_str)
    }

    /// Number of known signatures.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{AttrChanges, CookieAttrs, Encoding, SegmentPolicy};
    use crate::value::ValueSpec;
    use cg_http::RequestKind;

    fn tracker_ops(delay: u64, value: ValueSpec) -> Vec<ScriptOp> {
        vec![
            ScriptOp::SetCookie {
                name: "_tid".into(),
                value,
                attrs: CookieAttrs::default(),
            },
            ScriptOp::Defer {
                delay_ms: delay,
                ops: vec![ScriptOp::Exfiltrate {
                    dest_host: "sink.tracker.io".into(),
                    path: "/c".into(),
                    selection: CookieSelection::All,
                    segment: SegmentPolicy::Full,
                    encoding: Encoding::Plain,
                    kind: RequestKind::Image,
                    via_store: false,
                }],
                lose_attribution: false,
            },
        ]
    }

    #[test]
    fn signature_ignores_values_and_timing() {
        // Same structure, different generated values and delays → same
        // signature (obfuscation robustness).
        let a = behavior_signature(&tracker_ops(400, ValueSpec::Uuid));
        let b = behavior_signature(&tracker_ops(1300, ValueSpec::HexId(32)));
        assert_eq!(a, b);
    }

    #[test]
    fn signature_distinguishes_structure() {
        let a = behavior_signature(&tracker_ops(400, ValueSpec::Uuid));
        let mut other = tracker_ops(400, ValueSpec::Uuid);
        other.push(ScriptOp::DeleteCookie {
            target: "_fbp".into(),
            via_store: false,
        });
        assert_ne!(a, behavior_signature(&other));
        // Different cookie name → different signature.
        let renamed = vec![ScriptOp::SetCookie {
            name: "_other".into(),
            value: ValueSpec::Uuid,
            attrs: CookieAttrs::default(),
        }];
        assert_ne!(
            behavior_signature(&renamed),
            behavior_signature(&tracker_ops(0, ValueSpec::Uuid)[..1])
        );
    }

    #[test]
    fn overwrite_rolls_do_not_change_signature() {
        let a = vec![ScriptOp::OverwriteCookie {
            target: "_fbp".into(),
            value: ValueSpec::FbpStyle,
            changes: AttrChanges::value_and_expiry(),
            blind: false,
        }];
        let b = vec![ScriptOp::OverwriteCookie {
            target: "_fbp".into(),
            value: ValueSpec::HexId(64),
            changes: AttrChanges {
                value: true,
                expires: false,
                domain: true,
                path: false,
            },
            blind: true,
        }];
        assert_eq!(behavior_signature(&a), behavior_signature(&b));
    }

    #[test]
    fn db_learns_and_attributes() {
        let mut db = SignatureDb::new();
        db.learn("tracker.io", &tracker_ops(400, ValueSpec::Uuid));
        assert_eq!(db.len(), 1);
        // An "inline copy" with different jitter still attributes.
        assert_eq!(
            db.attribute(&tracker_ops(900, ValueSpec::HexId(16))),
            Some("tracker.io")
        );
        assert_eq!(db.attribute(&[ScriptOp::ReadAllCookies]), None);
    }
}
