//! The script engine: behaviour programs, execution contexts with stack
//! traces, and a deterministic event loop.
//!
//! Real tracker scripts are JavaScript; the simulator represents each
//! script as a *behaviour program* — a list of [`ScriptOp`]s covering the
//! operations the paper instruments: `document.cookie` reads/writes,
//! `CookieStore` calls, outbound requests (exfiltration), dynamic script
//! injection (transitive inclusion), DOM manipulation, and deferred
//! (async) work.
//!
//! The engine interprets programs against a [`Platform`] — implemented by
//! the browser simulator — so every cookie access flows through the same
//! interception point the paper's extension wraps. Attribution mirrors the
//! paper (§4.1, §6.2): every platform call carries the *last external
//! script URL on the execution stack*; deferred callbacks may lose the
//! stack (§8's async-attribution limitation) and then attribute as inline.
//!
//! **Layer:** ecosystem (programs authored by `cg-webgen`/`cg-scenarios`,
//! interpreted against `cg-browser`'s `Platform`). **Invariant:** the
//! event loop is deterministic — (time, FIFO) macrotask order, full
//! microtask drain between macrotasks — so a visit is a pure function
//! of (blueprint, seed). **Entry points:** `ScriptOp`, `EventLoop`,
//! `Platform`.

pub mod behavior;
pub mod context;
pub mod event_loop;
pub mod platform;
pub mod signature;
pub mod value;

pub use behavior::{
    AttrChanges, CookieAttrs, CookieSelection, DomMutationKind, Encoding, ScriptOp, SegmentPolicy,
};
pub use context::{Attribution, StackFrame};
pub use event_loop::{EventLoop, RunStats, ScriptExecution};
pub use platform::{CookieChangeNotice, Platform};
pub use signature::{behavior_signature, SignatureDb};
pub use value::ValueSpec;
