//! Execution contexts: the stack-trace machinery behind attribution.
//!
//! The paper's extension infers the acting script by "analyzing the
//! JavaScript stack trace to locate the last external script URL" (§6.2).
//! The engine reproduces that exactly: each running task carries a stack
//! of [`StackFrame`]s; attribution walks the stack from the innermost
//! frame outward and takes the first frame with an external URL.

use cg_dom::ScriptId;
use cg_url::Url;
use serde::{Deserialize, Serialize};

/// One frame on the execution stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackFrame {
    /// The script this frame belongs to.
    pub script_id: ScriptId,
    /// The script's URL; `None` for inline scripts.
    pub url: Option<Url>,
}

/// What a platform call knows about its caller — the paper's attribution
/// tuple: the acting script, its URL/domain as recovered from the stack,
/// and the simulated time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// The innermost script id on the stack, if the stack survived.
    pub script_id: Option<ScriptId>,
    /// The last external script URL on the stack (`None` ⇒ the call
    /// attributes as inline/unknown — either a genuine inline script or
    /// an async callback whose stack was lost).
    pub script_url: Option<Url>,
    /// Milliseconds since the page visit started.
    pub now_ms: u64,
    /// True when this call runs in a deferred task whose stack was lost
    /// (§8 async-attribution limitation).
    pub async_lost: bool,
}

impl Attribution {
    /// The attributable eTLD+1 of the acting script.
    pub fn script_domain(&self) -> Option<String> {
        self.script_url
            .as_ref()
            .and_then(|u| u.registrable_domain())
    }

    /// Builds the attribution for a stack at time `now_ms`.
    pub fn from_stack(stack: &[StackFrame], now_ms: u64, async_lost: bool) -> Attribution {
        let script_id = stack.last().map(|f| f.script_id);
        // Innermost-out: the last external script URL.
        let script_url = stack.iter().rev().find_map(|f| f.url.clone());
        Attribution {
            script_id,
            script_url,
            now_ms,
            async_lost,
        }
    }

    /// An attribution representing a lost stack.
    pub fn lost(now_ms: u64) -> Attribution {
        Attribution {
            script_id: None,
            script_url: None,
            now_ms,
            async_lost: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn innermost_external_frame_wins() {
        let stack = vec![
            StackFrame {
                script_id: 0,
                url: Some(url("https://gtm.com/gtm.js")),
            },
            StackFrame {
                script_id: 1,
                url: Some(url("https://ga.com/analytics.js")),
            },
        ];
        let at = Attribution::from_stack(&stack, 5, false);
        assert_eq!(at.script_id, Some(1));
        assert_eq!(at.script_domain().as_deref(), Some("ga.com"));
    }

    #[test]
    fn inline_frames_are_skipped_for_url() {
        // An inline handler called from an external script still
        // attributes to the external script (the "last external URL").
        let stack = vec![
            StackFrame {
                script_id: 0,
                url: Some(url("https://tracker.com/t.js")),
            },
            StackFrame {
                script_id: 1,
                url: None,
            },
        ];
        let at = Attribution::from_stack(&stack, 0, false);
        assert_eq!(at.script_domain().as_deref(), Some("tracker.com"));
        assert_eq!(at.script_id, Some(1));
    }

    #[test]
    fn all_inline_stack_attributes_as_unknown() {
        let stack = vec![StackFrame {
            script_id: 3,
            url: None,
        }];
        let at = Attribution::from_stack(&stack, 0, false);
        assert_eq!(at.script_domain(), None);
    }

    #[test]
    fn lost_stack() {
        let at = Attribution::lost(9);
        assert!(at.async_lost);
        assert_eq!(at.script_id, None);
        assert_eq!(at.script_domain(), None);
    }
}
