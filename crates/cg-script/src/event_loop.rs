//! The deterministic event loop and behaviour interpreter.
//!
//! Semantics follow the browser event-loop model: macrotasks run in
//! (time, FIFO) order; the microtask queue drains completely between
//! macrotasks; `Defer` schedules a future macrotask; injected scripts run
//! as fresh tasks with their own stack (matching how a real stack trace
//! looks when an injected script executes later).

use crate::behavior::{CookieSelection, Encoding, ScriptOp, SegmentPolicy};
use crate::context::{Attribution, StackFrame};
use crate::platform::Platform;
use crate::value::split_segments;
use cg_dom::ScriptId;
use cg_url::query::percent_encode;
use cg_url::Url;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A script resolved and ready to run: identity plus its program.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptExecution {
    /// Document-level script id.
    pub script_id: ScriptId,
    /// Source URL (`None` = inline).
    pub url: Option<Url>,
    /// The behaviour program.
    pub ops: Vec<ScriptOp>,
}

#[derive(Debug)]
struct Task {
    at_ms: u64,
    seq: u64,
    stack: Vec<StackFrame>,
    async_lost: bool,
    ops: Vec<ScriptOp>,
}

/// A registered CookieStore `change`-event listener.
#[derive(Debug, Clone)]
struct ChangeListener {
    stack: Vec<StackFrame>,
    async_lost: bool,
    watch: Option<String>,
    deletions_only: bool,
    ops: Vec<ScriptOp>,
}

/// Statistics from one event-loop run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Macro- plus microtasks executed.
    pub tasks_run: usize,
    /// Individual ops executed.
    pub ops_run: usize,
    /// Scripts dynamically injected during the run.
    pub scripts_injected: usize,
    /// CookieStore `change` events delivered to listeners.
    pub change_events_fired: usize,
    /// True when the op budget was exhausted (runaway-behaviour guard).
    pub truncated: bool,
    /// Simulated time when the loop went idle.
    pub finished_at_ms: u64,
}

/// The event loop. Time is virtual: it advances to each task's deadline.
pub struct EventLoop {
    /// Wall-clock epoch (unix ms) corresponding to `now_ms == 0`; cookie
    /// values embed realistic timestamps derived from it.
    wall_epoch_ms: i64,
    now_ms: u64,
    seq: u64,
    macrotasks: BinaryHeap<Reverse<TaskKey>>,
    tasks: Vec<Option<Task>>,
    microtasks: VecDeque<Task>,
    listeners: Vec<ChangeListener>,
    max_ops: usize,
}

/// Heap key: (time, sequence) → index into `tasks`.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct TaskKey(u64, u64, usize);

impl EventLoop {
    /// Creates an empty loop whose virtual time 0 corresponds to
    /// `wall_epoch_ms` (unix milliseconds).
    pub fn new(wall_epoch_ms: i64) -> EventLoop {
        EventLoop {
            wall_epoch_ms,
            now_ms: 0,
            seq: 0,
            macrotasks: BinaryHeap::new(),
            tasks: Vec::new(),
            microtasks: VecDeque::new(),
            listeners: Vec::new(),
            max_ops: 500_000,
        }
    }

    /// Caps the number of ops a run may execute (default 500k).
    pub fn with_max_ops(mut self, max_ops: usize) -> EventLoop {
        self.max_ops = max_ops;
        self
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Wall-clock time for value generation.
    pub fn wall_now_ms(&self) -> i64 {
        self.wall_epoch_ms + self.now_ms as i64
    }

    /// Schedules a script execution as a macrotask at `at_ms`.
    pub fn push_script(&mut self, exec: ScriptExecution, at_ms: u64) {
        let stack = vec![StackFrame {
            script_id: exec.script_id,
            url: exec.url.clone(),
        }];
        self.push_task(Task {
            at_ms,
            seq: 0,
            stack,
            async_lost: false,
            ops: exec.ops,
        });
    }

    fn push_task(&mut self, mut task: Task) {
        task.seq = self.seq;
        self.seq += 1;
        let idx = self.tasks.len();
        self.macrotasks
            .push(Reverse(TaskKey(task.at_ms, task.seq, idx)));
        self.tasks.push(Some(task));
    }

    /// Runs until both queues are empty (or the op budget is exhausted).
    pub fn run<P: Platform, R: Rng>(&mut self, platform: &mut P, rng: &mut R) -> RunStats {
        let mut stats = RunStats::default();
        loop {
            // Microtasks drain fully before the next macrotask.
            while let Some(task) = self.microtasks.pop_front() {
                stats.tasks_run += 1;
                self.exec_task(platform, rng, task, &mut stats);
                if stats.truncated {
                    stats.finished_at_ms = self.now_ms;
                    return stats;
                }
                self.dispatch_cookie_changes(platform, &mut stats);
            }
            let Some(Reverse(TaskKey(at, _, idx))) = self.macrotasks.pop() else {
                break;
            };
            let task = self.tasks[idx].take().expect("task taken twice");
            self.now_ms = self.now_ms.max(at);
            stats.tasks_run += 1;
            self.exec_task(platform, rng, task, &mut stats);
            if stats.truncated {
                break;
            }
            self.dispatch_cookie_changes(platform, &mut stats);
        }
        stats.finished_at_ms = self.now_ms;
        stats
    }

    /// Drains the platform's change feed and schedules the handler
    /// programs of matching listeners. Listeners observe only changes
    /// the platform deems visible to them (CookieGuard's read policy),
    /// so respawning trackers cannot watch foreign cookies.
    fn dispatch_cookie_changes<P: Platform>(&mut self, platform: &mut P, stats: &mut RunStats) {
        let changes = platform.drain_cookie_changes();
        if changes.is_empty() || self.listeners.is_empty() {
            return;
        }
        // Listeners are snapshotted so a handler registering another
        // listener does not observe the change that triggered it.
        let listeners = self.listeners.clone();
        for change in &changes {
            for listener in &listeners {
                if let Some(watch) = &listener.watch {
                    if watch != &change.name {
                        continue;
                    }
                }
                if listener.deletions_only && !change.deleted {
                    continue;
                }
                let at = Attribution::from_stack(&listener.stack, self.now_ms, listener.async_lost);
                if !platform.cookie_change_visible(&at, &change.name) {
                    continue;
                }
                stats.change_events_fired += 1;
                self.push_task(Task {
                    at_ms: self.now_ms,
                    seq: 0,
                    stack: listener.stack.clone(),
                    async_lost: listener.async_lost,
                    ops: listener.ops.clone(),
                });
            }
        }
    }

    fn exec_task<P: Platform, R: Rng>(
        &mut self,
        platform: &mut P,
        rng: &mut R,
        task: Task,
        stats: &mut RunStats,
    ) {
        let at = Attribution::from_stack(&task.stack, self.now_ms, task.async_lost);
        for op in task.ops {
            if stats.ops_run >= self.max_ops {
                stats.truncated = true;
                return;
            }
            stats.ops_run += 1;
            self.exec_op(platform, rng, &task.stack, task.async_lost, &at, op, stats);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_op<P: Platform, R: Rng>(
        &mut self,
        platform: &mut P,
        rng: &mut R,
        stack: &[StackFrame],
        async_lost: bool,
        at: &Attribution,
        op: ScriptOp,
        stats: &mut RunStats,
    ) {
        let wall = self.wall_now_ms();
        match op {
            ScriptOp::SetCookie { name, value, attrs } => {
                let v = value.generate(wall, rng);
                let mut raw = format!("{name}={v}");
                if let Some(ma) = attrs.max_age_s {
                    raw.push_str(&format!("; Max-Age={ma}"));
                }
                if attrs.site_wide {
                    raw.push_str(&format!("; Domain={}", platform.site_domain()));
                }
                if let Some(p) = &attrs.path {
                    raw.push_str(&format!("; Path={p}"));
                }
                if attrs.secure {
                    raw.push_str("; Secure");
                }
                platform.document_cookie_set(at, &raw);
            }
            ScriptOp::CookieStoreSet {
                name,
                value,
                expires_in_ms,
            } => {
                let v = value.generate(wall, rng);
                let abs = expires_in_ms.map(|rel| wall + rel);
                platform.cookie_store_set(at, &name, &v, abs);
            }
            ScriptOp::ReadAllCookies => {
                let _ = platform.document_cookie_get(at);
            }
            ScriptOp::CookieStoreGet { name } => {
                let _ = platform.cookie_store_get(at, &name);
            }
            ScriptOp::CookieStoreGetAll => {
                let _ = platform.cookie_store_get_all(at);
            }
            ScriptOp::OverwriteCookie {
                target,
                value,
                changes,
                blind,
            } => {
                let jar = parse_pairs(&platform.document_cookie_get(at));
                let existing = jar
                    .iter()
                    .find(|(n, _)| n == &target)
                    .map(|(_, v)| v.clone());
                if existing.is_none() && !blind {
                    return;
                }
                let new_value = if changes.value {
                    value.generate(wall, rng)
                } else {
                    existing.unwrap_or_else(|| value.generate(wall, rng))
                };
                let mut raw = format!("{target}={new_value}");
                if changes.expires {
                    raw.push_str("; Max-Age=31536000");
                }
                if changes.domain {
                    raw.push_str(&format!("; Domain={}", platform.site_domain()));
                }
                if changes.path {
                    raw.push_str("; Path=/");
                }
                platform.document_cookie_set(at, &raw);
            }
            ScriptOp::DeleteCookie { target, via_store } => {
                if via_store {
                    platform.cookie_store_delete(at, &target);
                } else {
                    platform.document_cookie_set(at, &format!("{target}=; Max-Age=0"));
                }
            }
            ScriptOp::Exfiltrate {
                dest_host,
                path,
                selection,
                segment,
                encoding,
                kind,
                via_store,
            } => {
                let pairs = if via_store {
                    platform.cookie_store_get_all(at)
                } else {
                    parse_pairs(&platform.document_cookie_get(at))
                };
                let selected: Vec<(String, String)> = match &selection {
                    CookieSelection::All => pairs,
                    CookieSelection::Named(names) => pairs
                        .into_iter()
                        .filter(|(n, _)| names.contains(n))
                        .collect(),
                    CookieSelection::Sample(pct) => {
                        let p = f64::from(*pct).clamp(0.0, 100.0) / 100.0;
                        pairs.into_iter().filter(|_| rng.gen_bool(p)).collect()
                    }
                };
                if selected.is_empty() {
                    return;
                }
                let mut query = String::new();
                for (name, value) in &selected {
                    let taken = match segment {
                        SegmentPolicy::Full => value.clone(),
                        SegmentPolicy::LongestSegment => split_segments(value)
                            .into_iter()
                            .max_by_key(|s| s.len())
                            .map(str::to_string)
                            .unwrap_or_else(|| value.clone()),
                    };
                    let encoded = encode_value(&taken, encoding);
                    if !query.is_empty() {
                        query.push('&');
                    }
                    query.push_str(&format!("{}={}", name, percent_encode(&encoded)));
                }
                // A short request nonce, never colliding with cookie
                // identifier segments (those are ≥8 chars).
                let nonce: u32 = rng.gen_range(0x1000..0xFFFF);
                let url = format!("https://{dest_host}{path}?r={nonce:04x}&{query}");
                platform.send_request(at, &url, kind);
            }
            ScriptOp::SendRequest {
                dest_host,
                path,
                kind,
            } => {
                let url = format!("https://{dest_host}{path}");
                platform.send_request(at, &url, kind);
            }
            ScriptOp::InjectScript { url } => {
                if let Some(exec) = platform.resolve_injected_script(at, &url) {
                    stats.scripts_injected += 1;
                    let stack = vec![StackFrame {
                        script_id: exec.script_id,
                        url: exec.url.clone(),
                    }];
                    self.push_task(Task {
                        at_ms: self.now_ms,
                        seq: 0,
                        stack,
                        async_lost: false,
                        ops: exec.ops,
                    });
                }
            }
            ScriptOp::DomInsert { tag } => platform.dom_insert(at, &tag),
            ScriptOp::DomMutate {
                kind,
                foreign_target,
            } => platform.dom_mutate(at, kind, foreign_target),
            ScriptOp::Defer {
                delay_ms,
                ops,
                lose_attribution,
            } => {
                let (stack, lost) = if lose_attribution {
                    (Vec::new(), true)
                } else {
                    (stack.to_vec(), async_lost)
                };
                self.push_task(Task {
                    at_ms: self.now_ms + delay_ms,
                    seq: 0,
                    stack,
                    async_lost: lost,
                    ops,
                });
            }
            ScriptOp::Microtask { ops } => {
                self.microtasks.push_back(Task {
                    at_ms: self.now_ms,
                    seq: 0,
                    stack: stack.to_vec(),
                    async_lost,
                    ops,
                });
            }
            ScriptOp::IfCookieVisible {
                cookie,
                then_ops,
                else_ops,
            } => {
                let pairs = parse_pairs(&platform.document_cookie_get(at));
                let visible = pairs.iter().any(|(n, _)| n == &cookie);
                let branch = if visible { then_ops } else { else_ops };
                if !branch.is_empty() {
                    self.microtasks.push_back(Task {
                        at_ms: self.now_ms,
                        seq: 0,
                        stack: stack.to_vec(),
                        async_lost,
                        ops: branch,
                    });
                }
            }
            ScriptOp::CopyCookie {
                from,
                to,
                max_age_s,
                site_wide,
            } => {
                let pairs = parse_pairs(&platform.document_cookie_get(at));
                let Some((_, value)) = pairs.into_iter().find(|(n, _)| n == &from) else {
                    return; // source invisible: the sync chain is cut here
                };
                let mut raw = format!("{to}={value}");
                if let Some(ma) = max_age_s {
                    raw.push_str(&format!("; Max-Age={ma}"));
                }
                if site_wide {
                    raw.push_str(&format!("; Domain={}", platform.site_domain()));
                }
                platform.document_cookie_set(at, &raw);
            }
            ScriptOp::Probe { feature, cookie } => {
                let pairs = parse_pairs(&platform.document_cookie_get(at));
                let ok = pairs.iter().any(|(n, _)| n == &cookie);
                platform.probe_result(at, &feature, &cookie, ok);
            }
            ScriptOp::OnCookieChange {
                watch,
                deletions_only,
                ops,
            } => {
                self.listeners.push(ChangeListener {
                    stack: stack.to_vec(),
                    async_lost,
                    watch,
                    deletions_only,
                    ops,
                });
            }
        }
    }
}

/// Parses a `document.cookie` string into pairs.
pub fn parse_pairs(s: &str) -> Vec<(String, String)> {
    s.split(';')
        .filter_map(|chunk| {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                return None;
            }
            match chunk.split_once('=') {
                Some((n, v)) => Some((n.trim().to_string(), v.trim().to_string())),
                None => Some((String::new(), chunk.to_string())),
            }
        })
        .collect()
}

fn encode_value(value: &str, encoding: Encoding) -> String {
    match encoding {
        Encoding::Plain => value.to_string(),
        Encoding::Base64 => cg_hash::b64encode_no_pad(value.as_bytes()),
        Encoding::Md5 => cg_hash::md5_hex(value.as_bytes()),
        Encoding::Sha1 => cg_hash::sha1_hex(value.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{AttrChanges, CookieAttrs, DomMutationKind};
    use crate::value::ValueSpec;
    use cg_http::RequestKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    use crate::platform::CookieChangeNotice;

    /// A minimal in-memory platform for engine tests.
    #[derive(Default)]
    struct MockPlatform {
        cookies: HashMap<String, String>,
        log: Vec<String>,
        injectable: HashMap<String, ScriptExecution>,
        changes: Vec<CookieChangeNotice>,
        /// (observer domain, cookie name) pairs whose changes are hidden.
        invisible: Vec<(String, String)>,
    }

    impl Platform for MockPlatform {
        fn site_domain(&self) -> String {
            "site.com".into()
        }
        fn document_cookie_get(&mut self, at: &Attribution) -> String {
            self.log.push(format!("get by {:?}", at.script_domain()));
            let mut pairs: Vec<_> = self.cookies.iter().collect();
            pairs.sort();
            pairs
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join("; ")
        }
        fn document_cookie_set(&mut self, at: &Attribution, raw: &str) -> bool {
            self.log
                .push(format!("set {raw} by {:?}", at.script_domain()));
            let pair = raw.split(';').next().unwrap();
            let (n, v) = pair.split_once('=').unwrap();
            let deleted = raw.contains("Max-Age=0");
            if deleted {
                self.cookies.remove(n);
            } else {
                self.cookies.insert(n.trim().into(), v.trim().into());
            }
            self.changes.push(CookieChangeNotice {
                name: n.trim().into(),
                deleted,
            });
            true
        }
        fn cookie_store_get(&mut self, _at: &Attribution, name: &str) -> Option<String> {
            self.cookies.get(name).cloned()
        }
        fn cookie_store_get_all(&mut self, _at: &Attribution) -> Vec<(String, String)> {
            let mut v: Vec<_> = self
                .cookies
                .iter()
                .map(|(a, b)| (a.clone(), b.clone()))
                .collect();
            v.sort();
            v
        }
        fn cookie_store_set(
            &mut self,
            _at: &Attribution,
            name: &str,
            value: &str,
            _e: Option<i64>,
        ) -> bool {
            self.cookies.insert(name.into(), value.into());
            true
        }
        fn cookie_store_delete(&mut self, _at: &Attribution, name: &str) -> bool {
            let removed = self.cookies.remove(name).is_some();
            if removed {
                self.changes.push(CookieChangeNotice {
                    name: name.into(),
                    deleted: true,
                });
            }
            removed
        }
        fn send_request(&mut self, at: &Attribution, url: &str, _kind: RequestKind) {
            self.log
                .push(format!("req {url} by {:?}", at.script_domain()));
        }
        fn resolve_injected_script(
            &mut self,
            _at: &Attribution,
            url: &str,
        ) -> Option<ScriptExecution> {
            self.injectable.get(url).cloned()
        }
        fn dom_insert(&mut self, _at: &Attribution, tag: &str) {
            self.log.push(format!("dom_insert {tag}"));
        }
        fn dom_mutate(&mut self, _at: &Attribution, _kind: DomMutationKind, foreign: bool) {
            self.log.push(format!("dom_mutate foreign={foreign}"));
        }
        fn probe_result(&mut self, _at: &Attribution, feature: &str, cookie: &str, ok: bool) {
            self.log.push(format!("probe {feature}/{cookie}={ok}"));
        }
        fn drain_cookie_changes(&mut self) -> Vec<CookieChangeNotice> {
            std::mem::take(&mut self.changes)
        }
        fn cookie_change_visible(&mut self, at: &Attribution, name: &str) -> bool {
            let observer = at.script_domain().unwrap_or_default();
            !self
                .invisible
                .iter()
                .any(|(o, n)| o == &observer && n == name)
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn exec(id: usize, url: &str, ops: Vec<ScriptOp>) -> ScriptExecution {
        ScriptExecution {
            script_id: id,
            url: Some(Url::parse(url).unwrap()),
            ops,
        }
    }

    #[test]
    fn set_and_read_cookie() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(1_750_000_000_000);
        el.push_script(
            exec(
                0,
                "https://ga.com/a.js",
                vec![
                    ScriptOp::SetCookie {
                        name: "_ga".into(),
                        value: ValueSpec::GaStyle,
                        attrs: CookieAttrs::default(),
                    },
                    ScriptOp::ReadAllCookies,
                ],
            ),
            0,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.ops_run, 2);
        assert!(p.cookies.contains_key("_ga"));
        assert!(p.cookies["_ga"].starts_with("GA1.1."));
    }

    #[test]
    fn exfiltrate_selected_cookie_segment_base64() {
        let mut p = MockPlatform::default();
        p.cookies
            .insert("_ga".into(), "GA1.1.444332364.1746838827".into());
        p.cookies.insert("other".into(), "zzz".into());
        let mut el = EventLoop::new(1_750_000_000_000);
        el.push_script(
            exec(
                0,
                "https://licdn.com/insight.min.js",
                vec![ScriptOp::Exfiltrate {
                    dest_host: "px.ads.linkedin.com".into(),
                    path: "/attribution_trigger".into(),
                    selection: CookieSelection::Named(vec!["_ga".into()]),
                    segment: SegmentPolicy::LongestSegment,
                    encoding: Encoding::Base64,
                    kind: RequestKind::Image,
                    via_store: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        let req = p.log.iter().find(|l| l.starts_with("req ")).unwrap();
        // longest segment is the 10-digit timestamp 1746838827
        assert!(
            req.contains(&cg_hash::b64encode_no_pad(b"1746838827")),
            "{req}"
        );
        assert!(req.contains("px.ads.linkedin.com"));
        assert!(!req.contains("zzz"));
    }

    #[test]
    fn overwrite_aborts_when_target_missing_and_not_blind() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://pubmatic.com/p.js",
                vec![ScriptOp::OverwriteCookie {
                    target: "cto_bundle".into(),
                    value: ValueSpec::HexId(64),
                    changes: AttrChanges::value_and_expiry(),
                    blind: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(!p.cookies.contains_key("cto_bundle"));
        // blind overwrite writes anyway
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://pubmatic.com/p.js",
                vec![ScriptOp::OverwriteCookie {
                    target: "cto_bundle".into(),
                    value: ValueSpec::HexId(64),
                    changes: AttrChanges::value_and_expiry(),
                    blind: true,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(p.cookies.contains_key("cto_bundle"));
    }

    #[test]
    fn delete_via_document_cookie() {
        let mut p = MockPlatform::default();
        p.cookies.insert("_fbp".into(), "fb.1.1.2".into());
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://cookie-script.com/consent.js",
                vec![ScriptOp::DeleteCookie {
                    target: "_fbp".into(),
                    via_store: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(!p.cookies.contains_key("_fbp"));
    }

    #[test]
    fn injected_script_runs_with_own_stack() {
        let mut p = MockPlatform::default();
        p.injectable.insert(
            "https://ga.com/analytics.js".into(),
            exec(
                1,
                "https://ga.com/analytics.js",
                vec![ScriptOp::SetCookie {
                    name: "_ga".into(),
                    value: ValueSpec::GaStyle,
                    attrs: CookieAttrs::default(),
                }],
            ),
        );
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://gtm.com/gtm.js",
                vec![ScriptOp::InjectScript {
                    url: "https://ga.com/analytics.js".into(),
                }],
            ),
            0,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.scripts_injected, 1);
        // The set was attributed to ga.com, not gtm.com.
        assert!(p
            .log
            .iter()
            .any(|l| l.starts_with("set _ga=") && l.contains("ga.com")));
    }

    #[test]
    fn defer_with_lost_attribution() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://t.com/t.js",
                vec![ScriptOp::Defer {
                    delay_ms: 250,
                    ops: vec![ScriptOp::SetCookie {
                        name: "late".into(),
                        value: ValueSpec::Short,
                        attrs: CookieAttrs::default(),
                    }],
                    lose_attribution: true,
                }],
            ),
            0,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.finished_at_ms, 250);
        assert!(p
            .log
            .iter()
            .any(|l| l.starts_with("set late=") && l.contains("None")));
    }

    #[test]
    fn defer_preserving_attribution() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://t.com/t.js",
                vec![ScriptOp::Defer {
                    delay_ms: 10,
                    ops: vec![ScriptOp::ReadAllCookies],
                    lose_attribution: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(p
            .log
            .iter()
            .any(|l| l.starts_with("get by Some") && l.contains("t.com")));
    }

    #[test]
    fn microtasks_run_before_next_macrotask() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://a.com/a.js",
                vec![
                    ScriptOp::Defer {
                        delay_ms: 0,
                        ops: vec![ScriptOp::DomInsert {
                            tag: "macro".into(),
                        }],
                        lose_attribution: false,
                    },
                    ScriptOp::Microtask {
                        ops: vec![ScriptOp::DomInsert {
                            tag: "micro".into(),
                        }],
                    },
                ],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        let micro = p.log.iter().position(|l| l == "dom_insert micro").unwrap();
        let macro_ = p.log.iter().position(|l| l == "dom_insert macro").unwrap();
        assert!(micro < macro_);
    }

    #[test]
    fn tasks_ordered_by_time_then_fifo() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://b.com/1.js",
                vec![ScriptOp::DomInsert {
                    tag: "second".into(),
                }],
            ),
            20,
        );
        el.push_script(
            exec(
                1,
                "https://a.com/2.js",
                vec![ScriptOp::DomInsert {
                    tag: "first".into(),
                }],
            ),
            10,
        );
        el.run(&mut p, &mut rng());
        assert_eq!(p.log, vec!["dom_insert first", "dom_insert second"]);
    }

    #[test]
    fn op_budget_truncates_runaway() {
        let mut p = MockPlatform::default();
        // A self-reinjecting script would loop forever; budget stops it.
        p.injectable.insert(
            "https://loop.com/l.js".into(),
            exec(
                1,
                "https://loop.com/l.js",
                vec![ScriptOp::InjectScript {
                    url: "https://loop.com/l.js".into(),
                }],
            ),
        );
        let mut el = EventLoop::new(0).with_max_ops(100);
        el.push_script(
            exec(
                0,
                "https://loop.com/l.js",
                vec![ScriptOp::InjectScript {
                    url: "https://loop.com/l.js".into(),
                }],
            ),
            0,
        );
        let stats = el.run(&mut p, &mut rng());
        assert!(stats.truncated);
        assert!(stats.ops_run <= 100);
    }

    #[test]
    fn probe_reports_cookie_visibility() {
        let mut p = MockPlatform::default();
        p.cookies.insert("sso_session".into(), "tok".into());
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://idp.com/sso.js",
                vec![
                    ScriptOp::Probe {
                        feature: "sso".into(),
                        cookie: "sso_session".into(),
                    },
                    ScriptOp::Probe {
                        feature: "cart".into(),
                        cookie: "cart_id".into(),
                    },
                ],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(p.log.contains(&"probe sso/sso_session=true".to_string()));
        assert!(p.log.contains(&"probe cart/cart_id=false".to_string()));
    }

    #[test]
    fn if_cookie_visible_branches_and_keeps_attribution() {
        let mut p = MockPlatform::default();
        p.cookies
            .insert("OptanonConsent".into(), "groups=C2".into());
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://tracker.com/t.js",
                vec![ScriptOp::IfCookieVisible {
                    cookie: "OptanonConsent".into(),
                    then_ops: vec![ScriptOp::SetCookie {
                        name: "_tid".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    }],
                    else_ops: vec![ScriptOp::DomInsert {
                        tag: "no-consent".into(),
                    }],
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(p.cookies.contains_key("_tid"));
        assert!(!p.log.contains(&"dom_insert no-consent".to_string()));
        // The branch ran under the tracker's identity, not inline.
        assert!(p
            .log
            .iter()
            .any(|l| l.starts_with("set _tid=") && l.contains("tracker.com")));

        // Gate absent: the else branch runs instead.
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://tracker.com/t.js",
                vec![ScriptOp::IfCookieVisible {
                    cookie: "OptanonConsent".into(),
                    then_ops: vec![ScriptOp::SetCookie {
                        name: "_tid".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    }],
                    else_ops: vec![ScriptOp::DomInsert {
                        tag: "no-consent".into(),
                    }],
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(!p.cookies.contains_key("_tid"));
        assert!(p.log.contains(&"dom_insert no-consent".to_string()));
    }

    #[test]
    fn copy_cookie_syncs_value_under_new_name() {
        let mut p = MockPlatform::default();
        p.cookies
            .insert("_ga".into(), "GA1.1.444332364.1746838827".into());
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://partner.com/sync.js",
                vec![ScriptOp::CopyCookie {
                    from: "_ga".into(),
                    to: "_partner_uid".into(),
                    max_age_s: Some(86_400),
                    site_wide: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert_eq!(
            p.cookies.get("_partner_uid").map(String::as_str),
            Some("GA1.1.444332364.1746838827")
        );
    }

    #[test]
    fn copy_cookie_is_noop_when_source_invisible() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://partner.com/sync.js",
                vec![ScriptOp::CopyCookie {
                    from: "_ga".into(),
                    to: "_partner_uid".into(),
                    max_age_s: None,
                    site_wide: false,
                }],
            ),
            0,
        );
        el.run(&mut p, &mut rng());
        assert!(!p.cookies.contains_key("_partner_uid"));
    }

    #[test]
    fn parse_pairs_handles_variants() {
        assert_eq!(parse_pairs(""), vec![]);
        assert_eq!(
            parse_pairs("a=1; b=2"),
            vec![("a".into(), "1".into()), ("b".into(), "2".into())]
        );
        assert_eq!(parse_pairs("lone"), vec![("".into(), "lone".into())]);
    }

    // ------------------------------------------------------------------
    // CookieStore change events
    // ------------------------------------------------------------------

    #[test]
    fn respawner_reinstates_deleted_cookie() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        // The tracker sets its identifier and watches for its deletion.
        el.push_script(
            exec(
                0,
                "https://tracker.com/t.js",
                vec![
                    ScriptOp::SetCookie {
                        name: "_tid".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    },
                    ScriptOp::OnCookieChange {
                        watch: Some("_tid".into()),
                        deletions_only: true,
                        ops: vec![ScriptOp::SetCookie {
                            name: "_tid".into(),
                            value: ValueSpec::HexId(16),
                            attrs: CookieAttrs::default(),
                        }],
                    },
                ],
            ),
            0,
        );
        // A consent manager deletes the identifier later.
        el.push_script(
            exec(
                1,
                "https://consent.io/c.js",
                vec![ScriptOp::DeleteCookie {
                    target: "_tid".into(),
                    via_store: false,
                }],
            ),
            100,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.change_events_fired, 1);
        // The respawner put the cookie back.
        assert!(p.cookies.contains_key("_tid"));
        // The respawn was attributed to the tracker (its stack survived).
        assert!(p
            .log
            .iter()
            .rev()
            .find(|l| l.starts_with("set _tid="))
            .unwrap()
            .contains("tracker.com"));
    }

    #[test]
    fn respawn_does_not_loop_on_its_own_set() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://tracker.com/t.js",
                vec![
                    ScriptOp::SetCookie {
                        name: "_tid".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    },
                    ScriptOp::OnCookieChange {
                        watch: Some("_tid".into()),
                        deletions_only: true,
                        ops: vec![ScriptOp::SetCookie {
                            name: "_tid".into(),
                            value: ValueSpec::HexId(16),
                            attrs: CookieAttrs::default(),
                        }],
                    },
                ],
            ),
            0,
        );
        el.push_script(
            exec(
                1,
                "https://consent.io/c.js",
                vec![ScriptOp::DeleteCookie {
                    target: "_tid".into(),
                    via_store: false,
                }],
            ),
            50,
        );
        let stats = el.run(&mut p, &mut rng());
        // One deletion → one event; the respawn's own Created change does
        // not re-trigger the deletions-only listener.
        assert_eq!(stats.change_events_fired, 1);
        assert!(!stats.truncated);
    }

    #[test]
    fn change_visibility_filter_blocks_foreign_observers() {
        let mut p = MockPlatform::default();
        // spy.com may not observe changes to "_secret".
        p.invisible.push(("spy.com".into(), "_secret".into()));
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://spy.com/s.js",
                vec![ScriptOp::OnCookieChange {
                    watch: None,
                    deletions_only: false,
                    ops: vec![ScriptOp::DomInsert {
                        tag: "observed".into(),
                    }],
                }],
            ),
            0,
        );
        el.push_script(
            exec(
                1,
                "https://owner.com/o.js",
                vec![
                    ScriptOp::SetCookie {
                        name: "_secret".into(),
                        value: ValueSpec::Short,
                        attrs: CookieAttrs::default(),
                    },
                    ScriptOp::SetCookie {
                        name: "_open".into(),
                        value: ValueSpec::Short,
                        attrs: CookieAttrs::default(),
                    },
                ],
            ),
            10,
        );
        let stats = el.run(&mut p, &mut rng());
        // Only the _open change was delivered.
        assert_eq!(stats.change_events_fired, 1);
        assert_eq!(
            p.log.iter().filter(|l| *l == "dom_insert observed").count(),
            1
        );
    }

    #[test]
    fn watch_and_deletions_only_filters() {
        let mut p = MockPlatform::default();
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://w.com/w.js",
                vec![ScriptOp::OnCookieChange {
                    watch: Some("a".into()),
                    deletions_only: true,
                    ops: vec![ScriptOp::DomInsert {
                        tag: "fired".into(),
                    }],
                }],
            ),
            0,
        );
        el.push_script(
            exec(
                1,
                "https://x.com/x.js",
                vec![
                    // Non-watched name: ignored.
                    ScriptOp::SetCookie {
                        name: "b".into(),
                        value: ValueSpec::Short,
                        attrs: CookieAttrs::default(),
                    },
                    // Watched name, but a creation: ignored (deletions only).
                    ScriptOp::SetCookie {
                        name: "a".into(),
                        value: ValueSpec::Short,
                        attrs: CookieAttrs::default(),
                    },
                    // Watched deletion: fires.
                    ScriptOp::DeleteCookie {
                        target: "a".into(),
                        via_store: false,
                    },
                ],
            ),
            10,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.change_events_fired, 1);
    }

    #[test]
    fn store_delete_also_feeds_change_events() {
        let mut p = MockPlatform::default();
        p.cookies.insert("k".into(), "v".into());
        let mut el = EventLoop::new(0);
        el.push_script(
            exec(
                0,
                "https://w.com/w.js",
                vec![ScriptOp::OnCookieChange {
                    watch: Some("k".into()),
                    deletions_only: true,
                    ops: vec![ScriptOp::DomInsert { tag: "gone".into() }],
                }],
            ),
            0,
        );
        el.push_script(
            exec(
                1,
                "https://x.com/x.js",
                vec![ScriptOp::DeleteCookie {
                    target: "k".into(),
                    via_store: true,
                }],
            ),
            10,
        );
        let stats = el.run(&mut p, &mut rng());
        assert_eq!(stats.change_events_fired, 1);
        assert!(p.log.contains(&"dom_insert gone".to_string()));
    }
}
