//! Cookie-value generation: the identifier formats the ecosystem uses.
//!
//! Formats follow the real cookies the paper names: `_ga`
//! (`GA1.1.<id>.<ts>`), `_fbp` (`fb.1.<ts-ms>.<id>`), `_awl`
//! (`<count>.<ts>.<session>`), consent strings, and the IAB `us_privacy`
//! string. Identifier segments are ≥8 characters so the detection
//! pipeline (§4.4) treats them as candidates; `Short` values deliberately
//! fall below the threshold.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a behaviour generates a cookie value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueSpec {
    /// A literal value.
    Fixed(String),
    /// Google-Analytics style: `GA1.1.<9-digit id>.<unix-s>`.
    GaStyle,
    /// Meta pixel style: `fb.1.<unix-ms>.<18-digit id>`.
    FbpStyle,
    /// A random lowercase-hex identifier of the given length.
    HexId(u16),
    /// A UUID-shaped identifier.
    Uuid,
    /// Admiral `_awl` style: `<count>.<unix-s>.<8-char session>`.
    CounterTimestampSession,
    /// OneTrust-style consent string (long, contains `&` and `=`).
    ConsentString,
    /// The IAB CCPA string (`1YNN`) — a consent *signal*, not an id.
    UsPrivacy,
    /// A short (<8 chars) value that can never be an identifier candidate.
    Short,
}

impl ValueSpec {
    /// Materializes a value at wall-clock `now_ms` using `rng`.
    pub fn generate<R: Rng>(&self, now_ms: i64, rng: &mut R) -> String {
        match self {
            ValueSpec::Fixed(s) => s.clone(),
            ValueSpec::GaStyle => {
                // Identifier cookies carry the timestamp of the visit on
                // which they were first minted — usually days in the past
                // (and never colliding across cookies within a page).
                let minted_s = (now_ms / 1000) - rng.gen_range(3_600i64..7_776_000);
                format!(
                    "GA1.1.{}.{}",
                    rng.gen_range(100_000_000u64..1_000_000_000),
                    minted_s
                )
            }
            ValueSpec::FbpStyle => {
                let minted_ms = now_ms - rng.gen_range(3_600_000i64..7_776_000_000);
                format!(
                    "fb.1.{}.{}",
                    minted_ms,
                    rng.gen_range(100_000_000_000_000_000u64..1_000_000_000_000_000_000)
                )
            }
            ValueSpec::HexId(len) => {
                let mut s = String::with_capacity(*len as usize);
                for _ in 0..*len {
                    s.push(char::from_digit(rng.gen_range(0..16) as u32, 16).unwrap());
                }
                s
            }
            ValueSpec::Uuid => {
                let mut hex = |n: usize| {
                    (0..n)
                        .map(|_| char::from_digit(rng.gen_range(0..16) as u32, 16).unwrap())
                        .collect::<String>()
                };
                format!("{}-{}-{}-{}-{}", hex(8), hex(4), hex(4), hex(4), hex(12))
            }
            ValueSpec::CounterTimestampSession => {
                let minted_s = (now_ms / 1000) - rng.gen_range(60i64..604_800);
                format!(
                    "{}.{}.{}-{}",
                    rng.gen_range(1..20),
                    minted_s,
                    rng.gen_range(10_000_000u64..100_000_000),
                    "x"
                )
            }
            ValueSpec::ConsentString => {
                format!(
                    "isGpcEnabled=0&datestamp={}&version=202405.1.0&browserGpcFlag=0&consentId={}&interactionCount=1&landingPath=NotLandingPage&groups=C0001%3A1%2CC0002%3A1",
                    now_ms,
                    ValueSpec::Uuid.generate(now_ms, rng)
                )
            }
            ValueSpec::UsPrivacy => "1YNN".to_string(),
            ValueSpec::Short => format!("v{}", rng.gen_range(0..100)),
        }
    }

    /// Whether values from this spec contain at least one identifier
    /// candidate (a delimiter-separated segment of ≥8 chars) — what the
    /// detection pipeline can latch onto.
    pub fn carries_identifier(&self) -> bool {
        !matches!(self, ValueSpec::UsPrivacy | ValueSpec::Short)
            && !matches!(self, ValueSpec::Fixed(s) if split_segments(s).is_empty())
    }
}

/// Splits a cookie value into identifier candidates exactly as §4.4
/// prescribes: split on non-alphanumeric delimiters, keep segments of at
/// least eight characters.
pub fn split_segments(value: &str) -> Vec<&str> {
    value
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|s| s.len() >= 8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ga_style_has_two_identifier_segments() {
        let v = ValueSpec::GaStyle.generate(1_746_838_827_000, &mut rng());
        assert!(v.starts_with("GA1.1."));
        let segs = split_segments(&v);
        assert_eq!(segs.len(), 2, "value {v}");
        assert!(segs.iter().all(|s| s.len() >= 8));
    }

    #[test]
    fn fbp_style_matches_case_study_shape() {
        // §5.4: fb.0.1746746266109.868308499845957651 — a 13-digit
        // minted-at timestamp (in the past) and an 18-digit id.
        let v = ValueSpec::FbpStyle.generate(1_746_746_266_109, &mut rng());
        let parts: Vec<&str> = v.split('.').collect();
        assert_eq!(parts[0], "fb");
        assert_eq!(parts[2].len(), 13);
        assert!(parts[2].parse::<i64>().unwrap() < 1_746_746_266_109);
        assert_eq!(parts[3].len(), 18);
    }

    #[test]
    fn short_values_carry_no_identifier() {
        let v = ValueSpec::Short.generate(0, &mut rng());
        assert!(split_segments(&v).is_empty());
        assert!(!ValueSpec::Short.carries_identifier());
        assert!(!ValueSpec::UsPrivacy.carries_identifier());
        assert!(ValueSpec::GaStyle.carries_identifier());
    }

    #[test]
    fn segment_split_matches_paper_spec() {
        assert_eq!(
            split_segments("GA1.1.444332364.1746838827"),
            vec!["444332364", "1746838827"]
        );
        assert_eq!(split_segments("short.tiny"), Vec::<&str>::new());
        assert_eq!(
            split_segments("abcdefgh|ijklmnop"),
            vec!["abcdefgh", "ijklmnop"]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ValueSpec::Uuid.generate(5, &mut rng());
        let b = ValueSpec::Uuid.generate(5, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn consent_string_is_long_and_structured() {
        let v = ValueSpec::ConsentString.generate(99, &mut rng());
        assert!(v.contains("datestamp=") && v.contains("consentId="));
        assert!(v.len() > 100);
    }
}
