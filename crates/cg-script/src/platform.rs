//! The [`Platform`] trait: everything a behaviour program can touch.
//!
//! The browser simulator (`cg-browser`) implements this trait; the
//! CookieGuard enforcement layer and the measurement instrumentation both
//! interpose at these methods — the same chokepoint the paper's extension
//! wraps with `Object.defineProperty`.

use crate::behavior::DomMutationKind;
use crate::context::Attribution;
use crate::event_loop::ScriptExecution;
use cg_http::RequestKind;

/// A jar mutation surfaced to CookieStore `change`-event listeners.
///
/// The event loop drains these from the platform after every task and
/// dispatches matching listener programs (see
/// [`crate::ScriptOp::OnCookieChange`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CookieChangeNotice {
    /// The affected cookie's name.
    pub name: String,
    /// True when the change removed the cookie (delete/evict/expire);
    /// false for creations and replacements.
    pub deleted: bool,
}

/// The web-platform surface exposed to scripts.
pub trait Platform {
    /// The visited site's registrable domain (what `Domain=`-wide cookie
    /// writes scope to).
    fn site_domain(&self) -> String;

    /// The `document.cookie` getter: the serialized cookie string the
    /// caller is allowed to see.
    fn document_cookie_get(&mut self, at: &Attribution) -> String;

    /// The `document.cookie` setter. Returns false when the write was
    /// rejected (jar validation or CookieGuard policy).
    fn document_cookie_set(&mut self, at: &Attribution, raw: &str) -> bool;

    /// `cookieStore.get(name)` → the value, if visible. `None` both when
    /// absent and when filtered.
    fn cookie_store_get(&mut self, at: &Attribution, name: &str) -> Option<String>;

    /// `cookieStore.getAll()` → `(name, value)` pairs visible to caller.
    fn cookie_store_get_all(&mut self, at: &Attribution) -> Vec<(String, String)>;

    /// `cookieStore.set(…)`. Returns false when rejected.
    fn cookie_store_set(
        &mut self,
        at: &Attribution,
        name: &str,
        value: &str,
        expires_in_ms: Option<i64>,
    ) -> bool;

    /// `cookieStore.delete(name)`. Returns false when rejected/absent.
    fn cookie_store_delete(&mut self, at: &Attribution, name: &str) -> bool;

    /// Issue an outbound request (the `Network.requestWillBeSent` event).
    fn send_request(&mut self, at: &Attribution, url: &str, kind: RequestKind);

    /// Resolve a dynamically injected script URL into an execution. The
    /// returned program runs as its own task after the current one.
    fn resolve_injected_script(&mut self, at: &Attribution, url: &str) -> Option<ScriptExecution>;

    /// Insert a DOM element owned by the caller.
    fn dom_insert(&mut self, at: &Attribution, tag: &str);

    /// Mutate a DOM element; `foreign_target` requests an element owned
    /// by a different party.
    fn dom_mutate(&mut self, at: &Attribution, kind: DomMutationKind, foreign_target: bool);

    /// Record a functional-probe outcome (breakage evaluation).
    fn probe_result(&mut self, at: &Attribution, feature: &str, cookie: &str, ok: bool);

    /// Drains the script-visible cookie changes accumulated since the
    /// last call (the CookieStore `change`-event feed). The default
    /// platform has no change feed.
    ///
    /// Implementations must exclude `HttpOnly` cookies — their changes
    /// are never observable from scripts.
    fn drain_cookie_changes(&mut self) -> Vec<CookieChangeNotice> {
        Vec::new()
    }

    /// Whether the listener registered under `at` may observe a change to
    /// cookie `name`. CookieGuard implementations answer with the same
    /// policy that filters reads, so a script cannot use change events to
    /// spy on foreign cookies it could not read. Default: visible.
    fn cookie_change_visible(&mut self, _at: &Attribution, _name: &str) -> bool {
        true
    }
}
