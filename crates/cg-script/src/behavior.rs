//! Behaviour programs: the operations a simulated script can perform.

use crate::value::ValueSpec;
use cg_http::RequestKind;
use serde::{Deserialize, Serialize};

/// Cookie attributes a `SetCookie` op may request.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieAttrs {
    /// `Max-Age` in seconds (None = session cookie).
    pub max_age_s: Option<i64>,
    /// Set `Domain=<site eTLD+1>` so the cookie is site-wide — what
    /// ghost-writing trackers do so subdomains share the identifier.
    pub site_wide: bool,
    /// Explicit path.
    pub path: Option<String>,
    /// `Secure` flag.
    pub secure: bool,
}

/// Which cookies an exfiltration op takes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CookieSelection {
    /// Everything visible in `document.cookie` (bulk exfiltration).
    All,
    /// Only the named cookies (targeted parsing, like the LinkedIn
    /// insight-tag case study).
    Named(Vec<String>),
    /// Each visible cookie independently with the given percent
    /// probability — how RTB bid payloads carry an unpredictable subset
    /// of the jar rather than a verbatim dump.
    Sample(u8),
}

/// How a value is encoded before being placed in an outbound URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// Verbatim.
    Plain,
    /// Base64 (unpadded, as in URLs).
    Base64,
    /// MD5 hex digest.
    Md5,
    /// SHA-1 hex digest.
    Sha1,
}

/// Which part of the cookie value is taken before encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentPolicy {
    /// The whole value.
    Full,
    /// The longest identifier segment (≥8 chars), like the `_ga`
    /// middle-segment extraction in §5.4. Falls back to the full value
    /// when no segment qualifies.
    LongestSegment,
}

/// Which cookie attributes an overwrite changes — the §5.5 taxonomy
/// (85.3% value, 69.4% expires, 6.0% domain, 1.2% path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrChanges {
    /// Replace the value.
    pub value: bool,
    /// Refresh / extend the expiry.
    pub expires: bool,
    /// Re-scope the `Domain` attribute.
    pub domain: bool,
    /// Change the `Path`.
    pub path: bool,
}

impl AttrChanges {
    /// The common overwrite: new value + refreshed expiry.
    pub fn value_and_expiry() -> AttrChanges {
        AttrChanges {
            value: true,
            expires: true,
            domain: false,
            path: false,
        }
    }
}

/// One operation in a behaviour program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptOp {
    /// `document.cookie = "name=value; …"`.
    SetCookie {
        /// Cookie name.
        name: String,
        /// Value generator.
        value: ValueSpec,
        /// Attributes.
        attrs: CookieAttrs,
    },
    /// `cookieStore.set({name, value, expires})`.
    CookieStoreSet {
        /// Cookie name.
        name: String,
        /// Value generator.
        value: ValueSpec,
        /// Relative expiry in ms, if any.
        expires_in_ms: Option<i64>,
    },
    /// Read the whole jar via the `document.cookie` getter.
    ReadAllCookies,
    /// `cookieStore.get(name)`.
    CookieStoreGet {
        /// Cookie name to look up.
        name: String,
    },
    /// `cookieStore.getAll()`.
    CookieStoreGetAll,
    /// Overwrite an existing cookie by name (requires knowing the name —
    /// §5.5). The op first reads the jar; if `blind` is false and the
    /// target is not visible, it aborts (the `if (getCookie(x))` idiom).
    OverwriteCookie {
        /// Target cookie name.
        target: String,
        /// Replacement value generator (used when `changes.value`).
        value: ValueSpec,
        /// Which attributes change.
        changes: AttrChanges,
        /// Write even when the target is not visible in the jar.
        blind: bool,
    },
    /// Delete a cookie by name (expiry-in-the-past via `document.cookie`,
    /// or `cookieStore.delete` when `via_store`).
    DeleteCookie {
        /// Target cookie name.
        target: String,
        /// Use the CookieStore API instead of `document.cookie`.
        via_store: bool,
    },
    /// Read cookies and transmit (a subset of) them to `dest_host` in the
    /// query string of an outbound request.
    Exfiltrate {
        /// Destination host (e.g. `px.ads.linkedin.com`).
        dest_host: String,
        /// Request path (e.g. `/attribution_trigger`).
        path: String,
        /// Which cookies to take.
        selection: CookieSelection,
        /// Segment extraction policy.
        segment: SegmentPolicy,
        /// Encoding applied to each taken value.
        encoding: Encoding,
        /// Resource type of the request (pixel, beacon, XHR…).
        kind: RequestKind,
        /// Read via `cookieStore.getAll()` instead of `document.cookie`.
        via_store: bool,
    },
    /// A plain outbound request with no cookie-derived payload
    /// (script fetches, benign API calls).
    SendRequest {
        /// Destination host.
        dest_host: String,
        /// Request path.
        path: String,
        /// Resource type.
        kind: RequestKind,
    },
    /// Dynamically inject another script (transitive inclusion). The
    /// platform resolves the URL to a behaviour and the event loop runs
    /// it after the current task.
    InjectScript {
        /// Script URL to inject.
        url: String,
    },
    /// Insert a new DOM element (owned by the acting script).
    DomInsert {
        /// Tag name.
        tag: String,
    },
    /// Mutate a DOM element; when `foreign_target` the platform picks an
    /// element owned by a different party (the §8 pilot behaviour).
    DomMutate {
        /// Mutation kind.
        kind: DomMutationKind,
        /// Target an element owned by another domain.
        foreign_target: bool,
    },
    /// Schedule `ops` to run `delay_ms` later (setTimeout). When
    /// `lose_attribution`, the callback runs with an empty stack —
    /// reproducing the async stack-trace loss of §8.
    Defer {
        /// Delay in milliseconds.
        delay_ms: u64,
        /// The deferred program.
        ops: Vec<ScriptOp>,
        /// Whether the stack trace is lost.
        lose_attribution: bool,
    },
    /// Schedule `ops` as a microtask (promise continuation): runs before
    /// the next macrotask, keeps attribution.
    Microtask {
        /// The continuation program.
        ops: Vec<ScriptOp>,
    },
    /// Functional probe: report whether `cookie` is currently readable by
    /// this script. Breakage evaluation (§7.2) keys on probe outcomes.
    Probe {
        /// Feature label (`sso`, `cart`, `chat`, …).
        feature: String,
        /// The cookie the feature depends on.
        cookie: String,
    },
    /// Branch on cookie visibility: read the jar through the
    /// `document.cookie` getter and run `then_ops` when `cookie` is
    /// visible to the calling script, `else_ops` otherwise. The chosen
    /// branch runs as a microtask (promise continuation), keeping the
    /// caller's attribution.
    ///
    /// This is the `if (getCookie(x)) …` idiom as a first-class op — the
    /// substrate for *consent-gated* behaviour (a tracker that only sets
    /// its identifier once a CMP's consent cookie is present) and for
    /// presence-probing trackers. Under CookieGuard the branch decision
    /// itself is policy-mediated: a script that cannot read the gate
    /// cookie takes the `else_ops` branch even when the cookie exists.
    IfCookieVisible {
        /// The gate cookie's name.
        cookie: String,
        /// Program run when the cookie is visible to the caller.
        then_ops: Vec<ScriptOp>,
        /// Program run when it is absent or filtered.
        else_ops: Vec<ScriptOp>,
    },
    /// Cookie syncing: read cookie `from` via `document.cookie` and
    /// re-write its *value* under the caller's own name `to` (the
    /// first hop of a cookie-sync chain — partner B adopting partner A's
    /// identifier into its own namespace before exfiltrating it). A
    /// no-op when `from` is not visible to the caller, so CookieGuard
    /// breaks the chain at the read.
    CopyCookie {
        /// Source cookie name (typically another vendor's identifier).
        from: String,
        /// Destination cookie name (the caller's own namespace).
        to: String,
        /// `Max-Age` for the copy (None = session).
        max_age_s: Option<i64>,
        /// Scope the copy to `Domain=<site>`.
        site_wide: bool,
    },
    /// Register a CookieStore `change`-event listener. Whenever a
    /// matching script-visible change occurs, `ops` run as a fresh
    /// macrotask under the registering script's identity.
    ///
    /// This is the substrate for *cookie respawning* (a tracker watching
    /// for deletion of its identifier and immediately re-setting it) and
    /// for consent managers reacting to cookie writes. Under CookieGuard,
    /// listeners only observe changes to cookies their domain may read.
    OnCookieChange {
        /// Only fire for this cookie name (None = any visible cookie).
        watch: Option<String>,
        /// Only fire for removals (deletion / eviction / expiry).
        deletions_only: bool,
        /// The handler program.
        ops: Vec<ScriptOp>,
    },
}

/// DOM mutation kinds exposed to behaviours (mirrors
/// `cg_dom::ElementMutation` minus `Insert`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomMutationKind {
    /// `innerText`/`innerHTML`.
    Content,
    /// Style changes.
    Style,
    /// Attribute/class changes.
    Attribute,
    /// Element removal.
    Remove,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_changes_preset() {
        let c = AttrChanges::value_and_expiry();
        assert!(c.value && c.expires && !c.domain && !c.path);
    }

    #[test]
    fn ops_are_cloneable_and_comparable() {
        let op = ScriptOp::Exfiltrate {
            dest_host: "px.ads.linkedin.com".into(),
            path: "/attribution_trigger".into(),
            selection: CookieSelection::Named(vec!["_ga".into()]),
            segment: SegmentPolicy::LongestSegment,
            encoding: Encoding::Base64,
            kind: RequestKind::Image,
            via_store: false,
        };
        assert_eq!(op.clone(), op);
    }
}
