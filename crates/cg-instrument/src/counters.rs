//! Service-level event counters.
//!
//! `cg-service` replays crawl traffic through tenant-routed guard
//! sessions and must prove, across arbitrary worker counts, that *every
//! issued operation executed* — the "zero dropped decisions" claim.
//! [`ServiceCounters`] is the deterministic half of that proof: every
//! field is a pure function of the workload (store contents × replay
//! passes), independent of thread interleaving, policy-swap timing, and
//! wall-clock. Two replays of the same store at different worker counts
//! must produce byte-identical `ServiceCounters`; the service smoke test
//! in CI compares them verbatim.
//!
//! Epoch-*sensitive* tallies (allow/block splits that depend on which
//! policy epoch a visit happened to pin) deliberately do **not** live
//! here — mixing them in would quietly break the byte-equality check the
//! first time a swap landed on a different visit boundary.

use serde::Serialize;

/// Deterministic operation totals for one replay (or one worker's
/// shard of it — shards [`merge`](ServiceCounters::merge) associatively).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServiceCounters {
    /// Visits replayed (sessions are opened one per visit).
    pub visits: u64,
    /// Guard sessions opened.
    pub sessions_opened: u64,
    /// Guard sessions closed. Must equal `sessions_opened` when the
    /// replay drains cleanly — an inequality means in-flight sessions
    /// were dropped.
    pub sessions_closed: u64,
    /// `authorize_write` calls issued (script/API cookie writes).
    pub write_ops: u64,
    /// `authorize_delete` calls issued.
    pub delete_ops: u64,
    /// `filter_names` calls issued (cookie reads).
    pub read_ops: u64,
    /// HTTP `Set-Cookie` headers recorded (ownership bookkeeping; not a
    /// policy decision).
    pub header_sets: u64,
    /// Total cookie names presented across all read ops (each one is a
    /// per-cookie visibility decision inside `filter_names`).
    pub cookies_presented: u64,
    /// Policy decisions executed: `write_ops + delete_ops + read_ops`.
    /// Kept explicit so a dropped decision shows up as an arithmetic
    /// mismatch rather than a silent undercount.
    pub decisions: u64,
}

/// Deterministic per-tenant slice of a replay's operation totals.
///
/// Routing is a pure function of visit rank, so — like
/// [`ServiceCounters`] — every field here is worker-count-independent
/// and lives in the byte-compared half of the replay report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct TenantCounters {
    /// Tenant index (registration order).
    pub tenant: u64,
    /// Tenant registration name.
    pub name: String,
    /// Visits routed to this tenant.
    pub visits: u64,
    /// Sessions opened on this tenant's engines (one per visit).
    pub sessions: u64,
    /// Policy decisions executed under this tenant.
    pub decisions: u64,
}

impl ServiceCounters {
    /// Element-wise sum. Associative and commutative, so per-worker
    /// shards merge to the same total in any order.
    pub fn merge(&self, other: &ServiceCounters) -> ServiceCounters {
        ServiceCounters {
            visits: self.visits + other.visits,
            sessions_opened: self.sessions_opened + other.sessions_opened,
            sessions_closed: self.sessions_closed + other.sessions_closed,
            write_ops: self.write_ops + other.write_ops,
            delete_ops: self.delete_ops + other.delete_ops,
            read_ops: self.read_ops + other.read_ops,
            header_sets: self.header_sets + other.header_sets,
            cookies_presented: self.cookies_presented + other.cookies_presented,
            decisions: self.decisions + other.decisions,
        }
    }

    /// True when every opened session closed and the decision total is
    /// consistent with the per-op counts — the replay dropped nothing.
    pub fn drained(&self) -> bool {
        self.sessions_opened == self.sessions_closed
            && self.decisions == self.write_ops + self.delete_ops + self.read_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> ServiceCounters {
        ServiceCounters {
            visits: n,
            sessions_opened: n,
            sessions_closed: n,
            write_ops: 2 * n,
            delete_ops: n / 2,
            read_ops: 3 * n,
            header_sets: n,
            cookies_presented: 9 * n,
            decisions: 2 * n + n / 2 + 3 * n,
        }
    }

    #[test]
    fn merge_is_elementwise_and_order_independent() {
        let (a, b) = (sample(4), sample(10));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).visits, 14);
        assert_eq!(a.merge(&ServiceCounters::default()), a);
    }

    #[test]
    fn drained_detects_dropped_sessions_and_decisions() {
        let ok = sample(8);
        assert!(ok.drained());
        let mut dropped = ok;
        dropped.sessions_closed -= 1;
        assert!(!dropped.drained());
        let mut lost = ok;
        lost.decisions -= 1;
        assert!(!lost.drained());
    }
}
