//! The [`Recorder`]: a `VisitLog` builder the browser calls at its
//! interception points.

use crate::events::{
    AttrChangeFlags, CookieApi, DomEvent, ProbeEvent, ReadEvent, RequestEvent, ScriptInclusion,
    SetEvent, VisitLog, WriteKind,
};
use crate::sink::EventSink;
use cg_url::Url;

/// Accumulates one visit's instrumentation log.
///
/// The runtime feeds it through the [`EventSink`] trait; the positional
/// `record_*` helpers below remain as convenience constructors for
/// tests and analysis fixtures.
#[derive(Debug, Default)]
pub struct Recorder {
    log: VisitLog,
}

impl EventSink for Recorder {
    fn cookie_set(&mut self, event: SetEvent) {
        self.log.sets.push(event);
    }

    fn cookie_read(&mut self, event: ReadEvent) {
        self.log.reads.push(event);
    }

    fn request(&mut self, event: RequestEvent) {
        self.log.requests.push(event);
    }

    fn probe(&mut self, event: ProbeEvent) {
        self.log.probes.push(event);
    }

    fn dom_mutation(&mut self, event: DomEvent) {
        self.log.dom_events.push(event);
    }

    fn inclusion(&mut self, event: ScriptInclusion) {
        self.log.inclusions.push(event);
    }
}

impl Recorder {
    /// Starts recording a visit to `site_domain` (rank for bookkeeping).
    pub fn new(site_domain: &str, rank: usize) -> Recorder {
        Recorder {
            log: VisitLog {
                site_domain: site_domain.to_string(),
                rank,
                complete: true,
                ..VisitLog::default()
            },
        }
    }

    /// Marks the visit as incomplete (crawl-failure model).
    pub fn mark_incomplete(&mut self) {
        self.log.complete = false;
    }

    /// Records a cookie write.
    #[allow(clippy::too_many_arguments)]
    pub fn record_set(
        &mut self,
        name: &str,
        value: &str,
        actor: Option<&str>,
        actor_url: Option<&str>,
        api: CookieApi,
        kind: WriteKind,
        changes: Option<AttrChangeFlags>,
        blocked: bool,
        time_ms: u64,
    ) {
        self.record_set_with_lifetime(
            name, value, actor, actor_url, api, kind, None, changes, blocked, time_ms,
        );
    }

    /// Records a cookie write with the requested lifetime (`max_age_s`,
    /// relative seconds) — what the detection pipeline reads as
    /// persistence.
    #[allow(clippy::too_many_arguments)]
    pub fn record_set_with_lifetime(
        &mut self,
        name: &str,
        value: &str,
        actor: Option<&str>,
        actor_url: Option<&str>,
        api: CookieApi,
        kind: WriteKind,
        max_age_s: Option<i64>,
        changes: Option<AttrChangeFlags>,
        blocked: bool,
        time_ms: u64,
    ) {
        self.log.sets.push(SetEvent {
            name: name.to_string(),
            value: value.to_string(),
            actor: actor.map(str::to_string),
            actor_url: actor_url.map(str::to_string),
            api,
            kind,
            max_age_s,
            changes,
            blocked,
            time_ms,
        });
    }

    /// Records a cookie read.
    pub fn record_read(
        &mut self,
        actor: Option<&str>,
        api: CookieApi,
        cookies: Vec<(String, String)>,
        filtered_count: usize,
        time_ms: u64,
    ) {
        self.log.reads.push(ReadEvent {
            actor: actor.map(str::to_string),
            api,
            cookies,
            filtered_count,
            time_ms,
        });
    }

    /// Records an outbound request. `cookie_header` is the `Cookie:`
    /// value the browser attached (None/empty = nothing matched).
    pub fn record_request(
        &mut self,
        url: &str,
        kind: cg_http::RequestKind,
        initiator_url: Option<&Url>,
        first_party: &str,
        cookie_header: Option<&str>,
        time_ms: u64,
    ) {
        self.log.requests.push(RequestEvent::observed(
            url,
            kind,
            initiator_url,
            first_party,
            cookie_header,
            time_ms,
        ));
    }

    /// Records a functional-probe outcome.
    pub fn record_probe(&mut self, feature: &str, cookie: &str, ok: bool, actor: Option<&str>) {
        self.log.probes.push(ProbeEvent {
            feature: feature.to_string(),
            cookie: cookie.to_string(),
            ok,
            actor: actor.map(str::to_string),
        });
    }

    /// Records a DOM mutation (`blocked` = stopped by the DOM guard).
    pub fn record_dom(&mut self, actor: Option<&str>, owner: &str, kind: &str, blocked: bool) {
        self.log.dom_events.push(DomEvent {
            actor: actor.map(str::to_string),
            owner: owner.to_string(),
            kind: kind.to_string(),
            blocked,
        });
    }

    /// Records a script inclusion.
    pub fn record_inclusion(&mut self, url: Option<&str>, direct: bool) {
        self.log
            .inclusions
            .push(ScriptInclusion::observed(url, direct));
    }

    /// Finishes recording and returns the log.
    pub fn finish(self) -> VisitLog {
        self.log
    }

    /// Peeks at the log while recording (tests).
    pub fn log(&self) -> &VisitLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_all_event_kinds() {
        let mut r = Recorder::new("site.com", 7);
        r.record_set(
            "a",
            "1",
            Some("t.com"),
            Some("https://t.com/t.js"),
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            5,
        );
        r.record_read(
            Some("t.com"),
            CookieApi::DocumentCookie,
            vec![("a".into(), "1".into())],
            0,
            6,
        );
        let script = Url::parse("https://t.com/t.js").unwrap();
        r.record_request(
            "https://x.dest.io/p?a=1",
            cg_http::RequestKind::Image,
            Some(&script),
            "site.com",
            Some("a=1; b=2"),
            7,
        );
        r.record_probe("sso", "sess", true, Some("idp.com"));
        r.record_dom(Some("ads.com"), "site.com", "content", false);
        r.record_inclusion(Some("https://t.com/t.js"), true);
        r.record_inclusion(None, true);

        let log = r.finish();
        assert_eq!(log.site_domain, "site.com");
        assert_eq!(log.rank, 7);
        assert!(log.complete);
        assert_eq!(log.sets.len(), 1);
        assert_eq!(log.reads.len(), 1);
        assert_eq!(log.requests.len(), 1);
        assert_eq!(log.requests[0].dest_domain.as_deref(), Some("dest.io"));
        assert_eq!(log.requests[0].initiator.as_deref(), Some("t.com"));
        assert_eq!(log.probes.len(), 1);
        assert_eq!(log.dom_events.len(), 1);
        assert_eq!(log.inclusions.len(), 2);
        assert_eq!(log.inclusions[1].url, "<inline>");
    }

    #[test]
    fn incomplete_marking() {
        let mut r = Recorder::new("site.com", 1);
        r.mark_incomplete();
        assert!(!r.finish().complete);
    }
}
