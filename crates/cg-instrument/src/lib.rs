//! The measurement layer — this reproduction's analog of the paper's
//! instrumentation extension (§4.1).
//!
//! The extension wraps `document.cookie` with `Object.defineProperty`,
//! overrides the `CookieStore` methods, watches `Set-Cookie` headers via
//! `webRequest.onHeadersReceived`, and attributes outbound requests with
//! the debugger protocol. Here, the browser simulator calls into a
//! [`Recorder`] from exactly those interception points, producing a
//! [`VisitLog`] per site visit. The analysis framework (`cg-analysis`)
//! consumes only these logs — it never peeks at simulator internals, so
//! the measurement has the same epistemic position as the paper's.
//!
//! **Layer:** measurement (written by `cg-browser`, read by
//! `cg-analysis`). **Invariant:** events carry resolved *names*, never
//! interned ids, and the wire format is stable across refactors (the
//! access-layer equivalence test pins it). **Entry points:**
//! `Recorder`, `VisitLog`, `EventSink`.

pub mod counters;
pub mod events;
pub mod recorder;
pub mod sink;

pub use counters::{ServiceCounters, TenantCounters};
pub use events::{
    AttrChangeFlags, CookieApi, DomEvent, ProbeEvent, ReadEvent, RequestEvent, ScriptInclusion,
    SetEvent, VisitLog, WriteKind,
};
pub use recorder::Recorder;
pub use sink::{EventSink, NullSink};
