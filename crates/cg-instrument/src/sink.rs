//! The [`EventSink`] trait: the single boundary through which runtime
//! code emits instrumentation events.
//!
//! Historically every interception point called a matching
//! `Recorder::record_*` method with a long positional argument list,
//! which meant each caller re-synthesized event structs field by field
//! — and could silently get one wrong. The sink inverts that: events
//! are constructed *once*, by the layer that owns the semantics (the
//! cookie access layer builds [`SetEvent`]/[`ReadEvent`]; the browser
//! builds request/DOM/probe/inclusion events via the constructors on
//! the event types), and the sink merely receives them.
//!
//! Two implementations ship here:
//!
//! * [`Recorder`](crate::Recorder) — accumulates a
//!   [`VisitLog`](crate::VisitLog) (the measurement path);
//! * [`NullSink`] — discards everything (vanilla crawls and
//!   micro-benchmarks that want enforcement without logging cost).

use crate::events::{DomEvent, ProbeEvent, ReadEvent, RequestEvent, ScriptInclusion, SetEvent};

/// Receives fully-constructed instrumentation events.
///
/// Implementors only store or forward; they must not reinterpret event
/// contents. Event *construction* belongs to the emitting layer (see
/// the constructors on the event types and
/// `cookieguard_core::GuardedJar`).
pub trait EventSink {
    /// A cookie write (create / overwrite / delete), blocked or applied.
    fn cookie_set(&mut self, event: SetEvent);
    /// A cookie read (`document.cookie` getter, CookieStore get/getAll).
    fn cookie_read(&mut self, event: ReadEvent);
    /// An outbound network request.
    fn request(&mut self, event: RequestEvent);
    /// A functional-probe outcome.
    fn probe(&mut self, event: ProbeEvent);
    /// A DOM mutation (applied or blocked by the DOM guard).
    fn dom_mutation(&mut self, event: DomEvent);
    /// A script observed in the main frame.
    fn inclusion(&mut self, event: ScriptInclusion);
}

/// An [`EventSink`] that drops every event — the zero-cost sink for
/// guard-only runs (enforcement without measurement).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn cookie_set(&mut self, _event: SetEvent) {}
    fn cookie_read(&mut self, _event: ReadEvent) {}
    fn request(&mut self, _event: RequestEvent) {}
    fn probe(&mut self, _event: ProbeEvent) {}
    fn dom_mutation(&mut self, _event: DomEvent) {}
    fn inclusion(&mut self, _event: ScriptInclusion) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CookieApi;
    use crate::Recorder;

    fn read_event() -> ReadEvent {
        ReadEvent {
            actor: Some("t.com".into()),
            api: CookieApi::DocumentCookie,
            cookies: vec![("a".into(), "1".into())],
            filtered_count: 0,
            time_ms: 5,
        }
    }

    #[test]
    fn recorder_sink_accumulates() {
        let mut r = Recorder::new("site.com", 1);
        let sink: &mut dyn EventSink = &mut r;
        sink.cookie_read(read_event());
        assert_eq!(r.log().reads.len(), 1);
    }

    #[test]
    fn null_sink_discards() {
        let mut n = NullSink;
        let sink: &mut dyn EventSink = &mut n;
        sink.cookie_read(read_event());
        // Nothing to observe — the call simply must not panic.
    }
}
