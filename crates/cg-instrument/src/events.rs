//! Log event types.

use cg_http::RequestKind;
use serde::{Deserialize, Serialize};

/// Which script-facing API an operation used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CookieApi {
    /// The legacy string interface.
    DocumentCookie,
    /// The structured `CookieStore` API.
    CookieStore,
    /// An HTTP `Set-Cookie` response header.
    HttpHeader,
}

/// The semantic kind of a write: what the measurement distinguishes in
/// Table 1 (set vs. overwrite vs. delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteKind {
    /// A brand-new cookie.
    Create,
    /// An existing cookie replaced.
    Overwrite,
    /// An existing cookie removed (expiry-in-the-past or
    /// `cookieStore.delete`).
    Delete,
}

/// Which attributes an overwrite changed (§5.5's taxonomy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrChangeFlags {
    /// Value changed.
    pub value: bool,
    /// Expiry changed.
    pub expires: bool,
    /// Domain attribute changed.
    pub domain: bool,
    /// Path changed.
    pub path: bool,
}

/// A cookie write (create/overwrite/delete) observed at the API boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetEvent {
    /// Cookie name.
    pub name: String,
    /// Written value (empty for deletes).
    pub value: String,
    /// eTLD+1 of the acting script (None = inline/unattributed); for
    /// `HttpHeader` events, the responding server's eTLD+1.
    pub actor: Option<String>,
    /// Full URL of the acting script, when attributable.
    pub actor_url: Option<String>,
    /// The API used.
    pub api: CookieApi,
    /// Create / overwrite / delete.
    pub kind: WriteKind,
    /// Requested lifetime in seconds (`Max-Age`, or derived from
    /// `Expires`); `None` = session cookie or unrecorded.
    pub max_age_s: Option<i64>,
    /// Attribute changes (overwrites only).
    pub changes: Option<AttrChangeFlags>,
    /// True when CookieGuard blocked the operation (the write never
    /// reached the jar).
    pub blocked: bool,
    /// Visit-relative time.
    pub time_ms: u64,
}

/// A cookie read observed at the API boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadEvent {
    /// eTLD+1 of the acting script (None = inline/unattributed).
    pub actor: Option<String>,
    /// The API used.
    pub api: CookieApi,
    /// The `(name, value)` pairs the caller received.
    pub cookies: Vec<(String, String)>,
    /// How many additional cookies CookieGuard withheld from this read.
    pub filtered_count: usize,
    /// Visit-relative time.
    pub time_ms: u64,
}

/// An outbound network request (`Network.requestWillBeSent` analog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Full URL including query string.
    pub url: String,
    /// Destination eTLD+1 (pre-computed for the analysis).
    pub dest_domain: Option<String>,
    /// Resource type.
    pub kind: RequestKind,
    /// eTLD+1 of the initiating script, from the stack trace.
    pub initiator: Option<String>,
    /// Full URL of the initiating script.
    pub initiator_url: Option<String>,
    /// The page's eTLD+1.
    pub first_party: String,
    /// The `Cookie:` request header the browser attached (None when no
    /// cookies matched the destination). First-party endpoints receive
    /// the *whole* jar here regardless of any script-level isolation —
    /// the channel server-side tracking rides (§5.7).
    pub cookie_header: Option<String>,
    /// Visit-relative time.
    pub time_ms: u64,
}

impl RequestEvent {
    /// Builds the event for an observed outbound request, deriving the
    /// destination/initiator eTLD+1 fields the analysis consumes.
    /// `cookie_header` is the `Cookie:` value the browser attached
    /// (None or empty = nothing matched).
    pub fn observed(
        url: &str,
        kind: RequestKind,
        initiator_url: Option<&cg_url::Url>,
        first_party: &str,
        cookie_header: Option<&str>,
        time_ms: u64,
    ) -> RequestEvent {
        RequestEvent {
            url: url.to_string(),
            dest_domain: cg_url::url_domain(url),
            kind,
            initiator: initiator_url.and_then(|u| u.registrable_domain()),
            initiator_url: initiator_url.map(|u| u.to_string()),
            first_party: first_party.to_string(),
            cookie_header: cookie_header.filter(|h| !h.is_empty()).map(str::to_string),
            time_ms,
        }
    }
}

/// A functional-probe outcome (breakage evaluation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeEvent {
    /// Feature label (`sso`, `sso_reload`, `cart`, `chat`, `ads`,
    /// `functionality`).
    pub feature: String,
    /// The cookie the feature depends on.
    pub cookie: String,
    /// Whether the dependent read succeeded.
    pub ok: bool,
    /// eTLD+1 of the probing script.
    pub actor: Option<String>,
}

/// A DOM mutation attributed to a script (§8 pilot).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomEvent {
    /// Acting script's eTLD+1.
    pub actor: Option<String>,
    /// Owner of the mutated element.
    pub owner: String,
    /// Mutation kind label.
    pub kind: String,
    /// True when the DOM guard blocked the mutation (it never reached
    /// the document).
    pub blocked: bool,
}

impl DomEvent {
    /// A mutation is cross-domain when the actor is known and differs
    /// from the element's owner.
    pub fn is_cross_domain(&self) -> bool {
        match &self.actor {
            Some(a) => !a.eq_ignore_ascii_case(&self.owner),
            None => false,
        }
    }
}

/// One script observed in the main frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptInclusion {
    /// Script URL (`<inline>` for inline scripts).
    pub url: String,
    /// eTLD+1, when external.
    pub domain: Option<String>,
    /// Present in served markup (`true`) vs dynamically injected.
    pub direct: bool,
}

impl ScriptInclusion {
    /// Builds the inclusion record for a script URL (`None` = inline),
    /// deriving its eTLD+1.
    pub fn observed(url: Option<&str>, direct: bool) -> ScriptInclusion {
        let (url_s, domain) = match url {
            Some(u) => (u.to_string(), cg_url::url_domain(u)),
            None => ("<inline>".to_string(), None),
        };
        ScriptInclusion {
            url: url_s,
            domain,
            direct,
        }
    }
}

/// Everything recorded during one site visit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VisitLog {
    /// The visited site's eTLD+1.
    pub site_domain: String,
    /// Tranco-style rank.
    pub rank: usize,
    /// Whether the crawl produced complete data (§4.2's retention filter).
    pub complete: bool,
    /// Cookie writes, in time order.
    pub sets: Vec<SetEvent>,
    /// Cookie reads, in time order.
    pub reads: Vec<ReadEvent>,
    /// Outbound requests, in time order.
    pub requests: Vec<RequestEvent>,
    /// Probe outcomes.
    pub probes: Vec<ProbeEvent>,
    /// DOM mutations.
    pub dom_events: Vec<DomEvent>,
    /// Scripts seen in the main frame.
    pub inclusions: Vec<ScriptInclusion>,
}

impl VisitLog {
    /// Count of cookie operations (reads + writes) — the load driver for
    /// the performance model.
    pub fn cookie_op_count(&self) -> usize {
        self.sets.len() + self.reads.len()
    }

    /// Third-party script inclusions (external, different eTLD+1).
    pub fn third_party_inclusions(&self) -> impl Iterator<Item = &ScriptInclusion> {
        let site = self.site_domain.clone();
        self.inclusions
            .iter()
            .filter(move |s| matches!(&s.domain, Some(d) if !d.eq_ignore_ascii_case(&site)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_party_inclusion_filtering() {
        let log = VisitLog {
            site_domain: "site.com".into(),
            inclusions: vec![
                ScriptInclusion {
                    url: "https://www.site.com/app.js".into(),
                    domain: Some("site.com".into()),
                    direct: true,
                },
                ScriptInclusion {
                    url: "https://t.tracker.io/t.js".into(),
                    domain: Some("tracker.io".into()),
                    direct: true,
                },
                ScriptInclusion {
                    url: "<inline>".into(),
                    domain: None,
                    direct: true,
                },
            ],
            ..VisitLog::default()
        };
        assert_eq!(log.third_party_inclusions().count(), 1);
    }

    #[test]
    fn cookie_op_count_sums() {
        let mut log = VisitLog::default();
        log.sets.push(SetEvent {
            name: "a".into(),
            value: "1".into(),
            actor: Some("x.com".into()),
            actor_url: Some("https://x.com/x.js".into()),
            api: CookieApi::DocumentCookie,
            kind: WriteKind::Create,
            max_age_s: None,
            changes: None,
            blocked: false,
            time_ms: 0,
        });
        log.reads.push(ReadEvent {
            actor: None,
            api: CookieApi::DocumentCookie,
            cookies: vec![],
            filtered_count: 0,
            time_ms: 1,
        });
        assert_eq!(log.cookie_op_count(), 2);
    }
}
