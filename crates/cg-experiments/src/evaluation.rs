//! The §7 evaluation experiments: Fig. 5 (access control), Table 3
//! (breakage), Table 4 + Figs 6/7/9/10 (performance).

use crate::context::ExperimentOptions;
use crate::expectations as exp;
use crate::render::{bar, compare, compare_count, header, measured};
use cg_analysis::stats::BoxStats;
use cg_analysis::{cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset};
use cg_breakage::{evaluate_breakage, BreakageCategory, BreakageReport};
use cg_browser::{crawl_range, VisitConfig};
use cg_perf::{run_paired_measurement, PerfReport};
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::GuardConfig;
use serde::Serialize;

/// Fig. 5 result: % of sites engaging in each cross-domain action, with
/// and without CookieGuard.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// (regular %, guarded %) for overwriting.
    pub overwriting: (f64, f64),
    /// (regular %, guarded %) for deleting.
    pub deleting: (f64, f64),
    /// (regular %, guarded %) for exfiltration.
    pub exfiltration: (f64, f64),
}

impl Fig5Result {
    /// Relative reduction (%) for a pair.
    pub fn reduction(pair: (f64, f64)) -> f64 {
        if pair.0 <= 0.0 {
            0.0
        } else {
            100.0 * (pair.0 - pair.1) / pair.0
        }
    }
}

/// Runs the paired guarded/unguarded crawl behind Fig. 5.
pub fn run_fig5(opts: &ExperimentOptions) -> Fig5Result {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    let gen = WebGenerator::new(cfg, opts.seed);
    let entities = cg_entity::builtin_entity_map();

    let rates = |guard: Option<GuardConfig>| {
        let vc = match guard {
            Some(g) => VisitConfig::guarded(g),
            None => VisitConfig::regular(),
        };
        let (outcomes, _) = crawl_range(&gen, &vc, 1, opts.sites, opts.threads);
        let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
        let exfil = detect_exfiltration(&ds, &entities);
        let manip = detect_manipulation(&ds, &entities);
        let t1 = cross_domain_summary(&ds, &exfil, &manip);
        (
            t1.doc_overwriting.sites_pct,
            t1.doc_deleting.sites_pct,
            t1.doc_exfiltration.sites_pct,
        )
    };

    let (ow0, del0, ex0) = rates(None);
    let (ow1, del1, ex1) = rates(Some(GuardConfig::strict()));
    let result = Fig5Result {
        overwriting: (ow0, ow1),
        deleting: (del0, del1),
        exfiltration: (ex0, ex1),
    };

    header("Figure 5: cross-domain actions, regular vs CookieGuard");
    let max = ow0.max(del0).max(ex0).max(1.0);
    bar("overwriting (regular)", ow0, max, 40);
    bar("overwriting (guarded)", ow1, max, 40);
    bar("deleting    (regular)", del0, max, 40);
    bar("deleting    (guarded)", del1, max, 40);
    bar("exfiltration(regular)", ex0, max, 40);
    bar("exfiltration(guarded)", ex1, max, 40);
    compare(
        "overwriting reduction",
        exp::FIG5_REDUCTIONS.0,
        Fig5Result::reduction(result.overwriting),
        "%",
    );
    compare(
        "deleting reduction",
        exp::FIG5_REDUCTIONS.1,
        Fig5Result::reduction(result.deleting),
        "%",
    );
    compare(
        "exfiltration reduction",
        exp::FIG5_REDUCTIONS.2,
        Fig5Result::reduction(result.exfiltration),
        "%",
    );
    result
}

/// Table 3 result: the strict and entity-grouped breakage reports.
#[derive(Debug, Serialize)]
pub struct Table3Result {
    /// Strict isolation (no grouping).
    pub strict: BreakageReport,
    /// With the entity-grouping whitelist.
    pub grouped: BreakageReport,
}

/// Runs the Table 3 breakage evaluation over a 100-site sample of the
/// top 10k (or the whole range when fewer sites exist).
pub fn run_table3(opts: &ExperimentOptions) -> Table3Result {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    let gen = WebGenerator::new(cfg, opts.seed);
    // The paper samples 100 random sites from the top 10k; we take a
    // deterministic stratified sample: every k-th site of the top half.
    let top = (opts.sites / 2).max(1);
    let sample = 100.min(top);
    let stride = (top / sample).max(1);

    let eval = |guard: GuardConfig| {
        let mut report = BreakageReport::default();
        let mut rank = 1usize;
        while report.sites < sample && rank <= top {
            let partial = evaluate_breakage(&gen, &guard, rank, rank, 1);
            report.sites += partial.sites;
            for (k, v) in partial.counts {
                *report.counts.entry(k).or_insert(0) += v;
            }
            report.details.extend(partial.details);
            rank += stride;
        }
        report
    };

    let strict = eval(GuardConfig::strict());
    let grouped = eval(GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()));

    header("Table 3: breakage on the 100-site sample (strict)");
    compare(
        "SSO minor",
        exp::T3_SSO.0,
        strict.minor_pct(BreakageCategory::Sso),
        "%",
    );
    compare(
        "SSO major",
        exp::T3_SSO.1,
        strict.major_pct(BreakageCategory::Sso),
        "%",
    );
    compare(
        "functionality minor",
        exp::T3_FUNC.0,
        strict.minor_pct(BreakageCategory::Functionality),
        "%",
    );
    compare(
        "functionality major",
        exp::T3_FUNC.1,
        strict.major_pct(BreakageCategory::Functionality),
        "%",
    );
    compare(
        "navigation (any)",
        0.0,
        strict.major_pct(BreakageCategory::Navigation)
            + strict.minor_pct(BreakageCategory::Navigation),
        "%",
    );
    compare(
        "appearance (any)",
        0.0,
        strict.major_pct(BreakageCategory::Appearance)
            + strict.minor_pct(BreakageCategory::Appearance),
        "%",
    );
    header("Table 3 (with entity grouping)");
    compare(
        "SSO major after grouping",
        exp::T3_GROUPED_TOTAL,
        grouped.major_pct(BreakageCategory::Sso),
        "%",
    );
    measured(
        "any breakage after grouping",
        grouped.any_breakage_pct(),
        "%",
    );

    Table3Result { strict, grouped }
}

/// Table 4 + Figures 6/7/9/10 result.
#[derive(Debug, Serialize)]
pub struct PerfResult {
    /// The full paired report.
    pub report: PerfReport,
    /// Boxplot stats per metric/condition for Figs 6 & 9.
    pub boxes: Vec<(String, BoxStats)>,
}

/// Runs the §7.3 performance experiments on the top `sites/2` sites
/// (the paper uses the top 10k of 20k).
pub fn run_table4_and_figs(opts: &ExperimentOptions, which: &[&str]) -> PerfResult {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    let gen = WebGenerator::new(cfg, opts.seed);
    let top = (opts.sites / 2).max(1);
    let report = run_paired_measurement(&gen, &GuardConfig::strict(), 1, top, opts.threads);

    let wants = |name: &str| which.contains(&"all") || which.contains(&name);

    if wants("table4") {
        header("Table 4: performance (mean ms, median ms)");
        compare_count(
            "valid paired sites",
            exp::T4_VALID_PAIRS,
            report.valid_pairs,
        );
        compare(
            "DCL mean (no ext)",
            exp::T4_DCL.0 .0,
            report.dcl.0.mean_ms,
            "ms",
        );
        compare(
            "DCL median (no ext)",
            exp::T4_DCL.0 .1,
            report.dcl.0.median_ms,
            "ms",
        );
        compare(
            "DCL mean (CookieGuard)",
            exp::T4_DCL.1 .0,
            report.dcl.1.mean_ms,
            "ms",
        );
        compare(
            "DCL median (CookieGuard)",
            exp::T4_DCL.1 .1,
            report.dcl.1.median_ms,
            "ms",
        );
        compare(
            "DI mean (no ext)",
            exp::T4_DI.0 .0,
            report.di.0.mean_ms,
            "ms",
        );
        compare(
            "DI median (no ext)",
            exp::T4_DI.0 .1,
            report.di.0.median_ms,
            "ms",
        );
        compare(
            "DI mean (CookieGuard)",
            exp::T4_DI.1 .0,
            report.di.1.mean_ms,
            "ms",
        );
        compare(
            "DI median (CookieGuard)",
            exp::T4_DI.1 .1,
            report.di.1.median_ms,
            "ms",
        );
        compare(
            "Load mean (no ext)",
            exp::T4_LOAD.0 .0,
            report.load.0.mean_ms,
            "ms",
        );
        compare(
            "Load median (no ext)",
            exp::T4_LOAD.0 .1,
            report.load.0.median_ms,
            "ms",
        );
        compare(
            "Load mean (CookieGuard)",
            exp::T4_LOAD.1 .0,
            report.load.1.mean_ms,
            "ms",
        );
        compare(
            "Load median (CookieGuard)",
            exp::T4_LOAD.1 .1,
            report.load.1.median_ms,
            "ms",
        );
        compare("average added latency", 300.0, report.mean_added_ms(), "ms");
    }

    let mut boxes = Vec::new();
    for (name, selector) in [
        (
            "dom_content_loaded",
            (|t: &cg_browser::PageTiming| t.dom_content_loaded_ms)
                as fn(&cg_browser::PageTiming) -> f64,
        ),
        ("dom_interactive", |t| t.dom_interactive_ms),
        ("load_event_time", |t| t.load_event_ms),
    ] {
        let no: Vec<f64> = report.pairs.iter().map(|p| selector(&p.without)).collect();
        let yes: Vec<f64> = report.pairs.iter().map(|p| selector(&p.with)).collect();
        boxes.push((format!("{name} (no extension)"), BoxStats::of(&no)));
        boxes.push((format!("{name} (with CookieGuard)"), BoxStats::of(&yes)));
    }

    if wants("fig6") || wants("fig9") {
        header("Figures 6 & 9: paired distributions (box stats, ms)");
        for (label, b) in &boxes {
            println!(
                "  {:<42} min {:>8.0}  q1 {:>8.0}  med {:>8.0}  q3 {:>8.0}  max {:>9.0}  mean {:>8.0}",
                label, b.min, b.q1, b.median, b.q3, b.max, b.mean
            );
        }
    }

    if wants("fig7") || wants("fig10") {
        header("Figures 7 & 10: per-site overhead ratios (With / No)");
        compare(
            "DCL ratio median",
            exp::FIG7_MEDIANS.0,
            report.ratios.0.median,
            "×",
        );
        compare(
            "DI ratio median",
            exp::FIG7_MEDIANS.1,
            report.ratios.1.median,
            "×",
        );
        compare(
            "Load ratio median",
            exp::FIG7_MEDIANS.2,
            report.ratios.2.median,
            "×",
        );
        for (name, r) in [
            ("dcl", report.ratios.0),
            ("di", report.ratios.1),
            ("load", report.ratios.2),
        ] {
            println!(
                "  {:<12} q1 {:>6.3}  median {:>6.3}  q3 {:>6.3}  max {:>8.1}",
                name, r.q1, r.median, r.q3, r.max
            );
        }
    }

    PerfResult { report, boxes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(n: usize) -> ExperimentOptions {
        ExperimentOptions {
            sites: n,
            seed: 0xC00C1E,
            threads: 2,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn fig5_guard_reduces_all_three_actions() {
        let r = run_fig5(&opts(240));
        assert!(
            r.overwriting.1 < r.overwriting.0,
            "overwrite {:?}",
            r.overwriting
        );
        assert!(r.deleting.1 <= r.deleting.0, "delete {:?}", r.deleting);
        assert!(
            r.exfiltration.1 < r.exfiltration.0,
            "exfil {:?}",
            r.exfiltration
        );
        // Substantial but not total reduction (site-owner bypass remains).
        let red = Fig5Result::reduction(r.exfiltration);
        assert!(red > 40.0, "exfil reduction {red}");
    }

    #[test]
    fn perf_runs_at_small_scale() {
        let r = run_table4_and_figs(&opts(160), &[]);
        assert!(r.report.valid_pairs > 40);
        assert_eq!(r.boxes.len(), 6);
    }
}
