//! The `detect` subcommand: score the first-party tracking-cookie
//! detector against generator ground truth on a fresh crawl.
//!
//! One CNAME-resolving measurement crawl is written through a binary
//! crawl store, then classified three ways — the resident sets-only
//! stage, the resident full pipeline, and the streaming parallel fold —
//! and the run asserts the pipeline's contracts in-process:
//!
//! * the streaming report is byte-identical to the resident report at
//!   every probed thread count and read backend;
//! * instance-weighted precision and recall clear the paper-grade
//!   floors (0.95 / 0.90) against `cg_webgen::CookieLabels` ground
//!   truth.
//!
//! Violations exit non-zero, so CI can run this as a smoke test and
//! grep the anchor lines. `--bench-json` captures throughput, peak RSS
//! and per-stage cost; its timing fields use the
//! [`crate::determinism`] suffix convention (`_ms`, `_per_sec`) so any
//! byte-equality consumer masks them automatically.

use crate::storebench::peak_rss_bytes;
use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, par_fold_with, ReadBackend, SegmentFormat};
use cg_detect::{DetectConfig, DetectEngine, DetectReport, DetectStats, Stages};
use cg_instrument::VisitLog;
use cg_webgen::{CookieLabels, GenConfig, WebGenerator};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Instance-weighted score floors the run enforces (the repo's
/// acceptance bar for the detector on a ≥10k-visit crawl).
pub const PRECISION_FLOOR: f64 = 0.95;
/// See [`PRECISION_FLOOR`].
pub const RECALL_FLOOR: f64 = 0.90;

/// Options for `cg-experiments detect`.
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// Sites to generate and crawl (`--sites N`).
    pub sites: usize,
    /// Master seed (`--seed S`).
    pub seed: u64,
    /// Fold workers for the streaming timing row (`--threads T`).
    pub threads: usize,
    /// Store directory (`--store DIR`); a scratch directory under the
    /// system temp dir when unset (removed on success).
    pub store: Option<PathBuf>,
    /// Write the bench report here (`--bench-json PATH`).
    pub bench_json: Option<PathBuf>,
    /// Write the full detection report here (`--report-json PATH`).
    pub report_json: Option<PathBuf>,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions {
            sites: 10_000,
            seed: 0xC00C1E,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            store: None,
            bench_json: None,
            report_json: None,
        }
    }
}

/// One timed classification pass.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StageTiming {
    /// Wall time of the fold.
    pub elapsed_ms: u64,
    /// Visits classified per second.
    pub visits_per_sec: f64,
}

/// Machine-readable output of a `detect` run (`--bench-json`).
#[derive(Debug, Clone, Serialize)]
pub struct DetectBenchReport {
    /// Sites crawled.
    pub sites: usize,
    /// Complete visits scored.
    pub complete: u64,
    /// Scored (cookie, owner) keys.
    pub keys_scored: usize,
    /// Keys the detector flagged.
    pub keys_flagged: usize,
    /// Key-level confusion scores.
    pub key_scores: cg_detect::Scores,
    /// Instance-weighted confusion scores (the floor metric).
    pub instance_scores: cg_detect::Scores,
    /// Resident fold, set-replay stage only (ownership, lifetime,
    /// value, respawn features).
    pub resident_sets_only: StageTiming,
    /// Resident fold, full pipeline (adds the exfil fan-out pass).
    pub resident_full: StageTiming,
    /// Per-visit cost attributable to the exfil fan-out stage alone.
    pub fanout_stage_ms: u64,
    /// Streaming parallel fold over the binary store (mmap).
    pub streaming_full: StageTiming,
    /// Streaming fold workers.
    pub threads: usize,
    /// Process RSS high-water mark after the run.
    pub peak_rss_bytes: Option<u64>,
    /// Thread-count × backend combinations whose serialized reports
    /// were byte-compared against the resident report (all must match
    /// for the run to succeed).
    pub identity_checks: usize,
}

fn timing(visits: u64, elapsed: std::time::Duration) -> StageTiming {
    let ms = elapsed.as_millis() as u64;
    StageTiming {
        elapsed_ms: ms,
        visits_per_sec: visits as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Runs the detection smoke: crawl, classify, assert the contracts.
/// Panics (non-zero exit) on any violated invariant or missed floor.
pub fn run_detect(opts: &DetectOptions) -> DetectBenchReport {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    let gen = WebGenerator::new(cfg, opts.seed);
    // CNAME-resolving crawl: setter identity is a detection feature, so
    // the measurement pipeline runs with the §8 uncloaking defense on.
    let visit_cfg = VisitConfig {
        resolve_cnames: true,
        ..VisitConfig::regular()
    };
    let scratch;
    let dir = match &opts.store {
        Some(dir) => dir.clone(),
        None => {
            scratch = std::env::temp_dir().join(format!("cg-detect-exp-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&scratch);
            scratch.clone()
        }
    };
    eprintln!(
        "[detect] crawling {} sites into {}",
        opts.sites,
        dir.display()
    );
    let run = crawl_to_store_with(
        &dir,
        &gen,
        &visit_cfg,
        1,
        opts.sites,
        opts.threads,
        SegmentFormat::Binary,
        |_| {},
    )
    .unwrap_or_else(|e| panic!("crawl store {}: {e}", dir.display()));
    eprintln!(
        "[detect] store: {} records, {} bytes",
        run.stats.records, run.stats.bytes
    );

    let engine = DetectEngine::compile(
        &CookieLabels::derive(gen.registry()),
        cg_entity::builtin_entity_map(),
        DetectConfig::default(),
    );

    // Resident copy, in store order.
    let logs: Vec<VisitLog> = par_fold_with(&dir, 1, ReadBackend::Buffered, |chunk| {
        chunk.collect::<Result<Vec<_>, _>>()
    })
    .unwrap_or_else(|e| panic!("store drain: {e}"))
    .into_iter()
    .flatten()
    .collect();
    let visits = logs.len() as u64;

    let t = Instant::now();
    let sets_only = DetectStats::from_logs(&engine, Stages::SetsOnly, logs.iter());
    let resident_sets_only = timing(visits, t.elapsed());
    drop(sets_only);

    let t = Instant::now();
    let resident = DetectStats::from_logs(&engine, Stages::Full, logs.iter());
    let resident_full = timing(visits, t.elapsed());
    drop(logs);
    let report = DetectReport::from_stats(&resident);
    let resident_json = report.to_json();

    // Streaming ≡ resident, at every probed thread count and backend.
    let mut identity_checks = 0;
    let mut streaming_full = None;
    for backend in [ReadBackend::Mmap, ReadBackend::Pread] {
        for threads in [1, opts.threads.max(2)] {
            let t = Instant::now();
            let stats = DetectStats::from_store_with(&engine, Stages::Full, &dir, threads, backend)
                .unwrap_or_else(|e| panic!("streaming fold: {e}"));
            let elapsed = t.elapsed();
            let streamed = DetectReport::from_stats(&stats).to_json();
            assert_eq!(
                streamed, resident_json,
                "streaming {backend:?} x{threads} diverged from the resident report"
            );
            identity_checks += 1;
            if backend == ReadBackend::Mmap && threads == opts.threads.max(2) {
                streaming_full = Some(timing(visits, elapsed));
            }
        }
    }
    println!(
        "detect reports byte-identical across thread counts and backends: ok \
         ({identity_checks} combinations)"
    );

    println!("{}", report.render());

    let p = report.instance_scores.precision;
    let r = report.instance_scores.recall;
    assert!(
        p >= PRECISION_FLOOR,
        "instance precision {p:.4} below the {PRECISION_FLOOR} floor"
    );
    println!("detect precision floor: ok ({p:.4} >= {PRECISION_FLOOR})");
    assert!(
        r >= RECALL_FLOOR,
        "instance recall {r:.4} below the {RECALL_FLOOR} floor"
    );
    println!("detect recall floor: ok ({r:.4} >= {RECALL_FLOOR})");

    if let Some(path) = &opts.report_json {
        std::fs::write(path, &resident_json)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("detection report written to {}", path.display());
    }
    if opts.store.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let resident_ms = resident_full.elapsed_ms;
    DetectBenchReport {
        sites: opts.sites,
        complete: report.complete,
        keys_scored: report.keys.len(),
        keys_flagged: report.keys.iter().filter(|k| k.flagged).count(),
        key_scores: report.key_scores,
        instance_scores: report.instance_scores,
        resident_sets_only,
        resident_full,
        fanout_stage_ms: resident_ms.saturating_sub(resident_sets_only.elapsed_ms),
        streaming_full: streaming_full.expect("mmap timing row recorded"),
        threads: opts.threads.max(2),
        peak_rss_bytes: peak_rss_bytes(),
        identity_checks,
    }
}
