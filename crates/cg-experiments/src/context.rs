//! Shared experiment context: one crawl, many analyses.

use cg_analysis::Dataset;
use cg_browser::{crawl_range, VisitConfig};
use cg_crawlstore::{crawl_to_store_with, ReadBackend, SegmentFormat};
use cg_entity::EntityMap;
use cg_filterlist::FilterEngine;
use cg_webgen::{GenConfig, WebGenerator};

/// Command-line-shaped options for the harness.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Number of ranked sites to generate/crawl.
    pub sites: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// When set, the measurement crawl writes through a durable
    /// `cg_crawlstore` store at this directory and resumes from it when
    /// it already holds completed ranks (`--store DIR`).
    pub store: Option<std::path::PathBuf>,
    /// Segment format for `--store` crawls (`--store-format
    /// jsonl|binary`). Binary is the replay fast path for large crawls;
    /// the two formats produce byte-identical analyses.
    pub store_format: SegmentFormat,
    /// How store replays and folds read segment bytes
    /// (`--read-backend mmap|pread|buffered`). Every backend produces
    /// byte-identical results; mmap is the zero-copy default.
    pub read_backend: ReadBackend,
    /// Store size for the storebench fold benchmark (`--fold-sites N`).
    /// Defaults to `max(sites, 10_000)` — parallel-fold speedups are
    /// meaningless on stores that fold in single-digit milliseconds.
    pub fold_sites: Option<usize>,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            sites: 20_000,
            seed: 0xC00C1E,
            threads: num_threads(),
            store: None,
            store_format: SegmentFormat::Jsonl,
            read_backend: ReadBackend::default(),
            fold_sites: None,
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The products of the §4 data-collection pipeline, shared by all §5
/// experiments.
pub struct CrawlContext {
    /// The generator (registry, seeds).
    pub gen: WebGenerator,
    /// The analyzable dataset (complete visits only).
    pub dataset: Dataset,
    /// Entity map for aggregation.
    pub entities: EntityMap,
    /// Filter engine for ad/tracking classification.
    pub engine: FilterEngine,
    /// Visits attempted.
    pub crawled: usize,
}

impl CrawlContext {
    /// Generates the ecosystem and performs the regular (no-guard)
    /// crawl — in memory by default, or through a durable, resumable
    /// crawl store when `opts.store` is set.
    pub fn collect(opts: &ExperimentOptions) -> CrawlContext {
        let cfg = if opts.sites >= 20_000 {
            GenConfig::default()
        } else {
            GenConfig::small(opts.sites)
        };
        let gen = WebGenerator::new(cfg, opts.seed);
        let engine = cg_analysis::build_filter_engine(gen.registry());
        let entities = cg_entity::builtin_entity_map();
        let visit_cfg = VisitConfig::regular();
        let (dataset, crawled) = match &opts.store {
            None => {
                let (outcomes, summary) =
                    crawl_range(&gen, &visit_cfg, 1, opts.sites, opts.threads);
                let dataset = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
                (dataset, summary.visited)
            }
            Some(dir) => {
                // Durable path: write-through store, resumed when the
                // directory already holds this crawl's fingerprint, then
                // a streaming rank-ordered replay into the dataset.
                let run = crawl_to_store_with(
                    dir,
                    &gen,
                    &visit_cfg,
                    1,
                    opts.sites,
                    opts.threads,
                    opts.store_format,
                    |store| {
                        let resumed = store.done_ranks().len();
                        if resumed > 0 {
                            eprintln!(
                                "[crawl] resuming: {resumed} ranks already durable in the store"
                            );
                        }
                    },
                )
                .unwrap_or_else(|e| panic!("crawl store {}: {e}", dir.display()));
                eprintln!(
                    "[store] {} records across {} segments, {} bytes ({}); \
                     wrote {} visits at {:.0} visits/s",
                    run.stats.records,
                    run.stats.segments,
                    run.stats.bytes,
                    opts.store_format,
                    run.summary.visited,
                    run.summary.visits_per_sec(),
                );
                let watch = cg_telemetry::Stopwatch::start();
                // Chunk-granular parallel replay through the chosen read
                // backend — byte-identical to a sequential CrawlReader
                // drain at any thread count.
                let dataset = Dataset::from_store_with(dir, opts.threads, opts.read_backend)
                    .unwrap_or_else(|e| panic!("replaying crawl store {}: {e}", dir.display()));
                let replay_ms = watch.elapsed_ms();
                eprintln!(
                    "[store] replayed {} visits via {} in {} \
                     ({:.0} visits/s, {:.1} MB/s); peak RSS {:.1} MB",
                    dataset.crawled,
                    opts.read_backend,
                    cg_telemetry::render_ms(replay_ms),
                    cg_telemetry::per_sec(dataset.crawled as u64, replay_ms),
                    cg_telemetry::per_sec(run.stats.bytes, replay_ms) / 1e6,
                    crate::storebench::peak_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0),
                );
                let crawled = dataset.crawled;
                (dataset, crawled)
            }
        };
        CrawlContext {
            gen,
            dataset,
            entities,
            engine,
            crawled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_small_crawl() {
        let ctx = CrawlContext::collect(&ExperimentOptions {
            sites: 50,
            seed: 1,
            threads: 2,
            ..ExperimentOptions::default()
        });
        assert_eq!(ctx.crawled, 50);
        assert!(ctx.dataset.site_count() > 20);
        assert!(ctx.dataset.site_count() < 50);
    }

    #[test]
    fn store_backed_context_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("cg-ctx-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExperimentOptions {
            sites: 40,
            seed: 2,
            threads: 2,
            ..ExperimentOptions::default()
        };
        let mem = CrawlContext::collect(&opts);
        let durable = CrawlContext::collect(&ExperimentOptions {
            store: Some(dir.clone()),
            ..opts.clone()
        });
        assert_eq!(mem.crawled, durable.crawled);
        assert_eq!(mem.dataset.site_count(), durable.dataset.site_count());
        assert_eq!(
            serde_json::to_string(&mem.dataset.logs).unwrap(),
            serde_json::to_string(&durable.dataset.logs).unwrap()
        );
        // Collecting again resumes (no re-visit) and yields the same data.
        let resumed = CrawlContext::collect(&ExperimentOptions {
            store: Some(dir.clone()),
            ..opts
        });
        assert_eq!(resumed.dataset.site_count(), mem.dataset.site_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
