//! Shared experiment context: one crawl, many analyses.

use cg_analysis::Dataset;
use cg_browser::{crawl_range, VisitConfig};
use cg_entity::EntityMap;
use cg_filterlist::FilterEngine;
use cg_webgen::{GenConfig, WebGenerator};

/// Command-line-shaped options for the harness.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Number of ranked sites to generate/crawl.
    pub sites: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            sites: 20_000,
            seed: 0xC00C1E,
            threads: num_threads(),
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The products of the §4 data-collection pipeline, shared by all §5
/// experiments.
pub struct CrawlContext {
    /// The generator (registry, seeds).
    pub gen: WebGenerator,
    /// The analyzable dataset (complete visits only).
    pub dataset: Dataset,
    /// Entity map for aggregation.
    pub entities: EntityMap,
    /// Filter engine for ad/tracking classification.
    pub engine: FilterEngine,
    /// Visits attempted.
    pub crawled: usize,
}

impl CrawlContext {
    /// Generates the ecosystem and performs the regular (no-guard) crawl.
    pub fn collect(opts: &ExperimentOptions) -> CrawlContext {
        let cfg = if opts.sites >= 20_000 {
            GenConfig::default()
        } else {
            GenConfig::small(opts.sites)
        };
        let gen = WebGenerator::new(cfg, opts.seed);
        let engine = cg_analysis::build_filter_engine(gen.registry());
        let entities = cg_entity::builtin_entity_map();
        let (outcomes, summary) =
            crawl_range(&gen, &VisitConfig::regular(), 1, opts.sites, opts.threads);
        let dataset = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
        CrawlContext {
            gen,
            dataset,
            entities,
            engine,
            crawled: summary.visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_small_crawl() {
        let ctx = CrawlContext::collect(&ExperimentOptions {
            sites: 50,
            seed: 1,
            threads: 2,
        });
        assert_eq!(ctx.crawled, 50);
        assert!(ctx.dataset.site_count() > 20);
        assert!(ctx.dataset.site_count() < 50);
    }
}
