//! `cg-experiments serve`: the guard-as-a-service benchmark and smoke
//! behind `BENCH_service.json`.
//!
//! Builds (or resumes) a binary crawl store, registers two tenants with
//! different policy presets, then replays the store through the
//! `cg-service` worker pool at each requested worker count with two
//! mid-run policy hot-swaps racing the traffic. Asserts the serving
//! invariants on every run — zero dropped decisions, every retired
//! engine freed — and that the deterministic report surface is
//! byte-identical across worker counts (see [`crate::determinism`]).
//! A final streaming-source run replays the same store through
//! mmap'd frame-index chunks to pin that both traffic sources execute
//! the same operation stream.
//!
//! Telemetry rides along: each worker-count run starts from a reset
//! `cg-telemetry` registry and its masked snapshot (workload section
//! only — the `runtime` section is nulled by [`crate::determinism`])
//! must be byte-identical across worker counts. A final interleaved
//! on/off comparison measures the telemetry overhead against a
//! documented ≤[`TELEMETRY_BUDGET_PCT`]% decisions/s budget.

use crate::determinism::deterministic_surface;
use crate::storebench::peak_rss_bytes;
use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, SegmentFormat};
use cg_service::{
    replay, GuardService, ReplayOptions, ReplayReport, ReplaySource, SwapPoint, TenantId,
};
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::GuardConfig;
use serde::Serialize;
use std::path::PathBuf;

/// Options for the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Visits in the backing binary store.
    pub sites: usize,
    /// Master seed for the generated ecosystem.
    pub seed: u64,
    /// Full passes over the store per run.
    pub passes: u32,
    /// Worker counts to replay at (≥2 for the determinism check).
    pub worker_counts: Vec<usize>,
    /// Store directory (kept across runs — resumes); temp dir if unset.
    pub store: Option<PathBuf>,
    /// Where to write the machine-readable report, if anywhere.
    pub bench_json: Option<PathBuf>,
    /// Write the final telemetry snapshot here (JSON; a Prometheus text
    /// rendering lands alongside with a `.prom` extension), if set.
    pub telemetry_snapshot: Option<PathBuf>,
    /// Write the flight-recorder dump (JSON event list) here, if set.
    pub telemetry_dump: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            sites: 10_000,
            seed: 0xC00C1E,
            passes: 1,
            worker_counts: vec![2, 8],
            store: None,
            bench_json: None,
            telemetry_snapshot: None,
            telemetry_dump: None,
        }
    }
}

/// Documented ceiling on the telemetry tax: enabling the registry may
/// cost at most this share of the replay's decisions/s. CI greps the
/// bench output for the within-budget line.
pub const TELEMETRY_BUDGET_PCT: f64 = 3.0;

/// The telemetry-on vs telemetry-off throughput comparison: the same
/// resident-source replay at the highest worker count, interleaved
/// on/off pairs, best of each side (interleaving cancels thermal and
/// cache drift; best-of damps scheduler noise).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TelemetryOverhead {
    /// Best decisions/s with the registry recording (the default).
    pub on_decisions_per_sec: f64,
    /// Best decisions/s with the registry kill switch thrown.
    pub off_decisions_per_sec: f64,
    /// Throughput cost of telemetry, percent, clamped at 0 (noise can
    /// make the instrumented run the faster one).
    pub overhead_pct: f64,
    /// The documented budget ([`TELEMETRY_BUDGET_PCT`]).
    pub budget_pct: f64,
    /// `overhead_pct <= budget_pct`.
    pub within_budget: bool,
}

/// One registered tenant, as serialized into the report.
#[derive(Debug, Clone, Serialize)]
pub struct TenantDesc {
    /// Registration name.
    pub name: String,
    /// Human description of the epoch-0 policy.
    pub policy: String,
    /// Human description of the policy hot-swapped in mid-run.
    pub swapped_to: String,
}

/// The machine-readable report (`BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchServiceReport {
    /// Visits in the backing store.
    pub sites: u64,
    /// Passes per run.
    pub passes: u64,
    /// The tenant roster (≥2).
    pub tenants: Vec<TenantDesc>,
    /// One resident-source run per worker count, each with two mid-run
    /// hot-swaps.
    pub runs: Vec<ReplayReport>,
    /// A streaming-source (pread cursor) run at the highest worker
    /// count — same operation stream, bounded memory.
    pub stream_run: ReplayReport,
    /// Pinned true by the cross-worker-count byte-equality assertion.
    pub counters_identical_across_worker_counts: bool,
    /// Pinned true by the masked-telemetry-snapshot byte-equality
    /// assertion across worker counts.
    pub telemetry_snapshots_identical: bool,
    /// The telemetry-on vs telemetry-off throughput comparison.
    pub telemetry_overhead: TelemetryOverhead,
    /// Process peak RSS after everything above (bytes; 0 if unknown).
    pub peak_rss_bytes: u64,
}

/// The two-tenant roster every `serve` run uses: the paper's strict
/// evaluation policy, and the §7.2 entity-grouped refinement.
fn build_service() -> (GuardService, TenantId, TenantId) {
    let mut svc = GuardService::new();
    let strict = svc.register("strict", GuardConfig::strict());
    let grouped = svc.register(
        "entity-grouped",
        GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
    );
    (svc, strict, grouped)
}

/// The two mid-run swaps: the strict tenant gains a whitelist entry
/// (an operator shipping a site fix), the grouped tenant gets a freshly
/// "retrained" relaxed policy — both recompiled and installed under
/// load.
fn swap_points(total_visits: u64, strict: TenantId, grouped: TenantId) -> Vec<SwapPoint> {
    vec![
        SwapPoint {
            after_visits: total_visits / 4,
            tenant: strict,
            config: GuardConfig::strict().with_whitelisted("cdn.swap-probe"),
        },
        SwapPoint {
            after_visits: total_visits / 2,
            tenant: grouped,
            config: GuardConfig::relaxed(),
        },
    ]
}

fn run_one(
    dir: &std::path::Path,
    opts: &ServeOptions,
    workers: usize,
    source: ReplaySource,
) -> ReplayReport {
    let (svc, strict, grouped) = build_service();
    let total = (opts.sites as u64) * opts.passes as u64;
    let report = replay(
        &svc,
        dir,
        &ReplayOptions {
            workers,
            passes: opts.passes,
            source,
            swaps: swap_points(total, strict, grouped),
            ..ReplayOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("serve replay ({workers} workers): {e}"));

    // The serving invariants, asserted on every run.
    assert_eq!(
        report.counters.visits, total,
        "visits lost at {workers} workers"
    );
    assert!(
        report.counters.drained(),
        "dropped decisions at {workers} workers: {:?}",
        report.counters
    );
    assert_eq!(
        report.undrained_epochs, 0,
        "retired engines not freed at {workers} workers"
    );
    assert_eq!(report.swaps.len(), 2, "a scheduled hot-swap never fired");
    for swap in &report.swaps {
        assert_eq!(swap.to_epoch, swap.from_epoch + 1, "epoch sequence gap");
    }
    report
}

/// Runs the service benchmark/smoke. Panics (non-zero exit) on any
/// violated invariant, including counter divergence across worker
/// counts.
pub fn run_serve(opts: &ServeOptions) -> BenchServiceReport {
    assert!(
        opts.worker_counts.len() >= 2,
        "need ≥2 worker counts for the determinism check"
    );
    let (base, ephemeral) = match &opts.store {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("cg-serve-{}", std::process::id())),
            true,
        ),
    };

    eprintln!(
        "[serve] building/resuming {}-visit binary store…",
        opts.sites
    );
    let gen = WebGenerator::new(GenConfig::small(opts.sites), opts.seed);
    crawl_to_store_with(
        &base,
        &gen,
        &VisitConfig::regular(),
        1,
        opts.sites,
        8,
        SegmentFormat::Binary,
        |_| {},
    )
    .unwrap_or_else(|e| panic!("serve store build: {e}"));

    let reg = cg_telemetry::global();
    let mut runs = Vec::new();
    let mut masked_snapshots = Vec::new();
    for &workers in &opts.worker_counts {
        eprintln!(
            "[serve] replaying through 2 tenants at {workers} workers (2 hot-swaps mid-run)…"
        );
        // Each run starts from a zeroed registry so its snapshot is a
        // pure function of that run's work, not of run order.
        reg.reset();
        runs.push(run_one(&base, opts, workers, ReplaySource::Resident));
        masked_snapshots.push(deterministic_surface(&reg.snapshot(), &[]));
    }

    // Deterministic surface: everything except timing and the
    // epoch-sensitive blocks must be byte-identical across worker
    // counts. `workers` itself is the one intentional difference.
    let masked: Vec<String> = runs
        .iter()
        .map(|r| deterministic_surface(r, &["outcomes", "workers"]))
        .collect();
    for (i, m) in masked.iter().enumerate().skip(1) {
        assert_eq!(
            m, &masked[0],
            "deterministic surface diverged between {} and {} workers",
            opts.worker_counts[0], opts.worker_counts[i]
        );
    }
    // Belt and braces: the raw counter structs must match exactly too.
    for run in &runs[1..] {
        assert_eq!(run.counters, runs[0].counters, "counter totals diverged");
    }
    // Same contract for the telemetry registry: with the runtime
    // section masked, the snapshot is workload-only and must not see
    // the worker count.
    for (i, m) in masked_snapshots.iter().enumerate().skip(1) {
        assert_eq!(
            m, &masked_snapshots[0],
            "masked telemetry snapshot diverged between {} and {} workers",
            opts.worker_counts[0], opts.worker_counts[i]
        );
    }

    let max_workers = opts.worker_counts.iter().copied().max().unwrap_or(1);
    eprintln!("[serve] streaming-source run at {max_workers} workers (mmap chunks)…");
    let stream_run = run_one(&base, opts, max_workers, ReplaySource::Stream);
    assert_eq!(
        stream_run.counters, runs[0].counters,
        "streaming source executed a different op stream than resident"
    );

    eprintln!("[serve] telemetry overhead: 3 interleaved on/off pairs at {max_workers} workers…");
    let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        reg.set_enabled(true);
        let on = run_one(&base, opts, max_workers, ReplaySource::Resident);
        best_on = best_on.max(on.timing.decisions_per_sec);
        reg.set_enabled(false);
        let off = run_one(&base, opts, max_workers, ReplaySource::Resident);
        best_off = best_off.max(off.timing.decisions_per_sec);
    }
    reg.set_enabled(true);
    let overhead_pct = if best_off > 0.0 {
        ((best_off - best_on) / best_off * 100.0).max(0.0)
    } else {
        0.0
    };
    let telemetry_overhead = TelemetryOverhead {
        on_decisions_per_sec: best_on,
        off_decisions_per_sec: best_off,
        overhead_pct,
        budget_pct: TELEMETRY_BUDGET_PCT,
        within_budget: overhead_pct <= TELEMETRY_BUDGET_PCT,
    };

    if let Some(path) = &opts.telemetry_snapshot {
        let prom = path.with_extension("prom");
        std::fs::write(path, cg_telemetry::snapshot_json(reg))
            .unwrap_or_else(|e| panic!("writing telemetry snapshot {}: {e}", path.display()));
        std::fs::write(&prom, cg_telemetry::prometheus_text(reg))
            .unwrap_or_else(|e| panic!("writing telemetry snapshot {}: {e}", prom.display()));
        eprintln!(
            "[serve] telemetry snapshot written to {} (+ {})",
            path.display(),
            prom.display()
        );
    }
    if let Some(path) = &opts.telemetry_dump {
        std::fs::write(path, cg_telemetry::recorder::dump_json())
            .unwrap_or_else(|e| panic!("writing flight-recorder dump {}: {e}", path.display()));
        eprintln!("[serve] flight-recorder dump written to {}", path.display());
    }

    if ephemeral {
        let _ = std::fs::remove_dir_all(&base);
    }

    BenchServiceReport {
        sites: opts.sites as u64,
        passes: opts.passes as u64,
        tenants: vec![
            TenantDesc {
                name: "strict".into(),
                policy: "strict inline, no grouping (paper §6.1 evaluation mode)".into(),
                swapped_to: "strict + whitelisted cdn.swap-probe".into(),
            },
            TenantDesc {
                name: "entity-grouped".into(),
                policy: "strict + builtin entity map (§7.2 refinement)".into(),
                swapped_to: "relaxed inline policy".into(),
            },
        ],
        runs,
        stream_run,
        counters_identical_across_worker_counts: true,
        telemetry_snapshots_identical: true,
        telemetry_overhead,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
    }
}

/// Prints the human-readable side of the report, including the lines
/// the CI smoke greps for.
pub fn print_serve(r: &BenchServiceReport) {
    println!(
        "\n== guard service ({} visits × {} passes, {} tenants) ==",
        r.sites,
        r.passes,
        r.tenants.len()
    );
    for run in &r.runs {
        let l = &run.timing.latency;
        println!(
            "  {:>2} workers: {:>9.0} decisions/s  {:>8.0} sessions/s  \
             p50 {:>5} ns  p99 {:>6} ns  p999 {:>7} ns  ({} swaps)",
            run.workers,
            run.timing.decisions_per_sec,
            run.timing.session_opens_per_sec,
            l.p50_ns,
            l.p99_ns,
            l.p999_ns,
            run.swaps.len()
        );
    }
    let s = &r.stream_run;
    println!(
        "  stream({}w): {:>9.0} decisions/s via mmap chunks",
        s.workers, s.timing.decisions_per_sec
    );
    for run in r.runs.iter().take(1) {
        for swap in &run.swaps {
            println!(
                "  swap {}→{}: compile {:.1} µs, install {:.1} µs",
                swap.from_epoch,
                swap.to_epoch,
                swap.compile_ns as f64 / 1e3,
                swap.install_ns as f64 / 1e3
            );
        }
    }
    let o = &r.telemetry_overhead;
    println!(
        "  telemetry: on {:.0} decisions/s, off {:.0} decisions/s → {:.2}% overhead (budget {:.0}%)",
        o.on_decisions_per_sec, o.off_decisions_per_sec, o.overhead_pct, o.budget_pct
    );
    println!(
        "  peak RSS: {:.1} MB",
        r.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    // CI grep anchors — keep the wording stable.
    println!("  counters byte-identical across worker counts: ok");
    println!("  telemetry snapshots byte-identical across worker counts (masked): ok");
    if o.within_budget {
        println!("  telemetry overhead within budget: ok");
    } else {
        println!(
            "  telemetry overhead EXCEEDS budget: {:.2}% > {:.0}%",
            o.overhead_pct, o.budget_pct
        );
    }
    println!("  zero dropped decisions: ok (all sessions drained, all epochs freed)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_smoke_small_store() {
        let opts = ServeOptions {
            sites: 150,
            passes: 2,
            worker_counts: vec![1, 3],
            ..ServeOptions::default()
        };
        let report = run_serve(&opts);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.tenants.len(), 2);
        assert!(report.counters_identical_across_worker_counts);
        assert_eq!(report.runs[0].counters.visits, 300);
        assert_eq!(report.stream_run.source, "stream");
        assert!(report.telemetry_snapshots_identical);
        assert_eq!(report.telemetry_overhead.budget_pct, TELEMETRY_BUDGET_PCT);
        assert!(report.telemetry_overhead.on_decisions_per_sec > 0.0);
        // The per-tenant breakdown is part of the deterministic surface.
        let per_tenant = &report.runs[0].per_tenant;
        assert_eq!(per_tenant.len(), 2);
        assert_eq!(
            per_tenant.iter().map(|t| t.visits).sum::<u64>(),
            report.runs[0].counters.visits
        );
        assert_eq!(
            per_tenant.iter().map(|t| t.decisions).sum::<u64>(),
            report.runs[0].counters.decisions
        );
        // Required metric set for the bench contract.
        let json = serde_json::to_value(&report).unwrap();
        for key in [
            "sites",
            "tenants",
            "runs",
            "stream_run",
            "telemetry_overhead",
            "peak_rss_bytes",
        ] {
            assert!(json.get(key).is_some(), "missing report key {key}");
        }
    }
}
