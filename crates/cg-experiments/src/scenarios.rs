//! The `scenarios` subcommand: drive the adversarial scenario catalog
//! (crate `cg-scenarios`) under vanilla, CookieGuard variants, and the
//! baseline defenses, and render/emit the deterministic matrix.

use crate::render::header;
use cg_scenarios::{render_table, run_matrix, ScenarioMatrix};

/// Options for a scenario-matrix run (a subset of the experiment
/// options: the catalog has no site count — it is the catalog).
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// Master seed for behaviour randomness.
    pub seed: u64,
    /// Worker threads (never changes output bytes).
    pub threads: usize,
    /// Write the canonical JSON rendering here.
    pub json: Option<std::path::PathBuf>,
    /// Compare the JSON byte-for-byte against this golden file and fail
    /// (exit 1) on mismatch — the CI smoke contract.
    pub golden: Option<std::path::PathBuf>,
}

impl Default for ScenarioOptions {
    fn default() -> ScenarioOptions {
        ScenarioOptions {
            seed: 0xC00C1E,
            threads: 4,
            json: None,
            golden: None,
        }
    }
}

/// Runs the catalog and prints the matrix; returns it for JSON capture.
/// When any scenario fails its expectation list, the JSON cannot be
/// written, or a golden path is given and the fresh matrix differs, the
/// error message is returned so the CLI can print it and exit non-zero.
pub fn run_scenarios(opts: &ScenarioOptions) -> Result<ScenarioMatrix, String> {
    let matrix = run_matrix(opts.seed, opts.threads);
    header("Adversarial scenario catalog — defense matrix");
    print!("{}", render_table(&matrix));
    println!(
        "\n  {}/{} scenarios passed their expectation lists",
        matrix.passing(),
        matrix.rows.len()
    );

    let json = matrix.to_json();
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, &json) {
            return Err(format!("failed to write {}: {e}", path.display()));
        }
        println!("  matrix JSON written to {}", path.display());
    }
    if let Some(path) = &opts.golden {
        match std::fs::read_to_string(path) {
            Ok(golden) if golden == json => {
                println!("  matrix matches golden file {}", path.display());
            }
            Ok(_) => {
                return Err(format!(
                    "scenario matrix DIFFERS from golden file {} — \
                     regenerate it if the change is intended \
                     (cargo run --release --example scenario_matrix -- --json {})",
                    path.display(),
                    path.display()
                ));
            }
            Err(e) => {
                return Err(format!("cannot read golden file {}: {e}", path.display()));
            }
        }
    }
    if matrix.passing() < matrix.rows.len() {
        return Err(format!(
            "{} of {} scenarios failed their expectation lists",
            matrix.rows.len() - matrix.passing(),
            matrix.rows.len()
        ));
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_and_pass() {
        let m = run_scenarios(&ScenarioOptions {
            threads: 2,
            ..ScenarioOptions::default()
        })
        .expect("no golden comparison requested");
        assert!(m.rows.len() >= 8);
        assert_eq!(m.passing(), m.rows.len());
    }

    #[test]
    fn golden_mismatch_is_an_error() {
        let dir = std::env::temp_dir().join("cg-scenarios-golden-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.json");
        std::fs::write(&path, "not the matrix").unwrap();
        let r = run_scenarios(&ScenarioOptions {
            threads: 2,
            golden: Some(path),
            ..ScenarioOptions::default()
        });
        assert!(r.is_err());
    }
}
