//! Console rendering helpers: paper-vs-measured rows and simple tables.

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("━━━ {title} ━━━");
}

/// Prints one paper-vs-measured comparison line for a percentage or
/// scalar value.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let delta = measured - paper;
    println!("  {label:<46} paper {paper:>10.1}{unit}   measured {measured:>10.1}{unit}   Δ {delta:>+8.1}");
}

/// Prints one paper-vs-measured comparison for integer counts.
pub fn compare_count(label: &str, paper: usize, measured: usize) {
    println!("  {label:<46} paper {paper:>10}   measured {measured:>10}");
}

/// Prints a plain measured-only line.
pub fn measured(label: &str, value: f64, unit: &str) {
    println!("  {label:<46} measured {value:>10.2}{unit}");
}

/// Prints a ranked-list row (figures 2 and 8).
pub fn ranked_row(rank: usize, name: &str, count: usize, share_pct: f64) {
    println!("  {rank:>3}. {name:<40} {count:>6} unique cookies   {share_pct:>6.2}%");
}

/// Renders a crude horizontal bar for console figures.
pub fn bar(label: &str, value: f64, max: f64, width: usize) {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    let bar: String = "█".repeat(filled.min(width));
    println!("  {label:<28} {bar:<width$} {value:.1}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_does_not_panic() {
        header("Test");
        compare("x", 1.0, 2.0, "%");
        compare_count("y", 10, 12);
        measured("z", 3.3, "ms");
        ranked_row(1, "googletagmanager.com", 100, 3.3);
        bar("overwriting", 31.5, 100.0, 40);
        bar("zero-max", 1.0, 0.0, 40);
    }
}
