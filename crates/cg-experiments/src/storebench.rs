//! `--exp storebench`: the crawl-store throughput report behind
//! `BENCH_crawlstore.json`.
//!
//! One crawl, written through both segment formats, then replayed and
//! folded under timing: visits/s written, MB/s + visits/s replayed
//! (JSONL vs binary), parallel-fold wall time at 1 and 8 threads, and
//! the process peak RSS. The numbers vary run to run; the *keys* are a
//! schema CI diffs against `ci/bench_crawlstore_keys.txt`, so the
//! report cannot silently drop a metric.

use crate::context::ExperimentOptions;
use cg_analysis::{StreamStats, StreamSummary};
use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, CrawlReader, SegmentFormat};
use cg_telemetry::{per_sec, render_ms, Stopwatch};
use cg_webgen::{GenConfig, WebGenerator};
use serde::Serialize;
use std::path::Path;

/// Peak resident set size of this process, from `/proc/self/status`
/// `VmHWM` (Linux only; `None` elsewhere). This is a *high-water mark*:
/// it proves bounded-memory claims only when the bounded phase is the
/// biggest thing the process ever did.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// One format's write-side measurements.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WriteSide {
    /// Visits written this run.
    pub visits: u64,
    /// Wall-clock milliseconds of the crawl loop.
    pub elapsed_ms: u64,
    /// Visits per second written through the store.
    pub visits_per_sec: f64,
    /// Segment bytes on disk afterwards.
    pub bytes: u64,
    /// Average stored bytes per visit.
    pub bytes_per_visit: f64,
}

/// One format's replay-side measurements (full rank-ordered drain).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ReplaySide {
    /// Visits decoded.
    pub visits: u64,
    /// Segment bytes read.
    pub bytes: u64,
    /// Wall-clock milliseconds for the full drain.
    pub elapsed_ms: u64,
    /// Visits per second replayed.
    pub visits_per_sec: f64,
    /// Megabytes per second replayed.
    pub mb_per_sec: f64,
}

/// Parallel-fold wall times over the binary store.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FoldSide {
    /// Sequential (1-thread) streaming fold, milliseconds.
    pub threads_1_ms: u64,
    /// 8-thread streaming fold, milliseconds.
    pub threads_8_ms: u64,
    /// `threads_1_ms / threads_8_ms`.
    pub speedup: f64,
}

/// The full machine-readable report (`BENCH_crawlstore.json`).
#[derive(Debug, Clone, Serialize)]
pub struct StoreBenchReport {
    /// Sites crawled.
    pub sites: u64,
    /// Crawl worker threads.
    pub threads: u64,
    /// JSONL write side.
    pub write_jsonl: WriteSide,
    /// Binary write side.
    pub write_binary: WriteSide,
    /// JSONL replay side.
    pub replay_jsonl: ReplaySide,
    /// Binary replay side.
    pub replay_binary: ReplaySide,
    /// Binary replay visits/s over JSONL replay visits/s.
    pub binary_replay_speedup: f64,
    /// Streaming parallel-fold wall times (binary store).
    pub fold: FoldSide,
    /// Process peak RSS after everything above (bytes; 0 if unknown).
    pub peak_rss_bytes: u64,
    /// The streaming aggregates of the crawl — pins that the two
    /// formats analyzed identically and gives the numbers context.
    pub stream_summary: StreamSummary,
}

fn crawl_one(
    dir: &Path,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    sites: usize,
    threads: usize,
    format: SegmentFormat,
) -> WriteSide {
    let run = crawl_to_store_with(dir, gen, cfg, 1, sites, threads, format, |_| {})
        .unwrap_or_else(|e| panic!("storebench crawl ({format}): {e}"));
    let visits = run.summary.visited as u64;
    WriteSide {
        visits,
        elapsed_ms: run.summary.elapsed_ms,
        visits_per_sec: run.summary.visits_per_sec(),
        bytes: run.stats.bytes,
        bytes_per_visit: if visits == 0 {
            0.0
        } else {
            run.stats.bytes as f64 / visits as f64
        },
    }
}

fn replay_one(dir: &Path, bytes: u64) -> ReplaySide {
    let _span = cg_telemetry::span!("storebench_replay");
    let watch = Stopwatch::start();
    let mut visits = 0u64;
    for log in CrawlReader::open(dir).unwrap_or_else(|e| panic!("storebench replay open: {e}")) {
        log.unwrap_or_else(|e| panic!("storebench replay: {e}"));
        visits += 1;
    }
    let elapsed_ms = watch.elapsed_ms();
    ReplaySide {
        visits,
        bytes,
        elapsed_ms,
        visits_per_sec: per_sec(visits, elapsed_ms),
        mb_per_sec: per_sec(bytes, elapsed_ms) / 1e6,
    }
}

/// Runs the crawl-store benchmark. The store directories live under
/// `opts.store` when set (kept afterwards — reruns resume) or a
/// temporary directory (removed afterwards).
pub fn run_storebench(opts: &ExperimentOptions) -> StoreBenchReport {
    let (base, ephemeral) = match &opts.store {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("cg-storebench-{}", std::process::id())),
            true,
        ),
    };
    let gen = WebGenerator::new(GenConfig::small(opts.sites), opts.seed);
    let cfg = VisitConfig::regular();
    let dir_j = base.join("jsonl");
    let dir_b = base.join("binary");

    eprintln!("[storebench] crawling {} sites → JSONL store…", opts.sites);
    let write_jsonl = crawl_one(
        &dir_j,
        &gen,
        &cfg,
        opts.sites,
        opts.threads,
        SegmentFormat::Jsonl,
    );
    eprintln!("[storebench] crawling {} sites → binary store…", opts.sites);
    let write_binary = crawl_one(
        &dir_b,
        &gen,
        &cfg,
        opts.sites,
        opts.threads,
        SegmentFormat::Binary,
    );

    eprintln!("[storebench] replaying both stores…");
    let replay_jsonl = replay_one(&dir_j, write_jsonl.bytes);
    let replay_binary = replay_one(&dir_b, write_binary.bytes);

    eprintln!("[storebench] streaming folds at 1 and 8 threads…");
    let t1 = Stopwatch::start();
    let seq = StreamStats::from_store(&dir_b, 1).unwrap_or_else(|e| panic!("storebench fold: {e}"));
    let threads_1_ms = t1.elapsed_ms();
    let t8 = Stopwatch::start();
    let par = StreamStats::from_store(&dir_b, 8).unwrap_or_else(|e| panic!("storebench fold: {e}"));
    let threads_8_ms = t8.elapsed_ms();
    assert_eq!(
        serde_json::to_string(&seq).expect("serialize stats"),
        serde_json::to_string(&par).expect("serialize stats"),
        "parallel fold diverged from sequential — determinism bug"
    );

    if ephemeral {
        let _ = std::fs::remove_dir_all(&base);
    }

    StoreBenchReport {
        sites: opts.sites as u64,
        threads: opts.threads as u64,
        write_jsonl,
        write_binary,
        replay_jsonl,
        replay_binary,
        binary_replay_speedup: if replay_jsonl.visits_per_sec > 0.0 {
            replay_binary.visits_per_sec / replay_jsonl.visits_per_sec
        } else {
            0.0
        },
        fold: FoldSide {
            threads_1_ms,
            threads_8_ms,
            speedup: if threads_8_ms == 0 {
                0.0
            } else {
                threads_1_ms as f64 / threads_8_ms as f64
            },
        },
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        stream_summary: seq.summary(),
    }
}

/// Prints the human-readable side of the report.
pub fn print_storebench(r: &StoreBenchReport) {
    println!("\n== crawl store throughput ({} sites) ==", r.sites);
    println!(
        "  write  jsonl : {:>9.0} visits/s  {:>7.0} B/visit  ({})",
        r.write_jsonl.visits_per_sec,
        r.write_jsonl.bytes_per_visit,
        render_ms(r.write_jsonl.elapsed_ms)
    );
    println!(
        "  write  binary: {:>9.0} visits/s  {:>7.0} B/visit  ({})",
        r.write_binary.visits_per_sec,
        r.write_binary.bytes_per_visit,
        render_ms(r.write_binary.elapsed_ms)
    );
    println!(
        "  replay jsonl : {:>9.0} visits/s  {:>7.1} MB/s     ({})",
        r.replay_jsonl.visits_per_sec,
        r.replay_jsonl.mb_per_sec,
        render_ms(r.replay_jsonl.elapsed_ms)
    );
    println!(
        "  replay binary: {:>9.0} visits/s  {:>7.1} MB/s     ({})  — {:.1}× jsonl",
        r.replay_binary.visits_per_sec,
        r.replay_binary.mb_per_sec,
        render_ms(r.replay_binary.elapsed_ms),
        r.binary_replay_speedup
    );
    println!(
        "  fold   1 thr : {}    8 thr: {}   ({:.1}× speedup)",
        render_ms(r.fold.threads_1_ms),
        render_ms(r.fold.threads_8_ms),
        r.fold.speedup
    );
    println!(
        "  peak RSS     : {:.1} MB",
        r.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        // On Linux this must parse; elsewhere None is the contract.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }

    #[test]
    fn storebench_report_has_stable_keys() {
        let opts = ExperimentOptions {
            sites: 30,
            seed: 7,
            threads: 2,
            ..ExperimentOptions::default()
        };
        let report = run_storebench(&opts);
        assert_eq!(report.sites, 30);
        assert_eq!(report.replay_jsonl.visits, report.replay_binary.visits);
        assert!(report.write_binary.bytes < report.write_jsonl.bytes);
        let json = serde_json::to_value(&report).unwrap();
        for key in [
            "write_jsonl",
            "write_binary",
            "replay_jsonl",
            "replay_binary",
            "binary_replay_speedup",
            "fold",
            "peak_rss_bytes",
            "stream_summary",
        ] {
            assert!(json.get(key).is_some(), "missing report key {key}");
        }
    }
}
