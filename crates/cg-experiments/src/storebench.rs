//! `--exp storebench`: the crawl-store throughput report behind
//! `BENCH_crawlstore.json`.
//!
//! One crawl, written through both segment formats, then replayed and
//! folded under timing: visits/s written, MB/s + visits/s replayed
//! (JSONL vs binary vs mmap'd chunked binary), chunk-granular
//! parallel-fold wall time at 1 and 8 threads through the mmap and
//! pread backends, and the process peak RSS. The fold benchmark runs
//! over a store of at least [`FOLD_SITES_FLOOR`] visits (its own crawl
//! when `--sites` is smaller, overridable with `--fold-sites`) —
//! speedups measured on stores that fold in single-digit milliseconds
//! are noise. The numbers vary run to run; the *keys* are a schema CI
//! diffs against `ci/bench_crawlstore_keys.txt`, so the report cannot
//! silently drop a metric.

use crate::context::ExperimentOptions;
use cg_analysis::{StreamStats, StreamSummary};
use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, plan_chunks, CrawlReader, ReadBackend, SegmentFormat};
use cg_telemetry::{per_sec, render_ms, Stopwatch};
use cg_webgen::{GenConfig, WebGenerator};
use serde::Serialize;
use std::path::Path;

/// Minimum visits in the fold-benchmark store (see module docs).
pub const FOLD_SITES_FLOOR: usize = 10_000;

/// Peak resident set size of this process, from `/proc/self/status`
/// `VmHWM` (Linux only; `None` elsewhere). This is a *high-water mark*:
/// it proves bounded-memory claims only when the bounded phase is the
/// biggest thing the process ever did.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// One format's write-side measurements.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WriteSide {
    /// Visits written this run.
    pub visits: u64,
    /// Wall-clock milliseconds of the crawl loop.
    pub elapsed_ms: u64,
    /// Visits per second written through the store.
    pub visits_per_sec: f64,
    /// Segment bytes on disk afterwards.
    pub bytes: u64,
    /// Average stored bytes per visit.
    pub bytes_per_visit: f64,
}

/// One format's replay-side measurements (full rank-ordered drain).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ReplaySide {
    /// Visits decoded.
    pub visits: u64,
    /// Segment bytes read.
    pub bytes: u64,
    /// Wall-clock milliseconds for the full drain.
    pub elapsed_ms: u64,
    /// Visits per second replayed.
    pub visits_per_sec: f64,
    /// Megabytes per second replayed.
    pub mb_per_sec: f64,
}

/// One read backend's fold wall times.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BackendFold {
    /// Sequential (1-thread) streaming fold, milliseconds.
    pub threads_1_ms: u64,
    /// 8-thread streaming fold, milliseconds.
    pub threads_8_ms: u64,
    /// `threads_1_ms / threads_8_ms`.
    pub speedup: f64,
}

/// Chunk-granular parallel-fold measurements over the fold store.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FoldSide {
    /// Visits in the fold store (≥ [`FOLD_SITES_FLOOR`] unless
    /// overridden).
    pub visits: u64,
    /// Segment files the store holds.
    pub segments: u64,
    /// Chunks the frame index cut those segments into — the unit of
    /// fold parallelism.
    pub chunks: u64,
    /// Default-backend (mmap) 1-thread fold, milliseconds.
    pub threads_1_ms: u64,
    /// Default-backend (mmap) 8-thread fold, milliseconds.
    pub threads_8_ms: u64,
    /// `threads_1_ms / threads_8_ms`.
    pub speedup: f64,
    /// The mmap backend's timings (same numbers as the top level —
    /// mmap is the default — kept per-backend for the schema).
    pub mmap: BackendFold,
    /// The pread backend's timings.
    pub pread: BackendFold,
}

/// The full machine-readable report (`BENCH_crawlstore.json`).
#[derive(Debug, Clone, Serialize)]
pub struct StoreBenchReport {
    /// Sites crawled.
    pub sites: u64,
    /// Crawl worker threads.
    pub threads: u64,
    /// JSONL write side.
    pub write_jsonl: WriteSide,
    /// Binary write side.
    pub write_binary: WriteSide,
    /// JSONL replay side.
    pub replay_jsonl: ReplaySide,
    /// Binary replay side (rank-ordered k-way merge drain).
    pub replay_binary: ReplaySide,
    /// Binary replay through mmap'd zero-copy chunk windows (1-thread
    /// chunked drain — the apples-to-apples MB/s comparison against
    /// `replay_binary`'s pread-based merge).
    pub replay_binary_mmap: ReplaySide,
    /// Binary replay visits/s over JSONL replay visits/s.
    pub binary_replay_speedup: f64,
    /// Chunk-granular parallel-fold measurements (binary fold store).
    pub fold: FoldSide,
    /// Process peak RSS after everything above (bytes; 0 if unknown).
    pub peak_rss_bytes: u64,
    /// The streaming aggregates of the crawl — pins that the two
    /// formats analyzed identically and gives the numbers context.
    pub stream_summary: StreamSummary,
}

fn crawl_one(
    dir: &Path,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    sites: usize,
    threads: usize,
    format: SegmentFormat,
) -> WriteSide {
    let run = crawl_to_store_with(dir, gen, cfg, 1, sites, threads, format, |_| {})
        .unwrap_or_else(|e| panic!("storebench crawl ({format}): {e}"));
    let visits = run.summary.visited as u64;
    WriteSide {
        visits,
        elapsed_ms: run.summary.elapsed_ms,
        visits_per_sec: run.summary.visits_per_sec(),
        bytes: run.stats.bytes,
        bytes_per_visit: if visits == 0 {
            0.0
        } else {
            run.stats.bytes as f64 / visits as f64
        },
    }
}

fn replay_one(dir: &Path, bytes: u64) -> ReplaySide {
    let _span = cg_telemetry::span!("storebench_replay");
    let watch = Stopwatch::start();
    let mut visits = 0u64;
    for log in CrawlReader::open(dir).unwrap_or_else(|e| panic!("storebench replay open: {e}")) {
        log.unwrap_or_else(|e| panic!("storebench replay: {e}"));
        visits += 1;
    }
    let elapsed_ms = watch.elapsed_ms();
    ReplaySide {
        visits,
        bytes,
        elapsed_ms,
        visits_per_sec: per_sec(visits, elapsed_ms),
        mb_per_sec: per_sec(bytes, elapsed_ms) / 1e6,
    }
}

/// A full 1-thread decode of the binary store through mmap'd chunk
/// windows — the zero-copy counterpart of [`replay_one`]'s merge drain.
fn replay_one_mmap(dir: &Path, bytes: u64) -> ReplaySide {
    let _span = cg_telemetry::span!("storebench_replay_mmap");
    let watch = Stopwatch::start();
    let counts = cg_crawlstore::par_fold_with(dir, 1, ReadBackend::Mmap, |chunk| {
        let mut n = 0u64;
        for log in chunk {
            log?;
            n += 1;
        }
        Ok(n)
    })
    .unwrap_or_else(|e| panic!("storebench mmap replay: {e}"));
    let elapsed_ms = watch.elapsed_ms();
    let visits = counts.iter().sum();
    ReplaySide {
        visits,
        bytes,
        elapsed_ms,
        visits_per_sec: per_sec(visits, elapsed_ms),
        mb_per_sec: per_sec(bytes, elapsed_ms) / 1e6,
    }
}

/// Times `StreamStats::from_store_with` at 1 and 8 threads through one
/// backend, asserting the two folds serialize identically.
fn fold_backend(dir: &Path, backend: ReadBackend) -> (BackendFold, StreamStats) {
    let t1 = Stopwatch::start();
    let seq = StreamStats::from_store_with(dir, 1, backend)
        .unwrap_or_else(|e| panic!("storebench fold ({backend}): {e}"));
    let threads_1_ms = t1.elapsed_ms();
    let t8 = Stopwatch::start();
    let par = StreamStats::from_store_with(dir, 8, backend)
        .unwrap_or_else(|e| panic!("storebench fold ({backend}): {e}"));
    let threads_8_ms = t8.elapsed_ms();
    assert_eq!(
        serde_json::to_string(&seq).expect("serialize stats"),
        serde_json::to_string(&par).expect("serialize stats"),
        "parallel {backend} fold diverged from sequential — determinism bug"
    );
    (
        BackendFold {
            threads_1_ms,
            threads_8_ms,
            speedup: if threads_8_ms == 0 {
                0.0
            } else {
                threads_1_ms as f64 / threads_8_ms as f64
            },
        },
        seq,
    )
}

/// Runs the crawl-store benchmark. The store directories live under
/// `opts.store` when set (kept afterwards — reruns resume) or a
/// temporary directory (removed afterwards).
pub fn run_storebench(opts: &ExperimentOptions) -> StoreBenchReport {
    let (base, ephemeral) = match &opts.store {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("cg-storebench-{}", std::process::id())),
            true,
        ),
    };
    let gen = WebGenerator::new(GenConfig::small(opts.sites), opts.seed);
    let cfg = VisitConfig::regular();
    let dir_j = base.join("jsonl");
    let dir_b = base.join("binary");

    eprintln!("[storebench] crawling {} sites → JSONL store…", opts.sites);
    let write_jsonl = crawl_one(
        &dir_j,
        &gen,
        &cfg,
        opts.sites,
        opts.threads,
        SegmentFormat::Jsonl,
    );
    eprintln!("[storebench] crawling {} sites → binary store…", opts.sites);
    let write_binary = crawl_one(
        &dir_b,
        &gen,
        &cfg,
        opts.sites,
        opts.threads,
        SegmentFormat::Binary,
    );

    eprintln!("[storebench] replaying both stores…");
    let replay_jsonl = replay_one(&dir_j, write_jsonl.bytes);
    let replay_binary = replay_one(&dir_b, write_binary.bytes);
    let replay_binary_mmap = replay_one_mmap(&dir_b, write_binary.bytes);

    // The fold benchmark needs a store large enough that per-chunk
    // dispatch is amortized; reuse the main binary store when it
    // qualifies, otherwise crawl a dedicated one.
    let fold_sites = opts.fold_sites.unwrap_or(opts.sites.max(FOLD_SITES_FLOOR));
    let dir_f = if fold_sites == opts.sites {
        dir_b.clone()
    } else {
        let dir_f = base.join("fold");
        eprintln!("[storebench] crawling {fold_sites} sites → fold-bench binary store…");
        let fold_gen = WebGenerator::new(GenConfig::small(fold_sites), opts.seed);
        crawl_one(
            &dir_f,
            &fold_gen,
            &cfg,
            fold_sites,
            opts.threads,
            SegmentFormat::Binary,
        );
        dir_f
    };
    let plan = plan_chunks(&dir_f).unwrap_or_else(|e| panic!("storebench chunk plan: {e}"));
    let (segments, chunks) = (plan.segments() as u64, plan.len() as u64);
    drop(plan);

    eprintln!("[storebench] chunked folds at 1 and 8 threads (mmap, pread)…");
    let (mmap, mmap_stats) = fold_backend(&dir_f, ReadBackend::Mmap);
    let (pread, pread_stats) = fold_backend(&dir_f, ReadBackend::Pread);
    assert_eq!(
        serde_json::to_string(&mmap_stats).expect("serialize stats"),
        serde_json::to_string(&pread_stats).expect("serialize stats"),
        "mmap fold diverged from pread — backend differential bug"
    );
    // The summary pins the *measured* crawl, not the fold-bench store.
    let seq = StreamStats::from_store(&dir_b, 1).unwrap_or_else(|e| panic!("storebench fold: {e}"));

    if ephemeral {
        let _ = std::fs::remove_dir_all(&base);
    }

    StoreBenchReport {
        sites: opts.sites as u64,
        threads: opts.threads as u64,
        write_jsonl,
        write_binary,
        replay_jsonl,
        replay_binary,
        replay_binary_mmap,
        binary_replay_speedup: if replay_jsonl.visits_per_sec > 0.0 {
            replay_binary.visits_per_sec / replay_jsonl.visits_per_sec
        } else {
            0.0
        },
        fold: FoldSide {
            visits: fold_sites as u64,
            segments,
            chunks,
            threads_1_ms: mmap.threads_1_ms,
            threads_8_ms: mmap.threads_8_ms,
            speedup: mmap.speedup,
            mmap,
            pread,
        },
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        stream_summary: seq.summary(),
    }
}

/// Prints the human-readable side of the report.
pub fn print_storebench(r: &StoreBenchReport) {
    println!("\n== crawl store throughput ({} sites) ==", r.sites);
    println!(
        "  write  jsonl : {:>9.0} visits/s  {:>7.0} B/visit  ({})",
        r.write_jsonl.visits_per_sec,
        r.write_jsonl.bytes_per_visit,
        render_ms(r.write_jsonl.elapsed_ms)
    );
    println!(
        "  write  binary: {:>9.0} visits/s  {:>7.0} B/visit  ({})",
        r.write_binary.visits_per_sec,
        r.write_binary.bytes_per_visit,
        render_ms(r.write_binary.elapsed_ms)
    );
    println!(
        "  replay jsonl : {:>9.0} visits/s  {:>7.1} MB/s     ({})",
        r.replay_jsonl.visits_per_sec,
        r.replay_jsonl.mb_per_sec,
        render_ms(r.replay_jsonl.elapsed_ms)
    );
    println!(
        "  replay binary: {:>9.0} visits/s  {:>7.1} MB/s     ({})  — {:.1}× jsonl",
        r.replay_binary.visits_per_sec,
        r.replay_binary.mb_per_sec,
        render_ms(r.replay_binary.elapsed_ms),
        r.binary_replay_speedup
    );
    println!(
        "  replay mmap  : {:>9.0} visits/s  {:>7.1} MB/s     ({})  — zero-copy chunks",
        r.replay_binary_mmap.visits_per_sec,
        r.replay_binary_mmap.mb_per_sec,
        render_ms(r.replay_binary_mmap.elapsed_ms),
    );
    println!(
        "  fold store   : {} visits, {} segments cut into {} chunks",
        r.fold.visits, r.fold.segments, r.fold.chunks
    );
    println!(
        "  fold mmap    : 1 thr {}    8 thr {}   ({:.2}× speedup)",
        render_ms(r.fold.mmap.threads_1_ms),
        render_ms(r.fold.mmap.threads_8_ms),
        r.fold.mmap.speedup
    );
    println!(
        "  fold pread   : 1 thr {}    8 thr {}   ({:.2}× speedup)",
        render_ms(r.fold.pread.threads_1_ms),
        render_ms(r.fold.pread.threads_8_ms),
        r.fold.pread.speedup
    );
    println!(
        "  peak RSS     : {:.1} MB",
        r.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        // On Linux this must parse; elsewhere None is the contract.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }

    #[test]
    fn storebench_report_has_stable_keys() {
        let opts = ExperimentOptions {
            sites: 30,
            seed: 7,
            threads: 2,
            fold_sites: Some(40), // keep the unit test off the 10k floor
            ..ExperimentOptions::default()
        };
        let report = run_storebench(&opts);
        assert_eq!(report.sites, 30);
        assert_eq!(report.replay_jsonl.visits, report.replay_binary.visits);
        assert_eq!(
            report.replay_binary_mmap.visits,
            report.replay_binary.visits
        );
        assert!(report.write_binary.bytes < report.write_jsonl.bytes);
        assert_eq!(report.fold.visits, 40);
        assert!(report.fold.chunks >= report.fold.segments);
        let json = serde_json::to_value(&report).unwrap();
        for key in [
            "write_jsonl",
            "write_binary",
            "replay_jsonl",
            "replay_binary",
            "replay_binary_mmap",
            "binary_replay_speedup",
            "fold",
            "peak_rss_bytes",
            "stream_summary",
        ] {
            assert!(json.get(key).is_some(), "missing report key {key}");
        }
        for key in ["visits", "segments", "chunks", "mmap", "pread"] {
            assert!(
                json["fold"].get(key).is_some(),
                "missing fold report key {key}"
            );
        }
    }
}
