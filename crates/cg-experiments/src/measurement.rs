//! The §5 measurement experiments (single regular crawl).

use crate::context::CrawlContext;
use crate::expectations as exp;
use crate::render::{bar, compare, compare_count, header, measured, ranked_row};
use cg_analysis::{
    api_usage, cross_domain_summary, detect_exfiltration, detect_manipulation, dom_pilot_stats,
    inclusion_stats, prevalence_stats,
};
use cg_instrument::CookieApi;
use serde::Serialize;

/// Machine-readable results of the measurement experiments.
#[derive(Debug, Serialize)]
pub struct MeasurementResults {
    /// §5.1.
    pub prevalence: cg_analysis::prevalence::PrevalenceStats,
    /// §5.2.
    pub api_usage: cg_analysis::prevalence::ApiUsageStats,
    /// Table 1.
    pub table1: cg_analysis::CrossDomainSummary,
    /// Table 2 rows.
    pub table2: Vec<cg_analysis::exfiltration::Table2Row>,
    /// Fig. 2 rows (domain, unique cookies, share %).
    pub fig2: Vec<(String, usize, f64)>,
    /// §5.5 attribute changes.
    pub attr_changes: cg_analysis::manipulation::AttrChangeShares,
    /// Table 5 overwrites.
    pub table5_overwrites: Vec<cg_analysis::manipulation::Table5Row>,
    /// Table 5 deletes.
    pub table5_deletes: Vec<cg_analysis::manipulation::Table5Row>,
    /// Fig. 8a rows.
    pub fig8_overwriters: Vec<(String, usize, f64)>,
    /// Fig. 8b rows.
    pub fig8_deleters: Vec<(String, usize, f64)>,
    /// §5.6.
    pub inclusion: cg_analysis::prevalence::InclusionStats,
    /// §8 DOM pilot.
    pub dom_pilot: cg_analysis::dom_pilot::DomPilotStats,
    /// §5.5 intent classification.
    pub intents: cg_analysis::IntentReport,
    /// Crawl completion.
    pub crawled: usize,
    /// Complete visits.
    pub complete: usize,
}

/// Runs every §5 experiment over one crawl context and prints the
/// paper-vs-measured report for the requested experiment names.
pub fn run_measurement_experiments(ctx: &CrawlContext, which: &[&str]) -> MeasurementResults {
    let ds = &ctx.dataset;
    let prevalence = prevalence_stats(ds, &ctx.engine);
    let usage = api_usage(ds);
    let exfil = detect_exfiltration(ds, &ctx.entities);
    let manip = detect_manipulation(ds, &ctx.entities);
    let t1 = cross_domain_summary(ds, &exfil, &manip);
    let total_doc_pairs = t1.doc_pairs_total;
    let table2 = exfil.table2(20);
    let fig2 = exfil.fig2(20, total_doc_pairs);
    let table5_ow = manip.table5(false, 10);
    let table5_del = manip.table5(true, 10);
    let intents = cg_analysis::classify_intents(ds, &ctx.entities);
    let fig8_ow = manip.fig8(false, 20, total_doc_pairs);
    let fig8_del = manip.fig8(true, 20, total_doc_pairs);
    let inclusion = inclusion_stats(ds, &ctx.engine);
    let dom = dom_pilot_stats(ds);

    let wants = |name: &str| which.contains(&"all") || which.contains(&name);

    if wants("crawl") || wants("sec5_1") {
        header("§4.2 Data collection");
        compare_count("sites crawled", exp::CRAWL_TOTAL, ctx.crawled);
        compare_count(
            "complete (analyzable) sites",
            exp::CRAWL_COMPLETE,
            ds.site_count(),
        );
    }

    if wants("sec5_1") {
        header("§5.1 Prevalence of third-party scripts");
        compare(
            "sites with ≥1 third-party script",
            exp::SITES_WITH_3P_PCT,
            prevalence.sites_with_third_party_pct,
            "%",
        );
        compare(
            "avg distinct 3p scripts / site",
            exp::AVG_3P_SCRIPTS,
            prevalence.avg_third_party_scripts,
            "",
        );
        compare(
            "ad/tracking share of 3p scripts",
            exp::AD_TRACKING_SHARE_PCT,
            prevalence.ad_tracking_share_pct,
            "%",
        );
        compare(
            "avg cookies set by 3p scripts / site",
            exp::AVG_COOKIES_3P,
            prevalence.avg_cookies_third_party,
            "",
        );
        compare(
            "avg cookies set by 1p scripts / site",
            exp::AVG_COOKIES_1P,
            prevalence.avg_cookies_first_party,
            "",
        );
    }

    if wants("sec5_2") {
        header("§5.2 Cookie API usage");
        compare(
            "document.cookie invoked on sites",
            exp::DOC_COOKIE_SITES_PCT,
            usage.doc_cookie_sites_pct,
            "%",
        );
        compare_count(
            "unique document.cookie pairs",
            exp::DOC_COOKIE_PAIRS,
            usage.doc_cookie_pairs,
        );
        measured(
            "distinct setter scripts",
            usage.doc_cookie_setter_scripts as f64,
            "",
        );
        measured(
            "distinct setter domains",
            usage.doc_cookie_setter_domains as f64,
            "",
        );
        compare(
            "cookieStore used on sites",
            exp::COOKIE_STORE_SITES_PCT,
            usage.cookie_store_sites_pct,
            "%",
        );
        compare_count(
            "unique cookieStore pairs",
            exp::COOKIE_STORE_PAIRS,
            usage.cookie_store_pairs,
        );
        measured(
            "distinct cookieStore names",
            usage.cookie_store_names as f64,
            "",
        );
        compare(
            "top-2 cookieStore names share",
            exp::COOKIE_STORE_TOP2_PCT,
            usage.cookie_store_top2_share_pct,
            "%",
        );
    }

    if wants("table1") {
        header("Table 1: cross-domain cookie actions");
        println!("  document.cookie:");
        compare(
            "    exfiltration — % of websites",
            exp::T1_DOC_EXFIL.0,
            t1.doc_exfiltration.sites_pct,
            "%",
        );
        compare(
            "    exfiltration — % of cookies",
            exp::T1_DOC_EXFIL.1,
            t1.doc_exfiltration.cookies_pct,
            "%",
        );
        compare_count(
            "    exfiltration — affected pairs",
            4_825,
            t1.doc_exfiltration.cookies_count,
        );
        compare(
            "    overwriting — % of websites",
            exp::T1_DOC_OVERWRITE.0,
            t1.doc_overwriting.sites_pct,
            "%",
        );
        compare(
            "    overwriting — % of cookies",
            exp::T1_DOC_OVERWRITE.1,
            t1.doc_overwriting.cookies_pct,
            "%",
        );
        compare_count(
            "    overwriting — affected pairs",
            2_212,
            t1.doc_overwriting.cookies_count,
        );
        compare(
            "    deleting — % of websites",
            exp::T1_DOC_DELETE.0,
            t1.doc_deleting.sites_pct,
            "%",
        );
        compare(
            "    deleting — % of cookies",
            exp::T1_DOC_DELETE.1,
            t1.doc_deleting.cookies_pct,
            "%",
        );
        compare_count(
            "    deleting — affected pairs",
            1_475,
            t1.doc_deleting.cookies_count,
        );
        println!("  cookieStore:");
        compare(
            "    exfiltration — % of websites",
            exp::T1_STORE_EXFIL.0,
            t1.store_exfiltration.sites_pct,
            "%",
        );
        compare(
            "    exfiltration — % of cookies",
            exp::T1_STORE_EXFIL.1,
            t1.store_exfiltration.cookies_pct,
            "%",
        );
        compare(
            "    overwriting — % of websites",
            0.0,
            t1.store_overwriting.sites_pct,
            "%",
        );
        compare(
            "    deleting — % of websites",
            0.0,
            t1.store_deleting.sites_pct,
            "%",
        );
    }

    if wants("table2") {
        header("Table 2: top 20 cross-domain exfiltrated cookies");
        println!(
            "  {:<26} {:<24} {:>8} {:>8}   top exfiltrators → top destinations",
            "cookie", "owner", "#exfil", "#dest"
        );
        for row in &table2 {
            println!(
                "  {:<26} {:<24} {:>8} {:>8}   {} → {}{}",
                truncate(&row.cookie, 26),
                truncate(&row.owner, 24),
                row.exfiltrator_entities,
                row.destination_entities,
                row.top_exfiltrators.join(", "),
                row.top_destinations.join(", "),
                if row.consent_signal {
                    "   [consent signal]"
                } else {
                    ""
                }
            );
        }
    }

    if wants("fig2") {
        header("Figure 2: top 20 exfiltrator script domains");
        for (i, (domain, count, share)) in fig2.iter().enumerate() {
            ranked_row(i + 1, domain, *count, *share);
        }
    }

    if wants("sec5_5") {
        header("§5.5 Overwrite attribute changes");
        compare(
            "value changed",
            exp::ATTR_CHANGES.0,
            manip.attr_changes.value_pct,
            "%",
        );
        compare(
            "expires changed",
            exp::ATTR_CHANGES.1,
            manip.attr_changes.expires_pct,
            "%",
        );
        compare(
            "domain changed",
            exp::ATTR_CHANGES.2,
            manip.attr_changes.domain_pct,
            "%",
        );
        compare(
            "path changed",
            exp::ATTR_CHANGES.3,
            manip.attr_changes.path_pct,
            "%",
        );

        header("§5.5 Intention behind manipulations (case-study taxonomy)");
        use cg_analysis::ManipulationIntent;
        for intent in [
            ManipulationIntent::Collision,
            ManipulationIntent::PrivacyCompliance,
            ManipulationIntent::CollusionOrCompetition,
            ManipulationIntent::Unclear,
        ] {
            crate::render::measured(
                &format!("{intent:?}"),
                intents.count(intent) as f64,
                "events",
            );
        }
        for (name, actors) in intents.collision_hotspots.iter().take(5) {
            println!("    collision hotspot: {name:<20} manipulated by {actors} distinct actors");
        }
    }

    if wants("table5") {
        header("Table 5: most manipulated cookie pairs");
        println!("  Overwriting:");
        for row in &table5_ow {
            println!(
                "    {:<24} {:<24} {:>4} entities   top: {}",
                truncate(&row.cookie, 24),
                truncate(&row.owner, 24),
                row.manipulator_entities,
                row.top_manipulators.join(", ")
            );
        }
        println!("  Deleting:");
        for row in &table5_del {
            println!(
                "    {:<24} {:<24} {:>4} entities   top: {}",
                truncate(&row.cookie, 24),
                truncate(&row.owner, 24),
                row.manipulator_entities,
                row.top_manipulators.join(", ")
            );
        }
    }

    if wants("fig8") {
        header("Figure 8a: top cross-domain overwriting domains");
        for (i, (domain, count, share)) in fig8_ow.iter().enumerate() {
            ranked_row(i + 1, domain, *count, *share);
        }
        header("Figure 8b: top cross-domain deleting domains");
        for (i, (domain, count, share)) in fig8_del.iter().enumerate() {
            ranked_row(i + 1, domain, *count, *share);
        }
    }

    if wants("sec5_6") {
        header("§5.6 Inclusion paths");
        compare(
            "indirect : direct ratio",
            exp::INDIRECT_TO_DIRECT,
            inclusion.indirect_to_direct_ratio,
            "×",
        );
        compare(
            "ad/tracking share of indirect",
            exp::INDIRECT_TRACKING_PCT,
            inclusion.indirect_tracking_pct,
            "%",
        );
        measured("direct third-party inclusions", inclusion.direct as f64, "");
        measured(
            "indirect third-party inclusions",
            inclusion.indirect as f64,
            "",
        );
    }

    if wants("sec8_dom") {
        header("§8 Pilot: cross-domain DOM manipulation");
        compare(
            "sites with cross-domain DOM mutation",
            exp::DOM_PILOT_PCT,
            dom.sites_with_cross_dom_pct,
            "%",
        );
        measured("cross-domain mutation events", dom.events as f64, "");
    }

    // Consistency guard for the harness itself.
    debug_assert_eq!(
        ds.unique_pairs(CookieApi::DocumentCookie).len()
            + ds.unique_pairs(CookieApi::HttpHeader).len(),
        total_doc_pairs
    );

    let _ = bar; // bar() is used by the evaluation module's figures
    MeasurementResults {
        prevalence,
        api_usage: usage,
        table1: t1,
        table2,
        fig2,
        attr_changes: manip.attr_changes,
        table5_overwrites: table5_ow,
        table5_deletes: table5_del,
        fig8_overwriters: fig8_ow,
        fig8_deleters: fig8_del,
        inclusion,
        dom_pilot: dom,
        intents,
        crawled: ctx.crawled,
        complete: ds.site_count(),
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentOptions;

    #[test]
    fn small_crawl_end_to_end() {
        let ctx = CrawlContext::collect(&ExperimentOptions {
            sites: 120,
            seed: 3,
            threads: 2,
            ..ExperimentOptions::default()
        });
        let results = run_measurement_experiments(&ctx, &[]);
        assert!(results.complete > 60);
        assert!(results.prevalence.sites_with_third_party_pct > 70.0);
        assert!(results.api_usage.doc_cookie_pairs > 100);
        // Cross-domain activity must exist even at small scale.
        assert!(results.table1.doc_exfiltration.sites_pct > 10.0);
        assert!(!results.fig2.is_empty());
    }
}
