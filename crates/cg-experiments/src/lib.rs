//! The experiment harness: one entry point per table and figure of the
//! paper, each printing the measured result next to the published value.
//!
//! Run `cg-experiments --exp all` for the full reproduction, or pick one
//! of: `sec5_1`, `sec5_2`, `table1`, `table2`, `fig2`, `sec5_5`,
//! `table5`, `fig8`, `sec5_6`, `sec8_dom`, `fig5`, `table3`, `table4`,
//! `fig6`, `fig7`, `fig9`, `fig10`, `sec5_7`, `domguard`, plus the
//! explicit-only `ablation`, `rollout`, `baselines` (the defense
//! matrix: blocklist ± evasion, partitioning, CookieGraph-lite,
//! CookieGuard), and `csp` (the §2.1 CSP gap). Scale with `--sites N`
//! (default 20,000) and `--threads T`. Three subcommands ride
//! alongside: `scenarios` (the adversarial catalog), `serve` (the
//! multi-tenant guard-service benchmark behind `BENCH_service.json`),
//! and `detect` (the tracking-cookie detector scored against generator
//! ground truth, behind `BENCH_detect.json`).
//!
//! **Layer:** orchestration (the CLI over every other crate).
//! **Invariant:** experiment output is deterministic for a given
//! (seed, sites) at any thread count — and [`determinism`] is the one
//! module that knows which report fields (timing, throughput, RSS) are
//! exempt. **Entry points:** the `cg-experiments` binary,
//! `CrawlContext`, `run_scenarios`, `run_serve`, and the per-table
//! `run_*` functions.

pub mod ablation;
pub mod baselines;
pub mod context;
pub mod detect;
pub mod determinism;
pub mod evaluation;
pub mod expectations;
pub mod extensions;
pub mod measurement;
pub mod render;
pub mod scenarios;
pub mod service;
pub mod storebench;

pub use ablation::run_ablation;
pub use baselines::{run_baselines, run_csp_gap_exp};
pub use context::{CrawlContext, ExperimentOptions};
pub use detect::{run_detect, DetectBenchReport, DetectOptions};
pub use determinism::{
    deterministic_surface, is_nondeterministic_key, mask_keys, mask_nondeterministic,
};
pub use evaluation::{run_fig5, run_table3, run_table4_and_figs};
pub use extensions::{run_domguard, run_rollout, run_sec5_7};
pub use measurement::run_measurement_experiments;
pub use scenarios::{run_scenarios, ScenarioOptions};
pub use service::{
    print_serve, run_serve, BenchServiceReport, ServeOptions, TelemetryOverhead,
    TELEMETRY_BUDGET_PCT,
};
pub use storebench::{peak_rss_bytes, print_storebench, run_storebench, StoreBenchReport};
