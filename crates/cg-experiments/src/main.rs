//! CLI entry point: regenerate the paper's tables and figures.
//!
//! ```text
//! cg-experiments --exp all --sites 20000 --threads 8 --seed 12648430
//! cg-experiments --exp table1,fig2
//! cg-experiments --exp table4 --sites 20000 --json out.json
//! ```

use cg_experiments::{
    print_storebench, run_domguard, run_fig5, run_measurement_experiments, run_rollout, run_sec5_7,
    run_storebench, run_table3, run_table4_and_figs, CrawlContext, ExperimentOptions,
};

const MEASUREMENT_EXPERIMENTS: &[&str] = &[
    "crawl", "sec5_1", "sec5_2", "table1", "table2", "fig2", "sec5_5", "table5", "fig8", "sec5_6",
    "sec8_dom",
];
const EVALUATION_EXPERIMENTS: &[&str] = &[
    "fig5",
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "ablation",
    "sec5_7",
    "domguard",
    "rollout",
    "baselines",
    "csp",
    "storebench",
];

/// Parses a numeric option value, exiting with a clear message instead
/// of silently falling back to the default (a typo'd `--sites` must not
/// quietly launch a full-size crawl).
fn parse_numeric_arg<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> T {
    match value {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a number, got {s:?}; see --help");
            std::process::exit(2);
        }),
        None => {
            eprintln!("{flag} requires a value; see --help");
            std::process::exit(2);
        }
    }
}

/// Parses and runs `cg-experiments scenarios [--seed S] [--threads T]
/// [--json PATH] [--golden PATH]` — the adversarial scenario catalog.
fn run_scenarios_cli(args: &[String]) -> ! {
    let mut opts = cg_experiments::ScenarioOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                opts.seed = parse_numeric_arg(args.get(i), "--seed");
            }
            "--threads" => {
                i += 1;
                opts.threads = parse_numeric_arg(args.get(i), "--threads");
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.json = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("--json requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--golden" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.golden = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("--golden requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown scenarios argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    match cg_experiments::run_scenarios(&opts) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Parses and runs `cg-experiments serve [--sites N] [--seed S]
/// [--passes P] [--workers LIST] [--store DIR] [--bench-json PATH]
/// [--telemetry-snapshot PATH] [--telemetry-dump PATH]` — the
/// multi-tenant guard-service benchmark/smoke.
fn run_serve_cli(args: &[String]) -> ! {
    let mut opts = cg_experiments::ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => {
                i += 1;
                opts.sites = parse_numeric_arg(args.get(i), "--sites");
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_numeric_arg(args.get(i), "--seed");
            }
            "--passes" => {
                i += 1;
                opts.passes = parse_numeric_arg(args.get(i), "--passes");
            }
            "--workers" => {
                i += 1;
                opts.worker_counts = match args.get(i) {
                    Some(list) => list
                        .split(',')
                        .map(|w| {
                            w.parse().unwrap_or_else(|_| {
                                eprintln!("--workers takes a comma-separated list, got {list:?}");
                                std::process::exit(2);
                            })
                        })
                        .collect(),
                    None => {
                        eprintln!("--workers requires a list (e.g. 2,8); see --help");
                        std::process::exit(2);
                    }
                };
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.store = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("--store requires a directory; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--bench-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => opts.bench_json = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--bench-json requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry-snapshot" => {
                i += 1;
                match args.get(i) {
                    Some(path) => opts.telemetry_snapshot = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--telemetry-snapshot requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry-dump" => {
                i += 1;
                match args.get(i) {
                    Some(path) => opts.telemetry_dump = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--telemetry-dump requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown serve argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let report = cg_experiments::run_serve(&opts);
    cg_experiments::print_serve(&report);
    if let Some(path) = &opts.bench_json {
        let json = serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serialize"))
            .expect("serialize");
        match std::fs::write(path, json) {
            Ok(()) => println!("\nbench report written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

/// Parses and runs `cg-experiments detect [--sites N] [--seed S]
/// [--threads T] [--store DIR] [--bench-json PATH]
/// [--report-json PATH]` — the tracking-cookie detection smoke.
fn run_detect_cli(args: &[String]) -> ! {
    let mut opts = cg_experiments::DetectOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => {
                i += 1;
                opts.sites = parse_numeric_arg(args.get(i), "--sites");
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_numeric_arg(args.get(i), "--seed");
            }
            "--threads" => {
                i += 1;
                opts.threads = parse_numeric_arg(args.get(i), "--threads");
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.store = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("--store requires a directory; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--bench-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => opts.bench_json = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--bench-json requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--report-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => opts.report_json = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--report-json requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown detect argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let report = cg_experiments::run_detect(&opts);
    if let Some(path) = &opts.bench_json {
        let json = serde_json::to_string_pretty(&serde_json::to_value(&report).expect("serialize"))
            .expect("serialize");
        match std::fs::write(path, json) {
            Ok(()) => println!("bench report written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("scenarios") {
        run_scenarios_cli(&args[2..]);
    }
    if args.get(1).map(String::as_str) == Some("serve") {
        run_serve_cli(&args[2..]);
    }
    if args.get(1).map(String::as_str) == Some("detect") {
        run_detect_cli(&args[2..]);
    }
    let mut opts = ExperimentOptions::default();
    let mut exps: Vec<String> = vec!["all".to_string()];
    let mut json_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exps = args
                    .get(i)
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            "--sites" => {
                i += 1;
                opts.sites = parse_numeric_arg(args.get(i), "--sites");
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_numeric_arg(args.get(i), "--seed");
            }
            "--threads" => {
                i += 1;
                opts.threads = parse_numeric_arg(args.get(i), "--threads");
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.store = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("--store requires a directory; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--store-format" => {
                i += 1;
                opts.store_format = match args.get(i).map(String::as_str) {
                    Some("jsonl") => cg_crawlstore::SegmentFormat::Jsonl,
                    Some("binary") => cg_crawlstore::SegmentFormat::Binary,
                    other => {
                        eprintln!("--store-format must be jsonl or binary, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--read-backend" => {
                i += 1;
                opts.read_backend = match args.get(i) {
                    Some(name) => name.parse().unwrap_or_else(|e| {
                        eprintln!("{e}; see --help");
                        std::process::exit(2);
                    }),
                    None => {
                        eprintln!("--read-backend requires mmap, pread, or buffered; see --help");
                        std::process::exit(2);
                    }
                };
            }
            "--fold-sites" => {
                i += 1;
                opts.fold_sites = Some(parse_numeric_arg(args.get(i), "--fold-sites"));
            }
            "--bench-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => bench_json_path = Some(path.clone()),
                    None => {
                        eprintln!("--bench-json requires a path; see --help");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let wanted: Vec<&str> = exps.iter().map(String::as_str).collect();
    let all = wanted.contains(&"all");
    let wants_measurement = all || wanted.iter().any(|e| MEASUREMENT_EXPERIMENTS.contains(e));
    let wants = |name: &str| all || wanted.contains(&name);

    for e in &wanted {
        if *e != "all"
            && !MEASUREMENT_EXPERIMENTS.contains(e)
            && !EVALUATION_EXPERIMENTS.contains(e)
        {
            eprintln!("unknown experiment {e:?}; see --help");
            std::process::exit(2);
        }
    }

    println!(
        "CookieGuard reproduction — sites={} seed={:#x} threads={}",
        opts.sites, opts.seed, opts.threads
    );

    let mut json = serde_json::Map::new();

    if wants_measurement {
        eprintln!(
            "[crawl] generating ecosystem and crawling {} sites…",
            opts.sites
        );
        let ctx = CrawlContext::collect(&opts);
        let results = run_measurement_experiments(&ctx, &wanted);
        let mut v = serde_json::to_value(&results).expect("serialize");
        // The per-event intent findings are bulky; store the summary only.
        if let Some(obj) = v.get_mut("intents").and_then(|i| i.as_object_mut()) {
            obj.remove("findings");
        }
        json.insert("measurement".into(), v);
    }

    if wants("fig5") {
        eprintln!("[fig5] paired guarded/unguarded crawl…");
        let r = run_fig5(&opts);
        json.insert("fig5".into(), serde_json::to_value(&r).expect("serialize"));
    }

    if wants("ablation") && !wanted.contains(&"all") {
        // Not part of --exp all (it is 5 extra crawls); run explicitly.
        eprintln!("[ablation] five policy-variant crawls…");
        let rows = cg_experiments::run_ablation(&opts);
        json.insert(
            "ablation".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }

    if wants("sec5_7") {
        eprintln!("[sec5_7] server-side tracking, paired crawl…");
        let r = run_sec5_7(&opts);
        json.insert(
            "sec5_7".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if wants("domguard") {
        eprintln!("[domguard] DOM-isolation evaluation, three crawls…");
        let r = run_domguard(&opts);
        json.insert(
            "domguard".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if wants("baselines") && !wanted.contains(&"all") {
        // Explicit-only: the matrix performs seven extra crawls.
        eprintln!("[baselines] defense matrix (blocklist, partitioning, ML, guard)…");
        let r = cg_experiments::run_baselines(&opts);
        json.insert(
            "baselines".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if wants("csp") && !wanted.contains(&"all") {
        // Explicit-only: four extra crawls.
        eprintln!("[csp] §2.1 CSP-gap experiment…");
        let r = cg_experiments::run_csp_gap_exp(&opts);
        json.insert("csp".into(), serde_json::to_value(&r).expect("serialize"));
    }

    if wants("rollout") && !wanted.contains(&"all") {
        // Not part of --exp all (several extra crawls); run explicitly.
        eprintln!("[rollout] deployment ladder + preset frontier…");
        let r = run_rollout(&opts);
        json.insert(
            "rollout".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if wants("table3") {
        eprintln!("[table3] breakage evaluation…");
        let r = run_table3(&opts);
        json.insert(
            "table3".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if wants("table4") || wants("fig6") || wants("fig7") || wants("fig9") || wants("fig10") {
        eprintln!("[perf] paired timing measurement…");
        let r = run_table4_and_figs(&opts, &wanted);
        // The raw pair list is large; store the summaries only.
        let mut v = serde_json::to_value(&r).expect("serialize");
        if let Some(obj) = v.get_mut("report").and_then(|r| r.as_object_mut()) {
            obj.remove("pairs");
        }
        json.insert("performance".into(), v);
    }

    if wants("storebench") && !wanted.contains(&"all") {
        // Explicit-only: two extra crawls plus timed replays/folds.
        eprintln!("[storebench] crawl-store throughput (jsonl vs binary)…");
        let r = run_storebench(&opts);
        print_storebench(&r);
        if let Some(path) = &bench_json_path {
            std::fs::write(
                path,
                serde_json::to_string_pretty(&serde_json::to_value(&r).expect("serialize"))
                    .expect("serialize"),
            )
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
            println!("\nbench report written to {path}");
        }
        json.insert(
            "storebench".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }

    if let Some(path) = json_path {
        let out = serde_json::Value::Object(json);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&out).expect("serialize"),
        )
        .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
        println!("\nresults written to {path}");
    }
}

fn print_help() {
    println!("cg-experiments — regenerate the CookieGuard paper's tables and figures");
    println!();
    println!(
        "USAGE: cg-experiments [--exp LIST] [--sites N] [--seed S] [--threads T] [--json PATH] \
         [--store DIR] [--store-format jsonl|binary] [--read-backend mmap|pread|buffered] \
         [--fold-sites N] [--bench-json PATH]"
    );
    println!(
        "       cg-experiments scenarios [--seed S] [--threads T] [--json PATH] [--golden PATH]"
    );
    println!(
        "       cg-experiments serve [--sites N] [--seed S] [--passes P] [--workers LIST] \
         [--store DIR] [--bench-json PATH] [--telemetry-snapshot PATH] [--telemetry-dump PATH]"
    );
    println!(
        "       cg-experiments detect [--sites N] [--seed S] [--threads T] [--store DIR] \
         [--bench-json PATH] [--report-json PATH]"
    );
    println!();
    println!("The `scenarios` subcommand runs the adversarial scenario catalog");
    println!("(crate cg-scenarios) under vanilla + CookieGuard variants + baseline");
    println!("defenses and emits a deterministic matrix; --golden diffs the JSON");
    println!("against a checked-in file and exits 1 on mismatch.");
    println!();
    println!("The `serve` subcommand benchmarks the multi-tenant guard service");
    println!("(crate cg-service): it replays a binary crawl store through two");
    println!("policy tenants at each worker count in LIST (default 2,8), hot-swaps");
    println!("both tenants' policies mid-run, asserts zero dropped decisions and");
    println!("byte-identical counters across worker counts, and with --bench-json");
    println!("writes the machine-readable report (BENCH_service.json). It also");
    println!("measures the telemetry overhead (on vs off, ≤3% budget);");
    println!("--telemetry-snapshot writes the final registry snapshot as JSON");
    println!("plus a .prom Prometheus rendering, and --telemetry-dump writes");
    println!("the flight-recorder event dump.");
    println!();
    println!("The `detect` subcommand scores the first-party tracking-cookie");
    println!("detector (crate cg-detect) against generator ground truth on a");
    println!("fresh CNAME-resolving crawl written through a binary store: it");
    println!("asserts streaming/resident reports byte-identical across thread");
    println!("counts and read backends, enforces the precision/recall floors");
    println!("(0.95/0.90, instance-weighted), prints the scoring table and the");
    println!("guard-vs-detector matrix, and with --bench-json writes the");
    println!("machine-readable report (BENCH_detect.json).");
    println!();
    println!("Experiments (comma-separated, default 'all'):");
    println!("  measurement: {}", MEASUREMENT_EXPERIMENTS.join(", "));
    println!("  evaluation:  {}", EVALUATION_EXPERIMENTS.join(", "));
    println!();
    println!("--store DIR writes the measurement crawl through a durable,");
    println!("segmented on-disk store (checkpoint/resume: a killed crawl");
    println!("rerun with the same seed/sites finishes only the missing ranks);");
    println!("--store-format binary selects the compact framed format — the");
    println!("replay fast path for large crawls, byte-identical analyses.");
    println!("--read-backend picks how replays and folds read segment bytes:");
    println!("mmap (zero-copy chunk windows, the default), pread, or buffered —");
    println!("all three produce byte-identical results.");
    println!();
    println!("--exp storebench benchmarks the store (write/replay throughput");
    println!("per format incl. mmap'd chunked replay, 1-vs-8-thread chunked");
    println!("fold wall time per backend over a ≥10k-visit fold store");
    println!("(--fold-sites overrides), peak RSS) and with --bench-json PATH");
    println!("writes the machine-readable report (BENCH_crawlstore.json).");
}
