//! The paper's published numbers, for side-by-side reporting.
//!
//! These are *expectations for shape comparison*, not assertions: the
//! substrate is a simulator, so the reproduction targets the same
//! qualitative structure (who wins, rough factors, crossovers), and
//! EXPERIMENTS.md records the deltas.

/// §5.1 prevalence.
pub const SITES_WITH_3P_PCT: f64 = 93.3;
/// §5.1 average distinct third-party scripts per site.
pub const AVG_3P_SCRIPTS: f64 = 19.0;
/// §5.1 ad/tracking share of third-party scripts (%).
pub const AD_TRACKING_SHARE_PCT: f64 = 70.0;
/// §5.1 cookies per site set by third-party scripts.
pub const AVG_COOKIES_3P: f64 = 15.0;
/// §5.1 cookies per site set by first-party scripts.
pub const AVG_COOKIES_1P: f64 = 4.0;

/// §5.2 document.cookie site share (%).
pub const DOC_COOKIE_SITES_PCT: f64 = 96.3;
/// §5.2 unique document.cookie pairs.
pub const DOC_COOKIE_PAIRS: usize = 81_918;
/// §5.2 cookieStore site share (%).
pub const COOKIE_STORE_SITES_PCT: f64 = 2.8;
/// §5.2 unique cookieStore pairs.
pub const COOKIE_STORE_PAIRS: usize = 411;
/// §5.2 share of cookieStore activity held by the top two names (%).
pub const COOKIE_STORE_TOP2_PCT: f64 = 90.0;

/// Table 1, document.cookie rows: (sites %, cookies %).
pub const T1_DOC_EXFIL: (f64, f64) = (55.7, 5.9);
/// Table 1 overwriting row.
pub const T1_DOC_OVERWRITE: (f64, f64) = (31.5, 2.7);
/// Table 1 deleting row.
pub const T1_DOC_DELETE: (f64, f64) = (6.3, 1.8);
/// Table 1, cookieStore exfiltration row.
pub const T1_STORE_EXFIL: (f64, f64) = (0.7, 16.3);

/// §5.5 overwrite attribute-change shares (%): value, expires, domain, path.
pub const ATTR_CHANGES: (f64, f64, f64, f64) = (85.3, 69.4, 6.0, 1.2);

/// §5.6 indirect-to-direct inclusion ratio.
pub const INDIRECT_TO_DIRECT: f64 = 2.5;
/// §5.6 ad/tracking share of indirect inclusions (%).
pub const INDIRECT_TRACKING_PCT: f64 = 33.0;

/// Fig. 5 reductions (%): overwriting, deleting, exfiltration.
pub const FIG5_REDUCTIONS: (f64, f64, f64) = (82.2, 86.2, 83.2);

/// Table 3 without entity grouping: SSO minor/major, functionality
/// minor/major (%).
pub const T3_SSO: (f64, f64) = (1.0, 11.0);
/// Table 3 functionality row (%).
pub const T3_FUNC: (f64, f64) = (3.0, 3.0);
/// Table 3 breakage with entity grouping (%).
pub const T3_GROUPED_TOTAL: f64 = 3.0;

/// Table 4 (mean ms, median ms) — DCL without / with.
pub const T4_DCL: ((f64, f64), (f64, f64)) = ((1659.0, 946.0), (1896.0, 1020.0));
/// Table 4 — DOM Interactive without / with.
pub const T4_DI: ((f64, f64), (f64, f64)) = ((1464.0, 842.0), (1702.0, 911.0));
/// Table 4 — Load Event without / with.
pub const T4_LOAD: ((f64, f64), (f64, f64)) = ((3197.0, 2008.0), (3635.0, 2136.0));
/// §7.3 valid paired sites.
pub const T4_VALID_PAIRS: usize = 8_171;

/// Fig. 7 median overhead ratios: dcl, di, load.
pub const FIG7_MEDIANS: (f64, f64, f64) = (1.108, 1.111, 1.122);

/// §8 DOM pilot: % of sites with cross-domain DOM modification.
pub const DOM_PILOT_PCT: f64 = 9.4;

/// §4.2 crawl completion.
pub const CRAWL_COMPLETE: usize = 14_917;
/// §4.2 crawl population.
pub const CRAWL_TOTAL: usize = 20_000;
