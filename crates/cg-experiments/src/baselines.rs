//! Baseline-defense experiments: the defense matrix (blocklists,
//! partitioning, CookieGraph-lite, CookieGuard over one population) and
//! the §2.1 CSP gap. Both are explicit-only (`--exp baselines`,
//! `--exp csp`): they perform several extra crawls.

use crate::context::ExperimentOptions;
use crate::render::{header, measured};
use cg_baselines::{
    fidelity_study, run_csp_gap, run_defense_matrix, CspGapRow, Defense, DefenseRow, EvasionConfig,
    FidelityStudy, ForestConfig, MatrixOptions, PartitioningModel,
};
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::GuardConfig;
use serde::Serialize;

fn generator(opts: &ExperimentOptions) -> WebGenerator {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    WebGenerator::new(cfg, opts.seed)
}

/// Defense-matrix result: one row per defense.
#[derive(Debug, Clone, Serialize)]
pub struct BaselinesResult {
    /// Sites in the evaluation split.
    pub eval_sites: usize,
    /// Sites in the classifier's training split.
    pub train_sites: usize,
    /// The matrix rows.
    pub rows: Vec<DefenseRow>,
    /// CookieGraph-lite cross-split fidelity (the Munir et al. metric).
    pub classifier_fidelity: FidelityStudy,
}

/// Runs the defense matrix: the first half of the population is the
/// shared evaluation split; the classifier trains on the second half.
pub fn run_baselines(opts: &ExperimentOptions) -> BaselinesResult {
    let gen = generator(opts);
    let entities = cg_entity::builtin_entity_map();
    let eval_end = (opts.sites / 2).max(1);
    let train_start = eval_end + 1;
    let train_end = opts.sites.max(train_start);

    let matrix_opts = MatrixOptions {
        eval_ranks: 1..=eval_end,
        entities,
    };
    let defenses = vec![
        Defense::Blocklist,
        Defense::BlocklistUnderEvasion(EvasionConfig::default()),
        Defense::Partitioning(PartitioningModel::FirefoxTcp),
        Defense::CookieGraphLite {
            train_ranks: train_start..=train_end,
            forest: ForestConfig::default(),
        },
        Defense::CookieGuard(GuardConfig::strict()),
        Defense::CookieGuard(
            GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
        ),
    ];
    let rows = run_defense_matrix(&gen, &defenses, &matrix_opts);

    header("Defense matrix — protection vs. breakage (beyond the paper)");
    println!(
        "  {:<28} {:>8} {:>10} {:>8} {:>10}  mechanism",
        "defense", "exfil%", "overwrite%", "delete%", "breakage%"
    );
    for row in &rows {
        println!(
            "  {:<28} {:>8.1} {:>10.1} {:>8.1} {:>10.1}  {}",
            row.name,
            row.exfil_sites_pct,
            row.overwrite_sites_pct,
            row.delete_sites_pct,
            row.probe_break_pct,
            row.note
        );
    }
    // Cross-split classifier fidelity: train on the first half of the
    // training slice, evaluate on its second half (disjoint from both
    // the matrix's evaluation split and each other).
    let mid = train_start + (train_end - train_start) / 2;
    let fidelity = fidelity_study(
        &gen,
        train_start..=mid,
        (mid + 1).max(train_start)..=train_end,
        &ForestConfig::default(),
        opts.seed,
    );
    header("CookieGraph-lite cross-split fidelity");
    measured("held-out accuracy", 100.0 * fidelity.accuracy, "%");
    measured("held-out precision", 100.0 * fidelity.precision, "%");
    measured("held-out recall", 100.0 * fidelity.recall, "%");
    measured("held-out F1", 100.0 * fidelity.f1, "%");

    BaselinesResult {
        eval_sites: eval_end,
        train_sites: train_end.saturating_sub(train_start) + 1,
        rows,
        classifier_fidelity: fidelity,
    }
}

/// CSP-gap result (§2.1).
#[derive(Debug, Clone, Serialize)]
pub struct CspGapResult {
    /// Sites crawled per condition.
    pub sites: usize,
    /// One row per condition.
    pub rows: Vec<CspGapRow>,
}

/// Runs the §2.1 CSP experiment: deploys `script-src` policies on the
/// whole population and contrasts load-level blocking with cookie-level
/// exposure.
pub fn run_csp_gap_exp(opts: &ExperimentOptions) -> CspGapResult {
    let gen = generator(opts);
    let entities = cg_entity::builtin_entity_map();
    let rows = run_csp_gap(&gen, 1..=opts.sites, &entities);

    header("§2.1 — CSP governs script loading, not cookie access");
    println!(
        "  {:<30} {:>14} {:>8} {:>10} {:>12}",
        "condition", "loads blocked", "exfil%", "overwrite%", "exfil pairs"
    );
    for row in &rows {
        println!(
            "  {:<30} {:>14} {:>8.1} {:>10.1} {:>12}",
            row.name,
            row.scripts_blocked,
            row.exfil_sites_pct,
            row.overwrite_sites_pct,
            row.exfiltrated_pairs
        );
    }
    measured(
        "exfil-site delta, full-stack CSP vs no CSP (pp)",
        rows[2].exfil_sites_pct - rows[0].exfil_sites_pct,
        "",
    );
    CspGapResult {
        sites: opts.sites,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_experiment_runs_small() {
        let opts = ExperimentOptions {
            sites: 80,
            seed: 0xC00C1E,
            threads: 2,
            ..ExperimentOptions::default()
        };
        let r = run_baselines(&opts);
        assert_eq!(r.eval_sites, 40);
        assert!(r.rows.len() >= 6);
        let guard = r
            .rows
            .iter()
            .find(|x| x.name == "cookieguard strict")
            .unwrap();
        let none = &r.rows[0];
        assert!(guard.exfil_sites_pct < none.exfil_sites_pct);
    }

    #[test]
    fn csp_gap_experiment_runs_small() {
        let opts = ExperimentOptions {
            sites: 60,
            seed: 0xC00C1E,
            threads: 2,
            ..ExperimentOptions::default()
        };
        let r = run_csp_gap_exp(&opts);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[2].exfil_sites_pct, r.rows[0].exfil_sites_pct);
    }
}
