//! Policy ablation: the DESIGN.md ablation matrix over one crawl
//! population — how each CookieGuard design choice moves protection
//! (cross-domain actions remaining) and compatibility (probe breakage).
//!
//! Variants:
//! 1. `strict` — the paper's evaluation config;
//! 2. `relaxed` — inline scripts treated as first-party (§6.1's alternative);
//! 3. `grouped` — strict + entity grouping (§7.2 whitelist);
//! 4. `strict+dns` — strict + CNAME resolution (§8 defense);
//! 5. `no guard` — baseline.

use crate::context::ExperimentOptions;
use crate::render::header;
use cg_analysis::{cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset};
use cg_browser::{crawl_range, VisitConfig};
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::GuardConfig;
use serde::Serialize;

/// One ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// % of sites with cross-domain exfiltration remaining.
    pub exfil_sites_pct: f64,
    /// % of sites with cross-domain overwriting remaining.
    pub overwrite_sites_pct: f64,
    /// % of sites with cross-domain deleting remaining.
    pub delete_sites_pct: f64,
    /// % of sites with any failed functional probe (breakage proxy).
    pub probe_failure_sites_pct: f64,
}

/// Runs all variants over the same site range.
pub fn run_ablation(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    let gen = WebGenerator::new(cfg, opts.seed);
    let entities = cg_entity::builtin_entity_map();

    let variants: Vec<(&str, VisitConfig)> = vec![
        ("no guard", VisitConfig::regular()),
        ("strict", VisitConfig::guarded(GuardConfig::strict())),
        (
            "relaxed inline",
            VisitConfig::guarded(GuardConfig::relaxed()),
        ),
        (
            "strict + entity grouping",
            VisitConfig::guarded(GuardConfig::strict().with_entity_grouping(entities.clone())),
        ),
        (
            "strict + DNS uncloaking",
            VisitConfig {
                resolve_cnames: true,
                ..VisitConfig::guarded(GuardConfig::strict())
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, vc) in variants {
        let (outcomes, _) = crawl_range(&gen, &vc, 1, opts.sites, opts.threads);
        let mut probe_fail_sites = 0usize;
        let mut complete = 0usize;
        for o in &outcomes {
            if !o.log.complete {
                continue;
            }
            complete += 1;
            if o.log.probes.iter().any(|p| !p.ok) {
                probe_fail_sites += 1;
            }
        }
        let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
        let exfil = detect_exfiltration(&ds, &entities);
        let manip = detect_manipulation(&ds, &entities);
        let t1 = cross_domain_summary(&ds, &exfil, &manip);
        rows.push(AblationRow {
            variant: label.to_string(),
            exfil_sites_pct: t1.doc_exfiltration.sites_pct,
            overwrite_sites_pct: t1.doc_overwriting.sites_pct,
            delete_sites_pct: t1.doc_deleting.sites_pct,
            probe_failure_sites_pct: 100.0 * probe_fail_sites as f64 / complete.max(1) as f64,
        });
    }

    header("Ablation: policy variants over one crawl population");
    println!(
        "  {:<28} {:>10} {:>11} {:>9} {:>14}",
        "variant", "exfil %", "overwrite %", "delete %", "probe fails %"
    );
    for r in &rows {
        println!(
            "  {:<28} {:>10.1} {:>11.1} {:>9.1} {:>14.1}",
            r.variant,
            r.exfil_sites_pct,
            r.overwrite_sites_pct,
            r.delete_sites_pct,
            r.probe_failure_sites_pct
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_orders_protection_and_compat() {
        let rows = run_ablation(&ExperimentOptions {
            sites: 150,
            seed: 0xC00C1E,
            threads: 2,
            ..ExperimentOptions::default()
        });
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.variant.contains(name))
                .unwrap()
                .clone()
        };
        let baseline = get("no guard");
        let strict = get("strict");
        let grouped = get("entity grouping");
        // Every guard variant reduces exfiltration vs baseline.
        assert!(strict.exfil_sites_pct < baseline.exfil_sites_pct);
        assert!(grouped.exfil_sites_pct < baseline.exfil_sites_pct);
        // Grouping trades a little protection for compatibility: probe
        // failures do not increase vs strict.
        assert!(grouped.probe_failure_sites_pct <= strict.probe_failure_sites_pct + 1e-9);
    }
}
