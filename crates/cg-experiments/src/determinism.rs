//! The one place that knows which report fields are non-deterministic.
//!
//! Several CI gates byte-compare serialized reports across runs or
//! thread counts (the streaming-summary diff, the scenario golden
//! matrix, the service smoke). Timing and throughput fields —
//! `CrawlSummary::elapsed_ms`, `visits_per_sec`, latency quantiles,
//! peak RSS — legitimately differ run to run, and each check used to
//! carve them out ad hoc (a `sed` range here, a field omission there).
//! That pattern breaks silently: add one new `*_ms` field to a report
//! and whichever check forgot about it starts flaking.
//!
//! This module centralizes the rule. A key is non-deterministic if it
//! matches [`is_nondeterministic_key`] — a suffix convention
//! (`_ms`/`_ns`/`_us`/`_per_sec`/`_speedup`) plus a short named list —
//! and [`mask_nondeterministic`] nulls every such value anywhere in a
//! JSON tree, preserving the key set (so schema diffs still see the
//! field) while removing the noise. Checks that need to mask additional
//! context-specific blocks (e.g. the service report's epoch-sensitive
//! `outcomes`, which depend on where a racing hot-swap landed) pass
//! them through [`mask_keys`]' `extra` list.
//!
//! The convention is enforceable in reverse, too: name timing fields
//! with one of the recognized suffixes and every byte-equality check in
//! the repo ignores them automatically.

use serde::Serialize;
use serde_json::Value;

/// Suffixes that mark a field as timing/throughput-derived.
const NONDETERMINISTIC_SUFFIXES: &[&str] = &["_ms", "_ns", "_us", "_per_sec", "_speedup"];

/// Field names that are non-deterministic without carrying a suffix.
/// `runtime` masks a telemetry snapshot's scheduling-dependent section
/// wholesale (fsync batching, fold shard counts, gauges — see
/// `cg_telemetry`); `overhead_pct` is the telemetry-overhead bench
/// figure, a ratio of two wall-clock rates.
const NONDETERMINISTIC_NAMES: &[&str] = &[
    "peak_rss_bytes",
    "speedup",
    "latency",
    "runtime",
    "overhead_pct",
];

/// True when `key` names a field whose value varies run to run even for
/// identical work: wall-clock, rates derived from wall-clock, latency
/// quantiles, RSS high-water marks.
pub fn is_nondeterministic_key(key: &str) -> bool {
    NONDETERMINISTIC_NAMES.contains(&key)
        || NONDETERMINISTIC_SUFFIXES.iter().any(|s| key.ends_with(s))
}

/// Recursively replaces the value of every non-deterministic key — and
/// every key in `extra` — with `null`, anywhere in `value`. Keys are
/// kept (schema checks still see them); only the varying values go.
pub fn mask_keys(value: &mut Value, extra: &[&str]) {
    match value {
        Value::Object(map) => {
            let keys: Vec<String> = map.keys().cloned().collect();
            for key in keys {
                if is_nondeterministic_key(&key) || extra.contains(&key.as_str()) {
                    map.insert(key, Value::Null);
                } else if let Some(child) = map.get_mut(&key) {
                    mask_keys(child, extra);
                }
            }
        }
        Value::Array(items) => {
            for item in items {
                mask_keys(item, extra);
            }
        }
        _ => {}
    }
}

/// [`mask_keys`] with no extras — the default determinism surface.
pub fn mask_nondeterministic(value: &mut Value) {
    mask_keys(value, &[]);
}

/// Serializes `report`, masks non-deterministic fields (plus `extra`),
/// and returns the canonical JSON string — the byte-comparable
/// determinism surface of any serializable report.
pub fn deterministic_surface<T: Serialize>(report: &T, extra: &[&str]) -> String {
    let mut value = serde_json::to_value(report).expect("serialize report");
    mask_keys(&mut value, extra);
    serde_json::to_string(&value).expect("serialize masked report")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_convention_and_named_fields_are_recognized() {
        for key in [
            "elapsed_ms",
            "wall_ms",
            "compile_ns",
            "install_ns",
            "visits_per_sec",
            "decisions_per_sec",
            "mb_per_sec",
            "binary_replay_speedup",
            "speedup",
            "peak_rss_bytes",
            "latency",
            "runtime",
            "overhead_pct",
        ] {
            assert!(is_nondeterministic_key(key), "{key} must be masked");
        }
        for key in ["visits", "sessions_opened", "decisions", "bytes", "p50"] {
            assert!(!is_nondeterministic_key(key), "{key} must survive");
        }
    }

    #[test]
    fn masking_nulls_values_but_keeps_keys_at_any_depth() {
        let mut v = serde_json::from_str::<Value>(
            r#"{"visits":10,"elapsed_ms":123,
                "nested":{"visits_per_sec":5.0,"bytes":7},
                "runs":[{"wall_ms":9,"decisions":3}]}"#,
        )
        .unwrap();
        mask_nondeterministic(&mut v);
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"elapsed_ms\":null"), "{s}");
        assert!(s.contains("\"visits_per_sec\":null"), "{s}");
        assert!(s.contains("\"wall_ms\":null"), "{s}");
        assert!(s.contains("\"visits\":10"), "{s}");
        assert!(s.contains("\"bytes\":7"), "{s}");
        assert!(s.contains("\"decisions\":3"), "{s}");
    }

    #[test]
    fn two_runs_differing_only_in_timing_have_equal_surfaces() {
        #[derive(Serialize)]
        struct Report {
            visits: u64,
            elapsed_ms: u64,
            peak_rss_bytes: u64,
        }
        let fast = Report {
            visits: 100,
            elapsed_ms: 3,
            peak_rss_bytes: 1 << 20,
        };
        let slow = Report {
            visits: 100,
            elapsed_ms: 900,
            peak_rss_bytes: 1 << 24,
        };
        assert_eq!(
            deterministic_surface(&fast, &[]),
            deterministic_surface(&slow, &[])
        );
        let diverged = Report {
            visits: 101,
            elapsed_ms: 3,
            peak_rss_bytes: 0,
        };
        assert_ne!(
            deterministic_surface(&fast, &[]),
            deterministic_surface(&diverged, &[])
        );
    }

    #[test]
    fn extra_keys_mask_whole_subtrees() {
        let mut v = serde_json::from_str::<Value>(
            r#"{"counters":{"visits":1},"outcomes":{"writes_allowed":5}}"#,
        )
        .unwrap();
        mask_keys(&mut v, &["outcomes"]);
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"outcomes\":null"), "{s}");
        assert!(s.contains("\"visits\":1"), "{s}");
    }
}
