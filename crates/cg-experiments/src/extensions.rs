//! Beyond-the-prototype experiments: the paper's §5.7 server-side
//! tracking blind spot, the §8 DOM-isolation future-work defense, and
//! the §8 staged-deployment ladder. Each prints its result in the same
//! paper-vs-measured format as the core reproduction (where the paper
//! publishes a number) or as plain measurements (where it only argues
//! qualitatively).

use crate::context::ExperimentOptions;
use crate::render::{bar, compare, header, measured};
use cg_analysis::{detect_exfiltration, detect_server_side, dom_pilot_stats, Dataset, ForwardMap};
use cg_breakage::{evaluate_breakage, BreakageCategory};
use cg_browser::{crawl_range, visit_site_with_jar, VisitConfig, VisitOutcome};
use cg_domguard::DomGuardConfig;
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::{DeploymentStage, GuardConfig, PrivacyPreset};
use serde::Serialize;

fn generator(opts: &ExperimentOptions) -> WebGenerator {
    let cfg = if opts.sites >= 20_000 {
        GenConfig::default()
    } else {
        GenConfig::small(opts.sites)
    };
    WebGenerator::new(cfg, opts.seed)
}

fn dataset_of(outcomes: Vec<VisitOutcome>) -> Dataset {
    Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect())
}

// ---------------------------------------------------------------------
// §5.7 — server-side tracking bypasses CookieGuard
// ---------------------------------------------------------------------

/// Server-side tracking experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Sec57Result {
    /// Sites whose spec carries relay rules (the SST adopters).
    pub sites_with_sst: usize,
    /// % of sites with client-side cross-domain exfiltration,
    /// (regular, guarded).
    pub client_exfil_pct: (f64, f64),
    /// % of sites with server-side cross-domain relay,
    /// (regular, guarded).
    pub server_relay_pct: (f64, f64),
    /// Gateway requests carrying the full jar in the `Cookie:` header,
    /// (regular, guarded).
    pub header_payload_requests: (usize, usize),
}

/// Runs the §5.7 experiment: a paired crawl showing CookieGuard's
/// client-side win does not extend to first-party server-side gateways.
pub fn run_sec5_7(opts: &ExperimentOptions) -> Sec57Result {
    let gen = generator(opts);
    let entities = cg_entity::builtin_entity_map();

    let run = |guard: Option<GuardConfig>| {
        let vc = match guard {
            Some(g) => VisitConfig::guarded(g),
            None => VisitConfig::regular(),
        };
        let (outcomes, _) = crawl_range(&gen, &vc, 1, opts.sites, opts.threads);
        let mut forwards = ForwardMap::new();
        let mut sst = 0usize;
        for o in &outcomes {
            if !o.spec.server_forwards.is_empty() {
                sst += 1;
                forwards.insert(
                    o.spec.domain.clone(),
                    o.spec
                        .server_forwards
                        .iter()
                        .map(|f| (f.path_prefix.clone(), f.forwards_to.clone()))
                        .collect(),
                );
            }
        }
        let ds = dataset_of(outcomes);
        let exfil = detect_exfiltration(&ds, &entities);
        let client_pct =
            100.0 * exfil.sites_with_cross_exfil_doc.len() as f64 / ds.site_count().max(1) as f64;
        let server = detect_server_side(&ds, &forwards);
        (sst, client_pct, server)
    };

    let (sst, client0, server0) = run(None);
    let (_, client1, server1) = run(Some(GuardConfig::strict()));

    let result = Sec57Result {
        sites_with_sst: sst,
        client_exfil_pct: (client0, client1),
        server_relay_pct: (
            server0.pct_sites_with_relay(),
            server1.pct_sites_with_relay(),
        ),
        header_payload_requests: (
            server0.requests_with_header_payload,
            server1.requests_with_header_payload,
        ),
    };

    header("§5.7: server-side tracking vs CookieGuard (beyond-paper quantification)");
    measured("sites with server-side tagging", sst as f64, "sites");
    let max = client0.max(1.0);
    bar("client-side exfil (regular)", client0, max, 40);
    bar("client-side exfil (guarded)", client1, max, 40);
    bar(
        "server-side relay (regular)",
        result.server_relay_pct.0,
        max,
        40,
    );
    bar(
        "server-side relay (guarded)",
        result.server_relay_pct.1,
        max,
        40,
    );
    let client_red = reduction(client0, client1);
    let server_red = reduction(result.server_relay_pct.0, result.server_relay_pct.1);
    measured("client-side exfil reduction", client_red, "%");
    measured("server-side relay reduction", server_red, "%");
    measured(
        "gateway requests with full Cookie header (guarded)",
        result.header_payload_requests.1 as f64,
        "requests",
    );
    println!(
        "  → the paper's §5.7 claim: proxying through first-party endpoints bypasses CookieGuard"
    );
    result
}

fn reduction(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        0.0
    } else {
        100.0 * (before - after) / before
    }
}

// ---------------------------------------------------------------------
// §8 — DOM isolation guard (future work, implemented)
// ---------------------------------------------------------------------

/// DOM-guard experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct DomGuardResult {
    /// % of sites with applied cross-domain DOM mutations (unguarded) —
    /// the paper's 9.4% pilot figure.
    pub pilot_pct: f64,
    /// Same statistic under the strict DOM guard.
    pub guarded_pct: f64,
    /// Cross-domain mutations blocked by the guard.
    pub blocked_events: usize,
    /// % of affected sites fully protected by the guard.
    pub fully_protected_pct: f64,
    /// Applied cross-domain mutations under entity grouping (the
    /// same-organization share of the pilot signal).
    pub grouped_pct: f64,
}

/// Runs the §8 DOM-isolation evaluation: unguarded pilot vs strict
/// DomGuard vs entity-grouped DomGuard.
pub fn run_domguard(opts: &ExperimentOptions) -> DomGuardResult {
    let gen = generator(opts);

    let run = |dom: Option<DomGuardConfig>| {
        let vc = match dom {
            Some(d) => VisitConfig::regular().with_dom_guard(d),
            None => VisitConfig::regular(),
        };
        let (outcomes, _) = crawl_range(&gen, &vc, 1, opts.sites, opts.threads);
        dom_pilot_stats(&dataset_of(outcomes))
    };

    let pilot = run(None);
    let strict = run(Some(DomGuardConfig::strict()));
    let grouped = run(Some(
        DomGuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
    ));

    let result = DomGuardResult {
        pilot_pct: pilot.sites_with_cross_dom_pct,
        guarded_pct: strict.sites_with_cross_dom_pct,
        blocked_events: strict.blocked_events,
        fully_protected_pct: strict.sites_fully_protected_pct,
        grouped_pct: grouped.sites_with_cross_dom_pct,
    };

    header("§8 DOM guard: cross-domain DOM mutation, unguarded vs DomGuard");
    compare(
        "pilot: sites with cross-domain DOM mutation",
        crate::expectations::DOM_PILOT_PCT,
        result.pilot_pct,
        "%",
    );
    measured("under strict DomGuard", result.guarded_pct, "%");
    measured(
        "cross-domain mutations blocked",
        result.blocked_events as f64,
        "events",
    );
    measured("sites fully protected", result.fully_protected_pct, "%");
    measured("under entity-grouped DomGuard", result.grouped_pct, "%");
    result
}

// ---------------------------------------------------------------------
// §8 — staged deployment ladder + policy presets + grandfathering
// ---------------------------------------------------------------------

/// One rung of the deployment ladder.
#[derive(Debug, Clone, Serialize)]
pub struct StageRow {
    /// Stage label.
    pub stage: String,
    /// Share of page views protected.
    pub guarded_share: f64,
    /// Population-level % of sites/views with cross-domain exfiltration.
    pub population_exfil_pct: f64,
    /// Population-level % of views hitting major SSO breakage.
    pub population_sso_major_pct: f64,
}

/// One policy preset's operating point.
#[derive(Debug, Clone, Serialize)]
pub struct PresetRow {
    /// Preset label.
    pub preset: String,
    /// Reduction of cross-domain exfiltration sites vs no guard (%).
    pub exfil_reduction_pct: f64,
    /// Major SSO breakage (% of sampled sites).
    pub sso_major_pct: f64,
    /// Any breakage (% of sampled sites).
    pub any_breakage_pct: f64,
}

/// The grandfathering (returning-visitor) comparison.
#[derive(Debug, Clone, Serialize)]
pub struct GrandfatherRow {
    /// Returning-visitor sites measured.
    pub sites: usize,
    /// Cookies filtered on the return visit without grandfathering.
    pub filtered_without: u64,
    /// Cookies filtered with grandfathering (should be lower: legacy
    /// cookies stay visible until relearned).
    pub filtered_with: u64,
}

/// Full rollout experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct RolloutResult {
    /// The deployment ladder.
    pub stages: Vec<StageRow>,
    /// The preset frontier.
    pub presets: Vec<PresetRow>,
    /// The grandfathering comparison.
    pub grandfathering: GrandfatherRow,
}

/// Runs the §8 deployment experiment: protection/breakage across the
/// rollout ladder, the preset frontier, and the grandfathering effect.
pub fn run_rollout(opts: &ExperimentOptions) -> RolloutResult {
    let gen = generator(opts);
    let entities = cg_entity::builtin_entity_map();

    // Base rates: exfiltration prevalence unguarded and under each preset.
    let exfil_pct = |vc: &VisitConfig| {
        let (outcomes, _) = crawl_range(&gen, vc, 1, opts.sites, opts.threads);
        let ds = dataset_of(outcomes);
        let exfil = detect_exfiltration(&ds, &entities);
        100.0 * exfil.sites_with_cross_exfil_doc.len() as f64 / ds.site_count().max(1) as f64
    };
    let e_regular = exfil_pct(&VisitConfig::regular());
    let e_strict = exfil_pct(&VisitConfig::guarded(GuardConfig::strict()));

    // Breakage per preset on a deterministic sample (same protocol as
    // Table 3, smaller default sample for the frontier).
    let sample_to = (opts.sites / 2).max(1);
    let breakage =
        |guard: GuardConfig| evaluate_breakage(&gen, &guard, 1, sample_to.min(100), opts.threads);

    let strict_breakage = breakage(GuardConfig::strict());
    let sso_major_strict = strict_breakage.major_pct(BreakageCategory::Sso);

    // The ladder: population-weighted protection and breakage.
    let mut stages = Vec::new();
    for stage in DeploymentStage::ladder() {
        let share = stage.guarded_share();
        stages.push(StageRow {
            stage: stage.label(),
            guarded_share: share,
            population_exfil_pct: share * e_strict + (1.0 - share) * e_regular,
            population_sso_major_pct: share * sso_major_strict,
        });
    }

    // The preset frontier.
    let mut presets = Vec::new();
    for preset in PrivacyPreset::all() {
        let config = preset.config(&entities);
        let e = exfil_pct(&VisitConfig::guarded(config.clone()));
        let b = breakage(config);
        presets.push(PresetRow {
            preset: preset.label().to_string(),
            exfil_reduction_pct: reduction(e_regular, e),
            sso_major_pct: b.major_pct(BreakageCategory::Sso),
            any_breakage_pct: b.any_breakage_pct(),
        });
    }

    // Grandfathering: returning visitors whose jar predates the guard.
    let mut filtered_with = 0u64;
    let mut filtered_without = 0u64;
    let mut sites = 0usize;
    let revisit_sample = opts.sites.min(120);
    for rank in 1..=revisit_sample {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank) ^ 0x0123;
        // First visit, pre-rollout: no guard, jar fills up.
        let mut jar = cg_cookiejar::CookieJar::new();
        visit_site_with_jar(&bp, &VisitConfig::regular(), seed, &mut jar);
        // Return visit, post-rollout, with and without grandfathering.
        let plain = VisitConfig::guarded(GuardConfig::strict());
        let gf = VisitConfig {
            grandfather_preexisting: true,
            ..plain.clone()
        };
        let mut jar_a = jar.clone();
        let mut jar_b = jar;
        let without = visit_site_with_jar(&bp, &plain, seed, &mut jar_a);
        let with = visit_site_with_jar(&bp, &gf, seed, &mut jar_b);
        filtered_without += without.guard_stats.map_or(0, |s| s.cookies_filtered);
        filtered_with += with.guard_stats.map_or(0, |s| s.cookies_filtered);
        sites += 1;
    }
    let grandfathering = GrandfatherRow {
        sites,
        filtered_without,
        filtered_with,
    };

    header("§8 deployment ladder (population-weighted)");
    for row in &stages {
        println!(
            "  {:<34} guarded {:>5.1}%  exfil-sites {:>5.1}%  SSO-major {:>4.2}%",
            row.stage,
            row.guarded_share * 100.0,
            row.population_exfil_pct,
            row.population_sso_major_pct
        );
    }
    header("§8 policy presets (protection vs breakage frontier)");
    for row in &presets {
        println!(
            "  {:<12} exfil reduction {:>5.1}%  SSO major {:>5.1}%  any breakage {:>5.1}%",
            row.preset, row.exfil_reduction_pct, row.sso_major_pct, row.any_breakage_pct
        );
    }
    header("§8 grandfathering (returning visitors)");
    measured(
        "cookies filtered without grandfathering",
        grandfathering.filtered_without as f64,
        "",
    );
    measured(
        "cookies filtered with grandfathering",
        grandfathering.filtered_with as f64,
        "",
    );

    RolloutResult {
        stages,
        presets,
        grandfathering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(n: usize) -> ExperimentOptions {
        ExperimentOptions {
            sites: n,
            seed: 0xC00C1E,
            threads: 2,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn sec5_7_guard_blind_to_server_side() {
        let r = run_sec5_7(&opts(400));
        assert!(r.sites_with_sst > 5, "SST adopters {}", r.sites_with_sst);
        // Client-side exfiltration drops sharply under the guard…
        assert!(
            r.client_exfil_pct.1 < r.client_exfil_pct.0 * 0.6,
            "{:?}",
            r.client_exfil_pct
        );
        // …but the server-side relay barely moves (first-party collectors
        // are site-owned, and the Cookie header is outside the guard).
        assert!(
            r.server_relay_pct.1 >= r.server_relay_pct.0 * 0.8,
            "server relay should survive the guard: {:?}",
            r.server_relay_pct
        );
        assert!(r.header_payload_requests.1 > 0);
    }

    #[test]
    fn domguard_blocks_pilot_signal() {
        let r = run_domguard(&opts(300));
        assert!(r.pilot_pct > 2.0, "pilot {}", r.pilot_pct);
        assert!(
            r.guarded_pct < r.pilot_pct * 0.35,
            "guarded {} vs pilot {}",
            r.guarded_pct,
            r.pilot_pct
        );
        assert!(r.blocked_events > 0);
        // Grouping admits same-entity mutations back, so it sits between.
        assert!(r.grouped_pct <= r.pilot_pct);
    }

    #[test]
    fn rollout_monotone_and_grandfathering_reduces_filtering() {
        let r = run_rollout(&opts(150));
        // Protection improves (exfil falls) monotonically along the ladder.
        for w in r.stages.windows(2) {
            assert!(
                w[1].population_exfil_pct <= w[0].population_exfil_pct + 1e-9,
                "ladder not monotone: {:?}",
                r.stages
            );
        }
        // Strict protects at least as much as permissive.
        let strict = r.presets.iter().find(|p| p.preset == "strict").unwrap();
        let permissive = r.presets.iter().find(|p| p.preset == "permissive").unwrap();
        assert!(strict.exfil_reduction_pct >= permissive.exfil_reduction_pct - 1e-9);
        // Grandfathering lowers early filtering for returning visitors.
        assert!(
            r.grandfathering.filtered_with <= r.grandfathering.filtered_without,
            "grandfathering must not increase filtering: {:?}",
            r.grandfathering
        );
        assert!(r.grandfathering.filtered_without > 0);
    }
}
