//! The crawler: visits many sites in parallel, deterministically.
//!
//! Each site's result depends only on (master seed, rank, visit config),
//! so the crawl parallelizes over worker threads without changing any
//! outcome. Work distribution is an atomic rank counter; results flow
//! through a [`VisitSink`], which hands every worker its own
//! [`SinkWorker`] handle — the hot path takes no cross-worker lock, and
//! per-worker results are merged once, after the worker drains.
//!
//! Two sinks matter in practice:
//!
//! * [`VecCollector`] — in-memory, backs [`crawl_range`] (the original
//!   API: outcomes sorted by rank);
//! * `cg_crawlstore::CrawlWriter` — durable per-worker segment files
//!   with checkpoint/resume, for crawls that must survive process death
//!   or outgrow RAM.

use crate::visit::{visit_site, VisitConfig, VisitOutcome};
use cg_telemetry::{global, Class, Counter};
use cg_webgen::WebGenerator;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The crawler's registered metric handles (see `cg-telemetry`): both
/// totals are pure functions of the crawled rank range, hence
/// `Workload`-class (byte-identical across worker counts).
struct CrawlMetrics {
    visits: Counter,
    visits_complete: Counter,
}

fn crawl_metrics() -> &'static CrawlMetrics {
    static METRICS: OnceLock<CrawlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CrawlMetrics {
        visits: global().counter("crawl.visits", Class::Workload),
        visits_complete: global().counter("crawl.visits_complete", Class::Workload),
    })
}

/// Aggregate facts about a crawl (cheap to keep even when per-site
/// outcomes are discarded).
#[derive(Debug, Clone, Default)]
pub struct CrawlSummary {
    /// Sites visited (in this run — a resumed crawl skips ranks its
    /// sink already holds).
    pub visited: usize,
    /// Sites with complete data (the analysis population).
    pub complete: usize,
    /// Sites whose visit produced incomplete data (`visited − complete`);
    /// the §4.2 filter drops them from analysis.
    pub failed: usize,
    /// Wall-clock milliseconds the crawl loop ran (workers spawned →
    /// sink merged). Throughput reporting only — *not* part of the
    /// deterministic output, so never fold it into fingerprints or
    /// byte-compared artifacts.
    pub elapsed_ms: u64,
}

impl CrawlSummary {
    /// Visits per wall-clock second (0.0 when nothing was visited or
    /// the crawl was too fast to time).
    pub fn visits_per_sec(&self) -> f64 {
        if self.visited == 0 || self.elapsed_ms == 0 {
            return 0.0;
        }
        self.visited as f64 * 1000.0 / self.elapsed_ms as f64
    }
}

/// A per-worker result handle: receives every outcome one crawl worker
/// produces, with no synchronization against other workers.
pub trait SinkWorker: Send {
    /// Accepts one visit outcome. Durable sinks may buffer and fsync in
    /// batches; errors abort that worker's crawl loop.
    fn record(&mut self, outcome: VisitOutcome) -> std::io::Result<()>;
}

/// Where a crawl delivers its outcomes.
///
/// The sink is shared read-only across workers; all mutation happens
/// through the per-worker [`SinkWorker`] handles it issues, merged back
/// one at a time after the crawl scope ends. A sink that already holds
/// some ranks durably (a resumed crawl store) reports them via
/// [`VisitSink::is_done`] and the crawl skips them.
pub trait VisitSink: Sync {
    /// The per-worker handle type.
    type Worker: SinkWorker;

    /// True when `rank` is already durably recorded — the crawl will
    /// not re-visit it. Defaults to `false` (nothing stored yet).
    fn is_done(&self, _rank: usize) -> bool {
        false
    }

    /// Opens the handle for worker `index` (0-based).
    fn worker(&self, index: usize) -> std::io::Result<Self::Worker>;

    /// Merges one drained worker handle back into the sink (flush,
    /// fsync, or append to the collected set). Called once per worker,
    /// outside the parallel section.
    fn merge(&self, worker: Self::Worker) -> std::io::Result<()>;
}

/// The in-memory sink: per-worker `Vec` buffers, merged under one lock
/// acquisition per *worker* (not per visit). [`crawl_range`] is this
/// sink plus a final sort by rank.
#[derive(Debug, Default)]
pub struct VecCollector {
    outcomes: Mutex<Vec<VisitOutcome>>,
}

impl VecCollector {
    /// A fresh, empty collector.
    pub fn new() -> VecCollector {
        VecCollector::default()
    }

    /// The collected outcomes, unsorted (merge order is worker order).
    pub fn into_outcomes(self) -> Vec<VisitOutcome> {
        self.outcomes.into_inner().expect("collector lock poisoned")
    }
}

impl SinkWorker for Vec<VisitOutcome> {
    fn record(&mut self, outcome: VisitOutcome) -> std::io::Result<()> {
        self.push(outcome);
        Ok(())
    }
}

impl VisitSink for VecCollector {
    type Worker = Vec<VisitOutcome>;

    fn worker(&self, _index: usize) -> std::io::Result<Vec<VisitOutcome>> {
        Ok(Vec::new())
    }

    fn merge(&self, worker: Vec<VisitOutcome>) -> std::io::Result<()> {
        self.outcomes
            .lock()
            .expect("collector lock poisoned")
            .extend(worker);
        Ok(())
    }
}

/// Crawls ranks `[from, to]` (inclusive, 1-based) with `threads`
/// workers, delivering every outcome to `sink`. Ranks the sink already
/// holds ([`VisitSink::is_done`]) are skipped, which is what turns a
/// crawl store into a checkpoint: rerunning the same range over a
/// partially-filled store finishes exactly the missing work.
///
/// The summary counts only this run's visits; a sink that persists
/// across runs knows its own totals.
pub fn crawl_into<S: VisitSink>(
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    threads: usize,
    sink: &S,
) -> std::io::Result<CrawlSummary> {
    let threads = threads.max(1);
    let started = std::time::Instant::now();
    let next = AtomicUsize::new(from);
    let visited = AtomicUsize::new(0);
    let complete = AtomicUsize::new(0);

    let workers: Vec<std::io::Result<S::Worker>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|index| {
                let next = &next;
                let visited = &visited;
                let complete = &complete;
                s.spawn(move || -> std::io::Result<S::Worker> {
                    let mut worker = sink.worker(index)?;
                    loop {
                        let rank = next.fetch_add(1, Ordering::Relaxed);
                        if rank > to {
                            break;
                        }
                        if sink.is_done(rank) {
                            continue;
                        }
                        let outcome = {
                            let _span = cg_telemetry::span!("visit", rank);
                            let blueprint = gen.blueprint(rank);
                            visit_site(&blueprint, cfg, gen.site_seed(rank) ^ 0x51_7e)
                        };
                        let tele = crawl_metrics();
                        tele.visits.incr();
                        visited.fetch_add(1, Ordering::Relaxed);
                        if outcome.log.complete {
                            tele.visits_complete.incr();
                            complete.fetch_add(1, Ordering::Relaxed);
                        }
                        worker.record(outcome)?;
                    }
                    Ok(worker)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crawler worker panicked"))
            .collect()
    });

    // Merge every surviving worker before reporting a failure: a durable
    // sink flushes its buffered tail in merge(), and work other workers
    // completed should not be discarded because one of them errored.
    let mut first_err = None;
    for worker in workers {
        match worker {
            Ok(w) => {
                if let Err(e) = sink.merge(w) {
                    first_err.get_or_insert(e);
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let visited = visited.load(Ordering::Relaxed);
    let complete = complete.load(Ordering::Relaxed);
    Ok(CrawlSummary {
        visited,
        complete,
        failed: visited - complete,
        elapsed_ms: started.elapsed().as_millis() as u64,
    })
}

/// Crawls ranks `[from, to]` (inclusive, 1-based) with `threads`
/// workers. Returns outcomes sorted by rank.
pub fn crawl_range(
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    threads: usize,
) -> (Vec<VisitOutcome>, CrawlSummary) {
    let sink = VecCollector::new();
    let summary =
        crawl_into(gen, cfg, from, to, threads, &sink).expect("in-memory sink cannot fail");
    let mut outcomes = sink.into_outcomes();
    outcomes.sort_by_key(|o| o.spec.rank);
    (outcomes, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::GenConfig;
    use std::collections::HashSet;

    #[test]
    fn parallel_crawl_matches_serial() {
        let gen = WebGenerator::new(GenConfig::small(60), 0xABCD);
        let cfg = VisitConfig::regular();
        let (serial, _) = crawl_range(&gen, &cfg, 1, 60, 1);
        let (parallel, _) = crawl_range(&gen, &cfg, 1, 60, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec.rank, b.spec.rank);
            assert_eq!(a.log.sets, b.log.sets, "rank {}", a.spec.rank);
            assert_eq!(a.log.requests.len(), b.log.requests.len());
        }
    }

    #[test]
    fn summary_counts_completeness() {
        let gen = WebGenerator::new(GenConfig::small(100), 0xABCD);
        let (outcomes, summary) = crawl_range(&gen, &VisitConfig::regular(), 1, 100, 4);
        assert_eq!(summary.visited, 100);
        assert!(summary.complete < 100, "some crawls must fail");
        assert!(summary.complete > 50);
        assert_eq!(summary.failed, summary.visited - summary.complete);
        assert_eq!(outcomes.len(), 100);
    }

    /// A sink that pretends half the range is already stored.
    struct SkipHalf {
        seen: Mutex<Vec<usize>>,
    }

    impl SinkWorker for Vec<usize> {
        fn record(&mut self, outcome: VisitOutcome) -> std::io::Result<()> {
            self.push(outcome.spec.rank);
            Ok(())
        }
    }

    impl VisitSink for SkipHalf {
        type Worker = Vec<usize>;
        fn is_done(&self, rank: usize) -> bool {
            rank.is_multiple_of(2)
        }
        fn worker(&self, _index: usize) -> std::io::Result<Vec<usize>> {
            Ok(Vec::new())
        }
        fn merge(&self, worker: Vec<usize>) -> std::io::Result<()> {
            self.seen.lock().unwrap().extend(worker);
            Ok(())
        }
    }

    #[test]
    fn done_ranks_are_skipped() {
        let gen = WebGenerator::new(GenConfig::small(40), 0xABCD);
        let sink = SkipHalf {
            seen: Mutex::new(Vec::new()),
        };
        let summary = crawl_into(&gen, &VisitConfig::regular(), 1, 40, 3, &sink).unwrap();
        let seen: HashSet<usize> = sink.seen.into_inner().unwrap().into_iter().collect();
        assert_eq!(summary.visited, 20);
        assert_eq!(seen.len(), 20);
        assert!(seen.iter().all(|r| r % 2 == 1));
    }

    /// A sink whose workers fail after a few records.
    struct Flaky;

    struct FlakyWorker(usize);

    impl SinkWorker for FlakyWorker {
        fn record(&mut self, _outcome: VisitOutcome) -> std::io::Result<()> {
            self.0 += 1;
            if self.0 > 3 {
                return Err(std::io::Error::other("disk full"));
            }
            Ok(())
        }
    }

    impl VisitSink for Flaky {
        type Worker = FlakyWorker;
        fn worker(&self, _index: usize) -> std::io::Result<FlakyWorker> {
            Ok(FlakyWorker(0))
        }
        fn merge(&self, _worker: FlakyWorker) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_errors_surface() {
        let gen = WebGenerator::new(GenConfig::small(30), 0xABCD);
        let err = crawl_into(&gen, &VisitConfig::regular(), 1, 30, 2, &Flaky).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
