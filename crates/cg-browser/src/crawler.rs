//! The crawler: visits many sites in parallel, deterministically.
//!
//! Each site's result depends only on (master seed, rank, visit config),
//! so the crawl parallelizes over worker threads without changing any
//! outcome — the concurrency idiom is a scoped-thread pool with an atomic
//! work counter, collecting into a mutex-guarded vector that is sorted
//! by rank afterwards.

use crate::visit::{visit_site, VisitConfig, VisitOutcome};
use cg_webgen::WebGenerator;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Aggregate facts about a crawl (cheap to keep even when per-site
/// outcomes are discarded).
#[derive(Debug, Clone, Default)]
pub struct CrawlSummary {
    /// Sites visited.
    pub visited: usize,
    /// Sites with complete data (the analysis population).
    pub complete: usize,
}

/// Crawls ranks `[from, to]` (inclusive, 1-based) with `threads`
/// workers. Returns outcomes sorted by rank.
pub fn crawl_range(
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    threads: usize,
) -> (Vec<VisitOutcome>, CrawlSummary) {
    let threads = threads.max(1);
    let next = AtomicUsize::new(from);
    let results: Mutex<Vec<VisitOutcome>> =
        Mutex::new(Vec::with_capacity(to.saturating_sub(from) + 1));

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                if rank > to {
                    break;
                }
                let blueprint = gen.blueprint(rank);
                let outcome = visit_site(&blueprint, cfg, gen.site_seed(rank) ^ 0x51_7e);
                results
                    .lock()
                    .expect("crawler worker panicked")
                    .push(outcome);
            });
        }
    });

    let mut outcomes = results.into_inner().expect("crawler worker panicked");
    outcomes.sort_by_key(|o| o.spec.rank);
    let summary = CrawlSummary {
        visited: outcomes.len(),
        complete: outcomes.iter().filter(|o| o.log.complete).count(),
    };
    (outcomes, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::GenConfig;

    #[test]
    fn parallel_crawl_matches_serial() {
        let gen = WebGenerator::new(GenConfig::small(60), 0xABCD);
        let cfg = VisitConfig::regular();
        let (serial, _) = crawl_range(&gen, &cfg, 1, 60, 1);
        let (parallel, _) = crawl_range(&gen, &cfg, 1, 60, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec.rank, b.spec.rank);
            assert_eq!(a.log.sets, b.log.sets, "rank {}", a.spec.rank);
            assert_eq!(a.log.requests.len(), b.log.requests.len());
        }
    }

    #[test]
    fn summary_counts_completeness() {
        let gen = WebGenerator::new(GenConfig::small(100), 0xABCD);
        let (outcomes, summary) = crawl_range(&gen, &VisitConfig::regular(), 1, 100, 4);
        assert_eq!(summary.visited, 100);
        assert!(summary.complete < 100, "some crawls must fail");
        assert!(summary.complete > 50);
        assert_eq!(outcomes.len(), 100);
    }
}
