//! One full site visit: landing load plus light interaction (§4.2's
//! scroll-and-click protocol), with or without CookieGuard.

use crate::page::Page;
use crate::timing::{simulate_timing, PageTiming};
use cg_cookiejar::CookieJar;
use cg_domguard::{DomGuard, DomGuardConfig, DomGuardStats};
use cg_instrument::{Recorder, VisitLog};
use cg_script::EventLoop;
use cg_url::Url;
use cg_webgen::{PageBlueprint, SiteBlueprint};
use cookieguard_core::{CookieGuard, GuardConfig, GuardEngine, GuardStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// How a visit is performed.
#[derive(Debug, Clone)]
pub struct VisitConfig {
    /// Attach CookieGuard backed by this shared engine (None = regular
    /// browser, the measurement condition). The engine is compiled once
    /// — by [`VisitConfig::guarded`] or the caller — and every visit
    /// through this config opens a cheap per-site session on it, so an
    /// N-site crawl never re-derives policy or entity state.
    pub guard: Option<Arc<GuardEngine>>,
    /// Attach the DOM guard (§8's future-work defense) with this
    /// configuration.
    pub dom_guard: Option<DomGuardConfig>,
    /// Grandfather cookies already in the jar when the guard attaches
    /// (the §8 migration policy; only meaningful with `guard` set and a
    /// pre-populated jar via [`visit_site_with_jar`]).
    pub grandfather_preexisting: bool,
    /// Perform the light interaction protocol: scroll + click up to
    /// three links with 2-second pauses.
    pub interact: bool,
    /// Wall-clock epoch (unix ms) for cookie timestamps.
    pub wall_epoch_ms: i64,
    /// Event-loop op budget per page.
    pub max_ops: usize,
    /// Resolve CNAME records before attributing scripts — the DNS-layer
    /// defense against CNAME cloaking (§8). Off by default, like the
    /// paper's prototype.
    pub resolve_cnames: bool,
    /// Enforce the site's `Content-Security-Policy` header at
    /// script-load time (§2.1). On by default, like a real browser;
    /// generated sites ship no policy unless the CSP experiment
    /// synthesizes one, so this has no effect on the §5 calibration.
    pub enforce_csp: bool,
}

impl Default for VisitConfig {
    fn default() -> VisitConfig {
        VisitConfig {
            guard: None,
            dom_guard: None,
            grandfather_preexisting: false,
            interact: true,
            wall_epoch_ms: 1_750_000_000_000, // 2025-06-15T..Z, the crawl era
            max_ops: 200_000,
            resolve_cnames: false,
            enforce_csp: true,
        }
    }
}

impl VisitConfig {
    /// A measurement visit (no guard, with interaction).
    pub fn regular() -> VisitConfig {
        VisitConfig::default()
    }

    /// A guarded visit with the given policy (compiles the engine once
    /// for every visit made through this config).
    pub fn guarded(config: GuardConfig) -> VisitConfig {
        VisitConfig::guarded_by(GuardEngine::shared(config))
    }

    /// A guarded visit on an existing shared engine — use this to share
    /// one compiled policy across several configs or crawls.
    pub fn guarded_by(engine: Arc<GuardEngine>) -> VisitConfig {
        VisitConfig {
            guard: Some(engine),
            ..VisitConfig::default()
        }
    }

    /// Adds DOM-guard enforcement to the visit.
    pub fn with_dom_guard(mut self, config: DomGuardConfig) -> VisitConfig {
        self.dom_guard = Some(config);
        self
    }

    /// A stable digest of everything in this config that can change a
    /// visit's outcome. Two configs with equal fingerprints produce
    /// identical [`VisitOutcome`]s for every (master seed, rank) — the
    /// property the crawl store's checkpoint manifest relies on to
    /// decide whether a directory may be resumed into.
    ///
    /// The digest is computed over a canonical encoding (sets sorted
    /// before hashing), so it is reproducible across processes.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut canon = String::new();
        match &self.guard {
            None => canon.push_str("guard:none;"),
            Some(engine) => {
                let cfg = engine.config();
                let _ = write!(canon, "guard:{:?};", cfg.inline_policy);
                let mut wl: Vec<&str> = cfg.whitelist.iter().map(String::as_str).collect();
                wl.sort_unstable();
                let _ = write!(canon, "wl:{wl:?};");
                match &cfg.entity_map {
                    None => canon.push_str("entities:none;"),
                    Some(map) => {
                        let mut pairs: Vec<(&str, &str)> = map.iter().collect();
                        pairs.sort_unstable();
                        let _ = write!(canon, "entities:{pairs:?};");
                    }
                }
            }
        }
        match &self.dom_guard {
            None => canon.push_str("dom:none;"),
            Some(dg) => {
                let _ = write!(canon, "dom:{:?};", dg.inline_policy);
                let mut wl: Vec<&str> = dg.whitelist.iter().map(String::as_str).collect();
                wl.sort_unstable();
                let mut kinds: Vec<String> =
                    dg.enforced_kinds.iter().map(|k| format!("{k:?}")).collect();
                kinds.sort_unstable();
                let _ = write!(canon, "dwl:{wl:?};kinds:{kinds:?};");
                match &dg.entity_map {
                    None => canon.push_str("dentities:none;"),
                    Some(map) => {
                        let mut pairs: Vec<(&str, &str)> = map.iter().collect();
                        pairs.sort_unstable();
                        let _ = write!(canon, "dentities:{pairs:?};");
                    }
                }
            }
        }
        let _ = write!(
            canon,
            "grandfather:{};interact:{};epoch:{};max_ops:{};cnames:{};csp:{}",
            self.grandfather_preexisting,
            self.interact,
            self.wall_epoch_ms,
            self.max_ops,
            self.resolve_cnames,
            self.enforce_csp
        );
        cg_hash::sha1_hex(canon.as_bytes())
    }
}

/// Everything a visit produces.
#[derive(Debug, Clone)]
pub struct VisitOutcome {
    /// Site metadata.
    pub spec: cg_webgen::SiteSpec,
    /// The instrumentation log.
    pub log: VisitLog,
    /// Guard counters, when a guard was attached.
    pub guard_stats: Option<GuardStats>,
    /// DOM-guard counters, when one was attached.
    pub dom_guard_stats: Option<DomGuardStats>,
    /// Landing-page timing.
    pub timing: PageTiming,
    /// Total cookie API operations across pages.
    pub cookie_ops: usize,
    /// Cookies left in the jar after the visit.
    pub final_jar_size: usize,
    /// Scripts the site's CSP refused to load across pages (0 when the
    /// site serves no policy).
    pub csp_blocked: usize,
}

/// Executes one visit of `site` under `cfg` with a fresh cookie jar.
/// `visit_seed` drives behaviour randomness (derive it from the
/// generator's site seed; vary it to model visit-to-visit noise).
pub fn visit_site(site: &SiteBlueprint, cfg: &VisitConfig, visit_seed: u64) -> VisitOutcome {
    let mut jar = CookieJar::new();
    visit_site_with_jar(site, cfg, visit_seed, &mut jar)
}

/// Like [`visit_site`], but continues from an existing jar — a returning
/// visitor. With `cfg.grandfather_preexisting`, cookies already in the
/// jar are admitted under the §8 migration policy when the guard
/// attaches.
pub fn visit_site_with_jar(
    site: &SiteBlueprint,
    cfg: &VisitConfig,
    visit_seed: u64,
    jar: &mut CookieJar,
) -> VisitOutcome {
    let mut recorder = Recorder::new(&site.spec.domain, site.spec.rank);
    let mut guard = cfg
        .guard
        .as_ref()
        .map(|e| CookieGuard::with_engine(Arc::clone(e), &site.spec.domain));
    let mut dom_guard = cfg
        .dom_guard
        .clone()
        .map(|g| DomGuard::new(g, &site.spec.domain));
    let mut rng = StdRng::seed_from_u64(visit_seed ^ 0xbeef_cafe);

    if let (Some(g), true) = (guard.as_mut(), cfg.grandfather_preexisting) {
        for cookie in jar.iter() {
            g.grandfather(&cookie.name);
        }
    }

    if !site.spec.crawl_ok {
        // The crawl of this site fails to produce complete data; the
        // analysis discards it (paper keeps 14,917 of 20,000).
        recorder.mark_incomplete();
        return VisitOutcome {
            spec: site.spec.clone(),
            log: recorder.finish(),
            guard_stats: guard.map(|g| g.stats()),
            dom_guard_stats: dom_guard.map(|g| g.stats()),
            timing: PageTiming::default(),
            cookie_ops: 0,
            final_jar_size: 0,
            csp_blocked: 0,
        };
    }

    let csp = if cfg.enforce_csp {
        site.csp.as_deref().map(cg_http::CspPolicy::parse)
    } else {
        None
    };
    let mut cookie_ops = 0usize;
    let mut csp_blocked = 0usize;
    let mut epoch = cfg.wall_epoch_ms;

    // Landing page.
    let landing_url = Url::parse(&site.landing_url()).expect("landing URL");
    let (ops, blocked) = execute_page(
        &landing_url,
        &site.landing,
        site,
        epoch,
        jar,
        guard.as_mut(),
        dom_guard.as_mut(),
        &mut recorder,
        cfg,
        csp.as_ref(),
        &mut rng,
    );
    cookie_ops += ops;
    csp_blocked += blocked;

    // Interaction: click up to three links, 2 s pause between steps.
    if cfg.interact {
        for page in site.subpages.iter().take(3) {
            epoch += 2_000;
            let url = Url::parse(&site.page_url(&page.path)).expect("subpage URL");
            let (ops, blocked) = execute_page(
                &url,
                page,
                site,
                epoch,
                jar,
                guard.as_mut(),
                dom_guard.as_mut(),
                &mut recorder,
                cfg,
                csp.as_ref(),
                &mut rng,
            );
            cookie_ops += ops;
            csp_blocked += blocked;
        }
    }

    let timing = simulate_timing(
        site.landing.resource_count,
        site.landing.scripts.len(),
        cookie_ops,
        guard.is_some(),
        &mut rng,
    );

    let now = epoch + 60_000;
    jar.purge_expired(now);
    VisitOutcome {
        spec: site.spec.clone(),
        log: recorder.finish(),
        guard_stats: guard.map(|g| g.stats()),
        dom_guard_stats: dom_guard.map(|g| g.stats()),
        timing,
        cookie_ops,
        final_jar_size: jar.len(),
        csp_blocked,
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_page(
    url: &Url,
    page: &PageBlueprint,
    site: &SiteBlueprint,
    epoch: i64,
    jar: &mut CookieJar,
    guard: Option<&mut CookieGuard>,
    dom_guard: Option<&mut DomGuard>,
    recorder: &mut Recorder,
    cfg: &VisitConfig,
    csp: Option<&cg_http::CspPolicy>,
    rng: &mut StdRng,
) -> (usize, usize) {
    let page_seed: u64 = rng.gen();
    let mut p = Page::new(
        url.clone(),
        epoch,
        jar,
        guard,
        recorder,
        &site.injectables,
        page_seed,
    );
    if cfg.resolve_cnames {
        p = p.with_cnames(site.cnames.clone());
    }
    if let Some(dg) = dom_guard {
        p = p.with_dom_guard(dg);
    }
    if let Some(policy) = csp {
        p = p.with_csp(policy.clone());
    }
    p.apply_server_cookies(&page.server_cookies);
    let mut el = EventLoop::new(epoch).with_max_ops(cfg.max_ops);
    for (i, script) in page.scripts.iter().enumerate() {
        if !p.csp_admits_markup(script.url.as_deref()) {
            continue; // the browser never fetched it
        }
        let exec = p.register_markup_script(script.url.as_deref(), script.ops.clone());
        el.push_script(exec, i as u64 * 25);
    }
    el.run(&mut p, rng);
    (p.cookie_ops(), p.csp_blocked())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::{GenConfig, WebGenerator};

    fn generator() -> WebGenerator {
        WebGenerator::new(GenConfig::small(200), 0xC00C1E)
    }

    fn ok_site(g: &WebGenerator) -> SiteBlueprint {
        (1..=200)
            .map(|r| g.blueprint(r))
            .find(|b| b.spec.crawl_ok)
            .unwrap()
    }

    #[test]
    fn regular_visit_produces_events() {
        let g = generator();
        let site = ok_site(&g);
        let out = visit_site(&site, &VisitConfig::regular(), 42);
        assert!(out.log.complete);
        assert!(!out.log.inclusions.is_empty());
        assert!(out.timing.load_event_ms > 0.0);
    }

    #[test]
    fn failed_crawls_are_marked_incomplete() {
        let g = generator();
        let site = (1..=200)
            .map(|r| g.blueprint(r))
            .find(|b| !b.spec.crawl_ok)
            .unwrap();
        let out = visit_site(&site, &VisitConfig::regular(), 42);
        assert!(!out.log.complete);
        assert!(out.log.sets.is_empty());
    }

    #[test]
    fn visits_are_deterministic_for_a_seed() {
        let g = generator();
        let site = ok_site(&g);
        let a = visit_site(&site, &VisitConfig::regular(), 7);
        let b = visit_site(&site, &VisitConfig::regular(), 7);
        assert_eq!(a.log.sets, b.log.sets);
        assert_eq!(a.log.requests, b.log.requests);
        assert_eq!(a.timing, b.timing);
    }

    #[test]
    fn guard_reduces_visible_cookie_flow() {
        let g = generator();
        // Aggregate across sites: guarded visits must filter at least
        // some reads somewhere.
        let mut filtered_total = 0u64;
        for rank in 1..=30 {
            let site = g.blueprint(rank);
            if !site.spec.crawl_ok {
                continue;
            }
            let out = visit_site(
                &site,
                &VisitConfig::guarded(cookieguard_core::GuardConfig::strict()),
                7,
            );
            if let Some(stats) = out.guard_stats {
                filtered_total += stats.cookies_filtered;
            }
        }
        assert!(
            filtered_total > 0,
            "guard never filtered anything across 30 sites"
        );
    }

    #[test]
    fn csp_blocks_unlisted_fanout_but_not_cookie_access() {
        let g = generator();
        // Find a site where a direct-vendors-only policy actually has a
        // gap: some of the tag-manager fan-out is not listed, so the
        // browser must refuse those loads.
        let mut pinned = false;
        for rank in 1..=200 {
            let site = g.blueprint(rank);
            if !site.spec.crawl_ok || site.injectables.is_empty() {
                continue;
            }
            let mut with_csp = site.clone();
            with_csp.csp = Some(cg_webgen::csp_for_site(
                &site,
                cg_webgen::CspStyle::DirectVendorsOnly,
            ));

            let plain = visit_site(&site, &VisitConfig::regular(), 11);
            let gated = visit_site(&with_csp, &VisitConfig::regular(), 11);
            assert_eq!(plain.csp_blocked, 0, "no policy, nothing blocked");

            // Disabling enforcement always restores plain behaviour.
            let off = visit_site(
                &with_csp,
                &VisitConfig {
                    enforce_csp: false,
                    ..VisitConfig::regular()
                },
                11,
            );
            assert_eq!(off.csp_blocked, 0);
            assert_eq!(off.log.sets, plain.log.sets);

            if gated.csp_blocked > 0 {
                // The policy admits every markup script; the admitted
                // stack keeps full cookie privileges — CSP controls
                // loading, not cookie access (§2.1).
                assert!(
                    !gated.log.sets.is_empty() || plain.log.sets.is_empty(),
                    "admitted scripts keep their full cookie privileges"
                );
                pinned = true;
                break;
            }
        }
        assert!(pinned, "no site exercised the CSP fan-out gap in 200 ranks");
    }

    #[test]
    fn full_stack_csp_admits_everything() {
        let g = generator();
        let site = ok_site(&g);
        let mut with_csp = site.clone();
        with_csp.csp = Some(cg_webgen::csp_for_site(
            &site,
            cg_webgen::CspStyle::FullStack,
        ));
        let plain = visit_site(&site, &VisitConfig::regular(), 13);
        let gated = visit_site(&with_csp, &VisitConfig::regular(), 13);
        assert_eq!(gated.csp_blocked, 0, "full-stack policy lists every host");
        assert_eq!(gated.log.sets, plain.log.sets);
        assert_eq!(gated.log.requests, plain.log.requests);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        use cookieguard_core::GuardConfig;
        // Stable: independent constructions of the same config agree,
        // including set-valued knobs (HashSet/HashMap iteration order
        // must not leak into the digest).
        let entity_cfg = || {
            let mut map = cg_entity::EntityMap::new();
            map.insert("b.com", "B");
            map.insert("a.com", "A");
            VisitConfig::guarded(
                GuardConfig::strict()
                    .with_entity_grouping(map)
                    .with_whitelisted("x.com")
                    .with_whitelisted("y.com"),
            )
        };
        assert_eq!(entity_cfg().fingerprint(), entity_cfg().fingerprint());
        assert_eq!(
            VisitConfig::regular().fingerprint(),
            VisitConfig::regular().fingerprint()
        );
        // Discriminating: outcome-relevant knobs change the digest.
        let base = VisitConfig::regular();
        assert_ne!(base.fingerprint(), entity_cfg().fingerprint());
        assert_ne!(
            base.fingerprint(),
            VisitConfig {
                interact: false,
                ..VisitConfig::regular()
            }
            .fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            VisitConfig::regular()
                .with_dom_guard(cg_domguard::DomGuardConfig::strict())
                .fingerprint()
        );
    }

    #[test]
    fn interaction_adds_events() {
        let g = generator();
        let site = ok_site(&g);
        let with = visit_site(&site, &VisitConfig::regular(), 9);
        let without = visit_site(
            &site,
            &VisitConfig {
                interact: false,
                ..VisitConfig::regular()
            },
            9,
        );
        assert!(with.log.inclusions.len() >= without.log.inclusions.len());
    }
}
