//! The browser simulator: executes site blueprints through a cookie jar,
//! DOM, script engine, and (optionally) CookieGuard, while the
//! instrumentation layer records everything — the equivalent of the
//! paper's Chromium + Selenium + extension stack (§4.1–§4.2).
//!
//! Layering at the `document.cookie` / `CookieStore` chokepoint:
//!
//! ```text
//!   script behaviour (cg-script)
//!        │  Platform trait calls, with stack-trace attribution
//!        ▼
//!   Page (this crate)
//!        │  1. CookieGuard policy (optional)   — the defense
//!        │  2. Recorder logging                — the measurement
//!        ▼
//!   CookieJar / Document / network log
//! ```
//!
//! The same [`Page`] type therefore reproduces both halves of the paper:
//! crawling without a guard yields the §5 measurement dataset; attaching
//! a [`cookieguard_core::CookieGuard`] yields the §7 evaluation.
//!
//! **Layer:** simulation core (everything between blueprints and logs).
//! **Invariant:** every cookie operation flows through the
//! `GuardedJar` access layer — no workload-specific guard/jar/log
//! interleaving exists anywhere else. **Entry points:** `visit_site`,
//! `crawl_range`/`crawl_into`, `visit_under_conditions`, `Page`.

pub mod crawler;
pub mod page;
pub mod scenario;
pub mod timing;
pub mod visit;

pub use crawler::{crawl_into, crawl_range, CrawlSummary, SinkWorker, VecCollector, VisitSink};
pub use page::Page;
pub use scenario::{visit_under_conditions, ConditionOutcome};
pub use timing::{simulate_timing, PageTiming};
pub use visit::{visit_site, visit_site_with_jar, VisitConfig, VisitOutcome};
