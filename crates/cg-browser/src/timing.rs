//! The page-load timing model.
//!
//! The paper's Table 4 / Figures 6–7 and 9–10 are distributional claims
//! about navigation-timing metrics over thousands of heterogeneous
//! pages. Real page-load times are heavy-tailed and multiplicative
//! (§7.3 says exactly this), so the model is log-normal around a
//! workload-driven base:
//!
//! * the base scales with the page's subresource and script counts;
//! * per-visit noise is log-normal with σ ≈ 1.0, giving the observed
//!   mean/median ratios of ~1.6–1.75;
//! * CookieGuard multiplies each metric by a small factor that grows
//!   with the number of intercepted cookie operations — interception is
//!   the mechanism, so its cost follows the op count.
//!
//! Constants were calibrated against Table 4 (see EXPERIMENTS.md).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three navigation-timing metrics the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PageTiming {
    /// `dom_interactive`: DOM ready for interaction.
    pub dom_interactive_ms: f64,
    /// `dom_content_loaded`: document parsed.
    pub dom_content_loaded_ms: f64,
    /// `load_event_time`: all subresources done.
    pub load_event_ms: f64,
}

/// Log-normal sample: `exp(Normal(mu, sigma))` via Box–Muller.
fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Simulates one visit's timings.
///
/// * `resource_count`, `script_count` — the page workload;
/// * `cookie_ops` — intercepted cookie operations (0 when no guard);
/// * `guard` — whether CookieGuard is active;
/// * `rng` — per-visit randomness (pairing two calls with different rng
///   states models the paper's paired-but-noisy A/B visits).
pub fn simulate_timing<R: Rng>(
    resource_count: u32,
    script_count: usize,
    cookie_ops: usize,
    guard: bool,
    rng: &mut R,
) -> PageTiming {
    // Workload-driven base for dom_interactive (median-ish).
    let base_di = 490.0 + 2.8 * resource_count as f64 + 11.0 * script_count as f64;
    let noise = log_normal(rng, 0.0, 1.02);
    let mut di = base_di * noise;
    let mut dcl = di * (1.08 + rng.gen::<f64>() * 0.14);
    let mut load = dcl * (1.45 + log_normal(rng, 0.0, 0.42) * 0.65);

    if guard {
        // Interception cost: grows with intercepted ops; log-normal
        // spread models contention between the wrapped getter/setter
        // and page scripts.
        let g = log_normal(rng, 0.0, 0.40) * (1.0 + cookie_ops as f64 / 900.0);
        di *= 1.0 + 0.098 * g;
        dcl *= 1.0 + 0.095 * g;
        load *= 1.0 + 0.118 * g;
        // Rare pathological stalls: the far outliers of Figure 10.
        if rng.gen_bool(0.0015) {
            let stall = rng.gen_range(4.0..50.0);
            load *= stall;
            dcl *= stall * 0.7;
            di *= stall * 0.7;
        }
    }

    PageTiming {
        dom_interactive_ms: di,
        dom_content_loaded_ms: dcl,
        load_event_ms: load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medians(guard: bool, n: usize) -> PageTiming {
        let mut rng = StdRng::seed_from_u64(99);
        let mut di = Vec::new();
        let mut dcl = Vec::new();
        let mut load = Vec::new();
        for _ in 0..n {
            let t = simulate_timing(160, 20, 120, guard, &mut rng);
            di.push(t.dom_interactive_ms);
            dcl.push(t.dom_content_loaded_ms);
            load.push(t.load_event_ms);
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        PageTiming {
            dom_interactive_ms: med(&mut di),
            dom_content_loaded_ms: med(&mut dcl),
            load_event_ms: med(&mut load),
        }
    }

    #[test]
    fn metric_ordering_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = simulate_timing(100, 15, 50, false, &mut rng);
            assert!(t.dom_interactive_ms > 0.0);
            assert!(t.dom_content_loaded_ms >= t.dom_interactive_ms);
            assert!(t.load_event_ms >= t.dom_content_loaded_ms);
        }
    }

    #[test]
    fn guard_adds_overhead_in_aggregate() {
        let off = medians(false, 4000);
        let on = medians(true, 4000);
        let ratio = on.load_event_ms / off.load_event_ms;
        assert!(ratio > 1.03 && ratio < 1.35, "load ratio {ratio}");
    }

    #[test]
    fn heavier_pages_are_slower() {
        // Compare medians over many draws (noise is large per-visit).
        let median_of = |res: u32, scripts: usize| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut v: Vec<f64> = (0..3000)
                .map(|_| simulate_timing(res, scripts, 0, false, &mut rng).dom_interactive_ms)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median_of(300, 40) > median_of(30, 3));
    }

    #[test]
    fn heavy_tail_mean_exceeds_median() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..5000)
            .map(|_| simulate_timing(160, 20, 0, false, &mut rng).dom_interactive_ms)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut s = samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let ratio = mean / median;
        assert!((1.3..2.3).contains(&ratio), "mean/median {ratio}");
    }
}
