//! One page execution context: the [`cg_script::Platform`] implementation
//! where CookieGuard enforcement and instrumentation interpose.
//!
//! All cookie traffic — `document.cookie`, the CookieStore methods, and
//! the response's `Set-Cookie` headers — is delegated to
//! [`cookieguard_core::GuardedJar`], the single enforcement point that
//! fuses policy, storage, and event emission. This type only translates
//! script-level [`Attribution`]s into [`AccessContext`]s and handles the
//! non-cookie platform surface (DOM, requests, script loading).

use cg_cookiejar::CookieJar;
use cg_dom::{Document, ElementId, ElementMutation, FrameKind, ScriptSource};
use cg_domguard::DomGuard;
use cg_instrument::{CookieApi, DomEvent, ProbeEvent, Recorder, RequestEvent, ScriptInclusion};
use cg_script::{
    Attribution, CookieChangeNotice, DomMutationKind, Platform, ScriptExecution, ScriptOp,
    SignatureDb,
};
use cg_url::{CnameMap, DomainId, Url};
use cookieguard_core::{AccessContext, Caller, CookieGuard, GuardedJar, SetRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The attribution identities of one script, resolved **once** at its
/// first cookie/DOM operation and cached for the rest of the page: the
/// policy caller (CNAME-uncloaked when enabled), the measured actor
/// (interned raw eTLD+1), and the shared script-URL string for write
/// events. Subsequent operations by the same script copy ids out of the
/// cache — no PSL walk, no CNAME chase, no allocation per operation.
#[derive(Debug, Clone)]
struct ScriptIdentity {
    caller: Caller,
    actor: Option<DomainId>,
    actor_url: Arc<str>,
}

/// The per-page platform: owns the document and accesses the
/// visit-scoped jar, guard, and recorder exclusively through the
/// [`GuardedJar`] access layer.
pub struct Page<'v> {
    url: Url,
    site_domain: String,
    wall_epoch_ms: i64,
    access: GuardedJar<'v>,
    doc: Document,
    injectables: &'v HashMap<String, Vec<ScriptOp>>,
    executed_urls: HashSet<String>,
    markup_elements: Vec<ElementId>,
    rng: StdRng,
    cookie_ops: usize,
    cnames: Option<CnameMap>,
    script_identities: HashMap<Url, ScriptIdentity>,
    signatures: Option<SignatureDb>,
    dom_guard: Option<&'v mut DomGuard>,
    change_cursor: usize,
    csp: Option<cg_http::CspPolicy>,
    csp_blocked: usize,
}

impl<'v> Page<'v> {
    /// Builds a page for `url`. `injectables` resolves dynamic script
    /// injection; `seed` drives DOM-target selection only.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        url: Url,
        wall_epoch_ms: i64,
        jar: &'v mut CookieJar,
        guard: Option<&'v mut CookieGuard>,
        recorder: &'v mut Recorder,
        injectables: &'v HashMap<String, Vec<ScriptOp>>,
        seed: u64,
    ) -> Page<'v> {
        let site_domain = url
            .registrable_domain()
            .unwrap_or_else(|| url.host_str().into_owned());
        // Change events only cover mutations from this page onward.
        let change_cursor = jar.change_count();
        let access = GuardedJar::new(
            url.clone(),
            jar,
            guard.map(CookieGuard::session_mut),
            recorder,
        );
        let mut doc = Document::new(url.clone(), FrameKind::Main);
        let mut markup_elements = Vec::new();
        for i in 0..14 {
            let tag = if i % 3 == 0 {
                "div"
            } else if i % 3 == 1 {
                "p"
            } else {
                "img"
            };
            markup_elements.push(doc.insert_markup_element(tag, None));
        }
        Page {
            url,
            site_domain,
            wall_epoch_ms,
            access,
            doc,
            injectables,
            executed_urls: HashSet::new(),
            markup_elements,
            rng: StdRng::seed_from_u64(seed ^ 0x00d0_c0de),
            cookie_ops: 0,
            cnames: None,
            script_identities: HashMap::new(),
            signatures: None,
            dom_guard: None,
            change_cursor,
            csp: None,
            csp_blocked: 0,
        }
    }

    /// Attaches a DOM guard: cross-domain element mutations are
    /// authorized against element ownership before they apply (§8's
    /// future-work defense, crate `cg-domguard`).
    pub fn with_dom_guard(mut self, guard: &'v mut DomGuard) -> Self {
        self.dom_guard = Some(guard);
        self
    }

    /// Enables DNS-aware attribution: script hosts are resolved through
    /// the CNAME map before their eTLD+1 is derived, uncloaking
    /// first-party-subdomain trackers (§8's defense direction).
    pub fn with_cnames(mut self, cnames: CnameMap) -> Self {
        self.cnames = Some(cnames);
        self
    }

    /// Enables signature-based attribution for inline scripts (§8, after
    /// Chen et al.): an inline script whose behaviour matches a known
    /// third-party signature is attributed to that third party instead of
    /// being treated as origin-less.
    pub fn with_signatures(mut self, db: SignatureDb) -> Self {
        self.signatures = Some(db);
        self
    }

    /// Enforces the document's `Content-Security-Policy` (the `script-src`
    /// model of §2.1) at script-load time: markup scripts the caller
    /// pre-checks via [`Page::csp_admits_markup`], dynamically injected
    /// scripts inside [`Platform::resolve_injected_script`]. Blocked
    /// scripts never execute; CSP says nothing about the cookie access
    /// of the scripts it admits.
    pub fn with_csp(mut self, csp: cg_http::CspPolicy) -> Self {
        self.csp = Some(csp);
        self
    }

    /// Checks a markup script against the document's CSP, counting
    /// blocks. `url = None` is an inline script.
    pub fn csp_admits_markup(&mut self, url: Option<&str>) -> bool {
        let Some(policy) = &self.csp else { return true };
        let allowed = match url {
            None => policy.allows_inline(),
            Some(u) => match Url::parse(u) {
                Ok(su) => policy.allows_external(&su, &self.url, None),
                Err(_) => false,
            },
        };
        if !allowed {
            self.csp_blocked += 1;
        }
        allowed
    }

    /// Scripts the document's CSP refused to load so far.
    pub fn csp_blocked(&self) -> usize {
        self.csp_blocked
    }

    /// Applies the server's `Set-Cookie` headers for this page's response
    /// (the `webRequest.onHeadersReceived` path). The response domain is
    /// the site itself.
    pub fn apply_server_cookies(&mut self, raw_headers: &[String]) {
        self.access
            .apply_set_cookie_headers(&self.site_domain, raw_headers, self.wall_epoch_ms);
    }

    /// Registers a markup script with the document and the log; returns
    /// the execution the event loop should run.
    pub fn register_markup_script(
        &mut self,
        url: Option<&str>,
        ops: Vec<ScriptOp>,
    ) -> ScriptExecution {
        let source = match url {
            Some(u) => ScriptSource::External(Url::parse(u).expect("blueprint script URL")),
            None => ScriptSource::Inline,
        };
        let id = self.doc.add_direct_script(source.clone());
        self.access
            .sink()
            .inclusion(ScriptInclusion::observed(url, true));
        if let Some(u) = url {
            self.executed_urls.insert(u.to_string());
        }
        let parsed = match source {
            ScriptSource::External(u) => Some(u),
            ScriptSource::Inline => {
                // Signature-based attribution: an inline copy of a known
                // third-party behaviour executes under that party's
                // identity. The inclusion log above still says <inline> —
                // the measurement cannot see the attribution, only the
                // policy layer benefits.
                self.signatures
                    .as_ref()
                    .and_then(|db| db.attribute(&ops))
                    .and_then(|domain| {
                        Url::parse(&format!("https://cdn.{domain}/sig-attributed.js")).ok()
                    })
            }
        };
        ScriptExecution {
            script_id: id,
            url: parsed,
            ops,
        }
    }

    /// Total cookie API operations performed on this page (drives the
    /// timing model).
    pub fn cookie_ops(&self) -> usize {
        self.cookie_ops
    }

    /// The document (DOM pilot analysis reads its mutation log).
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The cached attribution identities for `at`'s script — resolved
    /// (PSL walk, CNAME uncloaking, interning, URL stringification) on
    /// the script's first operation, copied out of the cache afterwards.
    /// Inline/lost-stack attributions have no script URL and no cache
    /// entry: they are the origin-less identity.
    fn identity(&mut self, at: &Attribution) -> (Caller, Option<DomainId>, Option<Arc<str>>) {
        let Some(url) = &at.script_url else {
            return (Caller::inline(), None, None);
        };
        if let Some(id) = self.script_identities.get(url) {
            return (id.caller, id.actor, Some(Arc::clone(&id.actor_url)));
        }
        let policy_domain = match &self.cnames {
            Some(map) => map.uncloaked_domain(&url.host_str()),
            None => url.registrable_domain(),
        };
        let caller = match policy_domain {
            Some(d) => Caller::external(&d),
            None => Caller::inline(),
        };
        let identity = ScriptIdentity {
            caller,
            actor: url.registrable_domain().map(|d| cg_url::intern(&d)),
            actor_url: Arc::from(url.to_string().as_str()),
        };
        let out = (
            identity.caller,
            identity.actor,
            Some(Arc::clone(&identity.actor_url)),
        );
        self.script_identities.insert(url.clone(), identity);
        out
    }

    /// The cached policy caller for `at`'s script.
    fn caller(&mut self, at: &Attribution) -> Caller {
        self.identity(at).0
    }

    fn wall(&self, at: &Attribution) -> i64 {
        self.wall_epoch_ms + at.now_ms as i64
    }

    /// Translates a script-level attribution into the access layer's
    /// operation context for the write paths: policy caller
    /// (CNAME-uncloaked), measured actor + script URL — all served from
    /// the per-script cache — and the two timebases.
    fn ctx(&mut self, at: &Attribution) -> AccessContext {
        let (caller, actor, actor_url) = self.identity(at);
        AccessContext {
            caller,
            actor,
            actor_url,
            now_ms: self.wall(at),
            time_ms: at.now_ms,
        }
    }

    /// Read-path variant of [`Page::ctx`]: read events carry no script
    /// URL, so the shared `Arc` is not even cloned (`document.cookie`
    /// gets are the hottest op of a measurement crawl).
    fn read_ctx(&mut self, at: &Attribution) -> AccessContext {
        let (caller, actor, _) = self.identity(at);
        AccessContext {
            caller,
            actor,
            actor_url: None,
            now_ms: self.wall(at),
            time_ms: at.now_ms,
        }
    }
}

impl Platform for Page<'_> {
    fn site_domain(&self) -> String {
        self.site_domain.clone()
    }

    fn document_cookie_get(&mut self, at: &Attribution) -> String {
        self.cookie_ops += 1;
        let ctx = self.read_ctx(at);
        self.access
            .read(&ctx, CookieApi::DocumentCookie)
            .serialize()
    }

    fn document_cookie_set(&mut self, at: &Attribution, raw: &str) -> bool {
        self.cookie_ops += 1;
        let ctx = self.ctx(at);
        self.access
            .set(&ctx, SetRequest::DocumentCookie { raw })
            .applied
    }

    fn cookie_store_get(&mut self, at: &Attribution, name: &str) -> Option<String> {
        if self.url.scheme != "https" {
            return None; // CookieStore requires a secure context.
        }
        self.cookie_ops += 1;
        let ctx = self.read_ctx(at);
        self.access.get(&ctx, name)
    }

    fn cookie_store_get_all(&mut self, at: &Attribution) -> Vec<(String, String)> {
        if self.url.scheme != "https" {
            return Vec::new();
        }
        self.cookie_ops += 1;
        let ctx = self.read_ctx(at);
        self.access.read(&ctx, CookieApi::CookieStore).pairs()
    }

    fn cookie_store_set(
        &mut self,
        at: &Attribution,
        name: &str,
        value: &str,
        expires_abs_ms: Option<i64>,
    ) -> bool {
        if self.url.scheme != "https" {
            return false;
        }
        self.cookie_ops += 1;
        let ctx = self.ctx(at);
        self.access
            .set(
                &ctx,
                SetRequest::CookieStore {
                    name,
                    value,
                    expires_abs_ms,
                },
            )
            .applied
    }

    fn cookie_store_delete(&mut self, at: &Attribution, name: &str) -> bool {
        if self.url.scheme != "https" {
            return false;
        }
        self.cookie_ops += 1;
        let ctx = self.ctx(at);
        self.access.delete(&ctx, name).applied
    }

    fn send_request(&mut self, at: &Attribution, url: &str, kind: cg_http::RequestKind) {
        // The browser attaches every domain/path-matching cookie to the
        // request — including HttpOnly ones and regardless of any
        // script-level isolation, subject only to SameSite rules for
        // cross-site destinations. This is the channel that first-party
        // server-side collection endpoints ride (§5.7): CookieGuard
        // mediates script reads, not the network layer, which is why the
        // header passthrough below is not a policy-checked access.
        let cookie_header = Url::parse(url).ok().map(|u| {
            self.access
                .cookie_header_for_subresource(&u, &self.site_domain, self.wall(at))
        });
        let event = RequestEvent::observed(
            url,
            kind,
            at.script_url.as_ref(),
            &self.site_domain,
            cookie_header.as_deref(),
            at.now_ms,
        );
        self.access.sink().request(event);
    }

    fn resolve_injected_script(&mut self, at: &Attribution, url: &str) -> Option<ScriptExecution> {
        // CSP gates dynamic injection exactly like markup loading: an
        // unlisted host never executes (the tag-manager fan-out gap).
        if let Some(policy) = &self.csp {
            let allowed = Url::parse(url)
                .map(|su| policy.allows_external(&su, &self.url, None))
                .unwrap_or(false);
            if !allowed {
                self.csp_blocked += 1;
                return None;
            }
        }
        let ops = self.injectables.get(url)?;
        // Pages de-duplicate script elements by URL, like tag managers do.
        if !self.executed_urls.insert(url.to_string()) {
            return None;
        }
        let parent = at.script_id.unwrap_or(0);
        let parsed = Url::parse(url).ok()?;
        let id = self
            .doc
            .add_injected_script(ScriptSource::External(parsed.clone()), parent);
        self.access
            .sink()
            .inclusion(ScriptInclusion::observed(Some(url), false));
        Some(ScriptExecution {
            script_id: id,
            url: Some(parsed),
            ops: ops.clone(),
        })
    }

    fn dom_insert(&mut self, at: &Attribution, tag: &str) {
        let actor = self.identity(at).1.map(cg_url::name);
        self.doc.insert_script_element(tag, None, actor);
    }

    fn dom_mutate(&mut self, at: &Attribution, kind: DomMutationKind, foreign_target: bool) {
        // Cached identity: no PSL walk or allocation per DOM op.
        let (caller, actor_id, _) = self.identity(at);
        let actor_name = actor_id.map(cg_url::name);
        let actor = actor_name.map(str::to_string);
        let target = if foreign_target {
            // A site-owned markup element.
            self.markup_elements[self.rng.gen_range(0..self.markup_elements.len())]
        } else {
            // The script's own container when it created one; otherwise
            // the page's first markup element (scripts without their own
            // nodes editing page chrome — still cross-domain, and the
            // pilot counts it as such).
            let own = actor_name.and_then(|a| self.doc.last_element_owned_by(a));
            match own.or_else(|| self.markup_elements.first().copied()) {
                Some(e) => e,
                None => return,
            }
        };
        let mutation = match kind {
            DomMutationKind::Content => ElementMutation::Content,
            DomMutationKind::Style => ElementMutation::Style,
            DomMutationKind::Attribute => ElementMutation::Attribute,
            DomMutationKind::Remove => ElementMutation::Remove,
        };
        let owner = self
            .doc
            .element(target)
            .map(|e| e.owner_domain.clone())
            .unwrap_or_default();
        // DOM-guard enforcement (§8 future work): the mutation must be
        // authorized against the element's ownership before it applies.
        if let Some(g) = self.dom_guard.as_deref_mut() {
            if let Some(guard_kind) = cg_domguard::mutation_kind_of(mutation) {
                if !g.authorize(&caller, &owner, guard_kind).is_allow() {
                    self.access.sink().dom_mutation(DomEvent {
                        actor,
                        owner,
                        kind: format!("{kind:?}"),
                        blocked: true,
                    });
                    return;
                }
            }
        }
        if self
            .doc
            .mutate_element(target, mutation, actor_name, "mutated")
        {
            self.access.sink().dom_mutation(DomEvent {
                actor,
                owner,
                kind: format!("{kind:?}"),
                blocked: false,
            });
        }
    }

    fn probe_result(&mut self, at: &Attribution, feature: &str, cookie: &str, ok: bool) {
        self.access.sink().probe(ProbeEvent {
            feature: feature.to_string(),
            cookie: cookie.to_string(),
            ok,
            actor: at.script_domain(),
        });
    }

    fn drain_cookie_changes(&mut self) -> Vec<CookieChangeNotice> {
        // CookieStore (and its change events) require a secure context.
        if self.url.scheme != "https" {
            self.change_cursor = self.access.change_count();
            return Vec::new();
        }
        let notices = self
            .access
            .changes_since(self.change_cursor)
            .iter()
            .filter(|c| !c.http_only) // never observable from scripts
            .map(|c| CookieChangeNotice {
                name: c.name.clone(),
                deleted: c.is_removal(),
            })
            .collect();
        self.change_cursor = self.access.change_count();
        notices
    }

    fn cookie_change_visible(&mut self, at: &Attribution, name: &str) -> bool {
        if !self.access.is_guarded() {
            return true; // don't derive the caller just to discard it
        }
        let caller = self.caller(at);
        self.access.may_observe(&caller, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::WriteKind;
    use cg_script::{CookieAttrs, EventLoop, ValueSpec};
    use cookieguard_core::GuardConfig;

    const EPOCH: i64 = 1_750_000_000_000;

    fn run_page(
        guard: Option<&mut CookieGuard>,
        scripts: Vec<(Option<&str>, Vec<ScriptOp>)>,
    ) -> (cg_instrument::VisitLog, CookieJar) {
        let url = Url::parse("https://www.site.com/").unwrap();
        let mut jar = CookieJar::new();
        let mut recorder = Recorder::new("site.com", 1);
        let injectables = HashMap::new();
        let mut page = Page::new(url, EPOCH, &mut jar, guard, &mut recorder, &injectables, 7);
        let mut el = EventLoop::new(EPOCH);
        for (i, (u, ops)) in scripts.into_iter().enumerate() {
            let exec = page.register_markup_script(u, ops);
            el.push_script(exec, i as u64 * 25);
        }
        let mut rng = StdRng::seed_from_u64(3);
        el.run(&mut page, &mut rng);
        (recorder.finish(), jar)
    }

    #[test]
    fn ghostwritten_cookie_recorded_with_actor() {
        let (log, jar) = run_page(
            None,
            vec![(
                Some("https://connect.facebook.net/en_US/fbevents.js"),
                vec![ScriptOp::SetCookie {
                    name: "_fbp".into(),
                    value: ValueSpec::FbpStyle,
                    attrs: CookieAttrs {
                        site_wide: true,
                        ..CookieAttrs::default()
                    },
                }],
            )],
        );
        assert_eq!(log.sets.len(), 1);
        assert_eq!(log.sets[0].actor.as_deref(), Some("facebook.net"));
        assert_eq!(log.sets[0].kind, WriteKind::Create);
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn guard_blocks_cross_domain_read() {
        let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
        let (log, _) = run_page(
            Some(&mut guard),
            vec![
                (
                    Some("https://t.tracker.com/t.js"),
                    vec![ScriptOp::SetCookie {
                        name: "_tid".into(),
                        value: ValueSpec::Uuid,
                        attrs: CookieAttrs::default(),
                    }],
                ),
                (
                    Some("https://cdn.other.net/o.js"),
                    vec![ScriptOp::ReadAllCookies],
                ),
                (
                    Some("https://www.site.com/app.js"),
                    vec![ScriptOp::ReadAllCookies],
                ),
            ],
        );
        // other.net saw nothing; the site owner saw the tracker cookie.
        let other_read = log
            .reads
            .iter()
            .find(|r| r.actor.as_deref() == Some("other.net"))
            .unwrap();
        assert!(other_read.cookies.is_empty());
        assert_eq!(other_read.filtered_count, 1);
        let owner_read = log
            .reads
            .iter()
            .find(|r| r.actor.as_deref() == Some("site.com"))
            .unwrap();
        assert_eq!(owner_read.cookies.len(), 1);
    }

    #[test]
    fn overwrite_and_delete_classified() {
        let (log, jar) = run_page(
            None,
            vec![
                (
                    Some("https://a.one.com/1.js"),
                    vec![ScriptOp::SetCookie {
                        name: "shared".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    }],
                ),
                (
                    Some("https://b.two.com/2.js"),
                    vec![ScriptOp::OverwriteCookie {
                        target: "shared".into(),
                        value: ValueSpec::HexId(24),
                        changes: cg_script::AttrChanges::value_and_expiry(),
                        blind: false,
                    }],
                ),
                (
                    Some("https://c.three.com/3.js"),
                    vec![ScriptOp::DeleteCookie {
                        target: "shared".into(),
                        via_store: false,
                    }],
                ),
            ],
        );
        let kinds: Vec<WriteKind> = log.sets.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![WriteKind::Create, WriteKind::Overwrite, WriteKind::Delete]
        );
        let ow = &log.sets[1];
        assert_eq!(ow.actor.as_deref(), Some("two.com"));
        let ch = ow.changes.unwrap();
        assert!(ch.value && ch.expires);
        assert_eq!(
            jar.cookie_header_for_request(
                &Url::parse("https://www.site.com/").unwrap(),
                EPOCH + 10_000
            ),
            ""
        );
    }

    #[test]
    fn guard_blocks_cross_domain_write_but_allows_own() {
        let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
        let (log, jar) = run_page(
            Some(&mut guard),
            vec![
                (
                    Some("https://a.one.com/1.js"),
                    vec![ScriptOp::SetCookie {
                        name: "mine".into(),
                        value: ValueSpec::HexId(16),
                        attrs: CookieAttrs::default(),
                    }],
                ),
                (
                    Some("https://b.two.com/2.js"),
                    vec![ScriptOp::OverwriteCookie {
                        target: "mine".into(),
                        value: ValueSpec::HexId(24),
                        changes: cg_script::AttrChanges::value_and_expiry(),
                        blind: true,
                    }],
                ),
            ],
        );
        let blocked: Vec<&cg_instrument::SetEvent> =
            log.sets.iter().filter(|s| s.blocked).collect();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].actor.as_deref(), Some("two.com"));
        // Jar still holds one.com's value.
        let url = Url::parse("https://www.site.com/").unwrap();
        let c = jar.cookies_for_document(&url, EPOCH + 100_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].name, "mine");
    }

    #[test]
    fn exfiltration_visible_in_request_log() {
        let (log, _) = run_page(
            None,
            vec![
                (
                    Some("https://gtm.com/gtm.js"),
                    vec![ScriptOp::SetCookie {
                        name: "_ga".into(),
                        value: ValueSpec::GaStyle,
                        attrs: CookieAttrs::default(),
                    }],
                ),
                (
                    Some("https://snap.licdn.com/insight.min.js"),
                    vec![ScriptOp::Exfiltrate {
                        dest_host: "px.ads.linkedin.com".into(),
                        path: "/attribution_trigger".into(),
                        selection: cg_script::CookieSelection::Named(vec!["_ga".into()]),
                        segment: cg_script::SegmentPolicy::LongestSegment,
                        encoding: cg_script::Encoding::Base64,
                        kind: cg_http::RequestKind::Image,
                        via_store: false,
                    }],
                ),
            ],
        );
        assert_eq!(log.requests.len(), 1);
        let req = &log.requests[0];
        assert_eq!(req.initiator.as_deref(), Some("licdn.com"));
        assert_eq!(req.dest_domain.as_deref(), Some("linkedin.com"));
        assert!(req.url.contains("_ga="));
    }

    #[test]
    fn http_cookies_recorded_and_guarded() {
        let url = Url::parse("https://www.site.com/").unwrap();
        let mut jar = CookieJar::new();
        let mut recorder = Recorder::new("site.com", 1);
        let injectables = HashMap::new();
        let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
        let mut page = Page::new(
            url.clone(),
            EPOCH,
            &mut jar,
            Some(&mut guard),
            &mut recorder,
            &injectables,
            7,
        );
        page.apply_server_cookies(&[
            "session_id=abc123; Path=/; HttpOnly".to_string(),
            "prefs=dark".to_string(),
        ]);
        let log = recorder.finish();
        // Only the non-HttpOnly cookie is visible to the measurement.
        assert_eq!(log.sets.len(), 1);
        assert_eq!(log.sets[0].name, "prefs");
        assert_eq!(log.sets[0].api, CookieApi::HttpHeader);
        // Both are in the jar (the HttpOnly one rides requests only).
        assert_eq!(jar.len(), 2);
        // The guard knows the server created them.
        assert_eq!(guard.metadata().creator("session_id"), Some("site.com"));
    }

    #[test]
    fn injected_scripts_deduped_by_url() {
        let url = Url::parse("https://www.site.com/").unwrap();
        let mut jar = CookieJar::new();
        let mut recorder = Recorder::new("site.com", 1);
        let mut injectables = HashMap::new();
        injectables.insert(
            "https://ga.com/a.js".to_string(),
            vec![ScriptOp::ReadAllCookies],
        );
        let mut page = Page::new(url, EPOCH, &mut jar, None, &mut recorder, &injectables, 7);
        let mut el = EventLoop::new(EPOCH);
        let exec = page.register_markup_script(
            Some("https://gtm.com/gtm.js"),
            vec![
                ScriptOp::InjectScript {
                    url: "https://ga.com/a.js".into(),
                },
                ScriptOp::InjectScript {
                    url: "https://ga.com/a.js".into(),
                },
            ],
        );
        el.push_script(exec, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let stats = el.run(&mut page, &mut rng);
        assert_eq!(stats.scripts_injected, 1);
        let log = recorder.finish();
        assert_eq!(log.inclusions.iter().filter(|i| !i.direct).count(), 1);
    }

    #[test]
    fn cookie_store_requires_https() {
        let url = Url::parse("http://www.site.com/").unwrap();
        let mut jar = CookieJar::new();
        let mut recorder = Recorder::new("site.com", 1);
        let injectables = HashMap::new();
        let mut page = Page::new(url, EPOCH, &mut jar, None, &mut recorder, &injectables, 7);
        let at = Attribution::lost(0);
        assert!(!page.cookie_store_set(&at, "x", "1", None));
        assert!(page.cookie_store_get_all(&at).is_empty());
    }
}
