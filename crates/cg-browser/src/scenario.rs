//! Scenario-driven visits: one posed site, many defense conditions.
//!
//! The crawl entry points ([`crate::crawl_range`], [`crate::crawl_into`])
//! sweep *populations*; adversarial-scenario work (crate `cg-scenarios`)
//! instead re-visits **one** hand-posed blueprint under several defense
//! conditions and compares the outcomes cell by cell. This module is
//! that entry point: [`visit_under_conditions`] runs every condition
//! from a fresh cookie jar with the *same* visit seed, so any outcome
//! difference between two cells is attributable to the defense alone —
//! never to behaviour randomness.

use crate::visit::{visit_site, VisitConfig, VisitOutcome};
use cg_webgen::SiteBlueprint;

/// One condition's result: the configured name plus everything the
/// visit produced.
#[derive(Debug, Clone)]
pub struct ConditionOutcome {
    /// The condition's display name (e.g. `"vanilla"`, `"cookieguard"`).
    pub condition: String,
    /// The full visit outcome under that condition.
    pub outcome: VisitOutcome,
}

/// Visits `site` once per `(name, config)` condition, each from a fresh
/// jar, all with the same `visit_seed`. Conditions run in the given
/// order and the output preserves it; every visit is independent, so
/// callers may shard conditions or scenarios across threads freely.
pub fn visit_under_conditions(
    site: &SiteBlueprint,
    conditions: &[(String, VisitConfig)],
    visit_seed: u64,
) -> Vec<ConditionOutcome> {
    conditions
        .iter()
        .map(|(name, cfg)| ConditionOutcome {
            condition: name.clone(),
            outcome: visit_site(site, cfg, visit_seed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::{GenConfig, WebGenerator};
    use cookieguard_core::GuardConfig;

    #[test]
    fn conditions_share_the_seed_and_differ_only_by_defense() {
        let g = WebGenerator::new(GenConfig::small(50), 0xC00C1E);
        let site = (1..=50)
            .map(|r| g.blueprint(r))
            .find(|b| b.spec.crawl_ok)
            .unwrap();
        let conditions = vec![
            ("vanilla".to_string(), VisitConfig::regular()),
            (
                "cookieguard".to_string(),
                VisitConfig::guarded(GuardConfig::strict()),
            ),
            ("vanilla-again".to_string(), VisitConfig::regular()),
        ];
        let out = visit_under_conditions(&site, &conditions, 7);
        assert_eq!(out.len(), 3);
        // Identical configs under the same seed are byte-identical.
        assert_eq!(out[0].outcome.log.sets, out[2].outcome.log.sets);
        assert_eq!(out[0].outcome.log.requests, out[2].outcome.log.requests);
        // The guarded run carries stats; the vanilla runs do not.
        assert!(out[1].outcome.guard_stats.is_some());
        assert!(out[0].outcome.guard_stats.is_none());
    }
}
