//! Access-layer equivalence: a scripted visit replayed through the
//! historical interleaved guard/jar/recorder dance and through the new
//! [`cookieguard_core::GuardedJar`] chokepoint must produce
//! **byte-identical** `VisitLog` JSON and jar state.
//!
//! `LegacyPage` below is a faithful copy of the pre-access-layer
//! `Page` implementation (guard checks, jar mutations, and `record_*`
//! calls hand-interleaved at every interception point). It is kept only
//! here, as the regression oracle for the refactor, and can be deleted
//! once the access layer has survived a few releases.

use cg_browser::Page;
use cg_cookiejar::CookieJar;
use cg_dom::{Document, ElementId, ElementMutation, FrameKind, ScriptSource};
use cg_http::parse_set_cookie;
use cg_instrument::{AttrChangeFlags, CookieApi, Recorder, VisitLog, WriteKind};
use cg_script::{
    Attribution, CookieAttrs, CookieChangeNotice, CookieSelection, DomMutationKind, Encoding,
    EventLoop, Platform, ScriptExecution, ScriptOp, SegmentPolicy, ValueSpec,
};
use cg_url::Url;
use cookieguard_core::{Caller, CookieGuard, GuardConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

const EPOCH: i64 = 1_750_000_000_000;

// ---------------------------------------------------------------------
// The old interleaved implementation, verbatim.
// ---------------------------------------------------------------------

struct LegacyPage<'v> {
    url: Url,
    site_domain: String,
    wall_epoch_ms: i64,
    jar: &'v mut CookieJar,
    guard: Option<&'v mut CookieGuard>,
    recorder: &'v mut Recorder,
    doc: Document,
    injectables: &'v HashMap<String, Vec<ScriptOp>>,
    executed_urls: HashSet<String>,
    markup_elements: Vec<ElementId>,
    rng: StdRng,
    change_cursor: usize,
}

impl<'v> LegacyPage<'v> {
    fn new(
        url: Url,
        wall_epoch_ms: i64,
        jar: &'v mut CookieJar,
        guard: Option<&'v mut CookieGuard>,
        recorder: &'v mut Recorder,
        injectables: &'v HashMap<String, Vec<ScriptOp>>,
        seed: u64,
    ) -> LegacyPage<'v> {
        let site_domain = url
            .registrable_domain()
            .unwrap_or_else(|| url.host_str().into_owned());
        let change_cursor = jar.change_count();
        let mut doc = Document::new(url.clone(), FrameKind::Main);
        let mut markup_elements = Vec::new();
        for i in 0..14 {
            let tag = if i % 3 == 0 {
                "div"
            } else if i % 3 == 1 {
                "p"
            } else {
                "img"
            };
            markup_elements.push(doc.insert_markup_element(tag, None));
        }
        LegacyPage {
            url,
            site_domain,
            wall_epoch_ms,
            jar,
            guard,
            recorder,
            doc,
            injectables,
            executed_urls: HashSet::new(),
            markup_elements,
            rng: StdRng::seed_from_u64(seed ^ 0x00d0_c0de),
            change_cursor,
        }
    }

    fn apply_server_cookies(&mut self, raw_headers: &[String]) {
        for raw in raw_headers {
            let Some(sc) = parse_set_cookie(raw) else {
                continue;
            };
            if self
                .jar
                .set_from_header(&sc, &self.url, self.wall_epoch_ms)
                .is_ok()
            {
                if let Some(g) = self.guard.as_deref_mut() {
                    g.record_http_set_cookie(&sc.name, &self.site_domain.clone());
                }
                if !sc.http_only {
                    self.recorder.record_set_with_lifetime(
                        &sc.name,
                        &sc.value,
                        Some(&self.site_domain.clone()),
                        None,
                        CookieApi::HttpHeader,
                        WriteKind::Create,
                        match (sc.max_age_s, sc.expires_ms) {
                            (Some(ma), _) => Some(ma),
                            (None, Some(e)) => Some((e - self.wall_epoch_ms) / 1000),
                            (None, None) => None,
                        },
                        None,
                        false,
                        0,
                    );
                }
            }
        }
    }

    fn register_markup_script(&mut self, url: Option<&str>, ops: Vec<ScriptOp>) -> ScriptExecution {
        let source = match url {
            Some(u) => ScriptSource::External(Url::parse(u).expect("script URL")),
            None => ScriptSource::Inline,
        };
        let id = self.doc.add_direct_script(source.clone());
        self.recorder.record_inclusion(url, true);
        if let Some(u) = url {
            self.executed_urls.insert(u.to_string());
        }
        let parsed = match source {
            ScriptSource::External(u) => Some(u),
            ScriptSource::Inline => None,
        };
        ScriptExecution {
            script_id: id,
            url: parsed,
            ops,
        }
    }

    fn caller(at: &Attribution) -> Caller {
        match at.script_domain() {
            Some(d) => Caller::external(&d),
            None => Caller::inline(),
        }
    }

    fn wall(&self, at: &Attribution) -> i64 {
        self.wall_epoch_ms + at.now_ms as i64
    }

    fn visible_cookies(&mut self, at: &Attribution) -> (Vec<cg_cookiejar::Cookie>, usize) {
        let now = self.wall(at);
        let cookies = self.jar.cookies_for_document(&self.url, now);
        match self.guard.as_deref_mut() {
            Some(g) => {
                let before = cookies.len();
                let visible = g.filter_read(&Self::caller(at), cookies);
                let filtered = before - visible.len();
                (visible, filtered)
            }
            None => (cookies, 0),
        }
    }
}

impl Platform for LegacyPage<'_> {
    fn site_domain(&self) -> String {
        self.site_domain.clone()
    }

    fn document_cookie_get(&mut self, at: &Attribution) -> String {
        let (visible, filtered) = self.visible_cookies(at);
        let pairs: Vec<(String, String)> = visible
            .iter()
            .map(|c| (c.name.clone(), c.value.clone()))
            .collect();
        let s = visible
            .iter()
            .map(|c| c.pair())
            .collect::<Vec<_>>()
            .join("; ");
        self.recorder.record_read(
            at.script_domain().as_deref(),
            CookieApi::DocumentCookie,
            pairs,
            filtered,
            at.now_ms,
        );
        s
    }

    fn document_cookie_set(&mut self, at: &Attribution, raw: &str) -> bool {
        let Some(sc) = parse_set_cookie(raw) else {
            return false;
        };
        let now = self.wall(at);
        let actor = at.script_domain();
        let actor_url = at.script_url.as_ref().map(|u| u.to_string());
        let caller = Self::caller(at);

        let prior = self
            .jar
            .cookies_for_document(&self.url, now)
            .into_iter()
            .find(|c| c.name == sc.name);
        let expires_abs = match (sc.max_age_s, sc.expires_ms) {
            (Some(ma), _) => Some(now + ma * 1000),
            (None, Some(e)) => Some(e),
            (None, None) => None,
        };
        let is_delete = matches!(expires_abs, Some(e) if e <= now);
        let max_age_s = expires_abs.map(|e| (e - now) / 1000);
        let kind = if is_delete {
            WriteKind::Delete
        } else if prior.is_some() {
            WriteKind::Overwrite
        } else {
            WriteKind::Create
        };

        if let Some(g) = self.guard.as_deref_mut() {
            let decision = if is_delete {
                g.authorize_delete(&caller, &sc.name)
            } else {
                g.authorize_write(&caller, &sc.name)
            };
            if !decision.is_allow() {
                self.recorder.record_set_with_lifetime(
                    &sc.name,
                    &sc.value,
                    actor.as_deref(),
                    actor_url.as_deref(),
                    CookieApi::DocumentCookie,
                    kind,
                    max_age_s,
                    None,
                    true,
                    at.now_ms,
                );
                return false;
            }
        }

        let changes = prior
            .as_ref()
            .filter(|_| kind == WriteKind::Overwrite)
            .map(|p| AttrChangeFlags {
                value: p.value != sc.value,
                expires: p.expires_ms != expires_abs,
                domain: sc.domain.as_deref().is_some_and(|d| d != p.domain) && !p.host_only
                    || (p.host_only && sc.domain.is_some()),
                path: sc.path.as_deref().is_some_and(|pt| pt != p.path),
            });
        let applied = if is_delete {
            self.jar.delete(&sc.name, &self.url, now)
        } else {
            self.jar.set_document_cookie(raw, &self.url, now).is_ok()
        };
        if applied || is_delete {
            self.recorder.record_set_with_lifetime(
                &sc.name,
                &sc.value,
                actor.as_deref(),
                actor_url.as_deref(),
                CookieApi::DocumentCookie,
                kind,
                max_age_s,
                changes,
                false,
                at.now_ms,
            );
        }
        applied
    }

    fn cookie_store_get(&mut self, at: &Attribution, name: &str) -> Option<String> {
        if self.url.scheme != "https" {
            return None;
        }
        let (visible, filtered) = self.visible_cookies(at);
        let found = visible
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value.clone());
        let pairs = found
            .iter()
            .map(|v| (name.to_string(), v.clone()))
            .collect();
        self.recorder.record_read(
            at.script_domain().as_deref(),
            CookieApi::CookieStore,
            pairs,
            filtered.min(1),
            at.now_ms,
        );
        found
    }

    fn cookie_store_get_all(&mut self, at: &Attribution) -> Vec<(String, String)> {
        if self.url.scheme != "https" {
            return Vec::new();
        }
        let (visible, filtered) = self.visible_cookies(at);
        let pairs: Vec<(String, String)> = visible
            .iter()
            .map(|c| (c.name.clone(), c.value.clone()))
            .collect();
        self.recorder.record_read(
            at.script_domain().as_deref(),
            CookieApi::CookieStore,
            pairs.clone(),
            filtered,
            at.now_ms,
        );
        pairs
    }

    fn cookie_store_set(
        &mut self,
        at: &Attribution,
        name: &str,
        value: &str,
        expires_abs_ms: Option<i64>,
    ) -> bool {
        if self.url.scheme != "https" {
            return false;
        }
        let now = self.wall(at);
        let actor = at.script_domain();
        let actor_url = at.script_url.as_ref().map(|u| u.to_string());
        let caller = Self::caller(at);
        let prior_exists = self
            .jar
            .cookies_for_document(&self.url, now)
            .iter()
            .any(|c| c.name == name);
        let kind = if prior_exists {
            WriteKind::Overwrite
        } else {
            WriteKind::Create
        };
        let max_age_s = expires_abs_ms.map(|e| (e - now) / 1000);
        if let Some(g) = self.guard.as_deref_mut() {
            if !g.authorize_write(&caller, name).is_allow() {
                self.recorder.record_set_with_lifetime(
                    name,
                    value,
                    actor.as_deref(),
                    actor_url.as_deref(),
                    CookieApi::CookieStore,
                    kind,
                    max_age_s,
                    None,
                    true,
                    at.now_ms,
                );
                return false;
            }
        }
        let mut raw = format!("{name}={value}; Path=/");
        if let Some(e) = expires_abs_ms {
            raw.push_str(&format!("; Expires=@{e}"));
        }
        let ok = self.jar.set_document_cookie(&raw, &self.url, now).is_ok();
        if ok {
            self.recorder.record_set_with_lifetime(
                name,
                value,
                actor.as_deref(),
                actor_url.as_deref(),
                CookieApi::CookieStore,
                kind,
                max_age_s,
                None,
                false,
                at.now_ms,
            );
        }
        ok
    }

    fn cookie_store_delete(&mut self, at: &Attribution, name: &str) -> bool {
        if self.url.scheme != "https" {
            return false;
        }
        let now = self.wall(at);
        let actor = at.script_domain();
        let actor_url = at.script_url.as_ref().map(|u| u.to_string());
        let caller = Self::caller(at);
        if let Some(g) = self.guard.as_deref_mut() {
            if !g.authorize_delete(&caller, name).is_allow() {
                self.recorder.record_set(
                    name,
                    "",
                    actor.as_deref(),
                    actor_url.as_deref(),
                    CookieApi::CookieStore,
                    WriteKind::Delete,
                    None,
                    true,
                    at.now_ms,
                );
                return false;
            }
        }
        let ok = self.jar.delete(name, &self.url, now);
        if ok {
            self.recorder.record_set(
                name,
                "",
                actor.as_deref(),
                actor_url.as_deref(),
                CookieApi::CookieStore,
                WriteKind::Delete,
                None,
                false,
                at.now_ms,
            );
        }
        ok
    }

    fn send_request(&mut self, at: &Attribution, url: &str, kind: cg_http::RequestKind) {
        let cookie_header = Url::parse(url).ok().map(|u| {
            self.jar
                .cookie_header_for_subresource(&u, &self.site_domain, self.wall(at))
        });
        self.recorder.record_request(
            url,
            kind,
            at.script_url.as_ref(),
            &self.site_domain.clone(),
            cookie_header.as_deref(),
            at.now_ms,
        );
    }

    fn resolve_injected_script(&mut self, at: &Attribution, url: &str) -> Option<ScriptExecution> {
        let ops = self.injectables.get(url)?;
        if !self.executed_urls.insert(url.to_string()) {
            return None;
        }
        let parent = at.script_id.unwrap_or(0);
        let parsed = Url::parse(url).ok()?;
        let id = self
            .doc
            .add_injected_script(ScriptSource::External(parsed.clone()), parent);
        self.recorder.record_inclusion(Some(url), false);
        Some(ScriptExecution {
            script_id: id,
            url: Some(parsed),
            ops: ops.clone(),
        })
    }

    fn dom_insert(&mut self, at: &Attribution, tag: &str) {
        let actor = at.script_domain();
        self.doc.insert_script_element(tag, None, actor.as_deref());
    }

    fn dom_mutate(&mut self, at: &Attribution, kind: DomMutationKind, foreign_target: bool) {
        let actor = at.script_domain();
        let target = if foreign_target {
            self.markup_elements[self.rng.gen_range(0..self.markup_elements.len())]
        } else {
            let own = actor
                .as_deref()
                .and_then(|a| self.doc.last_element_owned_by(a));
            match own.or_else(|| self.markup_elements.first().copied()) {
                Some(e) => e,
                None => return,
            }
        };
        let mutation = match kind {
            DomMutationKind::Content => ElementMutation::Content,
            DomMutationKind::Style => ElementMutation::Style,
            DomMutationKind::Attribute => ElementMutation::Attribute,
            DomMutationKind::Remove => ElementMutation::Remove,
        };
        let owner = self
            .doc
            .element(target)
            .map(|e| e.owner_domain.clone())
            .unwrap_or_default();
        if self
            .doc
            .mutate_element(target, mutation, actor.as_deref(), "mutated")
        {
            self.recorder
                .record_dom(actor.as_deref(), &owner, &format!("{kind:?}"), false);
        }
    }

    fn probe_result(&mut self, at: &Attribution, feature: &str, cookie: &str, ok: bool) {
        self.recorder
            .record_probe(feature, cookie, ok, at.script_domain().as_deref());
    }

    fn drain_cookie_changes(&mut self) -> Vec<CookieChangeNotice> {
        if self.url.scheme != "https" {
            self.change_cursor = self.jar.change_count();
            return Vec::new();
        }
        let notices = self
            .jar
            .changes_since(self.change_cursor)
            .iter()
            .filter(|c| !c.http_only)
            .map(|c| CookieChangeNotice {
                name: c.name.clone(),
                deleted: c.is_removal(),
            })
            .collect();
        self.change_cursor = self.jar.change_count();
        notices
    }

    fn cookie_change_visible(&mut self, at: &Attribution, name: &str) -> bool {
        match self.guard.as_deref() {
            Some(g) => g.may_observe(&Self::caller(at), name),
            None => true,
        }
    }
}

// ---------------------------------------------------------------------
// The scripted visit, exercising every cookie path.
// ---------------------------------------------------------------------

fn server_cookies() -> Vec<String> {
    vec![
        "session_id=srv-abc123; Path=/; HttpOnly".to_string(),
        "prefs=dark".to_string(),
        "__garbage".to_string(), // unparseable, skipped by both paths
    ]
}

fn injectables() -> HashMap<String, Vec<ScriptOp>> {
    let mut map = HashMap::new();
    map.insert(
        "https://cdn.analytics.example/inner.js".to_string(),
        vec![
            ScriptOp::SetCookie {
                name: "_inner".into(),
                value: ValueSpec::HexId(16),
                attrs: CookieAttrs::default(),
            },
            ScriptOp::ReadAllCookies,
        ],
    );
    map
}

fn scripts() -> Vec<(Option<&'static str>, Vec<ScriptOp>)> {
    vec![
        // The site's own application: sets, reads, uses the CookieStore.
        (
            Some("https://www.shop.example/static/app.js"),
            vec![
                ScriptOp::SetCookie {
                    name: "site_sess".into(),
                    value: ValueSpec::HexId(24),
                    attrs: CookieAttrs {
                        site_wide: true,
                        ..CookieAttrs::default()
                    },
                },
                ScriptOp::CookieStoreSet {
                    name: "pref_theme".into(),
                    value: ValueSpec::Fixed("dark".into()),
                    expires_in_ms: Some(86_400_000),
                },
                ScriptOp::ReadAllCookies,
                ScriptOp::OnCookieChange {
                    watch: Some("_tid".into()),
                    deletions_only: false,
                    ops: vec![ScriptOp::ReadAllCookies],
                },
            ],
        ),
        // A tracker: ghost-writes an identifier, reads, exfiltrates,
        // overwrites a foreign cookie blind, deletes via both APIs.
        (
            Some("https://t.tracker.example/t.js"),
            vec![
                ScriptOp::SetCookie {
                    name: "_tid".into(),
                    value: ValueSpec::FbpStyle,
                    attrs: CookieAttrs::default(),
                },
                ScriptOp::ReadAllCookies,
                ScriptOp::CookieStoreGetAll,
                ScriptOp::OverwriteCookie {
                    target: "site_sess".into(),
                    value: ValueSpec::HexId(24),
                    changes: cg_script::AttrChanges::value_and_expiry(),
                    blind: true,
                },
                ScriptOp::Exfiltrate {
                    dest_host: "px.tracker.example".into(),
                    path: "/sync".into(),
                    selection: CookieSelection::Named(vec!["_tid".into()]),
                    segment: SegmentPolicy::Full,
                    encoding: Encoding::Plain,
                    kind: cg_http::RequestKind::Image,
                    via_store: false,
                },
                ScriptOp::DeleteCookie {
                    target: "_tmp".into(),
                    via_store: false,
                },
            ],
        ),
        // A consent-manager-style vendor: probes, store reads, a
        // cross-domain delete (blocked under the guard), DOM work, and
        // a transitive injection.
        (
            Some("https://cmp.vendor.example/cmp.js"),
            vec![
                ScriptOp::CookieStoreGet {
                    name: "site_sess".into(),
                },
                ScriptOp::DeleteCookie {
                    target: "_tid".into(),
                    via_store: true,
                },
                ScriptOp::Probe {
                    feature: "functionality".into(),
                    cookie: "pref_theme".into(),
                },
                ScriptOp::DomInsert { tag: "div".into() },
                ScriptOp::DomMutate {
                    kind: DomMutationKind::Style,
                    foreign_target: false,
                },
                ScriptOp::InjectScript {
                    url: "https://cdn.analytics.example/inner.js".into(),
                },
                ScriptOp::SendRequest {
                    dest_host: "api.vendor.example".into(),
                    path: "/config".into(),
                    kind: cg_http::RequestKind::Xhr,
                },
            ],
        ),
        // An inline script (origin-less under strict mode).
        (
            None,
            vec![
                ScriptOp::ReadAllCookies,
                ScriptOp::SetCookie {
                    name: "inline_c".into(),
                    value: ValueSpec::HexId(8),
                    attrs: CookieAttrs::default(),
                },
            ],
        ),
    ]
}

/// Runs the scripted visit through the new access-layer [`Page`].
fn run_new(guard: Option<&mut CookieGuard>) -> (VisitLog, CookieJar) {
    let url = Url::parse("https://www.shop.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("shop.example", 1);
    let inj = injectables();
    let mut page = Page::new(url, EPOCH, &mut jar, guard, &mut recorder, &inj, 7);
    page.apply_server_cookies(&server_cookies());
    let mut el = EventLoop::new(EPOCH);
    for (i, (u, ops)) in scripts().into_iter().enumerate() {
        let exec = page.register_markup_script(u, ops);
        el.push_script(exec, i as u64 * 25);
    }
    let mut rng = StdRng::seed_from_u64(1234);
    el.run(&mut page, &mut rng);
    drop(page);
    (recorder.finish(), jar)
}

/// Runs the identical visit through the historical interleaved path.
fn run_legacy(guard: Option<&mut CookieGuard>) -> (VisitLog, CookieJar) {
    let url = Url::parse("https://www.shop.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("shop.example", 1);
    let inj = injectables();
    let mut page = LegacyPage::new(url, EPOCH, &mut jar, guard, &mut recorder, &inj, 7);
    page.apply_server_cookies(&server_cookies());
    let mut el = EventLoop::new(EPOCH);
    for (i, (u, ops)) in scripts().into_iter().enumerate() {
        let exec = page.register_markup_script(u, ops);
        el.push_script(exec, i as u64 * 25);
    }
    let mut rng = StdRng::seed_from_u64(1234);
    el.run(&mut page, &mut rng);
    drop(page);
    (recorder.finish(), jar)
}

#[test]
fn guarded_visit_is_byte_identical_to_legacy_path() {
    let mut guard_new = CookieGuard::new(GuardConfig::strict(), "shop.example");
    let mut guard_old = CookieGuard::new(GuardConfig::strict(), "shop.example");
    let (log_new, jar_new) = run_new(Some(&mut guard_new));
    let (log_old, jar_old) = run_legacy(Some(&mut guard_old));

    let json_new = serde_json::to_string(&log_new).unwrap();
    let json_old = serde_json::to_string(&log_old).unwrap();
    assert_eq!(json_new, json_old, "VisitLog JSON must match byte for byte");

    let jar_json_new = serde_json::to_string(&jar_new).unwrap();
    let jar_json_old = serde_json::to_string(&jar_old).unwrap();
    assert_eq!(jar_json_new, jar_json_old, "jar state must match");

    assert_eq!(
        guard_new.stats(),
        guard_old.stats(),
        "guard counters must match"
    );
    // The scenario actually exercised the interesting paths.
    assert!(
        log_new.sets.iter().any(|s| s.blocked),
        "a blocked write occurred"
    );
    assert!(log_new.sets.iter().any(|s| s.api == CookieApi::HttpHeader));
    assert!(log_new.reads.iter().any(|r| r.filtered_count > 0));
    assert!(!log_new.requests.is_empty());
    assert!(!log_new.probes.is_empty());
}

#[test]
fn vanilla_visit_is_byte_identical_to_legacy_path() {
    let (log_new, jar_new) = run_new(None);
    let (log_old, jar_old) = run_legacy(None);
    assert_eq!(
        serde_json::to_string(&log_new).unwrap(),
        serde_json::to_string(&log_old).unwrap(),
        "guard-less VisitLog JSON must match byte for byte"
    );
    assert_eq!(
        serde_json::to_string(&jar_new).unwrap(),
        serde_json::to_string(&jar_old).unwrap(),
        "guard-less jar state must match"
    );
    // Without a guard the tracker's jar-wide read saw the site session.
    assert!(log_new
        .reads
        .iter()
        .any(|r| r.cookies.iter().any(|(n, _)| n == "site_sess")));
}
