//! Criterion micro-benchmark crate (`cg-bench`).
//!
//! **Layer:** orchestration/tooling — no library code of its own; every
//! target under `benches/` drives another crate's hot path through the
//! vendored `criterion` stand-in. **Invariant:** CI compiles every
//! bench (`cargo bench -p cg-bench --no-run`), so a hot-path API change
//! cannot silently orphan its regression benchmark.
//!
//! **Entry points** (run with `cargo bench -p cg-bench --bench <name>`):
//! `cookiejar` (sharded vs. flat jar), `guard` (engine compile vs.
//! session open), `access` (per-op vs. batched `GuardedJar` traffic),
//! `decide` (compiled policy vs. string oracle), `store_roundtrip`
//! (crawl-store append/merge-scan), plus `baselines`, `domguard`,
//! `experiments`, `filterlist`, `hashing`, `parsing`, and `pipeline`.
