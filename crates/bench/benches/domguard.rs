//! DomGuard and change-event micro-benchmarks: the added §8 defenses
//! must stay cheap enough for per-mutation / per-jar-write interception.

use cg_cookiejar::CookieJar;
use cg_domguard::{DomGuard, DomGuardConfig, MutationKind};
use cg_url::Url;
use cookieguard_core::{Caller, CookieGuard, GuardConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_domguard_authorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("domguard_authorize");
    let callers = [
        Caller::external("ads.example.net"),
        Caller::external("site.com"),
        Caller::inline(),
    ];
    let mut strict = DomGuard::new(DomGuardConfig::strict(), "site.com");
    group.bench_function("strict", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % callers.len();
            black_box(strict.authorize(&callers[i], "site.com", MutationKind::Content))
        });
    });
    let mut grouped = DomGuard::new(
        DomGuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
        "site.com",
    );
    group.bench_function("entity_grouped", |b| {
        b.iter(|| {
            black_box(grouped.authorize(
                &Caller::external("fbcdn.net"),
                "facebook.net",
                MutationKind::Style,
            ))
        });
    });
    group.finish();
}

fn bench_change_log(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_log");
    let url = Url::parse("https://www.site.com/").unwrap();
    for &n in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("append_via_set", n), &n, |b, &n| {
            b.iter(|| {
                let mut jar = CookieJar::new();
                for i in 0..n {
                    jar.set_document_cookie(&format!("c{i}=v"), &url, i as i64)
                        .unwrap();
                }
                black_box(jar.change_count())
            });
        });
        // The per-task drain the event loop performs.
        let mut jar = CookieJar::new();
        for i in 0..n {
            jar.set_document_cookie(&format!("c{i}=v"), &url, i as i64)
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("drain_cursor", n), &n, |b, _| {
            b.iter(|| black_box(jar.changes_since(black_box(0)).len()));
        });
    }
    group.finish();
}

fn bench_may_observe(c: &mut Criterion) {
    // The per-change visibility filter CookieGuard applies before a
    // listener sees an event.
    let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
    for i in 0..50 {
        guard.authorize_write(
            &Caller::external(&format!("vendor{i}.com")),
            &format!("c{i}"),
        );
    }
    let spy = Caller::external("spy.net");
    let owner = Caller::external("vendor25.com");
    let mut group = c.benchmark_group("change_visibility");
    group.bench_function("foreign_observer", |b| {
        b.iter(|| black_box(guard.may_observe(&spy, black_box("c25"))));
    });
    group.bench_function("owner_observer", |b| {
        b.iter(|| black_box(guard.may_observe(&owner, black_box("c25"))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_domguard_authorize, bench_change_log, bench_may_observe
}
criterion_main!(benches);
