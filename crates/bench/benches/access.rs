//! Access-layer benchmarks: per-op vs batch `GuardedJar` traffic on a
//! jar at the 180-cookie per-domain cap, driving a mixed read/write
//! burst (the hot crawl path). The batch API derives the caller context
//! once and serves consecutive reads from one post-filter view, so its
//! win over per-op access is what this group tracks in the perf
//! trajectory.

use cg_cookiejar::CookieJar;
use cg_instrument::{CookieApi, NullSink, Recorder};
use cg_url::Url;
use cookieguard_core::{
    AccessContext, BatchOp, Caller, GuardConfig, GuardEngine, GuardSession, GuardedJar, SetRequest,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const JAR_SIZE: usize = 180;

fn url() -> Url {
    Url::parse("https://www.bench-site.example/").unwrap()
}

fn ctx(domain: &str) -> AccessContext {
    AccessContext {
        caller: Caller::external(domain),
        actor: Some(cg_url::intern(domain)),
        actor_url: Some(std::sync::Arc::from(
            format!("https://{domain}/s.js").as_str(),
        )),
        now_ms: 1_000_000,
        time_ms: 500,
    }
}

/// A jar at the per-domain cap with ownership spread over 12 vendors.
fn seeded() -> (CookieJar, GuardSession) {
    let mut jar = CookieJar::new();
    let mut guard = GuardEngine::shared(GuardConfig::strict()).session("bench-site.example");
    let mut sink = NullSink;
    let u = url();
    let mut access = GuardedJar::new(u, &mut jar, Some(&mut guard), &mut sink);
    for i in 0..JAR_SIZE {
        let vendor = format!("vendor{}.example", i % 12);
        let c = ctx(&vendor);
        let raw = format!("cookie_{i}=v{i}");
        access.set(&c, SetRequest::DocumentCookie { raw: &raw });
    }
    (jar, guard)
}

/// The mixed burst one busy script issues: jar-wide reads, targeted
/// gets, a write, and a delete.
fn burst_ops() -> Vec<BatchOp<'static>> {
    let mut ops = Vec::new();
    for _ in 0..4 {
        ops.push(BatchOp::Read {
            api: CookieApi::DocumentCookie,
        });
        ops.push(BatchOp::Get { name: "cookie_3" });
        ops.push(BatchOp::Get { name: "cookie_9" });
    }
    ops.push(BatchOp::Set(SetRequest::CookieStore {
        name: "cookie_3",
        value: "refreshed",
        expires_abs_ms: None,
    }));
    ops.push(BatchOp::Read {
        api: CookieApi::DocumentCookie,
    });
    ops.push(BatchOp::Delete { name: "cookie_3" });
    ops
}

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("guarded_jar_180c");
    let ops = burst_ops();

    group.bench_function("per_op", |b| {
        let (mut jar, mut guard) = seeded();
        let mut sink = NullSink;
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut sink);
        let vendor = "vendor3.example";
        b.iter(|| {
            for op in &ops {
                // The per-op path re-derives the context per call, like a
                // Platform implementation fielding one script op at a time.
                let c = ctx(vendor);
                match op {
                    BatchOp::Read { api } => {
                        black_box(access.read(&c, *api));
                    }
                    BatchOp::Get { name } => {
                        black_box(access.get(&c, name));
                    }
                    BatchOp::Set(req) => {
                        black_box(access.set(&c, *req));
                    }
                    BatchOp::Delete { name } => {
                        black_box(access.delete(&c, name));
                    }
                }
            }
        });
    });

    group.bench_function("batch", |b| {
        let (mut jar, mut guard) = seeded();
        let mut sink = NullSink;
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut sink);
        let c = ctx("vendor3.example");
        b.iter(|| black_box(access.run_batch(&c, &ops)));
    });

    // The same burst with the full recorder attached, so the cost of
    // event emission stays visible alongside the enforcement cost.
    group.bench_function("batch_recorded", |b| {
        let (mut jar, mut guard) = seeded();
        let mut rec = Recorder::new("bench-site.example", 1);
        let mut access = GuardedJar::new(url(), &mut jar, Some(&mut guard), &mut rec);
        let c = ctx("vendor3.example");
        b.iter(|| black_box(access.run_batch(&c, &ops)));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_access
}
criterion_main!(benches);
